//! QDock vs AlphaFold2/AlphaFold3 surrogates on a handful of fragments —
//! a miniature of the paper's §6.2 evaluation.
//!
//! ```text
//! cargo run --release --example compare_predictors -- 3ckz 3eax 4mo4 1ppi
//! ```

use qdb_baselines::alphafold::AfModel;
use qdockbank::evaluation::{compare_fragments, win_rates};
use qdockbank::fragments::fragment;
use qdockbank::pipeline::PipelineConfig;
use qdockbank::report::render_win_rates;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() {
        vec!["3ckz", "3eax", "4mo4", "6czf"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let records: Vec<_> = ids
        .iter()
        .map(|id| fragment(id).unwrap_or_else(|| panic!("unknown PDB id {id}")))
        .collect();

    let config = PipelineConfig::fast();
    let comparisons = compare_fragments(&records, &config).expect("fault-free run");

    println!(
        "{:<6} {:>11} {:>9} {:>9} | {:>11} {:>9} {:>9}",
        "PDB", "QDock-RMSD", "AF2-RMSD", "AF3-RMSD", "QDock-aff", "AF2-aff", "AF3-aff"
    );
    for c in &comparisons {
        println!(
            "{:<6} {:>11.2} {:>9.2} {:>9.2} | {:>11.2} {:>9.2} {:>9.2}",
            c.record.pdb_id,
            c.qdock.qdock.ca_rmsd,
            c.af2.ca_rmsd,
            c.af3.ca_rmsd,
            c.qdock.qdock.affinity(),
            c.af2.affinity(),
            c.af3.affinity(),
        );
    }
    println!();
    print!(
        "{}",
        render_win_rates(&win_rates(&comparisons, AfModel::Af2))
    );
    print!(
        "{}",
        render_win_rates(&win_rates(&comparisons, AfModel::Af3))
    );
}
