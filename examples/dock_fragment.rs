//! Dock any QDockBank fragment by PDB id and print the Vina-style pose
//! table (affinity + lb/ub RMSD per pose, per seeded run).
//!
//! ```text
//! cargo run --release --example dock_fragment -- 4mo4
//! cargo run --release --example dock_fragment -- 4mo4 --backend qubo
//! ```
//!
//! `--backend` selects the docking engine: `vina` (default), `qubo`, or
//! `auto` (QUBO with the Vina engine as the fallback rung).

use qdockbank::fragments::fragment;
use qdockbank::pipeline::{run_fragment, PipelineConfig};
use qdockbank::BackendChoice;

fn main() {
    let mut id = "4mo4".to_string();
    let mut backend = BackendChoice::Vina;
    let mut args = std::env::args().skip(1);
    let mut saw_id = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => {
                let raw = args.next().unwrap_or_default();
                backend = match BackendChoice::parse(&raw) {
                    Some(choice) => choice,
                    None => {
                        eprintln!("unknown backend {raw:?} (use \"vina\", \"qubo\", or \"auto\")");
                        std::process::exit(1);
                    }
                };
            }
            other if !saw_id => {
                id = other.to_string();
                saw_id = true;
            }
            other => {
                eprintln!("usage: dock_fragment [pdb_id] [--backend vina|qubo|auto] ({other:?}?)");
                std::process::exit(1);
            }
        }
    }
    let record = match fragment(&id) {
        Some(r) => r,
        None => {
            eprintln!("unknown PDB id {id:?}; pick one from Tables 1-3 (e.g. 3ckz, 4jpy, 2qbs)");
            std::process::exit(1);
        }
    };
    println!(
        "docking {} ({}) against its synthetic native ligand [backend: {backend}]",
        record.pdb_id, record.sequence
    );

    let mut config = PipelineConfig::fast();
    config.dock_backend = backend;
    let result = run_fragment(record, &config).expect("fault-free run");
    for run in &result.qdock.docking.runs {
        println!("\nrun seed {}:", run.seed);
        println!(
            "{:>4} {:>12} {:>10} {:>10}",
            "mode", "affinity", "rmsd l.b.", "rmsd u.b."
        );
        for (i, pose) in run.poses.iter().enumerate() {
            println!(
                "{:>4} {:>12.2} {:>10.2} {:>10.2}",
                i + 1,
                pose.affinity,
                pose.rmsd_lb,
                pose.rmsd_ub
            );
        }
    }
    println!(
        "\nserved by backend {:?} ({} fallback(s))",
        result.qdock.dock_backend, result.qdock.dock_fallbacks
    );
    println!(
        "mean best affinity over {} runs: {:.2} kcal/mol",
        result.qdock.docking.runs.len(),
        result.qdock.affinity()
    );
}
