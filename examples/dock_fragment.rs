//! Dock any QDockBank fragment by PDB id and print the Vina-style pose
//! table (affinity + lb/ub RMSD per pose, per seeded run).
//!
//! ```text
//! cargo run --release --example dock_fragment -- 4mo4
//! ```

use qdockbank::fragments::fragment;
use qdockbank::pipeline::{run_fragment, PipelineConfig};

fn main() {
    let id = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "4mo4".to_string());
    let record = match fragment(&id) {
        Some(r) => r,
        None => {
            eprintln!("unknown PDB id {id:?}; pick one from Tables 1-3 (e.g. 3ckz, 4jpy, 2qbs)");
            std::process::exit(1);
        }
    };
    println!(
        "docking {} ({}) against its synthetic native ligand",
        record.pdb_id, record.sequence
    );

    let result = run_fragment(record, &PipelineConfig::fast()).expect("fault-free run");
    for run in &result.qdock.docking.runs {
        println!("\nrun seed {}:", run.seed);
        println!(
            "{:>4} {:>12} {:>10} {:>10}",
            "mode", "affinity", "rmsd l.b.", "rmsd u.b."
        );
        for (i, pose) in run.poses.iter().enumerate() {
            println!(
                "{:>4} {:>12.2} {:>10.2} {:>10.2}",
                i + 1,
                pose.affinity,
                pose.rmsd_lb,
                pose.rmsd_ub
            );
        }
    }
    println!(
        "\nmean best affinity over {} runs: {:.2} kcal/mol",
        result.qdock.docking.runs.len(),
        result.qdock.affinity()
    );
}
