//! Quickstart: predict one ligand-binding fragment on the simulated
//! quantum stack and evaluate it exactly as the paper does.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qdockbank::fragments::fragment;
use qdockbank::pipeline::{run_fragment, PipelineConfig};

fn main() {
    // 3ckz: the 5-residue fragment VKDRS from Table 3.
    let record = fragment("3ckz").expect("3ckz is in the manifest");
    println!("fragment   : {} ({})", record.pdb_id, record.sequence);
    println!(
        "residues   : {}-{} ({} aa, group {})",
        record.residue_start,
        record.residue_end,
        record.len(),
        record.group().name()
    );

    let config = PipelineConfig::fast();
    let result = run_fragment(record, &config).expect("fault-free run");

    println!("\n-- quantum prediction --------------------------------");
    println!("logical qubits   : {}", result.quantum.logical_qubits);
    println!(
        "physical qubits  : {} (paper allocation)",
        result.quantum.physical_qubits
    );
    println!(
        "depth            : paper {} / measured {}",
        result.quantum.paper_depth, result.quantum.measured_depth
    );
    println!(
        "energy band      : {:.3} .. {:.3}",
        result.quantum.lowest_energy, result.quantum.highest_energy
    );
    println!("modelled exec    : {:.1} s", result.quantum.exec_time_s);

    println!("\n-- evaluation ----------------------------------------");
    println!(
        "Cα RMSD vs X-ray substitute : {:.2} Å",
        result.qdock.ca_rmsd
    );
    println!(
        "docking ({} runs)            : mean best affinity {:.2} kcal/mol",
        result.qdock.docking.runs.len(),
        result.qdock.affinity()
    );
    let best = &result.qdock.docking.runs[0].poses[0];
    println!(
        "top pose affinity           : {:.2} kcal/mol",
        best.affinity
    );
}
