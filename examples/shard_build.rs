//! Multi-process sharded build driver: real child processes, real leases.
//!
//! The chaos sweep (`tests/shard_chaos_sweep.rs`) proves the takeover
//! protocol under a simulated clock; this example exercises the same
//! machinery with actual OS processes on the wall clock. The driver
//! re-execs itself (`current_exe`) once per worker, all pointed at one
//! dataset root; the shard leases do the coordination — no pipes, no
//! shared memory, just the filesystem.
//!
//! ```text
//! # two worker processes over four shards, three fragments:
//! cargo run --release --example shard_build -- out_dir --workers 2 --shards 4
//! # same, with a flight recorder in every child (per-worker dumps land
//! # in out_dir/telemetry/trace-<worker>.json, ready for fleet_report):
//! cargo run --release --example shard_build -- out_dir --workers 2 --trace
//! # kill drill: worker 0 is killed mid-build (simulated crash at a
//! # filesystem op), then a fresh worker steals its shards and finishes:
//! cargo run --release --example shard_build -- out_dir --drill
//! ```
//!
//! Exit code 0 means every shard finished, finalize merged them, and the
//! dataset card was written. In `--drill` mode the driver additionally
//! asserts the merged `fleet_telemetry.json` still carries the killed
//! worker's last flushed snapshot (exit 4 if the victim vanished).

use qdb_store::{CrashVfs, StdVfs};
use qdb_telemetry::trace::{TraceConfig, TraceRecorder};
use qdb_telemetry::WallClock;
use qdb_vqe::fault::FaultPlan;
use qdockbank::fragments::{fragments_in, Group};
use qdockbank::pipeline::PipelineConfig;
use qdockbank::shard::{
    build_dataset_sharded_with, dataset_card_path, finalize_sharded, ShardConfig,
};
use qdockbank::supervisor::SupervisorConfig;
use std::path::PathBuf;
use std::process::Command;

/// Short TTL so a drill's takeover happens in about a second of real
/// time; production builds would use the `ShardConfig::new` default.
const TTL_MS: u64 = 1_500;

fn worker_config(num_shards: usize, worker: &str) -> ShardConfig {
    ShardConfig {
        lease_ttl_ms: TTL_MS,
        max_wait_rounds: 8,
        ..ShardConfig::new(num_shards, worker)
    }
}

/// Child-process role: build shards of `root` as one worker, then exit.
/// `QDB_SHARD_KILL_AFTER=<n>` arms a simulated crash at filesystem op
/// n+1 — the process exits 3 "mid-write", exactly like a kill -9 would
/// look to the other workers. `QDB_SHARD_TRACE=1` installs a flight
/// recorder whose dump the shard layer writes to
/// `telemetry/trace-<worker>.json` on the way out.
fn run_worker(root: &PathBuf, num_shards: usize, worker: &str, fragments: usize) -> i32 {
    if std::env::var("QDB_SHARD_TRACE").as_deref() == Ok("1") {
        qdb_telemetry::global().install_recorder(std::sync::Arc::new(TraceRecorder::new(
            TraceConfig {
                events_per_thread: 4_096,
            },
        )));
    }
    let mut records = fragments_in(Group::S);
    records.truncate(fragments);
    let config = PipelineConfig::fast();
    let sup = SupervisorConfig {
        max_attempts: 1,
        ..SupervisorConfig::fast()
    };
    let cfg = worker_config(num_shards, worker);
    let kill_after: Option<usize> = std::env::var("QDB_SHARD_KILL_AFTER")
        .ok()
        .and_then(|s| s.parse().ok());
    let result = match kill_after {
        Some(budget) => {
            let vfs = CrashVfs::new(budget);
            let r = build_dataset_sharded_with(
                root,
                &records,
                &config,
                &sup,
                &FaultPlan::none(),
                &cfg,
                &WallClock,
                &vfs,
            );
            if vfs.crashed() {
                eprintln!("worker {worker}: simulated crash at fs op {}", budget + 1);
                return 3;
            }
            r
        }
        None => build_dataset_sharded_with(
            root,
            &records,
            &config,
            &sup,
            &FaultPlan::none(),
            &cfg,
            &WallClock,
            &StdVfs,
        ),
    };
    match result {
        Ok(ws) => {
            println!(
                "worker {worker}: shards {:?} built, {} usable fragment(s), {} lost",
                ws.shards_built,
                ws.usable(),
                ws.shards_lost
            );
            0
        }
        Err(e) => {
            eprintln!("worker {worker}: {e}");
            1
        }
    }
}

fn spawn_worker(
    root: &PathBuf,
    num_shards: usize,
    worker: &str,
    fragments: usize,
    kill_after: Option<usize>,
    trace: bool,
) -> std::process::Child {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.arg("--worker")
        .arg(root)
        .arg(num_shards.to_string())
        .arg(worker)
        .arg(fragments.to_string());
    match kill_after {
        Some(n) => {
            cmd.env("QDB_SHARD_KILL_AFTER", n.to_string());
        }
        None => {
            cmd.env_remove("QDB_SHARD_KILL_AFTER");
        }
    }
    if trace {
        cmd.env("QDB_SHARD_TRACE", "1");
    } else {
        cmd.env_remove("QDB_SHARD_TRACE");
    }
    cmd.spawn().expect("spawn worker process")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Child role: shard_build --worker <root> <shards> <id> <fragments>
    if args.first().map(String::as_str) == Some("--worker") {
        let root = PathBuf::from(args.get(1).expect("worker root"));
        let num_shards: usize = args.get(2).and_then(|s| s.parse().ok()).expect("shards");
        let worker = args.get(3).expect("worker id").clone();
        let fragments: usize = args.get(4).and_then(|s| s.parse().ok()).expect("fragments");
        std::process::exit(run_worker(&root, num_shards, &worker, fragments));
    }

    // Driver role.
    let mut out = PathBuf::from("qdockbank_sharded");
    let mut workers = 2usize;
    let mut num_shards = 2usize;
    let mut fragments = 3usize;
    let mut drill = false;
    let mut trace = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => trace = true,
            "--workers" => {
                i += 1;
                workers = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(2);
            }
            "--shards" => {
                i += 1;
                num_shards = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(2);
            }
            "--fragments" => {
                i += 1;
                fragments = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(3);
            }
            "--drill" => drill = true,
            other => out = PathBuf::from(other),
        }
        i += 1;
    }
    let mut records = fragments_in(Group::S);
    records.truncate(fragments);

    if drill {
        // Phase 1: a doomed worker crashes partway through the build.
        println!("drill: spawning doomed worker w-doomed (killed mid-build)");
        let status = spawn_worker(&out, num_shards, "w-doomed", fragments, Some(40), trace)
            .wait()
            .expect("wait doomed worker");
        println!("drill: doomed worker exited with {status}");
        // Phase 2: a fresh worker joins, waits out the dead worker's
        // lease TTL, steals the shards, and finishes the build.
        println!("drill: spawning rescue worker w-rescue");
        let status = spawn_worker(&out, num_shards, "w-rescue", fragments, None, trace)
            .wait()
            .expect("wait rescue worker");
        if !status.success() {
            eprintln!("rescue worker failed: {status}");
            std::process::exit(1);
        }
    } else {
        println!(
            "spawning {workers} worker process(es) over {num_shards} shard(s), \
             {} fragment(s), root {}",
            records.len(),
            out.display()
        );
        let children: Vec<_> = (0..workers)
            .map(|w| spawn_worker(&out, num_shards, &format!("w{w}"), fragments, None, trace))
            .collect();
        let mut failed = false;
        for (w, mut child) in children.into_iter().enumerate() {
            let status = child.wait().expect("wait worker");
            if !status.success() {
                eprintln!("worker w{w} failed: {status}");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }

    // Every worker is done: finalize must succeed and write the card.
    match finalize_sharded(&out, &records, num_shards) {
        Ok(card) => {
            for p in &card.shards {
                println!(
                    "  shard {} — {} fragment report(s) by {} (token {})",
                    p.shard, p.fragments, p.owner, p.token
                );
            }
            println!(
                "finalized: {}/{} entries, card at {}",
                card.entries,
                card.expected,
                dataset_card_path(&out).display()
            );
            if card.entries != card.expected {
                eprintln!("missing entries: {:?}", card.missing);
                std::process::exit(2);
            }
            if let Some(fleet) = &card.fleet {
                println!(
                    "fleet: {} worker(s) {:?}, {} flush(es), {} fragment build(s)",
                    fleet.workers.len(),
                    fleet.workers,
                    fleet.flushes,
                    fleet.fragments
                );
            }
        }
        Err(e) => {
            eprintln!("finalize failed: {e}");
            std::process::exit(2);
        }
    }

    // Drill post-condition: the victim was killed mid-build, but its
    // journal flushes survived the crash — the merged fleet telemetry
    // must still carry its last flushed snapshot.
    if drill {
        match qdb_store::read_fleet_snapshot(&StdVfs, &out) {
            Ok(fleet) if fleet.workers.contains_key("w-doomed") => {
                println!(
                    "drill: victim w-doomed's last flushed snapshot is in the fleet merge \
                     ({} flush(es) survived)",
                    fleet.workers["w-doomed"].flushes
                );
            }
            Ok(fleet) => {
                eprintln!(
                    "drill: victim w-doomed missing from fleet telemetry (got {:?})",
                    fleet.workers.keys().collect::<Vec<_>>()
                );
                std::process::exit(4);
            }
            Err(e) => {
                eprintln!("drill: fleet telemetry unreadable after rescue: {e}");
                std::process::exit(4);
            }
        }
    }
}
