//! Build (a slice of) the QDockBank dataset on disk in the paper's §4.2
//! layout: `out/<S|M|L>/<pdb_id>/{structure.pdb, metadata.json,
//! docking.json, reference.pdb, ligand.pdb}`, under the fault-tolerant
//! supervisor (checkpoint/resume, retry with backoff, degradation,
//! `manifest.journal` write-ahead journaling, checksummed atomic writes).
//!
//! ```text
//! cargo run --release --example build_dataset -- S out_dir      # one group
//! cargo run --release --example build_dataset -- all out_dir    # all 55
//! # kill it, then pick up where it left off (completed entries validate
//! # and skip; the manifest records them as "checkpointed"):
//! cargo run --release --example build_dataset -- all out_dir --resume
//! # rehearse utility-level backend flakiness deterministically:
//! cargo run --release --example build_dataset -- S out_dir --inject-faults 7
//! # build only the first 2 fragments and dump a telemetry snapshot:
//! cargo run --release --example build_dataset -- --fragments 2 --telemetry out.json
//! # record a flight-recorder timeline (Chrome trace-event JSON, loadable
//! # in Perfetto; the lossless raw dump lands next to it as *.raw.json):
//! cargo run --release --example build_dataset -- --fragments 2 --trace trace.json
//! # offline integrity check: verify every checksum, quarantine anything
//! # corrupt, sweep stray tmp files AND stale lease files, report which
//! # shard/worker built each entry, exit non-zero unless all entries pass:
//! cargo run --release --example build_dataset -- S out_dir --fsck
//! # multi-process sharded build: start one worker per terminal/machine
//! # against the same root; leases coordinate who builds which shard,
//! # dead workers are stolen from, and the last worker finalizes the
//! # merge and writes dataset_card.json:
//! cargo run --release --example build_dataset -- S out_dir --shards 4 --worker-id w0
//! cargo run --release --example build_dataset -- S out_dir --shards 4 --worker-id w1
//! # compact an old root's journals down to their live residue:
//! cargo run --release --example build_dataset -- S out_dir --compact
//! ```

use qdb_vqe::fault::FaultPlan;
use qdockbank::fragments::{all_fragments, fragments_in, Group};
use qdockbank::fsck::{fsck_dataset, FsckStatus};
use qdockbank::pipeline::PipelineConfig;
use qdockbank::shard::{build_dataset_sharded, finalize_sharded, ShardConfig};
use qdockbank::supervisor::{
    build_dataset, compact_manifest, has_manifest, load_manifest, SupervisorConfig,
};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut resume = false;
    let mut fsck = false;
    let mut compact = false;
    let mut shards: Option<usize> = None;
    let mut worker_id: Option<String> = None;
    let mut fault_seed: Option<u64> = None;
    let mut fragment_cap: Option<usize> = None;
    let mut telemetry_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--resume" => resume = true,
            "--fsck" => fsck = true,
            "--compact" => compact = true,
            "--shards" => {
                i += 1;
                let n = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--shards needs a shard count");
                    std::process::exit(1);
                });
                shards = Some(n);
            }
            "--worker-id" => {
                i += 1;
                let id = args.get(i).unwrap_or_else(|| {
                    eprintln!("--worker-id needs a name");
                    std::process::exit(1);
                });
                worker_id = Some(id.clone());
            }
            "--inject-faults" => {
                i += 1;
                let seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--inject-faults needs a numeric seed");
                    std::process::exit(1);
                });
                fault_seed = Some(seed);
            }
            "--fragments" => {
                i += 1;
                let n = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--fragments needs a count");
                    std::process::exit(1);
                });
                fragment_cap = Some(n);
            }
            "--telemetry" => {
                i += 1;
                let path = args.get(i).unwrap_or_else(|| {
                    eprintln!("--telemetry needs an output path");
                    std::process::exit(1);
                });
                telemetry_path = Some(PathBuf::from(path));
            }
            "--trace" => {
                i += 1;
                let path = args.get(i).unwrap_or_else(|| {
                    eprintln!("--trace needs an output path");
                    std::process::exit(1);
                });
                trace_path = Some(PathBuf::from(path));
            }
            other => positional.push(other),
        }
        i += 1;
    }
    let which = positional.first().copied().unwrap_or("S");
    let out: PathBuf = positional
        .get(1)
        .copied()
        .unwrap_or("qdockbank_dataset")
        .into();
    let mut records = match which {
        "S" => fragments_in(Group::S),
        "M" => fragments_in(Group::M),
        "L" => fragments_in(Group::L),
        "all" => all_fragments(),
        other => {
            eprintln!("unknown selector {other:?}: use S, M, L, or all");
            std::process::exit(1);
        }
    };
    if let Some(cap) = fragment_cap {
        records.truncate(cap);
    }

    // --fsck: pure integrity scan, no building.
    if fsck {
        println!(
            "fsck: checking {} fragments under {}",
            records.len(),
            out.display()
        );
        let report = match fsck_dataset(&out, &records) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fsck aborted: {e}");
                std::process::exit(1);
            }
        };
        for entry in &report.entries {
            // Shard-ownership provenance from the journal stamps, when
            // the root was built sharded.
            let built_by = entry
                .built_by
                .as_ref()
                .map(|s| format!(" [shard {} by {}, token {}]", s.shard, s.owner, s.token))
                .unwrap_or_default();
            match &entry.status {
                FsckStatus::Ok => {
                    println!("  {}/{} — ok{built_by}", entry.group, entry.pdb_id);
                }
                FsckStatus::Missing => {
                    println!("  {}/{} — missing{built_by}", entry.group, entry.pdb_id);
                }
                FsckStatus::Corrupt {
                    reason,
                    quarantined,
                } => {
                    let dest = quarantined
                        .as_ref()
                        .map(|p| format!("; quarantined to {}", p.display()))
                        .unwrap_or_default();
                    println!(
                        "  {}/{} — corrupt ({reason}{dest}){built_by}",
                        entry.group, entry.pdb_id
                    );
                }
            }
        }
        for lease in &report.leases {
            let shard = lease
                .shard
                .map(|k| format!("shard {k}"))
                .unwrap_or_else(|| "unparseable".to_string());
            let owner = lease.owner.as_deref().unwrap_or("?");
            let fate = if lease.removed { "swept" } else { "live, kept" };
            println!("  lease {shard} — {} (owner {owner}; {fate})", lease.status);
        }
        println!(
            "fsck: {} ok, {} corrupt, {} missing, {} stray tmp file(s) swept, \
             {} stale lease file(s) swept",
            report.ok(),
            report.corrupt(),
            report.missing(),
            report.swept_tmp,
            report.leases_removed
        );
        std::process::exit(if report.clean() { 0 } else { 2 });
    }

    // --compact: squash append-only journals down to their live residue.
    if compact {
        let reports = match compact_manifest(&out) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("compaction aborted: {e}");
                std::process::exit(1);
            }
        };
        if reports.is_empty() {
            println!("compact: no journals under {}", out.display());
        }
        for r in &reports {
            println!(
                "  {} — {} event(s) → {}, {} bytes → {}",
                r.path.display(),
                r.events_before,
                r.events_after,
                r.bytes_before,
                r.bytes_after
            );
        }
        let reclaimed: usize = reports
            .iter()
            .map(|r| r.bytes_before.saturating_sub(r.bytes_after))
            .sum();
        println!(
            "compact: {} journal(s), {} byte(s) reclaimed",
            reports.len(),
            reclaimed
        );
        std::process::exit(0);
    }

    // A fresh (non-resume) build refuses to silently absorb prior state:
    // what's on disk might be from a different configuration. Sharded
    // workers are exempt — joining an in-progress root is their job.
    if !resume && shards.is_none() && has_manifest(&out) {
        eprintln!(
            "{} already holds a build journal; pass --resume to continue it \
             or choose a fresh output directory",
            out.display()
        );
        std::process::exit(1);
    }

    let plan = match fault_seed {
        Some(seed) => {
            println!("injecting rehearsed faults (seed {seed})");
            FaultPlan::flaky(seed)
        }
        None => FaultPlan::none(),
    };
    let config = PipelineConfig::fast();
    let sup = SupervisorConfig::default();
    if trace_path.is_some() {
        qdb_telemetry::global()
            .install_recorder(std::sync::Arc::new(qdb_telemetry::TraceRecorder::default()));
        println!("flight recorder armed (bounded per-thread rings)");
    }
    // --shards N --worker-id W: one worker of a multi-process build.
    // Start the same command in N terminals (or machines sharing the
    // filesystem); leases decide who builds what, crashed workers are
    // stolen from after their heartbeat deadline, and whichever worker
    // finds the build complete finalizes the merge + dataset card.
    if let Some(num_shards) = shards {
        let worker = worker_id.unwrap_or_else(|| format!("worker-{}", std::process::id()));
        let cfg = ShardConfig::new(num_shards, worker.as_str());
        println!(
            "sharded build: {} fragments over {num_shards} shard(s), worker {worker}",
            records.len()
        );
        let ws = match build_dataset_sharded(&out, &records, &config, &sup, &plan, &cfg) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("worker {worker} aborted: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "worker {worker}: shards {:?} built ({} lost mid-build) — {} completed, \
             {} degraded, {} checkpointed, {} failed",
            ws.shards_built,
            ws.shards_lost,
            ws.build.completed,
            ws.build.degraded,
            ws.build.checkpointed,
            ws.build.failed
        );
        match finalize_sharded(&out, &records, num_shards) {
            Ok(card) => {
                for p in &card.shards {
                    println!(
                        "  shard {} — {} fragment report(s) by {} (token {})",
                        p.shard, p.fragments, p.owner, p.token
                    );
                }
                println!(
                    "finalized: {}/{} entries ({} missing), affinity mean {:.2} kcal/mol, \
                     Cα-RMSD mean {:.2} Å — card at {}",
                    card.entries,
                    card.expected,
                    card.missing.len(),
                    card.affinity.mean,
                    card.ca_rmsd.mean,
                    qdockbank::shard::dataset_card_path(&out).display()
                );
            }
            Err(e) => {
                // Not an error for this worker: another worker still
                // holds unfinished shards. The last one to finish will
                // finalize successfully.
                println!("finalize deferred: {e}");
            }
        }
        export_observability(telemetry_path, trace_path);
        std::process::exit(if ws.build.failed > 0 { 2 } else { 0 });
    }

    println!(
        "building {} fragments into {}{}",
        records.len(),
        out.display(),
        if resume { " (resume)" } else { "" }
    );
    let summary = match build_dataset(&out, &records, &config, &sup, &plan) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("build aborted: {e}");
            std::process::exit(1);
        }
    };

    // Per-fragment outcome lines come from the journal of the run that
    // just finished.
    let manifest = load_manifest(&out).expect("journal just written");
    if let Some(run) = manifest.runs.last() {
        for f in &run.fragments {
            let detail = match f.status.as_str() {
                "checkpointed" => "already on disk".to_string(),
                _ => format!(
                    "{} attempt(s), {} ms",
                    f.attempts.len().max(1),
                    f.elapsed_ms
                ),
            };
            println!("  {}/{} — {} ({detail})", f.group, f.pdb_id, f.status);
        }
    }
    println!(
        "done: {} completed, {} degraded, {} checkpointed, {} failed — journal at {}",
        summary.completed,
        summary.degraded,
        summary.checkpointed,
        summary.failed,
        summary.manifest_path.display()
    );
    // A summary card for single-process builds too (no shard
    // provenance, but the same entry-count/distribution artifact).
    let card = qdockbank::shard::build_dataset_card_vfs(
        &qdb_store::StdVfs,
        &out,
        &records,
        Vec::new(),
        None,
    );
    match serde_json::to_string_pretty(&card) {
        Ok(rendered) => {
            let path = qdockbank::shard::dataset_card_path(&out);
            match qdb_store::write_atomic(&qdb_store::StdVfs, &path, rendered.as_bytes()) {
                Ok(_) => println!("dataset card → {}", path.display()),
                Err(e) => eprintln!("dataset card write failed: {e}"),
            }
        }
        Err(e) => eprintln!("dataset card render failed: {e}"),
    }
    export_observability(telemetry_path, trace_path);
    if summary.failed > 0 {
        std::process::exit(2);
    }
}

/// Dumps the telemetry snapshot and/or flight-recorder trace, if asked.
fn export_observability(telemetry_path: Option<PathBuf>, trace_path: Option<PathBuf>) {
    if let Some(path) = telemetry_path {
        let snap = qdb_telemetry::global().snapshot();
        if let Err(e) = qdb_telemetry::export::json::write_snapshot(&path, &snap) {
            eprintln!("telemetry snapshot failed: {e}");
            std::process::exit(1);
        }
        println!(
            "telemetry: {} counters, {} gauges, {} histograms → {}",
            snap.counters.len(),
            snap.gauges.len(),
            snap.histograms.len(),
            path.display()
        );
    }
    if let Some(path) = trace_path {
        let rec = qdb_telemetry::global()
            .take_recorder()
            .expect("recorder installed above");
        let dump = rec.dump();
        if let Err(e) = qdb_telemetry::export::chrome::write_chrome_trace(&path, &dump) {
            eprintln!("trace export failed: {e}");
            std::process::exit(1);
        }
        let raw_path = path.with_extension("raw.json");
        if let Err(e) = dump.write(&raw_path) {
            eprintln!("raw trace dump failed: {e}");
            std::process::exit(1);
        }
        println!(
            "trace: {} events on {} track(s), {} dropped → {} (raw: {})",
            dump.num_events(),
            dump.tracks.len(),
            dump.dropped(),
            path.display(),
            raw_path.display()
        );
    }
}
