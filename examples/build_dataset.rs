//! Build (a slice of) the QDockBank dataset on disk in the paper's §4.2
//! layout: `out/<S|M|L>/<pdb_id>/{structure.pdb, metadata.json,
//! docking.json, reference.pdb, ligand.pdb}`.
//!
//! ```text
//! cargo run --release --example build_dataset -- S out_dir     # one group
//! cargo run --release --example build_dataset -- all out_dir   # all 55
//! ```

use qdockbank::dataset::write_fragment_entry;
use qdockbank::fragments::{all_fragments, fragments_in, Group};
use qdockbank::pipeline::{run_fragment, PipelineConfig};
use std::path::PathBuf;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "S".to_string());
    let out: PathBuf = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "qdockbank_dataset".to_string())
        .into();
    let records = match which.as_str() {
        "S" => fragments_in(Group::S),
        "M" => fragments_in(Group::M),
        "L" => fragments_in(Group::L),
        "all" => all_fragments(),
        other => {
            eprintln!("unknown selector {other:?}: use S, M, L, or all");
            std::process::exit(1);
        }
    };
    let config = PipelineConfig::fast();
    println!(
        "building {} fragments into {}",
        records.len(),
        out.display()
    );
    for (i, record) in records.iter().enumerate() {
        let result = run_fragment(record, &config);
        let files = write_fragment_entry(&out, record, &result).expect("write dataset entry");
        println!(
            "[{}/{}] {} → {} (RMSD {:.2} Å, affinity {:.2} kcal/mol)",
            i + 1,
            records.len(),
            record.pdb_id,
            files.dir.display(),
            result.qdock.ca_rmsd,
            result.qdock.affinity()
        );
    }
    println!("done.");
}
