//! Build (a slice of) the QDockBank dataset on disk in the paper's §4.2
//! layout: `out/<S|M|L>/<pdb_id>/{structure.pdb, metadata.json,
//! docking.json, reference.pdb, ligand.pdb}`, under the fault-tolerant
//! supervisor (checkpoint/resume, retry with backoff, degradation,
//! `manifest.journal` write-ahead journaling, checksummed atomic writes).
//!
//! ```text
//! cargo run --release --example build_dataset -- S out_dir      # one group
//! cargo run --release --example build_dataset -- all out_dir    # all 55
//! # kill it, then pick up where it left off (completed entries validate
//! # and skip; the manifest records them as "checkpointed"):
//! cargo run --release --example build_dataset -- all out_dir --resume
//! # rehearse utility-level backend flakiness deterministically:
//! cargo run --release --example build_dataset -- S out_dir --inject-faults 7
//! # build only the first 2 fragments and dump a telemetry snapshot:
//! cargo run --release --example build_dataset -- --fragments 2 --telemetry out.json
//! # record a flight-recorder timeline (Chrome trace-event JSON, loadable
//! # in Perfetto; the lossless raw dump lands next to it as *.raw.json):
//! cargo run --release --example build_dataset -- --fragments 2 --trace trace.json
//! # offline integrity check: verify every checksum, quarantine anything
//! # corrupt, sweep stray tmp files, exit non-zero unless all entries pass:
//! cargo run --release --example build_dataset -- S out_dir --fsck
//! ```

use qdb_vqe::fault::FaultPlan;
use qdockbank::fragments::{all_fragments, fragments_in, Group};
use qdockbank::fsck::{fsck_dataset, FsckStatus};
use qdockbank::pipeline::PipelineConfig;
use qdockbank::supervisor::{build_dataset, has_manifest, load_manifest, SupervisorConfig};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut resume = false;
    let mut fsck = false;
    let mut fault_seed: Option<u64> = None;
    let mut fragment_cap: Option<usize> = None;
    let mut telemetry_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--resume" => resume = true,
            "--fsck" => fsck = true,
            "--inject-faults" => {
                i += 1;
                let seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--inject-faults needs a numeric seed");
                    std::process::exit(1);
                });
                fault_seed = Some(seed);
            }
            "--fragments" => {
                i += 1;
                let n = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--fragments needs a count");
                    std::process::exit(1);
                });
                fragment_cap = Some(n);
            }
            "--telemetry" => {
                i += 1;
                let path = args.get(i).unwrap_or_else(|| {
                    eprintln!("--telemetry needs an output path");
                    std::process::exit(1);
                });
                telemetry_path = Some(PathBuf::from(path));
            }
            "--trace" => {
                i += 1;
                let path = args.get(i).unwrap_or_else(|| {
                    eprintln!("--trace needs an output path");
                    std::process::exit(1);
                });
                trace_path = Some(PathBuf::from(path));
            }
            other => positional.push(other),
        }
        i += 1;
    }
    let which = positional.first().copied().unwrap_or("S");
    let out: PathBuf = positional
        .get(1)
        .copied()
        .unwrap_or("qdockbank_dataset")
        .into();
    let mut records = match which {
        "S" => fragments_in(Group::S),
        "M" => fragments_in(Group::M),
        "L" => fragments_in(Group::L),
        "all" => all_fragments(),
        other => {
            eprintln!("unknown selector {other:?}: use S, M, L, or all");
            std::process::exit(1);
        }
    };
    if let Some(cap) = fragment_cap {
        records.truncate(cap);
    }

    // --fsck: pure integrity scan, no building.
    if fsck {
        println!(
            "fsck: checking {} fragments under {}",
            records.len(),
            out.display()
        );
        let report = match fsck_dataset(&out, &records) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fsck aborted: {e}");
                std::process::exit(1);
            }
        };
        for entry in &report.entries {
            match &entry.status {
                FsckStatus::Ok => {
                    println!("  {}/{} — ok", entry.group, entry.pdb_id);
                }
                FsckStatus::Missing => {
                    println!("  {}/{} — missing", entry.group, entry.pdb_id);
                }
                FsckStatus::Corrupt {
                    reason,
                    quarantined,
                } => {
                    let dest = quarantined
                        .as_ref()
                        .map(|p| format!("; quarantined to {}", p.display()))
                        .unwrap_or_default();
                    println!(
                        "  {}/{} — corrupt ({reason}{dest})",
                        entry.group, entry.pdb_id
                    );
                }
            }
        }
        println!(
            "fsck: {} ok, {} corrupt, {} missing, {} stray tmp file(s) swept",
            report.ok(),
            report.corrupt(),
            report.missing(),
            report.swept_tmp
        );
        std::process::exit(if report.clean() { 0 } else { 2 });
    }

    // A fresh (non-resume) build refuses to silently absorb prior state:
    // what's on disk might be from a different configuration.
    if !resume && has_manifest(&out) {
        eprintln!(
            "{} already holds a build journal; pass --resume to continue it \
             or choose a fresh output directory",
            out.display()
        );
        std::process::exit(1);
    }

    let plan = match fault_seed {
        Some(seed) => {
            println!("injecting rehearsed faults (seed {seed})");
            FaultPlan::flaky(seed)
        }
        None => FaultPlan::none(),
    };
    let config = PipelineConfig::fast();
    let sup = SupervisorConfig::default();
    if trace_path.is_some() {
        qdb_telemetry::global()
            .install_recorder(std::sync::Arc::new(qdb_telemetry::TraceRecorder::default()));
        println!("flight recorder armed (bounded per-thread rings)");
    }
    println!(
        "building {} fragments into {}{}",
        records.len(),
        out.display(),
        if resume { " (resume)" } else { "" }
    );
    let summary = match build_dataset(&out, &records, &config, &sup, &plan) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("build aborted: {e}");
            std::process::exit(1);
        }
    };

    // Per-fragment outcome lines come from the journal of the run that
    // just finished.
    let manifest = load_manifest(&out).expect("journal just written");
    if let Some(run) = manifest.runs.last() {
        for f in &run.fragments {
            let detail = match f.status.as_str() {
                "checkpointed" => "already on disk".to_string(),
                _ => format!(
                    "{} attempt(s), {} ms",
                    f.attempts.len().max(1),
                    f.elapsed_ms
                ),
            };
            println!("  {}/{} — {} ({detail})", f.group, f.pdb_id, f.status);
        }
    }
    println!(
        "done: {} completed, {} degraded, {} checkpointed, {} failed — journal at {}",
        summary.completed,
        summary.degraded,
        summary.checkpointed,
        summary.failed,
        summary.manifest_path.display()
    );
    if let Some(path) = telemetry_path {
        let snap = qdb_telemetry::global().snapshot();
        if let Err(e) = qdb_telemetry::export::json::write_snapshot(&path, &snap) {
            eprintln!("telemetry snapshot failed: {e}");
            std::process::exit(1);
        }
        println!(
            "telemetry: {} counters, {} gauges, {} histograms → {}",
            snap.counters.len(),
            snap.gauges.len(),
            snap.histograms.len(),
            path.display()
        );
    }
    if let Some(path) = trace_path {
        let rec = qdb_telemetry::global()
            .take_recorder()
            .expect("recorder installed above");
        let dump = rec.dump();
        if let Err(e) = qdb_telemetry::export::chrome::write_chrome_trace(&path, &dump) {
            eprintln!("trace export failed: {e}");
            std::process::exit(1);
        }
        let raw_path = path.with_extension("raw.json");
        if let Err(e) = dump.write(&raw_path) {
            eprintln!("raw trace dump failed: {e}");
            std::process::exit(1);
        }
        println!(
            "trace: {} events on {} track(s), {} dropped → {} (raw: {})",
            dump.num_events(),
            dump.tracks.len(),
            dump.dropped(),
            path.display(),
            raw_path.display()
        );
    }
    if summary.failed > 0 {
        std::process::exit(2);
    }
}
