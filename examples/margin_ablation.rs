//! The §5.3 quantum-circuit margin strategy, reproduced end to end:
//! route the paper's ansatz on the Eagle-127 heavy-hex lattice with 0–10
//! ancilla qubits of margin and watch SWAP count and hardware depth drop.
//!
//! ```text
//! cargo run --release --example margin_ablation
//! ```

use qdb_quantum::ansatz::{efficient_su2, Entanglement};
use qdb_transpile::coupling::CouplingMap;
use qdb_transpile::margin::margin_sweep;

fn main() {
    let eagle = CouplingMap::eagle127();
    println!("routing EfficientSU2 circuits on the Eagle-127 heavy-hex lattice\n");
    for (qubits, reps) in [(10usize, 2usize), (14, 2), (18, 2), (22, 2)] {
        let circuit = efficient_su2(qubits, reps, Entanglement::Linear);
        println!(
            "{} logical qubits (reps {reps}, linear entanglement):",
            qubits
        );
        println!(
            "{:>7} {:>8} {:>7} {:>7} {:>9} {:>13}",
            "margin", "region", "swaps", "depth", "ECRs", "duration(us)"
        );
        for report in margin_sweep(&circuit, &eagle, 7, &[0, 2, 5, 7, 10]) {
            println!(
                "{:>7} {:>8} {:>7} {:>7} {:>9} {:>13.2}",
                report.margin,
                report.region_size,
                report.swap_count,
                report.hardware_depth,
                report.ecr_count,
                report.duration_ns / 1000.0
            );
        }
        println!();
    }
}
