//! Docking-engine integration across crates: receptors from the reference
//! generator and the peptide builder, ligands from the generator, docking
//! through grids and direct scoring.

use qdb_baselines::reference::generate_reference;
use qdb_dock::engine::{dock, dock_replicates, DockParams};
use qdb_dock::scoring::{affinity, intermolecular};
use qdb_dock::types::{retype_positions, type_ligand, type_receptor};
use qdb_lattice::sequence::ProteinSequence;
use qdb_mol::geometry::Vec3;
use qdb_mol::ligand::generate_ligand;

fn receptor(seq_str: &str, id: &str) -> qdb_mol::structure::Structure {
    let seq = ProteinSequence::parse(seq_str).unwrap();
    generate_reference(id, &seq, 1).structure
}

#[test]
fn docking_against_generated_receptor() {
    let rec = receptor("PWWERYQP", "1ppi");
    let mut lig = generate_ligand(77, 16);
    let c = lig.centroid();
    lig.translate(-c);

    let run = dock(&rec, &lig, &DockParams::fast(), 42);
    assert!(!run.poses.is_empty());
    assert!(run.best_affinity() < -1.0, "got {}", run.best_affinity());
    // All reported poses have coordinates near the box.
    for pose in &run.poses {
        for p in &pose.coords {
            assert!(p.norm() < 40.0, "pose atom escaped the search region");
        }
        assert!(pose.rmsd_lb <= pose.rmsd_ub + 1e-9);
    }
}

#[test]
fn reported_affinity_matches_rescoring() {
    // The engine's affinity must equal re-scoring the pose coordinates
    // with the published formula — no hidden state.
    let rec = receptor("IQFHFH", "3ibi");
    let mut lig = generate_ligand(5, 12);
    let c = lig.centroid();
    lig.translate(-c);

    let run = dock(&rec, &lig, &DockParams::fast(), 9);
    let receptor_atoms = type_receptor(&rec);
    let template = type_ligand(&lig);
    for pose in &run.poses {
        let atoms = retype_positions(&template, &pose.coords);
        let e_inter = intermolecular(&atoms, &receptor_atoms);
        let expect = affinity(e_inter, lig.num_rotatable());
        assert!(
            (pose.affinity - expect).abs() < 1e-9,
            "reported {} vs rescored {expect}",
            pose.affinity
        );
    }
}

#[test]
fn replicates_match_paper_protocol_shape() {
    let rec = receptor("VKDRS", "3ckz");
    let mut lig = generate_ligand(3, 10);
    let c = lig.centroid();
    lig.translate(-c);

    let mut params = DockParams::fast();
    params.poses_per_run = 10;
    let outcome = dock_replicates(&rec, &lig, &params, 7, 5);
    assert_eq!(outcome.runs.len(), 5);
    for run in &outcome.runs {
        assert!(run.poses.len() <= 10);
        // Ranked best-first.
        for w in run.poses.windows(2) {
            assert!(w[0].affinity <= w[1].affinity);
        }
    }
    // Aggregates ordered: best ≤ mean of bests.
    assert!(outcome.best_affinity() <= outcome.mean_best_affinity() + 1e-12);
    assert!(outcome.mean_rmsd_lb() <= outcome.mean_rmsd_ub() + 1e-9);
}

#[test]
fn bigger_pocket_contact_scores_better_than_clash() {
    // Sanity of the scoring physics through the whole stack: a ligand
    // centered in the receptor scores worse (clash) than one at surface
    // distance.
    let rec = receptor("LLDTGADDTV", "1zsf");
    let lig = generate_ligand(11, 14);
    let receptor_atoms = type_receptor(&rec);
    let template = type_ligand(&lig);

    let centered: Vec<Vec3> = lig.positions(); // dead center: clashes
    let offset: Vec<Vec3> = lig
        .positions()
        .iter()
        .map(|&p| p + Vec3::new(9.0, 0.0, 0.0))
        .collect();
    let e_clash = intermolecular(&retype_positions(&template, &centered), &receptor_atoms);
    let e_contact = intermolecular(&retype_positions(&template, &offset), &receptor_atoms);
    assert!(
        e_contact < e_clash,
        "surface contact ({e_contact}) should beat clash ({e_clash})"
    );
}
