//! Dataset writer integration: the §4.2 on-disk layout round-trips
//! through the PDB and JSON parsers, and the checksummed store catches
//! arbitrary single-byte corruption anywhere in an entry.

use proptest::prelude::*;
use qdockbank::dataset::{validate_entry, write_fragment_entry, DockingJson, MetadataJson};
use qdockbank::fragments::fragment;
use qdockbank::pipeline::{run_fragment, PipelineConfig};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qdb-int-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn dataset_entries_replayable_from_disk() {
    let root = tmp_root("replay");
    let config = PipelineConfig::fast();

    for id in ["3ckz", "3eax"] {
        let record = fragment(id).unwrap();
        let result = run_fragment(record, &config).expect("fault-free run");
        let files = write_fragment_entry(&root, record, &result).unwrap();

        // Group folder layout.
        assert!(files.dir.starts_with(root.join("S")));

        // The predicted structure parses and has the right residues.
        let text = std::fs::read_to_string(&files.structure_pdb).unwrap();
        let parsed = qdb_mol::pdb::parse_pdb(&text).unwrap();
        assert_eq!(parsed.len(), record.len());
        assert_eq!(parsed.residues[0].seq_num, record.residue_start);
        let expected_names: Vec<&str> = record
            .sequence()
            .residues()
            .iter()
            .map(|a| a.three_letter())
            .collect();
        let actual: Vec<String> = parsed.residues.iter().map(|r| r.name.clone()).collect();
        assert_eq!(actual, expected_names);

        // Metadata JSON parses and matches the manifest.
        let metadata: MetadataJson =
            serde_json::from_str(&std::fs::read_to_string(&files.metadata_json).unwrap()).unwrap();
        assert_eq!(metadata.pdb_id, id);
        assert_eq!(metadata.physical_qubits, record.paper.qubits);
        assert_eq!(metadata.paper_depth, record.paper.depth);
        assert!(metadata.ca_rmsd > 0.0);

        // Docking JSON parses; seeds are recorded and distinct.
        let docking: DockingJson =
            serde_json::from_str(&std::fs::read_to_string(&files.docking_json).unwrap()).unwrap();
        assert_eq!(docking.num_runs, config.docking_runs);
        let seeds: std::collections::HashSet<u64> = docking.runs.iter().map(|r| r.seed).collect();
        assert_eq!(seeds.len(), config.docking_runs);
        for run in &docking.runs {
            assert!(!run.poses.is_empty());
            assert!(run.poses[0].affinity <= run.poses.last().unwrap().affinity);
        }

        // Reference and ligand PDB files parse too.
        let reference =
            qdb_mol::pdb::parse_pdb(&std::fs::read_to_string(&files.reference_pdb).unwrap())
                .unwrap();
        assert_eq!(reference.len(), record.len());
        let ligand =
            qdb_mol::pdb::parse_pdb(&std::fs::read_to_string(&files.ligand_pdb).unwrap()).unwrap();
        assert_eq!(ligand.len(), 1);
        assert!(ligand.num_atoms() >= 8);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn rewriting_same_fragment_is_idempotent() {
    let root = tmp_root("idem");
    let record = fragment("4mo4").unwrap();
    let config = PipelineConfig::fast();
    let result = run_fragment(record, &config).expect("fault-free run");
    let first = write_fragment_entry(&root, record, &result).unwrap();
    let before = std::fs::read_to_string(&first.metadata_json).unwrap();
    let second = write_fragment_entry(&root, record, &result).unwrap();
    let after = std::fs::read_to_string(&second.metadata_json).unwrap();
    assert_eq!(first, second);
    assert_eq!(before, after);
    let _ = std::fs::remove_dir_all(&root);
}

/// Every file of one committed dataset entry, built once and reused by
/// the corruption property below (the pipeline run dominates the cost).
fn pristine_entry() -> &'static (PathBuf, Vec<(String, Vec<u8>)>) {
    static ENTRY: OnceLock<(PathBuf, Vec<(String, Vec<u8>)>)> = OnceLock::new();
    ENTRY.get_or_init(|| {
        let root = tmp_root("pristine");
        let record = fragment("3ckz").unwrap();
        let result = run_fragment(record, &PipelineConfig::fast()).expect("fault-free run");
        let files = write_fragment_entry(&root, record, &result).unwrap();
        let mut bytes = Vec::new();
        for entry in std::fs::read_dir(&files.dir).unwrap() {
            let path = entry.unwrap().path();
            bytes.push((
                path.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read(&path).unwrap(),
            ));
        }
        bytes.sort();
        (root, bytes)
    })
}

fn copy_entry(dst_root: &Path, files: &[(String, Vec<u8>)]) {
    let dir = dst_root.join("S/3ckz");
    std::fs::create_dir_all(&dir).unwrap();
    for (name, bytes) in files {
        std::fs::write(dir.join(name), bytes).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A single flipped byte anywhere in a committed entry — any of the
    /// five artifacts or the `CHECKSUMS` sidecar itself — is caught by
    /// `validate_entry`, regardless of whether the damaged file still
    /// parses.
    #[test]
    fn prop_any_single_byte_flip_is_detected(
        file_pick in any::<u64>(),
        byte_pick in any::<u64>(),
        flip_mask in 1u8..=255,
        case in 0u64..1_000_000,
    ) {
        let (_, files) = pristine_entry();
        let record = fragment("3ckz").unwrap();
        let root = tmp_root(&format!("flip-{case}"));
        copy_entry(&root, files);
        prop_assert!(validate_entry(&root, record).is_ok(), "pristine copy must pass");

        let (name, bytes) = &files[(file_pick % files.len() as u64) as usize];
        let mut damaged = bytes.clone();
        let idx = (byte_pick % damaged.len() as u64) as usize;
        damaged[idx] ^= flip_mask;
        std::fs::write(root.join("S/3ckz").join(name), &damaged).unwrap();

        let err = validate_entry(&root, record);
        prop_assert!(
            err.is_err(),
            "flip of byte {idx} (mask {flip_mask:#04x}) in {name} went undetected"
        );
        let kind = err.unwrap_err().kind();
        prop_assert!(
            kind.starts_with("store/"),
            "corruption must be caught by checksums, not decoders: {kind}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
