//! Dataset writer integration: the §4.2 on-disk layout round-trips
//! through the PDB and JSON parsers.

use qdockbank::dataset::{write_fragment_entry, DockingJson, MetadataJson};
use qdockbank::fragments::fragment;
use qdockbank::pipeline::{run_fragment, PipelineConfig};
use std::path::PathBuf;

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qdb-int-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn dataset_entries_replayable_from_disk() {
    let root = tmp_root("replay");
    let config = PipelineConfig::fast();

    for id in ["3ckz", "3eax"] {
        let record = fragment(id).unwrap();
        let result = run_fragment(record, &config).expect("fault-free run");
        let files = write_fragment_entry(&root, record, &result).unwrap();

        // Group folder layout.
        assert!(files.dir.starts_with(root.join("S")));

        // The predicted structure parses and has the right residues.
        let text = std::fs::read_to_string(&files.structure_pdb).unwrap();
        let parsed = qdb_mol::pdb::parse_pdb(&text).unwrap();
        assert_eq!(parsed.len(), record.len());
        assert_eq!(parsed.residues[0].seq_num, record.residue_start);
        let expected_names: Vec<&str> = record
            .sequence()
            .residues()
            .iter()
            .map(|a| a.three_letter())
            .collect();
        let actual: Vec<String> = parsed.residues.iter().map(|r| r.name.clone()).collect();
        assert_eq!(actual, expected_names);

        // Metadata JSON parses and matches the manifest.
        let metadata: MetadataJson =
            serde_json::from_str(&std::fs::read_to_string(&files.metadata_json).unwrap()).unwrap();
        assert_eq!(metadata.pdb_id, id);
        assert_eq!(metadata.physical_qubits, record.paper.qubits);
        assert_eq!(metadata.paper_depth, record.paper.depth);
        assert!(metadata.ca_rmsd > 0.0);

        // Docking JSON parses; seeds are recorded and distinct.
        let docking: DockingJson =
            serde_json::from_str(&std::fs::read_to_string(&files.docking_json).unwrap()).unwrap();
        assert_eq!(docking.num_runs, config.docking_runs);
        let seeds: std::collections::HashSet<u64> = docking.runs.iter().map(|r| r.seed).collect();
        assert_eq!(seeds.len(), config.docking_runs);
        for run in &docking.runs {
            assert!(!run.poses.is_empty());
            assert!(run.poses[0].affinity <= run.poses.last().unwrap().affinity);
        }

        // Reference and ligand PDB files parse too.
        let reference =
            qdb_mol::pdb::parse_pdb(&std::fs::read_to_string(&files.reference_pdb).unwrap())
                .unwrap();
        assert_eq!(reference.len(), record.len());
        let ligand =
            qdb_mol::pdb::parse_pdb(&std::fs::read_to_string(&files.ligand_pdb).unwrap()).unwrap();
        assert_eq!(ligand.len(), 1);
        assert!(ligand.num_atoms() >= 8);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn rewriting_same_fragment_is_idempotent() {
    let root = tmp_root("idem");
    let record = fragment("4mo4").unwrap();
    let config = PipelineConfig::fast();
    let result = run_fragment(record, &config).expect("fault-free run");
    let first = write_fragment_entry(&root, record, &result).unwrap();
    let before = std::fs::read_to_string(&first.metadata_json).unwrap();
    let second = write_fragment_entry(&root, record, &result).unwrap();
    let after = std::fs::read_to_string(&second.metadata_json).unwrap();
    assert_eq!(first, second);
    assert_eq!(before, after);
    let _ = std::fs::remove_dir_all(&root);
}
