//! Quantum-stack integration: lattice Hamiltonians through the simulator,
//! the VQE runner, and the transpiler agree with each other.

use qdb_lattice::hamiltonian::FoldingHamiltonian;
use qdb_lattice::sequence::ProteinSequence;
use qdb_quantum::prelude::*;
use qdb_transpile::basis::{is_native_circuit, lower_to_native};
use qdb_transpile::coupling::CouplingMap;
use qdb_transpile::layout::Layout;
use qdb_transpile::metrics::EagleProfile;
use qdb_transpile::routing::{respects_coupling, route};
use qdb_vqe::runner::{build_ansatz, run_vqe, VqeConfig};

#[test]
fn pauli_and_diagonal_hamiltonians_agree_under_ansatz_states() {
    let seq = ProteinSequence::parse("RYRDV").unwrap();
    let ham = FoldingHamiltonian::with_unit_scale(seq);
    let op = ham.to_sparse_pauli();
    let diag = ham.dense_diagonal();

    let ansatz = build_ansatz(&ham, 1);
    let params: Vec<f64> = (0..ansatz.num_params())
        .map(|i| 0.17 * (i as f64 - 2.0))
        .collect();
    let mut sv = Statevector::zero(ham.num_qubits());
    sv.apply_parametric(&ansatz, &params);

    let via_pauli = op.expectation(&sv);
    let via_diag = sv.expectation_diagonal(&diag);
    assert!(
        (via_pauli - via_diag).abs() < 1e-8,
        "pauli path {via_pauli} vs diagonal path {via_diag}"
    );
}

#[test]
fn vqe_energy_lower_bounded_by_exhaustive_ground_state() {
    let seq = ProteinSequence::parse("DGPHGM").unwrap();
    let ham = FoldingHamiltonian::with_unit_scale(seq);
    let (_, ground) = ham.ground_state();
    let out = run_vqe(&ham, &VqeConfig::fast(13)).expect("fault-free run");
    assert!(out.best_bitstring_energy >= ground - 1e-9);
    assert!(
        out.lowest_energy >= ground - 1e-9,
        "expectation can never beat the ground state"
    );
}

#[test]
fn fragment_ansatz_routes_onto_eagle_and_stays_equivalent() {
    // A fragment-sized logical circuit routed on the device graph keeps
    // its distribution (checked on a simulable sub-device).
    let seq = ProteinSequence::parse("VKDRS").unwrap(); // 4 qubits
    let ham = FoldingHamiltonian::with_unit_scale(seq);
    let ansatz = build_ansatz(&ham, 2);
    let params: Vec<f64> = (0..ansatz.num_params())
        .map(|i| 0.1 + 0.07 * i as f64)
        .collect();

    // Logical distribution.
    let mut ideal = Statevector::zero(4);
    ideal.apply_parametric(&ansatz, &params);
    let p_ideal = ideal.probabilities();

    // Route onto an 8-qubit line (a path inside the heavy-hex lattice).
    let line = CouplingMap::line(8);
    let routed = route(&ansatz, &line, Layout::trivial(4, 8));
    assert!(respects_coupling(&routed.circuit, &line));
    let native = lower_to_native(&routed.circuit);
    assert!(is_native_circuit(&native));

    let mut phys = Statevector::zero(8);
    phys.apply_parametric(&native, &params);
    let p_phys = phys.probabilities();

    // Marginalize onto the logical qubits via the final layout.
    let mut p_mapped = vec![0.0; 16];
    for (state, &p) in p_phys.iter().enumerate() {
        if p < 1e-15 {
            continue;
        }
        let mut logical = 0usize;
        for l in 0..4u32 {
            if state >> routed.final_layout.phys(l) & 1 == 1 {
                logical |= 1 << l;
            }
        }
        p_mapped[logical] += p;
    }
    for i in 0..16 {
        assert!(
            (p_ideal[i] - p_mapped[i]).abs() < 1e-9,
            "distribution mismatch at {i}"
        );
    }
}

#[test]
fn eagle_profile_covers_every_manifest_length() {
    for record in qdockbank::fragments::all_fragments() {
        let q = EagleProfile::physical_qubits(record.len());
        assert_eq!(q, record.paper.qubits, "{}", record.pdb_id);
        assert_eq!(
            EagleProfile::paper_depth(q),
            record.paper.depth,
            "{}",
            record.pdb_id
        );
        // Logical register always fits the simulator.
        assert!(2 * (record.len() - 3) <= 22);
    }
}

#[test]
fn sampling_under_noise_still_normalizes() {
    let seq = ProteinSequence::parse("NIGGF").unwrap();
    let ham = FoldingHamiltonian::with_unit_scale(seq);
    let cfg = VqeConfig {
        noise: NoiseModel::eagle_like(),
        trajectories: 2,
        ..VqeConfig::fast(5)
    };
    let out = run_vqe(&ham, &cfg).expect("fault-free run");
    assert_eq!(out.counts.shots(), cfg.shots);
    // Sampled conformations decode without panicking and the best one has
    // finite energy.
    let c = ham.conformation_of(out.best_bitstring);
    assert_eq!(c.len(), 5);
    assert!(out.best_bitstring_energy.is_finite());
}
