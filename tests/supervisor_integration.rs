//! Integration tests for the fault-tolerant dataset-build supervisor:
//! kill-and-resume checkpointing, deterministic recovery from injected
//! faults (byte-identical outputs), panic isolation, the degradation
//! ladder, and manifest journaling.

use proptest::prelude::*;
use qdb_telemetry::{Clock, ManualClock};
use qdb_vqe::fault::{FaultKind, FaultPlan};
use qdockbank::fragments::fragment;
use qdockbank::pipeline::PipelineConfig;
use qdockbank::supervisor::{
    build_dataset, build_dataset_with_clock, load_manifest, SupervisorConfig,
};
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qdb-supervise-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every artifact of one dataset entry, as raw bytes.
fn entry_bytes(root: &Path, group: &str, pdb_id: &str) -> Vec<(String, Vec<u8>)> {
    let dir = root.join(group).join(pdb_id);
    let mut out = Vec::new();
    for name in [
        "structure.pdb",
        "metadata.json",
        "docking.json",
        "reference.pdb",
        "ligand.pdb",
    ] {
        out.push((
            name.to_string(),
            std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("{name}: {e}")),
        ));
    }
    out
}

fn assert_entries_identical(a: &Path, b: &Path, group: &str, pdb_id: &str) {
    for ((name, bytes_a), (_, bytes_b)) in entry_bytes(a, group, pdb_id)
        .into_iter()
        .zip(entry_bytes(b, group, pdb_id))
    {
        assert!(
            bytes_a == bytes_b,
            "{group}/{pdb_id}/{name} differs between builds"
        );
    }
}

#[test]
fn kill_and_resume_recomputes_nothing_and_is_byte_identical() {
    let config = PipelineConfig::fast();
    let sup = SupervisorConfig::fast();
    let clean = FaultPlan::none();
    let records = [fragment("3ckz").unwrap(), fragment("3eax").unwrap()];
    // The whole scenario runs on virtual time: outputs must not depend on
    // the clock the supervisor is handed.
    let clock = ManualClock::new();

    // Reference: both fragments in one uninterrupted build.
    let full = tmpdir("resume-full");
    build_dataset_with_clock(&full, &records, &config, &sup, &clean, &clock).unwrap();

    // "Killed" build: only the first fragment got done before the kill.
    let partial = tmpdir("resume-partial");
    build_dataset_with_clock(&partial, &records[..1], &config, &sup, &clean, &clock).unwrap();
    assert!(partial.join("S/3ckz").is_dir());
    assert!(!partial.join("S/3eax").is_dir());

    // Resume with the full fragment list.
    let summary =
        build_dataset_with_clock(&partial, &records, &config, &sup, &clean, &clock).unwrap();
    assert_eq!(summary.checkpointed, 1, "3ckz must be reused, not rebuilt");
    assert_eq!(summary.completed, 1, "3eax is the only fragment computed");

    // The journal proves zero recomputation: the resumed run spent zero
    // attempts on the checkpointed fragment.
    let manifest = load_manifest(&partial).unwrap();
    assert_eq!(manifest.runs.len(), 2);
    assert!(manifest.runs[1].resumed);
    let resumed_run = &manifest.runs[1];
    let ckz = resumed_run
        .fragments
        .iter()
        .find(|f| f.pdb_id == "3ckz")
        .unwrap();
    assert_eq!(ckz.status, "checkpointed");
    assert!(ckz.attempts.is_empty());
    let eax = resumed_run
        .fragments
        .iter()
        .find(|f| f.pdb_id == "3eax")
        .unwrap();
    assert_eq!(eax.status, "completed");
    assert_eq!(eax.attempts.len(), 1);

    // Interrupted-then-resumed output is byte-identical to one clean pass.
    assert_entries_identical(&full, &partial, "S", "3ckz");
    assert_entries_identical(&full, &partial, "S", "3eax");

    let _ = std::fs::remove_dir_all(&full);
    let _ = std::fs::remove_dir_all(&partial);
}

#[test]
fn corrupt_checkpoint_is_rejected_and_rebuilt() {
    let config = PipelineConfig::fast();
    let sup = SupervisorConfig::fast();
    let clean = FaultPlan::none();
    let records = [fragment("3ckz").unwrap()];

    let root = tmpdir("torn");
    build_dataset(&root, &records, &config, &sup, &clean).unwrap();
    let reference = entry_bytes(&root, "S", "3ckz");

    // Simulate a torn write from a kill mid-entry.
    std::fs::write(root.join("S/3ckz/metadata.json"), b"{ torn").unwrap();

    let summary = build_dataset(&root, &records, &config, &sup, &clean).unwrap();
    assert_eq!(summary.checkpointed, 0, "torn entry must not be trusted");
    assert_eq!(summary.completed, 1);
    let manifest = load_manifest(&root).unwrap();
    let frag = &manifest.runs[1].fragments[0];
    assert_eq!(frag.status, "completed");
    let note = frag.note.as_deref().unwrap();
    assert!(note.contains("checkpoint rejected"), "note: {note:?}");
    // The torn entry was preserved as evidence, not deleted.
    assert!(note.contains("quarantined"), "note: {note:?}");
    let qroot = root.join(qdb_store::QUARANTINE_DIR);
    assert!(qroot.is_dir(), "quarantine dir missing");
    let slot = std::fs::read_dir(&qroot)
        .unwrap()
        .next()
        .unwrap()
        .unwrap()
        .path();
    assert_eq!(
        std::fs::read(slot.join("metadata.json")).unwrap(),
        b"{ torn"
    );
    assert!(slot.join("REASON.txt").exists());
    // The rebuilt entry matches the original bytes (determinism).
    assert_eq!(entry_bytes(&root, "S", "3ckz"), reference);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn legacy_manifest_root_migrates_onto_the_journal_and_still_checkpoints() {
    let config = PipelineConfig::fast();
    let sup = SupervisorConfig::fast();
    let clean = FaultPlan::none();
    let records = [fragment("3ckz").unwrap()];

    let root = tmpdir("legacy");
    build_dataset(&root, &records, &config, &sup, &clean).unwrap();

    // Rewrite history: replace the journal with a pre-journal
    // `manifest.json`, as an old dataset root would carry.
    let manifest = load_manifest(&root).unwrap();
    let legacy_runs: Vec<String> = manifest
        .runs
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect();
    std::fs::write(
        root.join("manifest.json"),
        format!("{{\"runs\": [{}]}}", legacy_runs.join(", ")),
    )
    .unwrap();
    std::fs::remove_file(root.join("manifest.journal")).unwrap();

    // Read-only load sees the legacy state without touching the disk.
    let loaded = load_manifest(&root).unwrap();
    assert_eq!(loaded.runs.len(), 1);
    assert!(!root.join("manifest.journal").exists());

    // A resumed build migrates the legacy runs onto the journal and still
    // reuses the on-disk entry.
    let summary = build_dataset(&root, &records, &config, &sup, &clean).unwrap();
    assert_eq!(summary.checkpointed, 1);
    assert!(root.join("manifest.journal").exists());
    let migrated = load_manifest(&root).unwrap();
    assert_eq!(migrated.runs.len(), 2, "legacy run + resumed run");
    assert!(migrated.runs[1].resumed);
    assert!(
        migrated
            .notes
            .iter()
            .any(|n| n.starts_with("manifest-migrated:")),
        "notes: {:?}",
        migrated.notes
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn transiently_faulted_build_matches_fault_free_byte_for_byte() {
    let config = PipelineConfig::fast();
    // Substantial backoffs — affordable because they are virtual: the
    // ManualClock advances instead of sleeping, so the journal shows real
    // exponential delays while the test never waits.
    let sup = SupervisorConfig {
        base_backoff_ms: 500,
        ..SupervisorConfig::fast()
    };
    let records = [
        fragment("3ckz").unwrap(),
        fragment("3eax").unwrap(),
        fragment("4mo4").unwrap(),
    ];
    let clock = ManualClock::new();

    let clean_root = tmpdir("dr-clean");
    build_dataset_with_clock(
        &clean_root,
        &records,
        &config,
        &sup,
        &FaultPlan::none(),
        &clock,
    )
    .unwrap();

    // Three fragments, three transient fault classes.
    let plan = FaultPlan::none()
        .with_target("3ckz", FaultKind::Reject, 2)
        .with_target("3eax", FaultKind::Shortfall, 1)
        .with_target("4mo4", FaultKind::Drift, 1);
    let faulted_root = tmpdir("dr-faulted");
    let wall_start = std::time::Instant::now();
    let summary =
        build_dataset_with_clock(&faulted_root, &records, &config, &sup, &plan, &clock).unwrap();
    assert_eq!(summary.completed, 3);
    assert_eq!(summary.failed + summary.degraded, 0);
    // 4 retries × ≥500 ms of journaled backoff never actually slept.
    assert!(
        clock.now_ns() >= 2 * 500 * 1_000_000,
        "virtual time must have accumulated the backoffs"
    );
    assert!(
        wall_start.elapsed() < std::time::Duration::from_secs(60),
        "faulted build must not sleep through its backoffs for real"
    );

    // Byte-identical recovery: transient retries reuse the canonical seed.
    for r in &records {
        assert_entries_identical(&clean_root, &faulted_root, "S", r.pdb_id);
    }

    // The journal records every attempt with its cause and backoff.
    let manifest = load_manifest(&faulted_root).unwrap();
    let frags = &manifest.runs[0].fragments;
    let by_id = |id: &str| frags.iter().find(|f| f.pdb_id == id).unwrap();
    let ckz = by_id("3ckz");
    assert_eq!(ckz.attempts.len(), 3);
    assert_eq!(ckz.attempts[0].cause.as_deref(), Some("vqe/job-rejected"));
    assert_eq!(ckz.attempts[1].cause.as_deref(), Some("vqe/job-rejected"));
    assert!(ckz.attempts[0].transient && ckz.attempts[1].transient);
    // Decorrelated jitter: each delay is uniform in
    // [base, min(cap, 3 × previous)] — bounded, not monotone.
    let (base, cap) = (sup.base_backoff_ms, sup.max_backoff_ms);
    let first = ckz.attempts[0].backoff_ms;
    let second = ckz.attempts[1].backoff_ms;
    assert!((base..=cap.min(3 * base)).contains(&first), "{first}");
    assert!((base..=cap.min(3 * first)).contains(&second), "{second}");
    assert_eq!(ckz.attempts[2].cause, None);
    assert_eq!(
        by_id("3eax").attempts[0].cause.as_deref(),
        Some("vqe/shot-shortfall")
    );
    assert_eq!(
        by_id("4mo4").attempts[0].cause.as_deref(),
        Some("vqe/calibration-drift")
    );
    // No attempt left the canonical configuration.
    for f in frags {
        for a in &f.attempts {
            assert!(!a.seed_shifted);
            assert!(a.degradation.is_none());
            assert_eq!(a.engine, "compiled");
        }
    }

    let _ = std::fs::remove_dir_all(&clean_root);
    let _ = std::fs::remove_dir_all(&faulted_root);
}

#[test]
fn panicking_fragment_is_isolated_and_journaled() {
    let config = PipelineConfig::fast();
    let sup = SupervisorConfig {
        max_attempts: 2,
        ..SupervisorConfig::fast()
    };
    // 3eax panics on every attempt; its neighbours must be untouched.
    let plan = FaultPlan::none().with_target("3eax", FaultKind::Panic, usize::MAX);
    let records = [fragment("3ckz").unwrap(), fragment("3eax").unwrap()];
    let root = tmpdir("panic");
    let summary = build_dataset(&root, &records, &config, &sup, &plan).unwrap();
    assert_eq!(summary.completed, 1);
    assert_eq!(summary.failed, 1);
    assert!(root.join("S/3ckz").is_dir());
    assert!(!root.join("S/3eax").is_dir());

    let manifest = load_manifest(&root).unwrap();
    let bad = manifest.runs[0]
        .fragments
        .iter()
        .find(|f| f.pdb_id == "3eax")
        .unwrap();
    assert_eq!(bad.status, "failed");
    assert_eq!(bad.attempts.len(), 2);
    for a in &bad.attempts {
        assert_eq!(a.cause.as_deref(), Some("panic"));
        assert!(!a.transient);
    }
    assert!(bad.note.as_deref().unwrap().contains("attempts failed"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn persistent_deterministic_fault_walks_the_degradation_ladder() {
    let config = PipelineConfig::fast();
    let sup = SupervisorConfig::fast();
    // NaN on attempts 0–2: survives the plain retry and the seed shift,
    // clears only once the ladder reaches the Direct engine.
    let plan = FaultPlan::none().with_target("3ckz", FaultKind::NanEnergy, 3);
    let records = [fragment("3ckz").unwrap()];
    let root = tmpdir("ladder");
    let summary = build_dataset(&root, &records, &config, &sup, &plan).unwrap();
    assert_eq!(summary.degraded, 1);
    assert_eq!(summary.failed, 0);

    let manifest = load_manifest(&root).unwrap();
    let frag = &manifest.runs[0].fragments[0];
    assert_eq!(frag.status, "completed-degraded");
    assert_eq!(frag.attempts.len(), 4);
    let degradations: Vec<Option<&str>> = frag
        .attempts
        .iter()
        .map(|a| a.degradation.as_deref())
        .collect();
    assert_eq!(
        degradations,
        vec![None, None, Some("seed-shift"), Some("engine-direct")],
        "canonical, plain retry, seed shift, then engine downgrade"
    );
    for a in &frag.attempts[..3] {
        assert_eq!(a.cause.as_deref(), Some("vqe/non-finite-energy"));
        assert!(!a.transient);
    }
    assert_eq!(frag.attempts[3].cause, None);
    assert_eq!(frag.attempts[3].engine, "direct");
    // The degraded entry still validates: resuming checkpoints it.
    let resume = build_dataset(&root, &records, &config, &sup, &FaultPlan::none()).unwrap();
    assert_eq!(resume.checkpointed, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn fragment_deadline_cuts_off_on_virtual_time() {
    let config = PipelineConfig::fast();
    // Backoff (800 ms) alone blows the 500 ms deadline: the second attempt
    // boundary must observe elapsed > deadline purely from virtual sleeps.
    let sup = SupervisorConfig {
        max_attempts: 5,
        base_backoff_ms: 800,
        fragment_deadline_ms: Some(500),
        ..SupervisorConfig::fast()
    };
    let plan = FaultPlan::none().with_target("3ckz", FaultKind::Reject, usize::MAX);
    let records = [fragment("3ckz").unwrap()];
    let root = tmpdir("deadline");
    let clock = ManualClock::new();
    let summary = build_dataset_with_clock(&root, &records, &config, &sup, &plan, &clock).unwrap();
    assert_eq!(summary.failed, 1);
    assert_eq!(summary.usable(), 0);

    let manifest = load_manifest(&root).unwrap();
    let frag = &manifest.runs[0].fragments[0];
    assert_eq!(frag.status, "failed");
    assert_eq!(
        frag.attempts.len(),
        1,
        "the deadline fires at the second attempt boundary"
    );
    assert!(
        frag.note.as_deref().unwrap().contains("deadline"),
        "note: {:?}",
        frag.note
    );
    // The journaled elapsed time is virtual-clock time, not wall time.
    assert!(frag.elapsed_ms >= 800, "elapsed_ms: {}", frag.elapsed_ms);
    let _ = std::fs::remove_dir_all(&root);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Any schedule of fewer-than-budget transient faults recovers to the
    /// exact fault-free bytes: the retry path must not perturb seeds.
    #[test]
    fn prop_transient_faults_recover_byte_identically(
        kind_sel in 0usize..3,
        faulted_attempts in 1usize..3,
    ) {
        let kind = [FaultKind::Reject, FaultKind::Shortfall, FaultKind::Drift][kind_sel];
        let config = PipelineConfig::fast();
        let sup = SupervisorConfig::fast();
        let records = [fragment("3ckz").unwrap()];

        let clean_root = tmpdir(&format!("prop-clean-{kind_sel}-{faulted_attempts}"));
        build_dataset(&clean_root, &records, &config, &sup, &FaultPlan::none()).unwrap();

        let plan = FaultPlan::none().with_target("3ckz", kind, faulted_attempts);
        let faulted_root = tmpdir(&format!("prop-faulted-{kind_sel}-{faulted_attempts}"));
        let summary = build_dataset(&faulted_root, &records, &config, &sup, &plan).unwrap();
        prop_assert_eq!(summary.completed, 1);

        let manifest = load_manifest(&faulted_root).unwrap();
        let frag = &manifest.runs[0].fragments[0];
        prop_assert_eq!(frag.attempts.len(), faulted_attempts + 1);
        for a in &frag.attempts[..faulted_attempts] {
            prop_assert!(a.transient);
            prop_assert!(a.cause.is_some());
        }

        let a = entry_bytes(&clean_root, "S", "3ckz");
        let b = entry_bytes(&faulted_root, "S", "3ckz");
        prop_assert_eq!(a, b);

        let _ = std::fs::remove_dir_all(&clean_root);
        let _ = std::fs::remove_dir_all(&faulted_root);
    }
}
