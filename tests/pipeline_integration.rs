//! End-to-end pipeline integration: manifest → reference → VQE → atomic
//! reconstruction → docking → evaluation, across crate boundaries.

use qdb_baselines::alphafold::AfModel;
use qdockbank::evaluation::{compare_fragments, win_rates};
use qdockbank::fragments::{fragment, Group};
use qdockbank::pipeline::{run_fragment, PipelineConfig};

#[test]
fn small_fragment_end_to_end() {
    let record = fragment("3eax").expect("manifest entry");
    let config = PipelineConfig::fast();
    let result = run_fragment(record, &config).expect("fault-free run");

    // Structure integrity: 5 residues, full backbone, centered.
    assert_eq!(result.qdock.structure.len(), 5);
    assert!(result.qdock.structure.centroid().norm() < 1e-6);
    for residue in &result.qdock.structure.residues {
        for atom in ["N", "CA", "C", "O"] {
            assert!(residue.atom(atom).is_some(), "missing backbone atom {atom}");
        }
    }
    // The trace respects lattice geometry (3.8 Å virtual bonds).
    for w in result.qdock.trace.windows(2) {
        assert!((w[0].distance(w[1]) - 3.8).abs() < 1e-6);
    }
    // Metrics are in physically sensible bands.
    assert!(result.qdock.ca_rmsd > 0.0 && result.qdock.ca_rmsd < 10.0);
    assert!(result.qdock.affinity() < 0.0, "ligand should bind");
    assert!(
        result.qdock.affinity() > -15.0,
        "affinity should be Vina-scale"
    );
}

#[test]
fn quantum_metadata_consistent_with_manifest() {
    let record = fragment("4mo4").expect("manifest entry");
    let result = run_fragment(record, &PipelineConfig::fast()).expect("fault-free run");
    // The paper-side numbers must match the manifest row exactly.
    assert_eq!(result.quantum.physical_qubits, record.paper.qubits);
    assert_eq!(result.quantum.paper_depth, record.paper.depth);
    // Logical register: 2(N-3).
    assert_eq!(result.quantum.logical_qubits, 2 * (record.len() - 3));
    // Measured transpile results exist and the routed depth exceeds the
    // logical circuit depth (routing + lowering overhead).
    assert!(result.quantum.measured_depth >= 10);
    // Energy band ordered; modelled execution in the paper's magnitude
    // range (thousands of seconds).
    assert!(result.quantum.lowest_energy < result.quantum.highest_energy);
    assert!(result.quantum.exec_time_s > 100.0);
    assert!(result.quantum.exec_time_s < 1e7);
}

#[test]
fn comparison_and_win_rates_machinery() {
    let records = vec![fragment("3ckz").unwrap(), fragment("6czf").unwrap()];
    let config = PipelineConfig::fast();
    let comparisons = compare_fragments(&records, &config).expect("fault-free run");
    assert_eq!(comparisons.len(), 2);

    for c in &comparisons {
        // All three predictors produce valid evaluations on the same
        // reference and ligand.
        for eval in [&c.qdock.qdock, &c.af2, &c.af3] {
            assert!(eval.ca_rmsd.is_finite() && eval.ca_rmsd > 0.0);
            assert!(eval.affinity() < 0.0);
            assert_eq!(eval.trace.len(), c.record.len());
        }
    }

    let rates = win_rates(&comparisons, AfModel::Af2);
    assert_eq!(rates.overall.total, 2);
    assert!(rates.overall.rmsd_wins <= 2);
    assert!(rates.per_group.contains_key(&Group::S));
}

#[test]
fn pipeline_fully_deterministic_across_calls() {
    let record = fragment("3ckz").unwrap();
    let config = PipelineConfig::fast();
    let a = run_fragment(record, &config).expect("fault-free run");
    let b = run_fragment(record, &config).expect("fault-free run");
    assert_eq!(a.qdock.trace, b.qdock.trace);
    assert_eq!(a.qdock.ca_rmsd, b.qdock.ca_rmsd);
    assert_eq!(a.qdock.affinity(), b.qdock.affinity());
    assert_eq!(a.quantum.lowest_energy, b.quantum.lowest_energy);
    assert_eq!(a.quantum.exec_time_s, b.quantum.exec_time_s);
}
