//! Deterministic crash-point sweep over a real dataset build.
//!
//! The harness builds a 2-fragment dataset through a [`CrashVfs`] that
//! kills the "process" at the N-th filesystem operation, for a sweep of
//! N covering the whole build — every entry write, fsync, rename,
//! journal append, and checkpoint-validation read. After each simulated
//! crash, a plain [`StdVfs`] build resumes against the same root and
//! must converge to a dataset byte-identical to an uninterrupted
//! reference build, with every entry checksum-valid and the journal
//! replayable. That is the store's invariant, demonstrated end-to-end:
//! a crash can cost work, never integrity.
//!
//! By default the sweep samples ~12 evenly-spaced crash points so the
//! test stays CI-cheap; set `QDB_CRASH_SWEEP=full` to sweep every
//! operation (the nightly/CI release configuration).

use qdb_store::{CrashVfs, StdVfs};
use qdb_telemetry::ManualClock;
use qdb_vqe::fault::FaultPlan;
use qdockbank::dataset::{validate_entry, ENTRY_FILES};
use qdockbank::fragments::fragment;
use qdockbank::fsck::fsck_dataset;
use qdockbank::pipeline::PipelineConfig;
use qdockbank::supervisor::{build_dataset_with, load_manifest, SupervisorConfig};
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qdb-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn entry_bytes(root: &Path, group: &str, pdb_id: &str) -> Vec<(String, Vec<u8>)> {
    let dir = root.join(group).join(pdb_id);
    ENTRY_FILES
        .iter()
        .map(|name| {
            (
                name.to_string(),
                std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("{name}: {e}")),
            )
        })
        .collect()
}

#[test]
fn every_crash_point_recovers_to_the_reference_dataset() {
    let config = PipelineConfig {
        docking_runs: 2,
        ..PipelineConfig::fast()
    };
    // One attempt per fragment: a dead vfs must not be retried against —
    // the process-model is gone; recovery belongs to the *next* build.
    let sup = SupervisorConfig {
        max_attempts: 1,
        ..SupervisorConfig::fast()
    };
    let clean = FaultPlan::none();
    let records = [fragment("3ckz").unwrap(), fragment("3eax").unwrap()];
    let clock = ManualClock::new();

    // Uninterrupted reference build.
    let ref_root = tmpdir("reference");
    let ref_summary =
        build_dataset_with(&ref_root, &records, &config, &sup, &clean, &clock, &StdVfs).unwrap();
    assert_eq!(ref_summary.usable(), 2);
    let reference: Vec<_> = records
        .iter()
        .map(|r| entry_bytes(&ref_root, "S", r.pdb_id))
        .collect();

    // Probe: how many filesystem operations does one full build spend?
    let total = {
        let root = tmpdir("probe");
        let vfs = CrashVfs::new(usize::MAX);
        build_dataset_with(&root, &records, &config, &sup, &clean, &clock, &vfs).unwrap();
        let n = vfs.ops_used();
        let _ = std::fs::remove_dir_all(&root);
        n
    };
    assert!(total > 20, "a 2-fragment build must span many fs ops");

    // Crash points: every op under QDB_CRASH_SWEEP=full, a ~12-point
    // stride (always including the first and last op) otherwise.
    let full = std::env::var("QDB_CRASH_SWEEP").as_deref() == Ok("full");
    let points: Vec<usize> = if full {
        (0..total).collect()
    } else {
        let stride = (total / 12).max(1);
        let mut pts: Vec<usize> = (0..total).step_by(stride).collect();
        if *pts.last().unwrap() != total - 1 {
            pts.push(total - 1);
        }
        pts
    };
    println!("crash sweep: {} of {total} filesystem ops", points.len());

    for &budget in &points {
        let root = tmpdir(&format!("kill-{budget}"));

        // The doomed build: dies at filesystem op `budget + 1`.
        let vfs = CrashVfs::new(budget);
        let crashed = build_dataset_with(&root, &records, &config, &sup, &clean, &clock, &vfs);
        assert!(vfs.crashed(), "budget {budget} < {total} must crash");
        // Whether the doomed run reported Err or limped to a summary with
        // failures is incidental; what matters is the disk it left behind.
        drop(crashed);

        // Recovery: a fresh process resumes on the real filesystem.
        let summary = build_dataset_with(&root, &records, &config, &sup, &clean, &clock, &StdVfs)
            .unwrap_or_else(|e| panic!("resume after crash at op {budget} failed: {e}"));
        assert_eq!(
            summary.failed, 0,
            "crash at op {budget}: resume left failures"
        );
        assert_eq!(summary.usable(), 2, "crash at op {budget}: entries missing");

        for (record, reference) in records.iter().zip(&reference) {
            validate_entry(&root, record)
                .unwrap_or_else(|e| panic!("crash at op {budget}: {} invalid: {e}", record.pdb_id));
            assert_eq!(
                &entry_bytes(&root, "S", record.pdb_id),
                reference,
                "crash at op {budget}: {} differs from the reference build",
                record.pdb_id
            );
        }

        // The journal survived the crash too: it replays, and the final
        // run it records is the successful resume.
        let manifest = load_manifest(&root)
            .unwrap_or_else(|e| panic!("crash at op {budget}: journal unreadable: {e}"));
        assert!(
            !manifest.runs.is_empty(),
            "crash at op {budget}: resume journaled no run"
        );
        let last = manifest.runs.last().unwrap();
        assert_eq!(
            last.fragments.len(),
            2,
            "crash at op {budget}: resumed run journaled {} fragment(s)",
            last.fragments.len()
        );

        // And fsck agrees the recovered dataset is clean.
        let report = fsck_dataset(&root, &records).unwrap();
        assert!(
            report.clean(),
            "crash at op {budget}: fsck found {} corrupt / {} missing",
            report.corrupt(),
            report.missing()
        );

        let _ = std::fs::remove_dir_all(&root);
    }
    let _ = std::fs::remove_dir_all(&ref_root);
}
