//! Deterministic chaos sweep over a *sharded* dataset build.
//!
//! Worker A runs a two-shard build through a [`CrashVfs`] that kills the
//! "process" at the N-th filesystem operation, for a sweep of N covering
//! the whole build — lease writes, journal appends, entry writes, fsyncs,
//! checkpoint reads. After each kill, virtual time advances past worker
//! A's lease deadline and worker B (a fresh process on the real
//! filesystem) joins the same root: it must steal A's expired leases,
//! resume A's shards from their checkpoints, and finish the build. The
//! finalize step must then merge the shards, and the resulting dataset
//! must be **byte-identical** to an uninterrupted single-process build —
//! with no fragment computed twice across the shard journals.
//!
//! A separate test pins the fencing guarantee: a zombie worker whose
//! shard was stolen cannot append to the shard journal at all — the
//! stale-token write is rejected before any bytes land.
//!
//! By default the sweep samples ~10 evenly-spaced crash points so the
//! test stays CI-cheap; set `QDB_SHARD_SWEEP=full` to sweep every
//! operation (the CI chaos-job configuration).

use qdb_store::{CrashVfs, LeaseManager, StdVfs};
use qdb_telemetry::ManualClock;
use qdb_vqe::fault::FaultPlan;
use qdockbank::dataset::{validate_entry, ENTRY_FILES};
use qdockbank::fragments::{fragment, FragmentRecord};
use qdockbank::fsck::fsck_dataset;
use qdockbank::pipeline::PipelineConfig;
use qdockbank::shard::{
    build_dataset_sharded_with, double_build_offenders_vfs, finalize_sharded, shard_journal_path,
    ShardConfig, ShardJournalWriter,
};
use qdockbank::supervisor::{build_dataset_with, SupervisorConfig};
use std::path::{Path, PathBuf};

const NUM_SHARDS: usize = 2;
const TTL_MS: u64 = 5_000;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qdb-shard-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn entry_bytes(root: &Path, record: &FragmentRecord) -> Vec<(String, Vec<u8>)> {
    let dir = root.join(record.group().name()).join(record.pdb_id);
    ENTRY_FILES
        .iter()
        .map(|name| {
            (
                name.to_string(),
                std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("{name}: {e}")),
            )
        })
        .collect()
}

fn shard_cfg(worker: &str) -> ShardConfig {
    ShardConfig {
        lease_ttl_ms: TTL_MS,
        max_wait_rounds: 4,
        ..ShardConfig::new(NUM_SHARDS, worker)
    }
}

#[test]
fn every_kill_point_is_taken_over_and_converges_to_the_reference_build() {
    let config = PipelineConfig {
        docking_runs: 2,
        ..PipelineConfig::fast()
    };
    // One attempt per fragment: a dead vfs must not be retried against —
    // recovery belongs to the worker that steals the shard.
    let sup = SupervisorConfig {
        max_attempts: 1,
        ..SupervisorConfig::fast()
    };
    let clean = FaultPlan::none();
    let records = [
        fragment("3ckz").unwrap(),
        fragment("3eax").unwrap(),
        fragment("4mo4").unwrap(),
    ];

    // Uninterrupted single-process reference build: the bar every
    // crashed-and-stolen sharded build must match byte for byte.
    let ref_root = tmpdir("reference");
    let ref_clock = ManualClock::new();
    let ref_summary = build_dataset_with(
        &ref_root, &records, &config, &sup, &clean, &ref_clock, &StdVfs,
    )
    .unwrap();
    assert_eq!(ref_summary.usable(), records.len());
    let reference: Vec<_> = records.iter().map(|r| entry_bytes(&ref_root, r)).collect();

    // Probe: how many filesystem operations does one full sharded
    // single-worker build spend?
    let total = {
        let root = tmpdir("probe");
        let clock = ManualClock::new();
        let vfs = CrashVfs::new(usize::MAX);
        build_dataset_sharded_with(
            &root,
            &records,
            &config,
            &sup,
            &clean,
            &shard_cfg("probe"),
            &clock,
            &vfs,
        )
        .unwrap();
        let n = vfs.ops_used();
        let _ = std::fs::remove_dir_all(&root);
        n
    };
    assert!(
        total > 30,
        "a sharded 3-fragment build must span many fs ops"
    );

    let full = std::env::var("QDB_SHARD_SWEEP").as_deref() == Ok("full");
    let points: Vec<usize> = if full {
        (0..total).collect()
    } else {
        let stride = (total / 10).max(1);
        let mut pts: Vec<usize> = (0..total).step_by(stride).collect();
        if *pts.last().unwrap() != total - 1 {
            pts.push(total - 1);
        }
        pts
    };
    println!(
        "shard chaos sweep: {} of {total} filesystem ops",
        points.len()
    );

    for &budget in &points {
        let root = tmpdir(&format!("kill-{budget}"));
        // Both workers share one virtual clock — the cross-process wall
        // clock of the simulation.
        let clock = ManualClock::new();

        // Worker A: dies at filesystem op `budget + 1`, mid-anything.
        let vfs = CrashVfs::new(budget);
        let doomed = build_dataset_sharded_with(
            &root,
            &records,
            &config,
            &sup,
            &clean,
            &shard_cfg("wA"),
            &clock,
            &vfs,
        );
        assert!(vfs.crashed(), "budget {budget} < {total} must crash");
        drop(doomed);

        // A's heartbeat deadline passes; worker B joins the same root,
        // steals whatever A held, and finishes the build.
        clock.advance_ms(TTL_MS + 1);
        let b = build_dataset_sharded_with(
            &root,
            &records,
            &config,
            &sup,
            &clean,
            &shard_cfg("wB"),
            &clock,
            &StdVfs,
        )
        .unwrap_or_else(|e| panic!("takeover after kill at op {budget} failed: {e}"));
        assert_eq!(
            b.build.failed, 0,
            "kill at op {budget}: takeover left failures"
        );

        // Finalize merges the shards and writes the card; it refusing
        // would mean a shard never got its done marker.
        let card = finalize_sharded(&root, &records, NUM_SHARDS)
            .unwrap_or_else(|e| panic!("finalize after kill at op {budget} failed: {e}"));
        assert_eq!(
            card.entries,
            records.len(),
            "kill at op {budget}: card missing entries ({:?})",
            card.missing
        );
        assert!(card.missing.is_empty());
        assert_eq!(card.shards.len(), NUM_SHARDS);

        // No fragment was computed twice: every pdb id has at most one
        // "completed"-status report across all shard journals (takeover
        // resumes are journaled as "checkpointed").
        let offenders = double_build_offenders_vfs(&StdVfs, &root, NUM_SHARDS).unwrap();
        assert!(
            offenders.is_empty(),
            "kill at op {budget}: fragments computed twice: {offenders:?}"
        );

        // The dataset is byte-identical to the uninterrupted
        // single-process build.
        for (record, reference) in records.iter().zip(&reference) {
            validate_entry(&root, record)
                .unwrap_or_else(|e| panic!("kill at op {budget}: {} invalid: {e}", record.pdb_id));
            assert_eq!(
                &entry_bytes(&root, record),
                reference,
                "kill at op {budget}: {} differs from the reference build",
                record.pdb_id
            );
        }

        // And fsck agrees: entries clean, every entry stamped with the
        // worker that journaled it, lease debris swept.
        let report = fsck_dataset(&root, &records).unwrap();
        assert!(
            report.clean(),
            "kill at op {budget}: fsck found {} corrupt / {} missing",
            report.corrupt(),
            report.missing()
        );
        for entry in &report.entries {
            let stamp = entry.built_by.as_ref().unwrap_or_else(|| {
                panic!("kill at op {budget}: {} has no shard stamp", entry.pdb_id)
            });
            assert!(
                stamp.owner == "wA" || stamp.owner == "wB",
                "kill at op {budget}: {} stamped by {:?}",
                entry.pdb_id,
                stamp.owner
            );
        }

        let _ = std::fs::remove_dir_all(&root);
    }
    let _ = std::fs::remove_dir_all(&ref_root);
}

#[test]
fn zombie_worker_with_a_stale_token_cannot_corrupt_the_journal() {
    let root = tmpdir("zombie");
    let clock = ManualClock::new();
    let manager = LeaseManager::new(&StdVfs, &clock, &root, TTL_MS);

    // Worker A claims shard 0 and journals normally...
    let lease_a = manager.acquire(0, "wA").unwrap();
    let mut zombie = ShardJournalWriter::new(&StdVfs, &root, &manager, lease_a);
    zombie.append_run(false).unwrap();
    zombie.append_note("wA was here").unwrap();
    let journal = shard_journal_path(&root, 0);
    let bytes_before = std::fs::read(&journal).unwrap();

    // ...then stalls past its deadline (GC pause, scheduler starvation,
    // network partition — the classic zombie). Worker B steals the shard.
    clock.advance_ms(TTL_MS + 1);
    let lease_b = manager.acquire(0, "wB").unwrap();

    // The zombie resurfaces and tries everything it has. Every move is
    // rejected — and, crucially, *before* any bytes land.
    assert!(zombie.check().is_err(), "stale token must fail the fence");
    assert!(zombie.renew().is_err(), "a stolen lease cannot be renewed");
    assert!(zombie.append_note("zombie strikes back").is_err());
    assert!(
        zombie.append_done().is_err(),
        "a zombie cannot mark a shard done"
    );
    assert_eq!(
        std::fs::read(&journal).unwrap(),
        bytes_before,
        "zombie writes must leave the journal byte-for-byte untouched"
    );

    // The thief's writer works, and the journal stays replayable.
    let thief = ShardJournalWriter::new(&StdVfs, &root, &manager, lease_b);
    thief.append_note("wB took over").unwrap();
    let replay = qdb_store::Journal::open(&StdVfs, journal)
        .replay(false)
        .unwrap();
    assert!(!replay.recovered(), "journal is clean after the attack");
    assert_eq!(replay.records.len(), 3, "run + wA note + wB note");
    let _ = std::fs::remove_dir_all(&root);
}
