//! The deterministic chaos suite.
//!
//! Every scenario the ISSUE names — worker kills mid-job, store faults
//! via `CrashVfs`, duplicate and delayed submissions, queue saturation,
//! and kill-the-server-mid-build-then-restart — driven synchronously on
//! a `ManualClock` from a seeded [`ChaosPlan`]. No real time, no real
//! entropy, no thread races: a failing seed replays exactly.

use qdb_serve::chaos::ChaosPlan;
use qdb_serve::key::JobRequest;
use qdb_serve::runner::{PipelineRunner, StubRunner};
use qdb_serve::service::{JobService, JobStatus, ServiceConfig, Submission, WorkerTick};
use qdb_store::{CrashVfs, StdVfs};
use qdb_telemetry::{Clock, ManualClock};
use qdockbank::supervisor::SupervisorConfig;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qdb-serve-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request(fragment: &str) -> JobRequest {
    JobRequest {
        fragment: fragment.to_string(),
        ..JobRequest::default()
    }
}

fn stub_service(root: &Path, queue_cap: usize) -> JobService {
    JobService::open(
        root,
        Arc::new(StdVfs),
        Arc::new(ManualClock::new()),
        Arc::new(StubRunner::default()),
        ServiceConfig {
            queue_cap,
            workers: 1,
            ..ServiceConfig::default()
        },
    )
    .unwrap()
}

/// Every regular file under `root`, as relative path → bytes.
fn tree_bytes(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(base: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(base, &path, out);
            } else {
                let rel = path
                    .strip_prefix(base)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, std::fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    if root.exists() {
        walk(root, root, &mut out);
    }
    out
}

/// Worker killed mid-job: the chaos plan injects a backend panic on the
/// job's first attempt; the supervisor's retry ladder recovers it (a
/// single panic is transient, so the retry is clean — not degraded) and
/// the attempt count proves the kill happened.
#[test]
fn worker_kill_mid_job_recovers_via_the_retry_ladder() {
    let root = tmpdir("worker-kill");
    let mut plan = ChaosPlan::new(17);
    plan.worker_kill_rate = 1.0; // force the kill regardless of seed draw
    assert!(plan.kills_worker("3ckz"));
    let runner = PipelineRunner {
        supervisor: SupervisorConfig::fast(),
        faults: plan.fault_plan(&["3ckz"]),
    };
    let service = JobService::open(
        &root,
        Arc::new(StdVfs),
        Arc::new(ManualClock::new()),
        Arc::new(runner),
        ServiceConfig::default(),
    )
    .unwrap();
    let Submission::Accepted { key } = service.submit(&request("3ckz")) else {
        panic!("submission must be admitted");
    };
    assert_eq!(service.run_next_job(), WorkerTick::Ran);
    let view = service.job(&key).unwrap();
    let JobStatus::Completed { degraded, cached } = view.status else {
        panic!("killed worker must be recovered, got {:?}", view.status);
    };
    assert!(
        !degraded,
        "one transient panic retries cleanly; the ladder must not escalate"
    );
    assert!(!cached);
    let result = service.read_result(&key).unwrap();
    assert!(
        result.attempts >= 2,
        "first attempt died; expected at least one retry, saw {}",
        result.attempts
    );
}

/// Store fault: the vfs dies mid-build (torn write and all), the
/// "process" restarts on the same root, the journal resumes the job, and
/// the final artifacts are byte-identical to a never-crashed run.
#[test]
fn store_fault_crash_then_restart_resumes_byte_identical() {
    // Reference: the same job on a healthy store.
    let clean_root = tmpdir("store-fault-clean");
    let clean = stub_service(&clean_root, 8);
    let Submission::Accepted { key } = clean.submit(&request("3eax")) else {
        panic!("reference submission must be admitted");
    };
    assert_eq!(clean.run_next_job(), WorkerTick::Ran);
    let reference = tree_bytes(&clean_root.join("cache"));
    assert!(!reference.is_empty());

    // Measure the op count of a full run, then have chaos pick a crash
    // point strictly inside the artifact-write phase.
    let probe_root = tmpdir("store-fault-probe");
    let probe_vfs = Arc::new(CrashVfs::new(usize::MAX));
    {
        let service = JobService::open(
            &probe_root,
            probe_vfs.clone(),
            Arc::new(ManualClock::new()),
            Arc::new(StubRunner::default()),
            ServiceConfig {
                queue_cap: 8,
                workers: 1,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            service.submit(&request("3eax")),
            Submission::Accepted { .. }
        ));
        assert_eq!(service.run_next_job(), WorkerTick::Ran);
    }
    let total_ops = probe_vfs.ops_used();
    let submit_floor = total_ops / 2;
    let plan = ChaosPlan::new(23);
    let budget = plan.store_budget("3eax", submit_floor as u64, (total_ops - 2) as u64) as usize;

    let crash_root = tmpdir("store-fault-crash");
    let crash_vfs = Arc::new(CrashVfs::new(budget));
    {
        let service = JobService::open(
            &crash_root,
            crash_vfs.clone(),
            Arc::new(ManualClock::new()),
            Arc::new(StubRunner::default()),
            ServiceConfig {
                queue_cap: 8,
                workers: 1,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        assert!(
            matches!(
                service.submit(&request("3eax")),
                Submission::Accepted { .. }
            ),
            "crash budget {budget} must land after admission"
        );
        // The worker hits the dead vfs somewhere inside the build.
        let _ = service.run_next_job();
        assert!(
            crash_vfs.crashed(),
            "budget {budget} of {total_ops} never hit"
        );
    }

    // Restart on the same root with a healthy store: the journal's
    // un-done submit resumes, the slot rebuilds.
    let service = stub_service(&crash_root, 8);
    let view = service.job(&key).unwrap_or_else(|| {
        panic!("crashed job must be restored from the journal");
    });
    if view.status == JobStatus::Queued {
        assert_eq!(service.run_next_job(), WorkerTick::Ran);
    }
    let view = service.job(&key).unwrap();
    assert!(
        matches!(view.status, JobStatus::Completed { .. }),
        "resumed job must complete, got {:?}",
        view.status
    );
    let rebuilt = tree_bytes(&crash_root.join("cache"));
    assert_eq!(
        reference, rebuilt,
        "artifacts after crash+resume must be byte-identical to a clean run"
    );
}

/// Saturation: a seeded burst overruns the queue bound; the overflow is
/// shed (never enqueued), accepted + shed == submitted, and readiness
/// flips false exactly while the queue is full.
#[test]
fn saturation_burst_sheds_the_overflow_deterministically() {
    let root = tmpdir("saturation");
    let queue_cap = 3;
    let service = stub_service(&root, queue_cap);
    let plan = ChaosPlan::new(41);
    let burst = plan.saturation_burst("burst-1", queue_cap);
    assert!(burst > queue_cap);
    // Distinct seeds make distinct jobs, so dedup cannot mask shedding.
    let mut accepted = 0usize;
    let mut shed = 0usize;
    for i in 0..burst {
        let sub = service.submit(&JobRequest {
            fragment: "3ckz".to_string(),
            seed: Some(1 + i as u64),
            ..JobRequest::default()
        });
        match sub {
            Submission::Accepted { .. } => accepted += 1,
            Submission::Shed { retry_after_s } => {
                shed += 1;
                assert!((1..=30).contains(&retry_after_s));
            }
            other => panic!("unexpected submission outcome {other:?}"),
        }
        assert!(service.queue_depth() <= queue_cap, "queue bound violated");
        assert_eq!(
            service.ready(),
            service.queue_depth() < queue_cap,
            "readyz must flip exactly at saturation"
        );
    }
    assert_eq!(accepted, queue_cap);
    assert_eq!(accepted + shed, burst);
    while service.run_next_job() == WorkerTick::Ran {}
    assert!(service.ready(), "draining the queue must restore readiness");
}

/// Duplicate and delayed submissions: the plan's duplicate storm always
/// lands on the same job id, and virtual submission delays do not change
/// job identity or outcome.
#[test]
fn duplicate_and_delayed_submissions_converge_on_one_job() {
    let root = tmpdir("duplicates");
    let clock = Arc::new(ManualClock::new());
    let service = JobService::open(
        &root,
        Arc::new(StdVfs),
        clock.clone() as Arc<dyn Clock>,
        Arc::new(StubRunner::default()),
        ServiceConfig {
            queue_cap: 8,
            workers: 1,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let mut plan = ChaosPlan::new(59);
    plan.duplicate_rate = 1.0;
    let fragment = "4mo4";
    clock.advance_ms(plan.delay_ms(fragment));
    let Submission::Accepted { key } = service.submit(&request(fragment)) else {
        panic!("first submission must be admitted");
    };
    let dupes = plan.duplicates(fragment);
    assert!(dupes >= 1);
    for _ in 0..dupes {
        clock.advance_ms(plan.delay_ms(fragment));
        match service.submit(&request(fragment)) {
            Submission::Deduplicated { key: k, .. } => assert_eq!(k, key),
            other => panic!("duplicate must dedup, got {other:?}"),
        }
    }
    assert_eq!(service.queue_depth(), 1, "duplicates must not enqueue");
    assert_eq!(service.run_next_job(), WorkerTick::Ran);
    assert!(matches!(
        service.job(&key).unwrap().status,
        JobStatus::Completed { .. }
    ));
}

/// Kill the server mid-build, restart, resume from the journal: finished
/// work is served from the cache, unfinished work re-runs, and the final
/// tree is byte-identical to an uninterrupted run.
#[test]
fn kill_restart_resume_is_byte_identical_to_an_uninterrupted_run() {
    let fragments = ["3ckz", "3eax", "3ibi"];
    // Uninterrupted reference.
    let ref_root = tmpdir("kill-ref");
    {
        let service = stub_service(&ref_root, 8);
        for f in &fragments {
            assert!(matches!(
                service.submit(&request(f)),
                Submission::Accepted { .. }
            ));
        }
        while service.run_next_job() == WorkerTick::Ran {}
    }
    let reference = tree_bytes(&ref_root.join("cache"));

    // Interrupted: run one job, then "kill" the process (drop, no drain).
    let root = tmpdir("kill-resume");
    let mut keys = Vec::new();
    {
        let service = stub_service(&root, 8);
        for f in &fragments {
            match service.submit(&request(f)) {
                Submission::Accepted { key } => keys.push(key),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(service.run_next_job(), WorkerTick::Ran);
        // Process dies here: no drain, no journal flush beyond the WAL.
    }

    // Restart: first job is a journaled completion, the rest resume.
    let service = stub_service(&root, 8);
    let statuses: Vec<JobStatus> = keys
        .iter()
        .map(|k| service.job(k).expect("journal restores every job").status)
        .collect();
    assert!(
        matches!(statuses[0], JobStatus::Completed { cached: true, .. }),
        "finished job must come back as a cached completion, got {:?}",
        statuses[0]
    );
    assert_eq!(statuses[1], JobStatus::Queued);
    assert_eq!(statuses[2], JobStatus::Queued);
    while service.run_next_job() == WorkerTick::Ran {}
    for key in &keys {
        assert!(matches!(
            service.job(key).unwrap().status,
            JobStatus::Completed { .. }
        ));
    }
    let resumed = tree_bytes(&root.join("cache"));
    assert_eq!(
        reference, resumed,
        "kill+restart+resume must reproduce the uninterrupted tree byte-for-byte"
    );

    // And the journal now carries a done event for every job: a second
    // restart re-serves everything from the cache without re-running.
    let service = stub_service(&root, 8);
    for key in &keys {
        assert!(matches!(
            service.job(key).unwrap().status,
            JobStatus::Completed { cached: true, .. }
        ));
    }
    assert_eq!(service.run_next_job(), WorkerTick::Idle);
}

/// Drain under load: admission stops, queued work finishes inside the
/// drain budget, and the report accounts for every job.
#[test]
fn graceful_drain_finishes_queued_work_and_sheds_new_arrivals() {
    let root = tmpdir("drain");
    let service = stub_service(&root, 8);
    for f in ["3ckz", "3eax"] {
        assert!(matches!(
            service.submit(&request(f)),
            Submission::Accepted { .. }
        ));
    }
    service.begin_drain();
    assert!(!service.ready());
    assert!(matches!(
        service.submit(&request("3ibi")),
        Submission::Shed { .. }
    ));
    // Workers keep draining the queue after the latch.
    while service.run_next_job() == WorkerTick::Ran {}
    assert_eq!(service.queue_depth(), 0);
    let report = service.cancel_and_journal_pending();
    assert_eq!(report.cancelled, 0, "nothing in flight at this point");
    assert_eq!(report.journaled, 0, "queue already drained");
}
