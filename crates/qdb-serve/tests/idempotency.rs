//! Idempotent submission must not re-run the simulator.
//!
//! This lives in its own test binary because it asserts on the global
//! telemetry registry's `vqe.*` / `exec.*` counters: the duplicate
//! submission — in-process dedup, cache hit after restart, and cache hit
//! in a *fresh* service — must leave every pipeline-execution counter
//! exactly where the first build put it.

use qdb_serve::key::JobRequest;
use qdb_serve::runner::PipelineRunner;
use qdb_serve::service::{JobService, JobStatus, ServiceConfig, Submission, WorkerTick};
use qdb_store::StdVfs;
use qdb_telemetry::ManualClock;
use qdockbank::supervisor::SupervisorConfig;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qdb-serve-idem-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pipeline_service(root: &Path) -> JobService {
    JobService::open(
        root,
        Arc::new(StdVfs),
        Arc::new(ManualClock::new()),
        Arc::new(PipelineRunner {
            supervisor: SupervisorConfig::fast(),
            faults: qdb_vqe::fault::FaultPlan::none(),
        }),
        ServiceConfig::default(),
    )
    .unwrap()
}

/// Counters that prove the simulator ran: everything under `vqe.` and
/// `exec.`.
fn execution_counters() -> BTreeMap<String, u64> {
    qdb_telemetry::global()
        .snapshot()
        .counters
        .into_iter()
        .filter(|(name, _)| name.starts_with("vqe.") || name.starts_with("exec."))
        .collect()
}

#[test]
fn duplicate_submission_serves_the_cache_without_invoking_the_simulator() {
    let root = tmpdir("dup");
    let request = JobRequest {
        fragment: "3ckz".to_string(),
        ..JobRequest::default()
    };

    // First build: the simulator genuinely runs.
    let service = pipeline_service(&root);
    let Submission::Accepted { key } = service.submit(&request) else {
        panic!("first submission must be admitted");
    };
    assert_eq!(service.run_next_job(), WorkerTick::Ran);
    assert!(matches!(
        service.job(&key).unwrap().status,
        JobStatus::Completed { .. }
    ));
    let after_build = execution_counters();
    assert!(
        after_build.values().any(|&v| v > 0),
        "the first build must actually exercise the pipeline (saw {after_build:?})"
    );

    // Duplicate into the live service: in-process dedup.
    match service.submit(&request) {
        Submission::Deduplicated { key: k, status } => {
            assert_eq!(k, key);
            assert!(matches!(status, JobStatus::Completed { .. }));
        }
        other => panic!("expected dedup, got {other:?}"),
    }
    assert_eq!(
        execution_counters(),
        after_build,
        "in-process dedup must not touch the simulator"
    );

    // Duplicate into a *restarted* service: journal replay answers it.
    let restarted = pipeline_service(&root);
    match restarted.submit(&request) {
        Submission::Deduplicated { key: k, status } => {
            assert_eq!(k, key);
            assert!(
                matches!(status, JobStatus::Completed { cached: true, .. }),
                "restart must restore the completion as cached, got {status:?}"
            );
        }
        other => panic!("expected journal-backed dedup, got {other:?}"),
    }
    assert_eq!(
        execution_counters(),
        after_build,
        "journal-backed dedup must not touch the simulator"
    );

    // Duplicate into a fresh service on the same root with the journal
    // removed: the content-addressed cache itself answers it.
    std::fs::remove_file(root.join(qdb_serve::service::SERVE_JOURNAL)).unwrap();
    let fresh = pipeline_service(&root);
    match fresh.submit(&request) {
        Submission::CacheHit { key: k } => assert_eq!(k, key),
        other => panic!("expected a cache hit, got {other:?}"),
    }
    assert_eq!(
        execution_counters(),
        after_build,
        "a cache hit must not touch the simulator"
    );
    assert_eq!(
        fresh.run_next_job(),
        WorkerTick::Idle,
        "a cache hit must enqueue nothing"
    );

    // The invariant the telemetry gate checks:
    // admitted + shed + cache_hits + dedup_hits == submitted.
    let counters = qdb_telemetry::global().snapshot().counters;
    let get = |name: &str| counters.get(name).copied().unwrap_or(0);
    assert_eq!(
        get("serve.admitted")
            + get("serve.shed")
            + get("serve.cache_hits")
            + get("serve.dedup_hits"),
        get("serve.submitted"),
        "submission accounting must balance: {counters:?}"
    );
}
