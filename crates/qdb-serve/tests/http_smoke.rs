//! End-to-end smoke over a real socket: a background server on port 0,
//! a raw `TcpStream` client, and the SIGTERM-latch drain path.
//!
//! Own binary: `request_shutdown` flips a process-global latch, which
//! must not leak into other test suites.

use qdb_serve::runner::StubRunner;
use qdb_serve::server::{self, ServerConfig};
use qdb_serve::service::{JobService, ServiceConfig};
use qdb_store::StdVfs;
use qdb_telemetry::MonotonicClock;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qdb-serve-http-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One HTTP exchange over a fresh connection; returns the raw response.
fn exchange(addr: std::net::SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

#[test]
fn socket_round_trip_submit_poll_fetch_and_drain() {
    let root = tmpdir("round-trip");
    let service = Arc::new(
        JobService::open(
            &root,
            Arc::new(StdVfs),
            Arc::new(MonotonicClock::new()),
            Arc::new(StubRunner::default()),
            ServiceConfig {
                queue_cap: 4,
                workers: 1,
                drain_deadline_ms: 2_000,
                ..ServiceConfig::default()
            },
        )
        .unwrap(),
    );
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server_service = Arc::clone(&service);
    let server_thread = std::thread::spawn(move || {
        server::run(listener, server_service, 1, ServerConfig::default())
    });

    let health = exchange(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");

    let body = "{\"fragment\": \"3ckz\"}";
    let submit = exchange(
        addr,
        &format!(
            "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        ),
    );
    assert!(submit.starts_with("HTTP/1.1 202"), "{submit}");
    let key = submit
        .rsplit("\"job\": \"")
        .next()
        .and_then(|s| s.split('"').next())
        .expect("job key in submit response")
        .to_string();

    // Poll until the background worker completes it (bounded wait).
    let mut completed = false;
    for _ in 0..100 {
        let poll = exchange(
            addr,
            &format!("GET /jobs/{key} HTTP/1.1\r\nHost: t\r\n\r\n"),
        );
        assert!(poll.starts_with("HTTP/1.1 200"), "{poll}");
        if poll.contains("\"completed\"") {
            completed = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(completed, "job never completed over the socket");

    let duplicate = exchange(
        addr,
        &format!(
            "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        ),
    );
    assert!(duplicate.starts_with("HTTP/1.1 200"), "{duplicate}");
    assert!(duplicate.contains("\"deduplicated\": true"), "{duplicate}");

    let artifact = exchange(
        addr,
        &format!("GET /jobs/{key}/artifacts/stub/3ckz/structure.pdb HTTP/1.1\r\nHost: t\r\n\r\n"),
    );
    assert!(artifact.starts_with("HTTP/1.1 200"), "{artifact}");
    assert!(artifact.contains("REMARK stub"), "{artifact}");

    let post_no_length = exchange(addr, "POST /jobs HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(
        post_no_length.starts_with("HTTP/1.1 411"),
        "{post_no_length}"
    );

    // SIGTERM-equivalent: flip the latch, server drains and returns.
    server::request_shutdown();
    let report = server_thread
        .join()
        .expect("server thread must not panic")
        .expect("drain must succeed");
    assert_eq!(report.journaled, 0, "nothing should be left queued");
    assert!(!service.ready(), "drained service must not report ready");
}
