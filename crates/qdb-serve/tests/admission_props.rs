//! Property tests for the admission state machine — the overload
//! contract, checked over arbitrary interleavings of submit / start /
//! finish / evict / drain:
//!
//! * accepted + shed == submitted (no submission unaccounted for);
//! * the queue never exceeds its bound, in-flight never exceeds its cap;
//! * `ready()` is false iff the queue is saturated or draining.

use proptest::prelude::*;
use qdb_serve::admission::{Admission, Decision};

/// One step of an adversarial schedule.
#[derive(Clone, Copy, Debug)]
enum Op {
    Submit,
    Start,
    Finish,
    Evict,
    Drain,
}

fn op() -> impl Strategy<Value = Op> {
    // Weighted by hand (the drain latch is rare, submits are common).
    (0usize..13).prop_map(|n| match n {
        0..=4 => Op::Submit,
        5..=7 => Op::Start,
        8..=10 => Op::Finish,
        11 => Op::Evict,
        _ => Op::Drain,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn overload_invariants_hold_under_arbitrary_schedules(
        queue_cap in 1usize..12,
        inflight_cap in 1usize..6,
        ops in proptest::collection::vec(op(), 1..200),
    ) {
        let mut a = Admission::new(queue_cap, inflight_cap);
        let mut submitted = 0u64;
        let mut accepted = 0u64;
        let mut shed = 0u64;
        for step in ops {
            match step {
                Op::Submit => {
                    submitted += 1;
                    match a.try_admit() {
                        Decision::Admit => accepted += 1,
                        Decision::Shed { retry_after_s } => {
                            shed += 1;
                            prop_assert!((1..=30).contains(&retry_after_s));
                        }
                    }
                }
                Op::Start => {
                    let before = (a.queued(), a.inflight());
                    let started = a.try_start();
                    if started {
                        prop_assert_eq!(a.queued(), before.0 - 1);
                        prop_assert_eq!(a.inflight(), before.1 + 1);
                    } else {
                        prop_assert!(
                            before.0 == 0 || before.1 >= inflight_cap,
                            "start refused with work available and a free slot"
                        );
                    }
                }
                Op::Finish => {
                    if a.inflight() > 0 {
                        a.on_finish();
                    }
                }
                Op::Evict => {
                    if a.queued() > 0 {
                        a.on_evict();
                    }
                }
                Op::Drain => a.begin_drain(),
            }
            // The three ISSUE invariants, after every step.
            prop_assert_eq!(accepted + shed, submitted);
            prop_assert!(a.queued() <= queue_cap, "queue bound violated");
            prop_assert!(a.inflight() <= inflight_cap, "in-flight cap violated");
            prop_assert_eq!(
                a.ready(),
                !a.draining() && a.queued() < queue_cap,
                "readyz contract violated"
            );
            if a.draining() {
                let probe_shed = matches!(a.try_admit(), Decision::Shed { .. });
                prop_assert!(probe_shed, "draining machine admitted a job");
                // That probe was a real submission attempt; account for it.
                submitted += 1;
                shed += 1;
            }
        }
    }

    /// Shedding is stateless: a shed submission leaves every counter
    /// exactly where it was.
    #[test]
    fn shed_has_no_side_effects(extra in 0usize..20) {
        let mut a = Admission::new(2, 2);
        while !a.saturated() {
            let admitted = matches!(a.try_admit(), Decision::Admit);
            prop_assert!(admitted, "unsaturated machine refused a job");
        }
        let snapshot = (a.queued(), a.inflight(), a.ready());
        for _ in 0..extra {
            let shed = matches!(a.try_admit(), Decision::Shed { .. });
            prop_assert!(shed, "saturated machine admitted a job");
            prop_assert_eq!((a.queued(), a.inflight(), a.ready()), snapshot);
        }
    }
}
