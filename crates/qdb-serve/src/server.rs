//! The TCP front end: routing, the accept loop, the worker pool, and
//! the SIGTERM drain latch.
//!
//! Routing ([`handle`]) is a pure function from a parsed request to a
//! response, so the endpoint contracts are unit-testable without
//! sockets; the accept loop adds only transport concerns (timeouts,
//! slow-client disconnects, the shutdown poll).

use crate::http::{self, json_string, Request, Response};
use crate::key::JobRequest;
use crate::service::{JobService, JobStatus, JobView, Submission};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Transport tuning for one listener.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Per-socket read timeout (ms) — a slow client is cut off, not waited on.
    pub read_timeout_ms: u64,
    /// Per-socket write timeout (ms).
    pub write_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
        }
    }
}

static SIGTERM_FLAG: AtomicBool = AtomicBool::new(false);

extern "C" fn on_terminate(_signum: i32) {
    // Only async-signal-safe work here: flip the latch, nothing else.
    SIGTERM_FLAG.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers that flip the shutdown latch the
/// accept loop polls. Raw `signal(2)` via the C runtime — no external
/// crates — and idempotent.
pub fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_terminate as *const () as usize);
        signal(SIGINT, on_terminate as *const () as usize);
    }
}

/// Whether the shutdown latch has flipped (SIGTERM/SIGINT arrived).
pub fn shutdown_requested() -> bool {
    SIGTERM_FLAG.load(Ordering::SeqCst)
}

/// Flips the shutdown latch programmatically (tests, embedders).
pub fn request_shutdown() {
    SIGTERM_FLAG.store(true, Ordering::SeqCst);
}

fn status_json(status: &JobStatus) -> String {
    match status {
        JobStatus::Completed { degraded, cached } => format!(
            "\"status\": {}, \"degraded\": {}, \"cached\": {}",
            json_string(status.name()),
            degraded,
            cached
        ),
        JobStatus::Failed { kind, message } => format!(
            "\"status\": \"failed\", \"kind\": {}, \"message\": {}",
            json_string(kind),
            json_string(message)
        ),
        other => format!("\"status\": {}", json_string(other.name())),
    }
}

fn job_json(view: &JobView) -> String {
    let request = serde_json::to_string(&view.request).unwrap_or_else(|_| "null".to_string());
    format!(
        "{{\"job\": {}, {}, \"backend\": {}, \"request\": {}}}",
        json_string(&view.key),
        status_json(&view.status),
        json_string(&view.request.backend),
        request
    )
}

/// Routes one request. Pure: all state lives in the service.
pub fn handle(service: &JobService, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if service.ready() {
                Response::text(200, "ready\n")
            } else if service.draining() {
                Response::text(503, "draining\n")
            } else {
                Response::text(503, "saturated\n")
            }
        }
        ("GET", "/metrics") => {
            let snapshot = qdb_telemetry::global().snapshot();
            let rendered = qdb_telemetry::export::prometheus::render_with_worker(
                &snapshot,
                service.worker_id(),
            );
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                headers: Vec::new(),
                body: rendered.into_bytes(),
            }
        }
        ("POST", "/jobs") => {
            let body = String::from_utf8_lossy(&req.body);
            let request: JobRequest = match serde_json::from_str(&body) {
                Ok(r) => r,
                Err(e) => return Response::error(400, &format!("invalid job request: {e}")),
            };
            match service.submit(&request) {
                Submission::Accepted { key } => Response::json(
                    202,
                    format!("{{\"job\": {}, \"status\": \"queued\"}}", json_string(&key)),
                ),
                Submission::Deduplicated { key, status } => Response::json(
                    200,
                    format!(
                        "{{\"job\": {}, {}, \"deduplicated\": true}}",
                        json_string(&key),
                        status_json(&status)
                    ),
                ),
                Submission::CacheHit { key } => {
                    let view = service.job(&key);
                    let status = view
                        .map(|v| status_json(&v.status))
                        .unwrap_or_else(|| "\"status\": \"completed\"".to_string());
                    Response::json(
                        200,
                        format!("{{\"job\": {}, {}}}", json_string(&key), status),
                    )
                }
                Submission::Shed { retry_after_s } => {
                    Response::error(429, "queue saturated or draining; retry later")
                        .with_header("Retry-After", retry_after_s.to_string())
                }
                Submission::Invalid(e) => Response::error(422, &e.to_string()),
            }
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            let rest = &path["/jobs/".len()..];
            let (key, sub) = match rest.split_once('/') {
                Some((k, s)) => (k, Some(s)),
                None => (rest, None),
            };
            let Some(view) = service.job(key) else {
                return Response::error(404, &format!("unknown job {key:?}"));
            };
            match sub {
                None => Response::json(200, job_json(&view)),
                Some("artifacts") => match service.artifacts(key) {
                    Some(files) => {
                        let names: Vec<String> = files
                            .iter()
                            .map(|(name, bytes)| {
                                format!(
                                    "{{\"name\": {}, \"bytes\": {}}}",
                                    json_string(name),
                                    bytes.len()
                                )
                            })
                            .collect();
                        Response::json(
                            200,
                            format!(
                                "{{\"job\": {}, \"files\": [{}]}}",
                                json_string(key),
                                names.join(", ")
                            ),
                        )
                    }
                    None => Response::error(
                        404,
                        "no artifacts: job is not completed (or slot failed verification)",
                    ),
                },
                Some(sub) if sub.starts_with("artifacts/") => {
                    let rel = &sub["artifacts/".len()..];
                    let file = service
                        .artifacts(key)
                        .and_then(|files| files.into_iter().find(|(name, _)| name == rel));
                    match file {
                        Some((_, bytes)) => Response {
                            status: 200,
                            content_type: "application/octet-stream",
                            headers: Vec::new(),
                            body: bytes,
                        },
                        None => Response::error(404, &format!("no artifact {rel:?}")),
                    }
                }
                Some(other) => Response::error(404, &format!("unknown resource {other:?}")),
            }
        }
        ("POST", _) | ("GET", _) => Response::error(404, "no such endpoint"),
        _ => Response::error(405, "method not allowed"),
    }
}

fn serve_connection(service: &JobService, mut stream: TcpStream, config: &ServerConfig) {
    let telemetry = qdb_telemetry::global();
    let _ = stream.set_read_timeout(Some(Duration::from_millis(config.read_timeout_ms)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(config.write_timeout_ms)));
    let response = match http::read_request(&mut stream) {
        Ok(req) => {
            telemetry.counter("serve.http_requests").inc();
            handle(service, &req)
        }
        Err(e) => {
            telemetry.counter("serve.http_errors").inc();
            let status = e.status();
            if status == 0 {
                // Slow or broken client: drop without a response.
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return;
            }
            Response::error(status, &e.to_string())
        }
    };
    if response.write(&mut stream).is_err() {
        telemetry.counter("serve.http_errors").inc();
    }
    let _ = stream.flush();
}

/// Runs the service behind `listener` until the shutdown latch flips,
/// then drains gracefully and returns the drain report.
///
/// Spawns `service`'s configured worker count; each worker loops
/// [`JobService::run_next_job`]. The accept loop polls the latch between
/// connections, so SIGTERM is honored within ~100 ms even when idle.
pub fn run(
    listener: TcpListener,
    service: Arc<JobService>,
    workers: usize,
    config: ServerConfig,
) -> std::io::Result<crate::service::DrainReport> {
    listener.set_nonblocking(true)?;
    let worker_handles: Vec<_> = (0..workers.max(1))
        .map(|_| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                while service.wait_for_work() {
                    if service.run_next_job() == crate::service::WorkerTick::Idle {
                        // Pool briefly over-subscribed; yield instead of spinning.
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            })
        })
        .collect();
    while !shutdown_requested() {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let service = Arc::clone(&service);
                std::thread::spawn(move || serve_connection(&service, stream, &config));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
    // Latch flipped: stop accepting (drop the listener), drain, join.
    drop(listener);
    let report = service.drain_blocking();
    for handle in worker_handles {
        let _ = handle.join();
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::StubRunner;
    use crate::service::ServiceConfig;
    use qdb_store::StdVfs;
    use qdb_telemetry::ManualClock;
    use std::path::Path;

    fn service(root: &Path) -> JobService {
        JobService::open(
            root,
            Arc::new(StdVfs),
            Arc::new(ManualClock::new()),
            Arc::new(StubRunner::default()),
            ServiceConfig {
                queue_cap: 2,
                workers: 1,
                ..ServiceConfig::default()
            },
        )
        .unwrap()
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            body: Vec::new(),
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn health_ready_and_metrics_endpoints_respond() {
        let dir = std::env::temp_dir().join("qdb_serve_router_health");
        let _ = std::fs::remove_dir_all(&dir);
        let svc = service(&dir);
        assert_eq!(handle(&svc, &get("/healthz")).status, 200);
        assert_eq!(handle(&svc, &get("/readyz")).status, 200);
        let metrics = handle(&svc, &get("/metrics"));
        assert_eq!(metrics.status, 200);
        assert!(String::from_utf8_lossy(&metrics.body).contains("qdb_serve_queue_depth"));
    }

    #[test]
    fn metrics_carry_the_configured_worker_label() {
        let dir = std::env::temp_dir().join("qdb_serve_router_worker_label");
        let _ = std::fs::remove_dir_all(&dir);
        let svc = JobService::open(
            &dir,
            Arc::new(StdVfs),
            Arc::new(ManualClock::new()),
            Arc::new(StubRunner::default()),
            ServiceConfig {
                queue_cap: 2,
                workers: 1,
                worker_id: Some("srv-7".to_string()),
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let metrics = handle(&svc, &get("/metrics"));
        assert_eq!(metrics.status, 200);
        let body = String::from_utf8_lossy(&metrics.body);
        assert!(
            body.contains("qdb_serve_queue_depth{worker=\"srv-7\"}"),
            "every sample is labeled with the worker id:\n{body}"
        );
    }

    #[test]
    fn submit_poll_and_artifact_round_trip() {
        let dir = std::env::temp_dir().join("qdb_serve_router_round_trip");
        let _ = std::fs::remove_dir_all(&dir);
        let svc = service(&dir);
        let accepted = handle(&svc, &post("/jobs", "{\"fragment\": \"3ckz\"}"));
        assert_eq!(accepted.status, 202, "{:?}", accepted);
        let body = String::from_utf8_lossy(&accepted.body).into_owned();
        let key = body
            .split('"')
            .nth(3)
            .expect("job key in response")
            .to_string();
        assert_eq!(svc.run_next_job(), crate::service::WorkerTick::Ran);
        let polled = handle(&svc, &get(&format!("/jobs/{key}")));
        assert_eq!(polled.status, 200);
        assert!(String::from_utf8_lossy(&polled.body).contains("\"completed\""));
        let manifest = handle(&svc, &get(&format!("/jobs/{key}/artifacts")));
        assert_eq!(manifest.status, 200);
        let raw = handle(
            &svc,
            &get(&format!("/jobs/{key}/artifacts/stub/3ckz/structure.pdb")),
        );
        assert_eq!(raw.status, 200);
        assert!(String::from_utf8_lossy(&raw.body).contains("REMARK stub"));
    }

    #[test]
    fn saturation_returns_429_with_retry_after_and_readyz_flips() {
        let dir = std::env::temp_dir().join("qdb_serve_router_saturation");
        let _ = std::fs::remove_dir_all(&dir);
        let svc = service(&dir);
        assert_eq!(
            handle(&svc, &post("/jobs", "{\"fragment\": \"3ckz\"}")).status,
            202
        );
        assert_eq!(
            handle(&svc, &post("/jobs", "{\"fragment\": \"3eax\"}")).status,
            202
        );
        let shed = handle(&svc, &post("/jobs", "{\"fragment\": \"3ibi\"}"));
        assert_eq!(shed.status, 429);
        assert!(shed.headers.iter().any(|(n, _)| n == "Retry-After"));
        assert_eq!(handle(&svc, &get("/readyz")).status, 503);
    }

    #[test]
    fn bad_requests_get_typed_errors() {
        let dir = std::env::temp_dir().join("qdb_serve_router_bad");
        let _ = std::fs::remove_dir_all(&dir);
        let svc = service(&dir);
        assert_eq!(handle(&svc, &post("/jobs", "not json")).status, 400);
        assert_eq!(
            handle(&svc, &post("/jobs", "{\"fragment\": \"zzzz\"}")).status,
            422
        );
        assert_eq!(handle(&svc, &get("/jobs/deadbeef")).status, 404);
        assert_eq!(handle(&svc, &get("/nope")).status, 404);
        let req = Request {
            method: "DELETE".to_string(),
            path: "/jobs/x".to_string(),
            body: Vec::new(),
        };
        assert_eq!(handle(&svc, &req).status, 405);
    }
}
