//! Job requests and content-addressed idempotency keys.
//!
//! A submission is identified by a hash of its *fully resolved*
//! configuration — `(fragment, backend, preset, seed, docking_runs)` —
//! so two requests that mean the same work get the same key regardless
//! of which optional fields the client spelled out. The key doubles as
//! the job id and the result-cache slot name; re-submitting identical
//! work is a cache lookup, never a second simulation.
//!
//! The deadline is deliberately *excluded* from the key: "the same work,
//! but I'm willing to wait less" must still hit the cache.

use serde::{Deserialize, Serialize};

/// A job submission as it arrives on the wire. Every field except the
/// fragment is optional; defaults are resolved before hashing.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct JobRequest {
    /// PDB id of the fragment to build (e.g. `"3ckz"`).
    pub fragment: String,
    /// Docking backend: `"vina"` (default), `"qubo"`, or `"auto"` (the
    /// qubo→vina fallback ladder). `"qdock"` is accepted as a legacy
    /// alias for `"vina"` and canonicalizes to it before hashing.
    pub backend: Option<String>,
    /// Pipeline preset: `"fast"` (default) or `"paper"`.
    pub preset: Option<String>,
    /// VQE seed; defaults to the canonical per-fragment seed (0 on the
    /// wire means "canonical" too, since the canonical seed is never 0).
    pub seed: Option<u64>,
    /// Docking replicate count; defaults to the preset's.
    pub docking_runs: Option<u64>,
    /// Per-job wall-clock deadline in ms (queue wait + execution).
    /// Not part of the content key.
    pub deadline_ms: Option<u64>,
}

/// A request with every default filled in — the canonical form that gets
/// hashed, journaled, and executed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResolvedRequest {
    /// PDB id.
    pub fragment: String,
    /// Backend name (`"vina"`, `"qubo"`, or `"auto"`).
    pub backend: String,
    /// Preset name (`"fast"` or `"paper"`).
    pub preset: String,
    /// VQE seed; 0 means the canonical per-fragment seed.
    pub seed: u64,
    /// Docking replicate count; 0 means the preset default.
    pub docking_runs: u64,
    /// Deadline in ms; 0 means none. Excluded from the content key.
    pub deadline_ms: u64,
}

/// Why a request failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// The fragment id is not in the QDockBank set.
    UnknownFragment(String),
    /// The backend is not implemented.
    UnknownBackend(String),
    /// The preset is not recognized.
    UnknownPreset(String),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::UnknownFragment(id) => write!(f, "unknown fragment {id:?}"),
            RequestError::UnknownBackend(b) => {
                write!(
                    f,
                    "unknown backend {b:?} (use \"vina\", \"qubo\", or \"auto\")"
                )
            }
            RequestError::UnknownPreset(p) => {
                write!(f, "unknown preset {p:?} (use \"fast\" or \"paper\")")
            }
        }
    }
}

impl std::error::Error for RequestError {}

impl JobRequest {
    /// Fills defaults and validates against the fragment table. The
    /// result is the canonical request: hashing it yields the job key.
    pub fn resolve(&self) -> Result<ResolvedRequest, RequestError> {
        if qdockbank::fragment(&self.fragment).is_none() {
            return Err(RequestError::UnknownFragment(self.fragment.clone()));
        }
        let raw = self.backend.clone().unwrap_or_else(|| "vina".to_string());
        let backend = match qdockbank::BackendChoice::parse(&raw) {
            Some(choice) => choice.name().to_string(),
            None => return Err(RequestError::UnknownBackend(raw)),
        };
        let preset = self.preset.clone().unwrap_or_else(|| "fast".to_string());
        if preset != "fast" && preset != "paper" {
            return Err(RequestError::UnknownPreset(preset));
        }
        Ok(ResolvedRequest {
            fragment: self.fragment.clone(),
            backend,
            preset,
            seed: self.seed.unwrap_or(0),
            docking_runs: self.docking_runs.unwrap_or(0),
            deadline_ms: self.deadline_ms.unwrap_or(0),
        })
    }
}

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ResolvedRequest {
    /// The canonical string the key hashes. Field order is fixed and the
    /// deadline is excluded — see the module docs.
    fn canonical(&self) -> String {
        format!(
            "fragment={};backend={};preset={};seed={};docking_runs={}",
            self.fragment, self.backend, self.preset, self.seed, self.docking_runs
        )
    }

    /// The 128-bit content key: 32 lowercase hex characters, valid as a
    /// [`qdb_store::cache`] slot name and used verbatim as the job id.
    pub fn content_key(&self) -> String {
        let canon = self.canonical();
        let h1 = fnv1a(canon.as_bytes(), 0xCBF2_9CE4_8422_2325);
        // Second lane: independent basis, decorrelated via splitmix, so
        // the key is 128 bits even though fnv1a is 64.
        let h2 = splitmix(fnv1a(canon.as_bytes(), 0x6C62_272E_07BB_0142) ^ h1.rotate_left(32));
        format!("{h1:016x}{h2:016x}")
    }

    /// The VQE seed override for the supervisor ([`None`] = canonical).
    pub fn seed_override(&self) -> Option<u64> {
        (self.seed != 0).then_some(self.seed)
    }

    /// The deadline, if one was set.
    pub fn deadline(&self) -> Option<u64> {
        (self.deadline_ms != 0).then_some(self.deadline_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_store::is_content_key;

    fn req(fragment: &str) -> JobRequest {
        JobRequest {
            fragment: fragment.to_string(),
            ..JobRequest::default()
        }
    }

    #[test]
    fn defaults_resolve_and_key_is_well_formed() {
        let r = req("3ckz").resolve().unwrap();
        assert_eq!(r.backend, "vina");
        assert_eq!(r.preset, "fast");
        assert_eq!(r.seed, 0);
        let key = r.content_key();
        assert!(is_content_key(&key), "not a valid cache key: {key}");
    }

    #[test]
    fn spelled_out_defaults_hash_identically() {
        let implicit = req("3ckz").resolve().unwrap();
        let explicit = JobRequest {
            fragment: "3ckz".to_string(),
            backend: Some("vina".to_string()),
            preset: Some("fast".to_string()),
            seed: Some(0),
            docking_runs: Some(0),
            deadline_ms: None,
        }
        .resolve()
        .unwrap();
        assert_eq!(implicit.content_key(), explicit.content_key());
    }

    #[test]
    fn deadline_does_not_change_the_key() {
        let without = req("3ckz").resolve().unwrap();
        let with = JobRequest {
            deadline_ms: Some(30_000),
            ..req("3ckz")
        }
        .resolve()
        .unwrap();
        assert_eq!(without.content_key(), with.content_key());
    }

    #[test]
    fn distinct_work_gets_distinct_keys() {
        let base = req("3ckz").resolve().unwrap();
        let other_fragment = req("3eax").resolve().unwrap();
        let other_seed = JobRequest {
            seed: Some(7),
            ..req("3ckz")
        }
        .resolve()
        .unwrap();
        let other_preset = JobRequest {
            preset: Some("paper".to_string()),
            ..req("3ckz")
        }
        .resolve()
        .unwrap();
        let other_backend = JobRequest {
            backend: Some("qubo".to_string()),
            ..req("3ckz")
        }
        .resolve()
        .unwrap();
        let keys = [
            base.content_key(),
            other_fragment.content_key(),
            other_seed.content_key(),
            other_preset.content_key(),
            other_backend.content_key(),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn backend_names_canonicalize_before_hashing() {
        // The legacy alias means the same work as the explicit default.
        for spelling in ["qdock", "vina"] {
            let r = JobRequest {
                backend: Some(spelling.to_string()),
                ..req("3ckz")
            }
            .resolve()
            .unwrap();
            assert_eq!(r.backend, "vina");
            assert_eq!(
                r.content_key(),
                req("3ckz").resolve().unwrap().content_key()
            );
        }
        for name in ["qubo", "auto"] {
            let r = JobRequest {
                backend: Some(name.to_string()),
                ..req("3ckz")
            }
            .resolve()
            .unwrap();
            assert_eq!(r.backend, name);
        }
    }

    #[test]
    fn validation_rejects_unknowns() {
        assert!(matches!(
            req("zzzz").resolve(),
            Err(RequestError::UnknownFragment(_))
        ));
        assert!(matches!(
            JobRequest {
                backend: Some("annealer9".to_string()),
                ..req("3ckz")
            }
            .resolve(),
            Err(RequestError::UnknownBackend(_))
        ));
        assert!(matches!(
            JobRequest {
                preset: Some("slow".to_string()),
                ..req("3ckz")
            }
            .resolve(),
            Err(RequestError::UnknownPreset(_))
        ));
    }
}
