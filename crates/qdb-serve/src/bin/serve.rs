//! The qdb-serve daemon: the QDockBank pipeline behind a job API.
//!
//! ```text
//! serve --addr 127.0.0.1:8080 --root /tmp/qdb --workers 2 --queue-cap 16
//! ```
//!
//! Flags:
//!
//! * `--addr HOST:PORT` — listen address (default `127.0.0.1:8080`;
//!   port `0` picks a free port and prints it, for scripted clients);
//! * `--root PATH` — dataset root (journal + result cache);
//! * `--workers N` — worker threads / in-flight cap (default 2);
//! * `--queue-cap N` — bounded queue depth (default 16);
//! * `--drain-ms N` — graceful-drain budget on SIGTERM (default 30000);
//! * `--deadline-ms N` — default per-job deadline (0 = none);
//! * `--stub-runner` — serve a stub pipeline (CI smoke without VQE cost);
//! * `--telemetry PATH` — write a metrics snapshot (JSON) on exit;
//! * `--trace PATH` — record a flight-recorder timeline (Chrome trace);
//! * `--worker-id ID` — fleet identity: labels every `/metrics` sample
//!   with `worker="ID"` and journals durable snapshot deltas to
//!   `ROOT/telemetry/ID.telemetry.journal`;
//! * `--flush-ms N` — telemetry flush period with `--worker-id`
//!   (default 2000).
//!
//! On SIGTERM/SIGINT: admission stops (`/readyz` flips to 503), in-flight
//! and queued jobs get the drain budget to finish, the remainder is
//! journaled as resumable, and the process exits 0 on a clean drain.

use qdb_serve::runner::{JobRunner, PipelineRunner, StubRunner};
use qdb_serve::server::{self, ServerConfig};
use qdb_serve::service::{JobService, ServiceConfig};
use qdb_store::StdVfs;
use qdb_telemetry::MonotonicClock;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn need(value: Option<String>, flag: &str) -> String {
    value.unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}

fn parse_u64(value: &str, flag: &str) -> u64 {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs an unsigned integer, got {value:?}");
        std::process::exit(2);
    })
}

fn main() {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut root = PathBuf::from("qdb-serve-root");
    let mut workers: usize = 2;
    let mut queue_cap: usize = 16;
    let mut drain_ms: u64 = 30_000;
    let mut deadline_ms: u64 = 0;
    let mut stub = false;
    let mut telemetry_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut worker_id: Option<String> = None;
    let mut flush_ms: u64 = 2_000;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = need(args.next(), "--addr"),
            "--root" => root = PathBuf::from(need(args.next(), "--root")),
            "--workers" => {
                workers = parse_u64(&need(args.next(), "--workers"), "--workers") as usize
            }
            "--queue-cap" => {
                queue_cap = parse_u64(&need(args.next(), "--queue-cap"), "--queue-cap") as usize
            }
            "--drain-ms" => drain_ms = parse_u64(&need(args.next(), "--drain-ms"), "--drain-ms"),
            "--deadline-ms" => {
                deadline_ms = parse_u64(&need(args.next(), "--deadline-ms"), "--deadline-ms")
            }
            "--stub-runner" => stub = true,
            "--telemetry" => telemetry_path = Some(PathBuf::from(need(args.next(), "--telemetry"))),
            "--trace" => trace_path = Some(PathBuf::from(need(args.next(), "--trace"))),
            "--worker-id" => worker_id = Some(need(args.next(), "--worker-id")),
            "--flush-ms" => flush_ms = parse_u64(&need(args.next(), "--flush-ms"), "--flush-ms"),
            "--help" | "-h" => {
                println!(
                    "usage: serve [--addr HOST:PORT] [--root PATH] [--workers N] \
                     [--queue-cap N] [--drain-ms N] [--deadline-ms N] \
                     [--stub-runner] [--telemetry PATH] [--trace PATH] \
                     [--worker-id ID] [--flush-ms N]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if trace_path.is_some() {
        qdb_telemetry::global().install_recorder(Arc::new(qdb_telemetry::TraceRecorder::default()));
    }
    let runner: Arc<dyn JobRunner> = if stub {
        Arc::new(StubRunner {
            work_ms: 5,
            fail: Vec::new(),
        })
    } else {
        Arc::new(PipelineRunner::default())
    };
    let service = match JobService::open(
        &root,
        Arc::new(StdVfs),
        Arc::new(MonotonicClock::new()),
        runner,
        ServiceConfig {
            queue_cap,
            workers,
            drain_deadline_ms: drain_ms,
            default_deadline_ms: deadline_ms,
            worker_id: worker_id.clone(),
        },
    ) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("cannot open service root {}: {e}", root.display());
            std::process::exit(1);
        }
    };
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    // Scripted clients parse this line for the actual port (addr :0).
    match listener.local_addr() {
        Ok(bound) => println!("qdb-serve listening on {bound} (root {})", root.display()),
        Err(_) => println!("qdb-serve listening on {addr}"),
    }
    server::install_signal_handlers();
    // Fleet telemetry: with a worker identity, a dedicated thread owns
    // this process's snapshot journal and flushes registry deltas
    // periodically plus once on the way out, so a merge sees the final
    // counters even if the process is about to exit.
    let flush_stop = Arc::new(AtomicBool::new(false));
    let flush_thread = worker_id.clone().map(|id| {
        let stop = Arc::clone(&flush_stop);
        let root = root.clone();
        let period_ms = flush_ms.max(100);
        std::thread::spawn(move || {
            let vfs = StdVfs;
            let clock = qdb_telemetry::WallClock;
            let registry = qdb_telemetry::global();
            let mut flusher = match qdb_store::WorkerFlusher::open(&vfs, &root, &id) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("telemetry journal unavailable for worker {id:?}: {e}");
                    return;
                }
            };
            let _ = flusher.flush(registry, &clock, "start");
            let mut slept = 0u64;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(50));
                slept += 50;
                if slept < period_ms {
                    continue;
                }
                slept = 0;
                if flusher.flush(registry, &clock, "periodic").is_err() {
                    registry.counter("telemetry.flush_errors").inc();
                }
            }
            let _ = flusher.flush(registry, &clock, "exit");
        })
    });
    let report = match server::run(
        listener,
        Arc::clone(&service),
        workers,
        ServerConfig::default(),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("server failed: {e}");
            std::process::exit(1);
        }
    };
    flush_stop.store(true, Ordering::Relaxed);
    if let Some(handle) = flush_thread {
        let _ = handle.join();
    }
    println!(
        "drained: {} finished, {} journaled as resumable, {} cancelled",
        report.finished, report.journaled, report.cancelled
    );
    if let Some(path) = telemetry_path {
        let snap = qdb_telemetry::global().snapshot();
        if let Err(e) = qdb_telemetry::export::json::write_snapshot(&path, &snap) {
            eprintln!("telemetry snapshot failed: {e}");
            std::process::exit(1);
        }
        println!("telemetry snapshot → {}", path.display());
    }
    if let Some(path) = trace_path {
        if let Some(rec) = qdb_telemetry::global().take_recorder() {
            let dump = rec.dump();
            if let Err(e) = qdb_telemetry::export::chrome::write_chrome_trace(&path, &dump) {
                eprintln!("trace export failed: {e}");
                std::process::exit(1);
            }
            println!("flight-recorder trace → {}", path.display());
        }
    }
}
