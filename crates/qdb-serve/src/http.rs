//! A deliberately small HTTP/1.1 implementation over raw streams.
//!
//! Just enough protocol for the job API — no external dependencies, no
//! keep-alive, no chunked encoding — with the abuse guards a public
//! listener needs:
//!
//! * the request head (request line + headers) is capped at
//!   [`MAX_HEAD_BYTES`]; oversized heads get `431`;
//! * bodies require `Content-Length` and are capped at
//!   [`MAX_BODY_BYTES`]; oversized bodies get `413`;
//! * the server sets socket read/write timeouts, so a slow-loris client
//!   is disconnected instead of pinning a thread;
//! * every response carries `Connection: close` — one exchange per
//!   connection keeps the state machine trivial to audit.

use std::io::{Read, Write};

/// Upper bound on the request line plus all headers (bytes).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Upper bound on a request body (bytes).
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// A parsed request: method, path, and raw body.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Path with any query string stripped.
    pub path: String,
    /// Raw body bytes (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Head exceeded [`MAX_HEAD_BYTES`] → `431`.
    HeadTooLarge,
    /// Body exceeded [`MAX_BODY_BYTES`] → `413`.
    BodyTooLarge,
    /// Syntactically broken request → `400`.
    Malformed(String),
    /// Body promised but not delivered (needs `Content-Length`) → `411`.
    LengthRequired,
    /// The socket failed or timed out (slow client) → drop.
    Io(std::io::Error),
}

impl HttpError {
    /// The status code this error maps to (0 = just drop the socket).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::Malformed(_) => 400,
            HttpError::LengthRequired => 411,
            HttpError::Io(_) => 0,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::BodyTooLarge => write!(f, "request body exceeds {MAX_BODY_BYTES} bytes"),
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::LengthRequired => write!(f, "Content-Length required"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

/// Reads one request from `stream`, enforcing the size limits. Socket
/// timeouts surface as [`HttpError::Io`].
pub fn read_request(stream: &mut dyn Read) -> Result<Request, HttpError> {
    // Byte-at-a-time until CRLFCRLF: slow, but bounded by MAX_HEAD_BYTES
    // and far below the cost of anything the handlers do.
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        match stream.read(&mut byte) {
            Ok(0) => {
                return Err(HttpError::Malformed(
                    "connection closed mid-head".to_string(),
                ))
            }
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    let head_text = String::from_utf8_lossy(&head);
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".to_string()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".to_string()))?;
    if parts.next().is_none() {
        return Err(HttpError::Malformed("missing HTTP version".to_string()));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = Some(value.trim().parse().map_err(|_| {
                    HttpError::Malformed(format!("bad Content-Length {:?}", value.trim()))
                })?);
            }
        }
    }
    let body = match (method.as_str(), content_length) {
        ("POST" | "PUT", None) => return Err(HttpError::LengthRequired),
        (_, None) | (_, Some(0)) => Vec::new(),
        (_, Some(n)) if n > MAX_BODY_BYTES => return Err(HttpError::BodyTooLarge),
        (_, Some(n)) => {
            let mut body = vec![0u8; n];
            stream.read_exact(&mut body).map_err(HttpError::Io)?;
            body
        }
    };
    Ok(Request { method, path, body })
}

/// A response ready to serialize.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Content type of the body.
    pub content_type: &'static str,
    /// Extra headers (name, value).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    /// A JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(status, format!("{{\"error\": {}}}", json_string(message)))
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.to_string(), value));
        self
    }

    /// Serializes onto `stream` (always `Connection: close`).
    pub fn write(&self, stream: &mut dyn Write) -> std::io::Result<()> {
        let reason = reason_phrase(self.status);
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Minimal JSON string escaping for hand-built envelopes.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_get_with_query_string() {
        let raw = b"GET /jobs/abc?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&mut Cursor::new(raw.to_vec())).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/jobs/abc");
        assert!(req.body.is_empty());
    }

    #[test]
    fn reads_exactly_content_length_bytes() {
        let raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"extra";
        let req = read_request(&mut Cursor::new(raw.to_vec())).unwrap();
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn post_without_length_is_411() {
        let raw = b"POST /jobs HTTP/1.1\r\nHost: x\r\n\r\n";
        let err = read_request(&mut Cursor::new(raw.to_vec())).unwrap_err();
        assert_eq!(err.status(), 411);
    }

    #[test]
    fn oversized_head_is_431() {
        let mut raw = b"GET /jobs HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend(std::iter::repeat(b'a').take(MAX_HEAD_BYTES + 10));
        let err = read_request(&mut Cursor::new(raw)).unwrap_err();
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = read_request(&mut Cursor::new(raw.into_bytes())).unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn response_wire_format_is_complete() {
        let mut out = Vec::new();
        Response::json(429, "{}".to_string())
            .with_header("Retry-After", "3".to_string())
            .write(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn json_string_escapes_controls() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
