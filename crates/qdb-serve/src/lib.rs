//! qdb-serve: a resilient async job service over the QDockBank pipeline.
//!
//! The service turns the batch dataset builder into an always-on job
//! API with explicit robustness contracts:
//!
//! * **Admission control & backpressure** — a bounded queue plus an
//!   in-flight cap ([`admission`]); submissions beyond the bound are shed
//!   with `429` and a `Retry-After` hint instead of queuing unboundedly.
//! * **Idempotency** — jobs are content-addressed ([`key`]): identical
//!   work hashes to the same 128-bit key, deduplicates against in-memory
//!   jobs and the on-disk result cache, and never runs the simulator
//!   twice.
//! * **Deadlines** — per-job wall-clock budgets that cover queue wait and
//!   execution, enforced on the service [`Clock`](qdb_telemetry::Clock)
//!   so tests exercise them virtually.
//! * **Crash resumability** — a write-ahead journal ([`service`])
//!   records every admission before it is visible; kill the process at
//!   any point and the next open resumes unfinished jobs and re-serves
//!   finished ones from the cache, byte-identically.
//! * **Graceful drain** — `SIGTERM` stops admission (`/readyz` flips),
//!   lets in-flight work finish within a drain budget, then cancels at
//!   attempt boundaries and journals the rest as resumable.
//! * **Deterministic chaos** — [`chaos::ChaosPlan`] schedules worker
//!   kills, store faults, duplicate storms, and saturation bursts from a
//!   seed, keyed `(seed, job, op)`, so every failure scenario replays.
//!
//! The crate is std-only over the existing qdb stack: the HTTP layer
//! ([`http`], [`server`]) is a deliberately small hand-rolled HTTP/1.1
//! on `TcpListener` with request-size limits and slow-client timeouts.

#![warn(missing_docs)]

pub mod admission;
pub mod chaos;
pub mod http;
pub mod key;
pub mod runner;
pub mod server;
pub mod service;

pub use admission::{Admission, Decision};
pub use chaos::ChaosPlan;
pub use key::{JobRequest, RequestError, ResolvedRequest};
pub use runner::{JobRunner, PipelineRunner, RunOutput, StubRunner};
pub use service::{
    DrainReport, JobService, JobStatus, JobView, ResultJson, ServiceConfig, Submission, WorkerTick,
    RESULT_FILE, SERVE_JOURNAL,
};
