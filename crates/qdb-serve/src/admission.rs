//! Admission control: a pure, lock-free-testable state machine.
//!
//! The service holds exactly one of these (under its state lock) and
//! routes every admit/start/finish/drain transition through it, so the
//! overload behavior is a small deterministic object the property tests
//! can hammer without threads, sockets, or clocks:
//!
//! * the queue never exceeds `queue_cap`;
//! * in-flight never exceeds `inflight_cap`;
//! * `ready()` is false iff the queue is saturated or the service is
//!   draining — exactly the `/readyz` contract;
//! * once draining, nothing is admitted, ever.

/// Admission decision for one submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// The job may join the queue.
    Admit,
    /// Load-shed: the client should retry after the hinted delay.
    Shed {
        /// `Retry-After` hint in seconds.
        retry_after_s: u64,
    },
}

/// Queue/in-flight accounting and the drain latch.
#[derive(Clone, Debug)]
pub struct Admission {
    queue_cap: usize,
    inflight_cap: usize,
    queued: usize,
    inflight: usize,
    draining: bool,
}

impl Admission {
    /// A fresh, empty, non-draining machine. Caps are clamped to ≥ 1.
    pub fn new(queue_cap: usize, inflight_cap: usize) -> Self {
        Self {
            queue_cap: queue_cap.max(1),
            inflight_cap: inflight_cap.max(1),
            queued: 0,
            inflight: 0,
            draining: false,
        }
    }

    /// Jobs currently queued (admitted, not yet started).
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Jobs currently executing.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// The queue bound.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// Whether the drain latch is set.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Whether the queue is at its bound.
    pub fn saturated(&self) -> bool {
        self.queued >= self.queue_cap
    }

    /// The `/readyz` contract: ready iff not draining and not saturated.
    pub fn ready(&self) -> bool {
        !self.draining && !self.saturated()
    }

    /// Decides one submission; on `Admit` the job is counted as queued.
    pub fn try_admit(&mut self) -> Decision {
        if self.draining || self.saturated() {
            // Hint scales with how much work stands in front of a retry:
            // a full queue plus a busy pool means longer than a drain.
            let backlog = self.queued + self.inflight;
            return Decision::Shed {
                retry_after_s: (1 + backlog as u64 / 4).min(30),
            };
        }
        self.queued += 1;
        Decision::Admit
    }

    /// A worker took a queued job. Returns false (and changes nothing)
    /// if the pool is at its in-flight cap or the queue is empty.
    pub fn try_start(&mut self) -> bool {
        if self.queued == 0 || self.inflight >= self.inflight_cap {
            return false;
        }
        self.queued -= 1;
        self.inflight += 1;
        true
    }

    /// A started job finished (any terminal state).
    pub fn on_finish(&mut self) {
        debug_assert!(self.inflight > 0, "finish without a matching start");
        self.inflight = self.inflight.saturating_sub(1);
    }

    /// A queued job left the queue without starting (deadline expiry,
    /// drain-time journaling).
    pub fn on_evict(&mut self) {
        debug_assert!(self.queued > 0, "evict from an empty queue");
        self.queued = self.queued.saturating_sub(1);
    }

    /// Sets the drain latch: no further admissions. Idempotent,
    /// irreversible for the lifetime of the process.
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_the_bound_then_sheds() {
        let mut a = Admission::new(2, 4);
        assert_eq!(a.try_admit(), Decision::Admit);
        assert_eq!(a.try_admit(), Decision::Admit);
        assert!(a.saturated());
        assert!(!a.ready());
        assert!(matches!(a.try_admit(), Decision::Shed { .. }));
        assert_eq!(a.queued(), 2, "shed must not grow the queue");
    }

    #[test]
    fn start_finish_round_trip_frees_capacity() {
        let mut a = Admission::new(1, 1);
        assert_eq!(a.try_admit(), Decision::Admit);
        assert!(!a.ready());
        assert!(a.try_start());
        assert!(a.ready(), "queue drained by start");
        assert!(!a.try_start(), "no queued job left");
        a.on_finish();
        assert_eq!(a.inflight(), 0);
    }

    #[test]
    fn inflight_cap_gates_start() {
        let mut a = Admission::new(8, 1);
        a.try_admit();
        a.try_admit();
        assert!(a.try_start());
        assert!(!a.try_start(), "pool full");
        a.on_finish();
        assert!(a.try_start());
    }

    #[test]
    fn draining_sheds_everything_and_flips_ready() {
        let mut a = Admission::new(8, 2);
        assert!(a.ready());
        a.begin_drain();
        assert!(!a.ready());
        assert!(matches!(a.try_admit(), Decision::Shed { .. }));
        assert!(a.draining());
    }

    #[test]
    fn retry_after_grows_with_backlog_and_caps() {
        let mut small = Admission::new(1, 1);
        small.try_admit();
        let Decision::Shed { retry_after_s: s1 } = small.try_admit() else {
            panic!("saturated queue must shed");
        };
        let mut big = Admission::new(100, 1);
        for _ in 0..100 {
            big.try_admit();
        }
        let Decision::Shed { retry_after_s: s2 } = big.try_admit() else {
            panic!("saturated queue must shed");
        };
        assert!(s2 > s1);
        assert!(s2 <= 30);
    }
}
