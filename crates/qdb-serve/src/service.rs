//! The job service: bounded queue, idempotent submission, result cache,
//! deadlines, graceful drain, and a journal that makes all of it
//! crash-resumable.
//!
//! Everything time-dependent goes through the service [`Clock`] and
//! everything filesystem-dependent through its [`Vfs`], so the chaos
//! suite drives the whole lifecycle — saturation, worker death,
//! store faults, kill/restart — deterministically on a `ManualClock`
//! and a `CrashVfs`, with no real sleeps and no real signals.
//!
//! ## State machine (per job)
//!
//! ```text
//!   submit ──▶ queued ──▶ running ──▶ completed
//!     │           │           │            ▲
//!     │           │           └─▶ failed   │ (restart: journal replay
//!     │           └─▶ expired (deadline)   │  re-reads done jobs from
//!     └─▶ shed (saturated/draining)        │  the cache)
//! ```
//!
//! The write-ahead journal (`serve.journal`) records `submit` before a
//! job enters the queue and `done` after it reaches a terminal state; a
//! job with a `submit` but no `done` is *resumable* and re-enters the
//! queue when the service reopens the root.

use crate::admission::{Admission, Decision};
use crate::key::{JobRequest, RequestError, ResolvedRequest};
use crate::runner::{JobRunner, RunOutput};
use qdb_store::{ContentCache, Journal, StoreError, Vfs};
use qdb_telemetry::Clock;
use qdockbank::{CancelToken, PipelineError};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Bounded queue depth; submissions beyond it are shed with 429.
    pub queue_cap: usize,
    /// In-flight cap — normally the worker count.
    pub workers: usize,
    /// Budget for graceful drain before in-flight jobs are cancelled (ms).
    pub drain_deadline_ms: u64,
    /// Deadline applied to jobs that did not bring their own (ms, 0 = none).
    pub default_deadline_ms: u64,
    /// Stable worker identity for fleet observability: labels every
    /// `/metrics` sample and names this process's durable telemetry
    /// journal (`None` = unlabeled single-process service).
    pub worker_id: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_cap: 64,
            workers: 2,
            drain_deadline_ms: 30_000,
            default_deadline_ms: 0,
            worker_id: None,
        }
    }
}

/// Terminal and transitional job states, as reported by `GET /jobs/{id}`.
#[derive(Clone, Debug, PartialEq)]
pub enum JobStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Artifacts are in the cache slot.
    Completed {
        /// Winning attempt was seed-shifted or degraded.
        degraded: bool,
        /// Result came from the cache (or a journal replay) rather than
        /// an execution in this process.
        cached: bool,
    },
    /// Exhausted, expired, or cancelled; `kind` is the
    /// [`PipelineError::kind`] taxonomy.
    Failed {
        /// Stable cause identifier.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

impl JobStatus {
    /// Wire name for the status field.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Completed { degraded: true, .. } => "completed-degraded",
            JobStatus::Completed { .. } => "completed",
            JobStatus::Failed { .. } => "failed",
        }
    }

    /// Whether the job has reached a terminal state.
    pub fn terminal(&self) -> bool {
        matches!(self, JobStatus::Completed { .. } | JobStatus::Failed { .. })
    }
}

/// What `submit` told the client.
#[derive(Clone, Debug, PartialEq)]
pub enum Submission {
    /// Newly admitted; the job id is the content key.
    Accepted {
        /// Job id.
        key: String,
    },
    /// Idempotent replay of a key this process already tracks.
    Deduplicated {
        /// Job id.
        key: String,
        /// Its current status.
        status: JobStatus,
    },
    /// Result served from the on-disk cache; no execution.
    CacheHit {
        /// Job id.
        key: String,
    },
    /// Load-shed: retry after the hint.
    Shed {
        /// Seconds the client should wait.
        retry_after_s: u64,
    },
    /// The request did not validate.
    Invalid(RequestError),
}

/// One tracked job.
#[derive(Clone, Debug)]
struct JobEntry {
    request: ResolvedRequest,
    status: JobStatus,
    enqueued_ns: u64,
    ordinal: u64,
    cancel: CancelToken,
}

/// A point-in-time public view of one job.
#[derive(Clone, Debug)]
pub struct JobView {
    /// The job id (content key).
    pub key: String,
    /// The canonical request.
    pub request: ResolvedRequest,
    /// Current status.
    pub status: JobStatus,
}

/// One line of `serve.journal`. Flat struct, `kind`-discriminated
/// (`"submit"` or `"done"`), matching the manifest-journal idiom.
#[derive(Serialize, Deserialize)]
struct ServeEvent {
    kind: String,
    key: Option<String>,
    request: Option<ResolvedRequest>,
    status: Option<String>,
}

/// The service-written result summary in each cache slot.
#[derive(Serialize, Deserialize)]
pub struct ResultJson {
    /// Job id.
    pub key: String,
    /// Fragment PDB id.
    pub fragment: String,
    /// Terminal status name (`"completed"` / `"completed-degraded"`).
    pub status: String,
    /// Attempts the supervisor spent.
    pub attempts: u64,
    /// Docking backend choice the winning attempt ran with. `None` in
    /// summaries written before backends existed (the Vina engine).
    pub backend: Option<String>,
    /// Entry directory relative to the slot.
    pub entry: String,
}

/// Name of the per-slot result summary.
pub const RESULT_FILE: &str = "result.json";

/// Name of the service journal under the root.
pub const SERVE_JOURNAL: &str = "serve.journal";

/// Outcome of [`JobService::run_next_job`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerTick {
    /// A job was taken and driven to a terminal state.
    Ran,
    /// Queue empty (or in-flight cap reached).
    Idle,
}

/// Drain summary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs that reached a terminal state during the drain window.
    pub finished: usize,
    /// Queued jobs left journaled as resumable.
    pub journaled: usize,
    /// In-flight jobs cancelled at the drain deadline.
    pub cancelled: usize,
}

struct State {
    admission: Admission,
    queue: VecDeque<String>,
    jobs: HashMap<String, JobEntry>,
    next_ordinal: u64,
}

/// The resilient job service. One instance per dataset root; share it
/// across worker and listener threads via `Arc`.
pub struct JobService {
    root: PathBuf,
    vfs: Arc<dyn Vfs + Send + Sync>,
    clock: Arc<dyn Clock>,
    runner: Arc<dyn JobRunner>,
    cache: ContentCache,
    config: ServiceConfig,
    state: Mutex<State>,
    work_ready: Condvar,
}

impl JobService {
    /// Opens (or creates) a service over `root`, replaying the journal:
    /// jobs with a terminal `done` event become cached entries; jobs
    /// submitted but never finished re-enter the queue as resumable work.
    pub fn open(
        root: &Path,
        vfs: Arc<dyn Vfs + Send + Sync>,
        clock: Arc<dyn Clock>,
        runner: Arc<dyn JobRunner>,
        config: ServiceConfig,
    ) -> Result<Self, StoreError> {
        vfs.create_dir_all(root)?;
        let telemetry = qdb_telemetry::global();
        let mut state = State {
            admission: Admission::new(config.queue_cap, config.workers),
            queue: VecDeque::new(),
            jobs: HashMap::new(),
            next_ordinal: 1,
        };
        let journal = Journal::open(&*vfs, root.join(SERVE_JOURNAL));
        if vfs.exists(journal.path()) {
            let replay = journal.replay(true)?;
            if replay.recovered() {
                telemetry.counter("serve.journal_recoveries").inc();
            }
            // Last event wins per key: a submit without a later done is
            // resumable; a done is a finished job whose artifacts live in
            // the cache.
            let mut last: HashMap<String, (ResolvedRequest, Option<String>)> = HashMap::new();
            let mut order: Vec<String> = Vec::new();
            for line in &replay.records {
                let Ok(ev) = serde_json::from_str::<ServeEvent>(line) else {
                    continue;
                };
                let Some(key) = ev.key else { continue };
                match ev.kind.as_str() {
                    "submit" => {
                        if let Some(request) = ev.request {
                            if !last.contains_key(&key) {
                                order.push(key.clone());
                            }
                            last.insert(key, (request, None));
                        }
                    }
                    "done" => {
                        if let Some(slot) = last.get_mut(&key) {
                            slot.1 = ev.status;
                        }
                    }
                    _ => {}
                }
            }
            let now_ns = clock.now_ns();
            for key in order {
                let (request, done) = last.remove(&key).expect("inserted above");
                let ordinal = state.next_ordinal;
                state.next_ordinal += 1;
                match done {
                    Some(status) => {
                        let degraded = status == "completed-degraded";
                        let job_status = if status.starts_with("completed") {
                            JobStatus::Completed {
                                degraded,
                                cached: true,
                            }
                        } else {
                            JobStatus::Failed {
                                kind: status.clone(),
                                message: format!("journaled terminal state: {status}"),
                            }
                        };
                        state.jobs.insert(
                            key,
                            JobEntry {
                                request,
                                status: job_status,
                                enqueued_ns: now_ns,
                                ordinal,
                                cancel: CancelToken::new(),
                            },
                        );
                    }
                    None => {
                        // Resumable. Re-admit within the (possibly
                        // smaller) queue bound; overflow is journaled as
                        // failed so no job silently vanishes.
                        match state.admission.try_admit() {
                            Decision::Admit => {
                                telemetry.counter("serve.resumed").inc();
                                state.queue.push_back(key.clone());
                                state.jobs.insert(
                                    key,
                                    JobEntry {
                                        request,
                                        status: JobStatus::Queued,
                                        enqueued_ns: now_ns,
                                        ordinal,
                                        cancel: CancelToken::new(),
                                    },
                                );
                            }
                            Decision::Shed { .. } => {
                                let msg =
                                    "resumable job shed on restart: queue bound shrank".to_string();
                                append_serve_event(
                                    &*vfs,
                                    root,
                                    &ServeEvent {
                                        kind: "done".to_string(),
                                        key: Some(key.clone()),
                                        request: None,
                                        status: Some("failed/shed-on-restore".to_string()),
                                    },
                                )?;
                                state.jobs.insert(
                                    key,
                                    JobEntry {
                                        request,
                                        status: JobStatus::Failed {
                                            kind: "shed-on-restore".to_string(),
                                            message: msg,
                                        },
                                        enqueued_ns: now_ns,
                                        ordinal,
                                        cancel: CancelToken::new(),
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
        telemetry
            .gauge("serve.queue_depth")
            .set(state.queue.len() as i64);
        telemetry.gauge("serve.inflight").set(0);
        Ok(Self {
            root: root.to_path_buf(),
            vfs,
            clock,
            runner,
            cache: ContentCache::new(root.join("cache")),
            config,
            state: Mutex::new(State {
                next_ordinal: state.next_ordinal,
                ..state
            }),
            work_ready: Condvar::new(),
        })
    }

    /// The dataset root this service owns.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The worker identity this service labels its telemetry with.
    pub fn worker_id(&self) -> Option<&str> {
        self.config.worker_id.as_deref()
    }

    /// The service clock (workers and tests share it).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The result cache.
    pub fn cache(&self) -> &ContentCache {
        &self.cache
    }

    /// The `/readyz` contract: true iff not draining and not saturated.
    pub fn ready(&self) -> bool {
        self.state.lock().unwrap().admission.ready()
    }

    /// Whether the drain latch is set.
    pub fn draining(&self) -> bool {
        self.state.lock().unwrap().admission.draining()
    }

    /// Current queue depth (for tests and reports).
    pub fn queue_depth(&self) -> usize {
        self.state.lock().unwrap().admission.queued()
    }

    /// Submits one job. Idempotent on the content key: identical work
    /// deduplicates against tracked jobs and the on-disk cache before it
    /// can ever reach the queue.
    pub fn submit(&self, request: &JobRequest) -> Submission {
        let telemetry = qdb_telemetry::global();
        let _span = qdb_telemetry::span!("serve.submit");
        let resolved = match request.resolve() {
            Ok(r) => r,
            Err(e) => {
                telemetry.counter("serve.invalid").inc();
                return Submission::Invalid(e);
            }
        };
        telemetry.counter("serve.submitted").inc();
        let key = resolved.content_key();
        let mut state = self.state.lock().unwrap();
        if let Some(entry) = state.jobs.get(&key) {
            telemetry.counter("serve.dedup_hits").inc();
            return Submission::Deduplicated {
                key,
                status: entry.status.clone(),
            };
        }
        if let Some(_slot) = self.cache.lookup(&*self.vfs, &key, &[RESULT_FILE]) {
            telemetry.counter("serve.cache_hits").inc();
            let degraded = self
                .read_result(&key)
                .map(|r| r.status == "completed-degraded")
                .unwrap_or(false);
            let ordinal = state.next_ordinal;
            state.next_ordinal += 1;
            state.jobs.insert(
                key.clone(),
                JobEntry {
                    request: resolved,
                    status: JobStatus::Completed {
                        degraded,
                        cached: true,
                    },
                    enqueued_ns: self.clock.now_ns(),
                    ordinal,
                    cancel: CancelToken::new(),
                },
            );
            return Submission::CacheHit { key };
        }
        match state.admission.try_admit() {
            Decision::Shed { retry_after_s } => {
                telemetry.counter("serve.shed").inc();
                qdb_telemetry::instant!("serve.shed");
                Submission::Shed { retry_after_s }
            }
            Decision::Admit => {
                // WAL first: the submit event lands before the job is
                // visible in the queue, so a crash after this point
                // resumes the job instead of losing it.
                let ev = ServeEvent {
                    kind: "submit".to_string(),
                    key: Some(key.clone()),
                    request: Some(resolved.clone()),
                    status: None,
                };
                if let Err(e) = append_serve_event(&*self.vfs, &self.root, &ev) {
                    // Journal unwritable: refuse the job rather than
                    // accept unresumable work.
                    state.admission.on_evict();
                    telemetry.counter("serve.journal_errors").inc();
                    let _ = e;
                    telemetry.counter("serve.shed").inc();
                    return Submission::Shed { retry_after_s: 5 };
                }
                telemetry.counter("serve.admitted").inc();
                let ordinal = state.next_ordinal;
                state.next_ordinal += 1;
                state.queue.push_back(key.clone());
                state.jobs.insert(
                    key.clone(),
                    JobEntry {
                        request: resolved,
                        status: JobStatus::Queued,
                        enqueued_ns: self.clock.now_ns(),
                        ordinal,
                        cancel: CancelToken::new(),
                    },
                );
                telemetry
                    .gauge("serve.queue_depth")
                    .set(state.admission.queued() as i64);
                self.work_ready.notify_one();
                Submission::Accepted { key }
            }
        }
    }

    /// A point-in-time view of one job.
    pub fn job(&self, key: &str) -> Option<JobView> {
        let state = self.state.lock().unwrap();
        state.jobs.get(key).map(|e| JobView {
            key: key.to_string(),
            request: e.request.clone(),
            status: e.status.clone(),
        })
    }

    /// Reads the slot's result summary for a terminal job.
    pub fn read_result(&self, key: &str) -> Option<ResultJson> {
        let slot = self.cache.slot(key);
        let bytes = self.vfs.read(&slot.join(RESULT_FILE)).ok()?;
        serde_json::from_str(&String::from_utf8_lossy(&bytes)).ok()
    }

    /// The artifact files of a completed job: `(relative name, bytes)`,
    /// entry files first, result summary last.
    pub fn artifacts(&self, key: &str) -> Option<Vec<(String, Vec<u8>)>> {
        let result = self.read_result(key)?;
        let slot = self.cache.slot(key);
        let entry_dir = slot.join(&result.entry);
        let mut files = Vec::new();
        for path in self.vfs.read_dir(&entry_dir).ok()? {
            let name = path.file_name()?.to_string_lossy().into_owned();
            let bytes = self.vfs.read(&path).ok()?;
            files.push((format!("{}/{}", result.entry, name), bytes));
        }
        let result_bytes = self.vfs.read(&slot.join(RESULT_FILE)).ok()?;
        files.push((RESULT_FILE.to_string(), result_bytes));
        Some(files)
    }

    /// Takes one queued job and drives it to a terminal state on the
    /// calling thread. The worker pool loops this; deterministic tests
    /// call it directly.
    pub fn run_next_job(&self) -> WorkerTick {
        let telemetry = qdb_telemetry::global();
        let (key, request, cancel, ordinal, enqueued_ns) = {
            let mut state = self.state.lock().unwrap();
            if !state.admission.try_start() {
                return WorkerTick::Idle;
            }
            let key = state
                .queue
                .pop_front()
                .expect("try_start checked queued > 0");
            telemetry
                .gauge("serve.queue_depth")
                .set(state.admission.queued() as i64);
            telemetry
                .gauge("serve.inflight")
                .set(state.admission.inflight() as i64);
            let entry = state.jobs.get_mut(&key).expect("queued job is tracked");
            entry.status = JobStatus::Running;
            (
                key,
                entry.request.clone(),
                entry.cancel.clone(),
                entry.ordinal,
                entry.enqueued_ns,
            )
        };
        let _corr = qdb_telemetry::trace::correlate(ordinal);
        let queue_wait_ms = self.clock.elapsed_ms(enqueued_ns);
        telemetry
            .histogram("serve.queue_wait_ms")
            .record(queue_wait_ms);

        let deadline = match request.deadline() {
            Some(d) => Some(d),
            None => {
                (self.config.default_deadline_ms != 0).then_some(self.config.default_deadline_ms)
            }
        };
        // A job that aged out in the queue never starts: the deadline
        // covers wait + execution.
        if let Some(d) = deadline {
            if queue_wait_ms >= d {
                telemetry.counter("serve.expired").inc();
                self.finish(
                    &key,
                    JobStatus::Failed {
                        kind: "deadline-exceeded".to_string(),
                        message: format!(
                            "spent {queue_wait_ms} ms of a {d} ms deadline waiting in the queue"
                        ),
                    },
                    None,
                );
                return WorkerTick::Ran;
            }
        }
        let remaining = deadline.map(|d| d - queue_wait_ms);
        let started_ns = self.clock.now_ns();
        let outcome = {
            let _span = qdb_telemetry::span!("serve.job");
            self.runner.run(
                &request,
                &self.cache.slot(&key),
                &*self.vfs,
                &*self.clock,
                &cancel,
                remaining,
            )
        };
        telemetry
            .histogram("serve.job_ms")
            .record(self.clock.elapsed_ms(started_ns));
        match outcome {
            Ok(output) => {
                let status = JobStatus::Completed {
                    degraded: output.degraded,
                    cached: false,
                };
                self.finish(&key, status, Some(&output));
            }
            Err(e) => {
                let status = if matches!(e, PipelineError::Cancelled) {
                    // Cancelled at a drain boundary: leave the job
                    // resumable (no done event) rather than failed.
                    JobStatus::Queued
                } else {
                    JobStatus::Failed {
                        kind: e.kind(),
                        message: e.to_string(),
                    }
                };
                if status == JobStatus::Queued {
                    self.requeue_cancelled(&key);
                } else {
                    self.finish(&key, status, None);
                }
            }
        }
        WorkerTick::Ran
    }

    /// Commits a terminal state: result summary (completions), journal
    /// `done` event, in-memory status, metrics.
    fn finish(&self, key: &str, status: JobStatus, output: Option<&RunOutput>) {
        let telemetry = qdb_telemetry::global();
        if let (JobStatus::Completed { .. }, Some(output)) = (&status, output) {
            // The slot already holds the committed entry; the summary is
            // its own atomic commit so readers either see a complete
            // result or none.
            let request = {
                let state = self.state.lock().unwrap();
                state.jobs.get(key).map(|e| e.request.clone())
            };
            if let Some(request) = request {
                let result = ResultJson {
                    key: key.to_string(),
                    fragment: request.fragment.clone(),
                    status: status.name().to_string(),
                    attempts: output.attempts,
                    backend: Some(output.backend.clone()),
                    entry: output.entry_rel.clone(),
                };
                let write = self.cache.begin(&*self.vfs, key).and_then(|mut w| {
                    let json =
                        serde_json::to_string_pretty(&result).unwrap_or_else(|_| "{}".to_string());
                    w.put(RESULT_FILE, json.as_bytes())?;
                    w.commit()
                });
                if write.is_err() {
                    telemetry.counter("serve.result_write_errors").inc();
                    // The artifacts exist but the summary did not commit;
                    // fail the job so the client retries instead of
                    // fetching a slot the cache will not vouch for.
                    return self.finish(
                        key,
                        JobStatus::Failed {
                            kind: "store/result-write".to_string(),
                            message: "result summary failed to commit".to_string(),
                        },
                        None,
                    );
                }
            }
        }
        let done = ServeEvent {
            kind: "done".to_string(),
            key: Some(key.to_string()),
            request: None,
            status: Some(match &status {
                JobStatus::Failed { kind, .. } => format!("failed/{kind}"),
                other => other.name().to_string(),
            }),
        };
        if append_serve_event(&*self.vfs, &self.root, &done).is_err() {
            telemetry.counter("serve.journal_errors").inc();
            // The in-memory state still advances; on restart the job
            // replays as resumable and re-runs into the same slot.
        }
        match &status {
            JobStatus::Completed { .. } => telemetry.counter("serve.completed").inc(),
            JobStatus::Failed { .. } => telemetry.counter("serve.failed").inc(),
            _ => {}
        }
        let mut state = self.state.lock().unwrap();
        if let Some(entry) = state.jobs.get_mut(key) {
            entry.status = status;
        }
        state.admission.on_finish();
        telemetry
            .gauge("serve.inflight")
            .set(state.admission.inflight() as i64);
        self.work_ready.notify_all();
    }

    /// A job cancelled mid-drain goes back to queued *bookkeeping* (its
    /// submit event stays un-done in the journal, so the next process
    /// resumes it), but not back into this process's queue.
    fn requeue_cancelled(&self, key: &str) {
        let telemetry = qdb_telemetry::global();
        telemetry.counter("serve.cancelled").inc();
        let mut state = self.state.lock().unwrap();
        if let Some(entry) = state.jobs.get_mut(key) {
            entry.status = JobStatus::Queued;
        }
        state.admission.on_finish();
        telemetry
            .gauge("serve.inflight")
            .set(state.admission.inflight() as i64);
        self.work_ready.notify_all();
    }

    /// Blocks the calling worker until work is available or the service
    /// is draining. Returns false when the worker should exit.
    pub fn wait_for_work(&self) -> bool {
        let mut state = self.state.lock().unwrap();
        loop {
            if state.admission.draining() {
                // Drain: keep working while the queue holds jobs.
                return state.admission.queued() > 0;
            }
            if state.admission.queued() > 0 {
                return true;
            }
            let (next, timeout) = self
                .work_ready
                .wait_timeout(state, std::time::Duration::from_millis(100))
                .unwrap();
            state = next;
            let _ = timeout;
        }
    }

    /// Sets the drain latch: `/readyz` flips false and every subsequent
    /// submission sheds. Idempotent.
    pub fn begin_drain(&self) {
        let mut state = self.state.lock().unwrap();
        state.admission.begin_drain();
        qdb_telemetry::instant!("serve.drain");
        qdb_telemetry::global().counter("serve.drains").inc();
        self.work_ready.notify_all();
    }

    /// Cancels every in-flight job (tokens flip; jobs stop at their next
    /// attempt boundary) and evicts the still-queued remainder, leaving
    /// both journaled as resumable. Returns the drain report so far.
    pub fn cancel_and_journal_pending(&self) -> DrainReport {
        let mut report = DrainReport::default();
        let mut state = self.state.lock().unwrap();
        for entry in state.jobs.values() {
            if entry.status == JobStatus::Running {
                entry.cancel.cancel();
                report.cancelled += 1;
            }
        }
        while let Some(key) = state.queue.pop_front() {
            state.admission.on_evict();
            // Status stays Queued and no done event is written: the
            // submit event alone makes the job resumable on restart.
            let _ = key;
            report.journaled += 1;
        }
        qdb_telemetry::global()
            .gauge("serve.queue_depth")
            .set(state.admission.queued() as i64);
        report
    }

    /// Graceful drain for the threaded server: stop admitting, give
    /// in-flight and queued jobs `drain_deadline_ms` (on the wall clock
    /// used by the worker pool) to finish, then cancel what remains and
    /// journal the rest as resumable.
    pub fn drain_blocking(&self) -> DrainReport {
        self.begin_drain();
        let deadline_ms = self.config.drain_deadline_ms;
        let start_ns = self.clock.now_ns();
        let mut finished = 0usize;
        loop {
            {
                let state = self.state.lock().unwrap();
                if state.admission.queued() == 0 && state.admission.inflight() == 0 {
                    let mut report = DrainReport::default();
                    report.finished = finished;
                    return report;
                }
            }
            if self.clock.elapsed_ms(start_ns) >= deadline_ms {
                break;
            }
            // Count completions as they land.
            let state = self.state.lock().unwrap();
            let before = state.admission.inflight() + state.admission.queued();
            let (state, _) = self
                .work_ready
                .wait_timeout(state, std::time::Duration::from_millis(50))
                .unwrap();
            let after = state.admission.inflight() + state.admission.queued();
            finished += before.saturating_sub(after);
        }
        let mut report = self.cancel_and_journal_pending();
        report.finished = finished;
        report
    }

    /// Snapshot of every tracked job (stable order by ordinal).
    pub fn jobs_snapshot(&self) -> Vec<JobView> {
        let state = self.state.lock().unwrap();
        let mut entries: Vec<(&String, &JobEntry)> = state.jobs.iter().collect();
        entries.sort_by_key(|(_, e)| e.ordinal);
        entries
            .into_iter()
            .map(|(k, e)| JobView {
                key: k.clone(),
                request: e.request.clone(),
                status: e.status.clone(),
            })
            .collect()
    }
}

fn append_serve_event(vfs: &dyn Vfs, root: &Path, ev: &ServeEvent) -> Result<(), StoreError> {
    let journal = Journal::open(vfs, root.join(SERVE_JOURNAL));
    let line = serde_json::to_string(ev)
        .map_err(|e| StoreError::from(std::io::Error::new(std::io::ErrorKind::InvalidData, e)))?;
    journal.append(&line)
}
