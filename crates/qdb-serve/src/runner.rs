//! The execution seam between the service and the pipeline.
//!
//! The service schedules [`JobRunner`]s; the production implementation
//! ([`PipelineRunner`]) drives `qdockbank::run_job` — the same supervised
//! retry/backoff/degradation ladder the batch builder uses — against the
//! job's cache slot. Tests substitute [`StubRunner`] to exercise queueing,
//! drain, and HTTP behavior without paying for a real VQE build.

use crate::key::ResolvedRequest;
use qdb_store::{EntryWriter, Vfs};
use qdb_telemetry::Clock;
use qdb_vqe::fault::FaultPlan;
use qdockbank::supervisor::{run_job, JobUnit, SupervisorConfig};
use qdockbank::{CancelToken, PipelineConfig, PipelineError};
use std::path::Path;

/// What a finished run hands back to the service.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Whether the winning attempt was seed-shifted or degraded.
    pub degraded: bool,
    /// Attempts spent.
    pub attempts: u64,
    /// Docking backend choice the winning attempt ran with ("vina",
    /// "qubo", "auto") — the supervisor's deep degradation rungs can
    /// force this down to "vina" from a fancier request.
    pub backend: String,
    /// Entry directory relative to the slot (e.g. `"S/3ckz"`).
    pub entry_rel: String,
}

/// One job execution. Implementations must tolerate being called from
/// any worker thread and must honor `cancel` at their own boundaries.
pub trait JobRunner: Send + Sync {
    /// Builds the job's artifacts under `slot` (the cache slot directory)
    /// and returns a summary, or the typed error that exhausted it.
    fn run(
        &self,
        request: &ResolvedRequest,
        slot: &Path,
        vfs: &dyn Vfs,
        clock: &dyn Clock,
        cancel: &CancelToken,
        deadline_ms: Option<u64>,
    ) -> Result<RunOutput, PipelineError>;
}

/// The production runner: full pipeline under the supervisor.
pub struct PipelineRunner {
    /// Retry/degradation policy template; the per-job deadline overrides
    /// `fragment_deadline_ms` per call.
    pub supervisor: SupervisorConfig,
    /// Rehearsed-fault schedule threaded into every job
    /// ([`FaultPlan::none`] in production; the chaos suite injects here).
    pub faults: FaultPlan,
}

impl Default for PipelineRunner {
    fn default() -> Self {
        Self {
            supervisor: SupervisorConfig::default(),
            faults: FaultPlan::none(),
        }
    }
}

impl PipelineRunner {
    fn pipeline_config(request: &ResolvedRequest) -> PipelineConfig {
        let mut cfg = if request.preset == "paper" {
            PipelineConfig::paper()
        } else {
            PipelineConfig::fast()
        };
        if request.docking_runs != 0 {
            cfg.docking_runs = request.docking_runs as usize;
        }
        // The request backend is already canonical ("vina"/"qubo"/"auto");
        // an unparsable value cannot reach here past resolve().
        if let Some(choice) = qdockbank::BackendChoice::parse(&request.backend) {
            cfg.dock_backend = choice;
        }
        cfg
    }
}

impl JobRunner for PipelineRunner {
    fn run(
        &self,
        request: &ResolvedRequest,
        slot: &Path,
        vfs: &dyn Vfs,
        clock: &dyn Clock,
        cancel: &CancelToken,
        deadline_ms: Option<u64>,
    ) -> Result<RunOutput, PipelineError> {
        let record = qdockbank::fragment(&request.fragment).ok_or_else(|| {
            PipelineError::Decode(format!(
                "fragment {:?} vanished from the table",
                request.fragment
            ))
        })?;
        let pipeline = Self::pipeline_config(request);
        let mut supervisor = self.supervisor;
        if let Some(deadline) = deadline_ms {
            supervisor.fragment_deadline_ms = Some(match supervisor.fragment_deadline_ms {
                Some(existing) => existing.min(deadline),
                None => deadline,
            });
        }
        let unit = JobUnit {
            root: slot,
            record,
            pipeline: &pipeline,
            supervisor: &supervisor,
            faults: &self.faults,
            seed_override: request.seed_override(),
        };
        let (outcome, attempts) = run_job(&unit, clock, vfs, cancel);
        let files = outcome?;
        let winning = attempts.last();
        let degraded = winning
            .map(|a| a.seed_shifted || a.degradation.is_some())
            .unwrap_or(false);
        let backend = winning
            .and_then(|a| a.dock_backend.clone())
            .unwrap_or_else(|| request.backend.clone());
        let entry_rel = files
            .dir
            .strip_prefix(slot)
            .map(|p| p.to_string_lossy().into_owned())
            .unwrap_or_else(|_| format!("{}/{}", record.group().name(), record.pdb_id));
        Ok(RunOutput {
            degraded,
            attempts: attempts.len() as u64,
            backend,
            entry_rel,
        })
    }
}

/// Test runner: sleeps `work_ms` on the service clock (virtual under
/// `ManualClock`), honors cancellation, then commits a minimal artifact
/// slot. Jobs whose fragment id appears in `fail` return a typed error
/// instead.
#[derive(Clone, Debug, Default)]
pub struct StubRunner {
    /// Virtual work per job (ms).
    pub work_ms: u64,
    /// Fragments that must fail with a decode error.
    pub fail: Vec<String>,
}

impl JobRunner for StubRunner {
    fn run(
        &self,
        request: &ResolvedRequest,
        slot: &Path,
        vfs: &dyn Vfs,
        clock: &dyn Clock,
        cancel: &CancelToken,
        deadline_ms: Option<u64>,
    ) -> Result<RunOutput, PipelineError> {
        if cancel.is_cancelled() {
            return Err(PipelineError::Cancelled);
        }
        if self.work_ms > 0 {
            clock.sleep_ms(self.work_ms);
        }
        if let Some(deadline) = deadline_ms {
            if self.work_ms > deadline {
                return Err(PipelineError::DeadlineExceeded {
                    elapsed_ms: self.work_ms,
                });
            }
        }
        if self.fail.iter().any(|f| f == &request.fragment) {
            return Err(PipelineError::Decode(format!(
                "stub failure for {}",
                request.fragment
            )));
        }
        let entry_rel = format!("stub/{}", request.fragment);
        let dir = slot.join(&entry_rel);
        let mut writer = EntryWriter::begin(vfs, &dir)?;
        writer.put("structure.pdb", b"REMARK stub\nEND\n")?;
        writer.commit()?;
        Ok(RunOutput {
            degraded: false,
            attempts: 1,
            backend: request.backend.clone(),
            entry_rel,
        })
    }
}
