//! Deterministic chaos for the service: a seeded plan of worker kills,
//! store faults, duplicate submissions, submission delays, and queue
//! saturation bursts.
//!
//! A [`ChaosPlan`] is pure data derived from a seed. Every decision is
//! keyed `(seed, job, op)` through the same fnv1a + splitmix stream the
//! pipeline's [`FaultPlan`] uses, so a failing chaos run replays
//! *exactly* from its seed — same kills, same crash budgets, same
//! duplicate storms — with no dependence on thread interleaving (tests
//! drive the service synchronously on a `ManualClock`) or real entropy.
//!
//! The plan does not execute anything itself. It answers questions
//! ("should this job's worker die on attempt 0?", "how many crash-vfs
//! ops does this phase get?") that the chaos tests translate into
//! `FaultPlan` targets, `CrashVfs` budgets, and submission schedules.

use qdb_vqe::fault::{FaultKind, FaultPlan};

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The chaos operations a plan can schedule. Used as the `op` component
/// of the `(seed, job, op)` decision key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosOp {
    /// Kill the worker mid-job (a `FaultKind::Panic` in the backend).
    WorkerKill,
    /// Exhaust the store's crash budget partway through a write.
    StoreFault,
    /// Re-submit the same job while it is queued or running.
    Duplicate,
    /// Delay the submission by a virtual interval.
    Delay,
    /// Fire a burst of junk submissions to saturate the queue.
    Saturate,
}

impl ChaosOp {
    fn salt(self) -> u64 {
        match self {
            ChaosOp::WorkerKill => 0x4B49_4C4C,
            ChaosOp::StoreFault => 0x5354_4F52,
            ChaosOp::Duplicate => 0x4455_5045,
            ChaosOp::Delay => 0x4445_4C41,
            ChaosOp::Saturate => 0x5341_5455,
        }
    }
}

/// A seeded, replayable schedule of service-level chaos.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// The seed every decision derives from.
    pub seed: u64,
    /// Probability a job's worker is killed on its first attempt.
    pub worker_kill_rate: f64,
    /// Probability a job's store writes run under a tight crash budget.
    pub store_fault_rate: f64,
    /// Probability a job is submitted twice.
    pub duplicate_rate: f64,
    /// Upper bound on per-job submission delay (virtual ms).
    pub max_delay_ms: u64,
}

impl ChaosPlan {
    /// The default mixture: every fault class enabled at rates high
    /// enough that a handful of jobs exercises all of them.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            worker_kill_rate: 0.4,
            store_fault_rate: 0.3,
            duplicate_rate: 0.5,
            max_delay_ms: 50,
        }
    }

    /// A plan that schedules nothing (rates zeroed) — the control arm.
    pub fn calm(seed: u64) -> Self {
        Self {
            seed,
            worker_kill_rate: 0.0,
            store_fault_rate: 0.0,
            duplicate_rate: 0.0,
            max_delay_ms: 0,
        }
    }

    /// The raw decision word for `(seed, job, op)`.
    fn word(&self, job: &str, op: ChaosOp) -> u64 {
        splitmix(self.seed ^ fnv1a(job.as_bytes(), 0xCBF2_9CE4_8422_2325) ^ op.salt())
    }

    /// Uniform draw in `[0, 1)` for `(seed, job, op)`.
    fn unit(&self, job: &str, op: ChaosOp) -> f64 {
        (self.word(job, op) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether this job's worker dies mid-job (first attempt panics).
    pub fn kills_worker(&self, job: &str) -> bool {
        self.unit(job, ChaosOp::WorkerKill) < self.worker_kill_rate
    }

    /// Whether this job's store writes get a constrained crash budget.
    pub fn faults_store(&self, job: &str) -> bool {
        self.unit(job, ChaosOp::StoreFault) < self.store_fault_rate
    }

    /// The crash budget (ops before the injected crash) for a faulted
    /// job. Deterministic in `[lo, hi]`; unused when
    /// [`faults_store`](Self::faults_store) is false.
    pub fn store_budget(&self, job: &str, lo: u64, hi: u64) -> u64 {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        lo + self.word(job, ChaosOp::StoreFault) % (hi - lo + 1)
    }

    /// How many *extra* times the job is submitted (0 = no duplicates).
    pub fn duplicates(&self, job: &str) -> u64 {
        if self.unit(job, ChaosOp::Duplicate) < self.duplicate_rate {
            1 + self.word(job, ChaosOp::Duplicate) % 2
        } else {
            0
        }
    }

    /// Virtual delay before the job is submitted (ms).
    pub fn delay_ms(&self, job: &str) -> u64 {
        if self.max_delay_ms == 0 {
            return 0;
        }
        self.word(job, ChaosOp::Delay) % (self.max_delay_ms + 1)
    }

    /// Size of a queue-saturation burst for a named phase: enough junk
    /// submissions to overrun `queue_cap` by a deterministic margin.
    pub fn saturation_burst(&self, phase: &str, queue_cap: usize) -> usize {
        queue_cap + 1 + (self.word(phase, ChaosOp::Saturate) % 4) as usize
    }

    /// Lowers the plan onto the pipeline's fault injector: every job the
    /// plan kills gets a `Panic` target on its first attempt. The
    /// supervisor's retry ladder then has to recover it.
    pub fn fault_plan(&self, jobs: &[&str]) -> FaultPlan {
        let mut plan = FaultPlan::none();
        plan.seed = self.seed;
        for job in jobs {
            if self.kills_worker(job) {
                plan = plan.with_target(job, FaultKind::Panic, 1);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let a = ChaosPlan::new(7);
        let b = ChaosPlan::new(7);
        for job in ["3ckz", "3eax", "1a2b"] {
            assert_eq!(a.kills_worker(job), b.kills_worker(job));
            assert_eq!(a.duplicates(job), b.duplicates(job));
            assert_eq!(a.delay_ms(job), b.delay_ms(job));
            assert_eq!(a.store_budget(job, 5, 40), b.store_budget(job, 5, 40));
        }
        assert_eq!(a.saturation_burst("p1", 4), b.saturation_burst("p1", 4));
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = ChaosPlan::new(1);
        let b = ChaosPlan::new(2);
        let jobs = ["3ckz", "3eax", "1a2b", "2xyz", "9q9q", "5f5f"];
        let differs = jobs.iter().any(|j| {
            a.kills_worker(j) != b.kills_worker(j)
                || a.delay_ms(j) != b.delay_ms(j)
                || a.duplicates(j) != b.duplicates(j)
        });
        assert!(differs, "two seeds produced identical chaos across 6 jobs");
    }

    #[test]
    fn calm_plan_schedules_nothing() {
        let plan = ChaosPlan::calm(99);
        for job in ["3ckz", "3eax", "1a2b"] {
            assert!(!plan.kills_worker(job));
            assert!(!plan.faults_store(job));
            assert_eq!(plan.duplicates(job), 0);
            assert_eq!(plan.delay_ms(job), 0);
        }
    }

    #[test]
    fn budgets_stay_in_bounds() {
        let plan = ChaosPlan::new(3);
        for job in ["a", "b", "c", "d", "e"] {
            let budget = plan.store_budget(job, 5, 40);
            assert!((5..=40).contains(&budget), "budget {budget} out of range");
        }
        assert!(plan.saturation_burst("x", 4) > 4);
    }

    #[test]
    fn fault_plan_targets_exactly_the_killed_jobs() {
        let plan = ChaosPlan::new(11);
        let jobs = ["3ckz", "3eax", "1a2b", "2xyz"];
        let fp = plan.fault_plan(&jobs);
        for job in jobs {
            let targeted = fp
                .targets
                .iter()
                .any(|t| t.job == job && t.kind == FaultKind::Panic);
            assert_eq!(targeted, plan.kills_worker(job), "mismatch for {job}");
        }
    }
}
