//! The two-stage VQE workflow (paper §4.3.2 and §5.2).
//!
//! Stage 1 — *optimization*: COBYLA minimizes `E(θ) = ⟨ψ(θ)|H|ψ(θ)⟩`,
//! evaluated through the diagonal fast path of the statevector simulator,
//! optionally under trajectory noise. The raw per-iteration energies give
//! the `Lowest/Highest Energy` columns of Tables 1–3.
//!
//! Stage 2 — *sampling*: the circuit is frozen at θ*, executed with a
//! large shot count (100,000 in the paper), and every observed bitstring
//! is mapped back to a conformation energy; the lowest-energy sampled
//! bitstring is the structure prediction.
//!
//! Every entry point returns `Result<VqeOutcome, VqeError>`: backend
//! faults (queue rejection, calibration drift, shot shortfall — see
//! [`crate::fault`]) and optimizer divergence (non-finite energies) are
//! typed errors, never panics, so a supervisor can retry or degrade.

use crate::error::VqeError;
use crate::fault::{FaultInjector, NoFaults};
use qdb_lattice::hamiltonian::FoldingHamiltonian;
use qdb_optimize::{Cobyla, Optimizer};
use qdb_quantum::ansatz::{efficient_su2, Entanglement};
use qdb_quantum::circuit::Circuit;
use qdb_quantum::compile::CompiledCircuit;
use qdb_quantum::exec::SimWorkspace;
use qdb_quantum::noise::{apply_noisy, noisy_expectation_ws, NoiseModel};
use qdb_quantum::sampler::{sample_counts, Counts};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// How stage-1 energies (and stage-2 state preparation) are evaluated.
///
/// The engines implement the same unitary; they differ only in the order
/// of floating-point operations. Fused matrix products round differently
/// in the last ulp, so per-iteration energies agree to ~1e-13 relative but
/// are not bit-identical between engines (see DESIGN.md §"Execution
/// engine"). Each engine is individually deterministic for a fixed seed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EnergyEngine {
    /// Fused compiled-circuit plan streamed through a reusable workspace —
    /// the fast path, and the default.
    #[default]
    Compiled,
    /// Reference gate-by-gate application, kept for regression comparison
    /// and debugging.
    Direct,
}

/// Configuration of one VQE run.
#[derive(Clone, Debug)]
pub struct VqeConfig {
    /// EfficientSU2 repetition count.
    pub reps: usize,
    /// Optimizer evaluation budget (paper: "over 200 iterations").
    pub max_iters: usize,
    /// Stage-2 shot count (paper: 100,000).
    pub shots: u64,
    /// Master seed: initial parameters, noise trajectories, and sampling
    /// all derive from it.
    pub seed: u64,
    /// Stage-1 (optimization) noise model (use `NoiseModel::IDEAL` for
    /// noiseless optimization).
    pub noise: NoiseModel,
    /// Trajectories averaged per noisy energy evaluation.
    pub trajectories: usize,
    /// Stage-2 (sampling) noise model — kept separate because the noise
    /// spread during sampling is central to the method while optimization
    /// noise mostly costs determinism in tests.
    pub sample_noise: NoiseModel,
    /// Stage-2 sampling trajectories: on hardware every shot sees fresh
    /// noise, which the paper credits with helping escape local minima
    /// (§5.2). The shot budget is split across this many independent noisy
    /// executions of the frozen circuit. Ignored for the ideal model.
    pub sample_trajectories: usize,
    /// Stage-1 energy estimator: `None` evaluates the exact expectation
    /// through the diagonal fast path; `Some(k)` estimates it from `k`
    /// measurement shots, as real hardware must (§5.2: the first stage
    /// "approximates the ground-state energy without requiring
    /// high-precision measurements").
    pub estimator_shots: Option<u64>,
    /// Execution engine for state evolution (default: compiled).
    pub engine: EnergyEngine,
}

impl VqeConfig {
    /// The paper's settings: EfficientSU2 reps 2, 200+ COBYLA iterations,
    /// 100k shots under Eagle-like noise spread over many trajectories.
    pub fn paper(seed: u64) -> Self {
        Self {
            reps: 2,
            max_iters: 220,
            shots: 100_000,
            seed,
            noise: NoiseModel::eagle_like(),
            trajectories: 1,
            sample_noise: NoiseModel::eagle_like().scaled(10.0),
            sample_trajectories: 25,
            estimator_shots: None,
            engine: EnergyEngine::Compiled,
        }
    }

    /// Reduced settings for tests and CI: reps 2 (the ansatz needs the
    /// second entangling layer to express folded states well), 60
    /// iterations, 20k shots, noiseless optimization with noisy
    /// multi-trajectory sampling.
    pub fn fast(seed: u64) -> Self {
        Self {
            reps: 2,
            max_iters: 60,
            shots: 20_000,
            seed,
            noise: NoiseModel::IDEAL,
            trajectories: 1,
            sample_noise: NoiseModel::eagle_like().scaled(10.0),
            sample_trajectories: 16,
            estimator_shots: None,
            engine: EnergyEngine::Compiled,
        }
    }
}

/// Everything a VQE run produces.
#[derive(Clone, Debug)]
pub struct VqeOutcome {
    /// Optimized parameters θ*.
    pub best_params: Vec<f64>,
    /// Minimum expectation energy observed during optimization.
    pub lowest_energy: f64,
    /// Maximum expectation energy observed during optimization.
    pub highest_energy: f64,
    /// Raw per-evaluation energies (optimization trace).
    pub history: Vec<f64>,
    /// Stage-2 measurement outcomes.
    pub counts: Counts,
    /// Lowest-energy sampled bitstring — the structure prediction.
    pub best_bitstring: u64,
    /// Its conformation energy.
    pub best_bitstring_energy: f64,
    /// Objective evaluations spent.
    pub evals: usize,
}

impl VqeOutcome {
    /// `Highest − Lowest` — the paper's "Energy Range" column.
    pub fn energy_range(&self) -> f64 {
        self.highest_energy - self.lowest_energy
    }
}

/// Builds the logical ansatz for a Hamiltonian: EfficientSU2 with linear
/// entanglement over the conformation register (§4.3.2).
pub fn build_ansatz(ham: &FoldingHamiltonian, reps: usize) -> Circuit {
    efficient_su2(ham.num_qubits(), reps, Entanglement::Linear)
}

/// Runs the full two-stage workflow with a fresh [`SimWorkspace`].
pub fn run_vqe(ham: &FoldingHamiltonian, config: &VqeConfig) -> Result<VqeOutcome, VqeError> {
    let mut ws = SimWorkspace::new(ham.num_qubits());
    run_vqe_with_workspace(ham, config, &mut ws)
}

/// Runs the full two-stage workflow through a caller-owned workspace, so a
/// batch worker amortizes its statevector, scratch, and bound-table buffers
/// across jobs. After the first objective evaluation warms the workspace,
/// the ideal-noise compiled hot loop performs zero heap allocations per
/// evaluation.
pub fn run_vqe_with_workspace(
    ham: &FoldingHamiltonian,
    config: &VqeConfig,
    ws: &mut SimWorkspace,
) -> Result<VqeOutcome, VqeError> {
    run_vqe_injected(ham, config, ws, &mut NoFaults)
}

/// [`run_vqe_with_workspace`] with an explicit backend [`FaultInjector`].
///
/// The injector is consulted at each backend interaction point (job
/// submission, per-evaluation noise model, measured energies, stage-2
/// shot delivery). Production callers pass [`NoFaults`], whose hooks
/// inline to nothing; supervised builds thread a seeded
/// [`crate::fault::PlanInjector`] to rehearse utility-level flakiness.
pub fn run_vqe_injected<F: FaultInjector>(
    ham: &FoldingHamiltonian,
    config: &VqeConfig,
    ws: &mut SimWorkspace,
    injector: &mut F,
) -> Result<VqeOutcome, VqeError> {
    injector.on_submit()?;

    // Telemetry handles fetched once per run; inside the hot loop each
    // evaluation costs two clock reads and two relaxed atomic adds. The
    // flight recorder (if installed) is likewise fetched once, so each
    // eval reuses the histogram's own clock readings as trace timestamps.
    let telemetry = qdb_telemetry::global();
    telemetry.counter("vqe.runs").inc();
    let m_energy_evals = telemetry.counter("vqe.energy_evals");
    let h_energy_eval = telemetry.histogram("vqe.energy_eval");
    let tel_clock = telemetry.clock().clone();
    let recorder = telemetry.recorder();

    let ansatz = build_ansatz(ham, config.reps);
    let compiled = CompiledCircuit::compile(&ansatz);
    let diagonal = ham.dense_diagonal();
    let n = ansatz.num_qubits();
    let engine = config.engine;

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    // Small random initial angles: spreads amplitude beyond |0…0⟩ without
    // starting in a barren plateau.
    let x0: Vec<f64> = (0..ansatz.num_params())
        .map(|_| rng.gen_range(-0.4..0.4))
        .collect();

    // Stage 1: optimization. Record *raw* energies (not best-so-far) —
    // Tables 1–3 report the min/max energy the system visited. A fault
    // (injected or a genuine divergence) is latched in `fault`: the
    // objective then degenerates to a constant so the optimizer winds down
    // cheaply, and the latched error is returned after `minimize`.
    let mut raw_history: Vec<f64> = Vec::with_capacity(config.max_iters);
    let base_noise = config.noise;
    let trajectories = config.trajectories;
    let mut energy_rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(1));
    let estimator_shots = config.estimator_shots;
    let mut fault: Option<VqeError> = None;
    let mut eval_idx = 0usize;
    let mut objective = |params: &[f64]| -> f64 {
        if fault.is_some() {
            return 0.0;
        }
        let eval = eval_idx;
        eval_idx += 1;
        let eval_start_ns = tel_clock.now_ns();
        let noise = match injector.stage1_noise(eval, base_noise) {
            Ok(model) => model,
            Err(e) => {
                fault = Some(e);
                return 0.0;
            }
        };
        let e = match estimator_shots {
            // Shot-based estimation: evolve (noisily if configured), draw
            // k shots, average the sampled conformation energies.
            Some(k) => {
                ws.ensure_qubits(n);
                if !noise.is_ideal() {
                    let sv = ws.statevector_mut();
                    sv.reset_zero();
                    apply_noisy(sv, &ansatz, params, &noise, &mut energy_rng);
                } else if engine == EnergyEngine::Compiled {
                    ws.run(&compiled, params);
                } else {
                    let sv = ws.statevector_mut();
                    sv.reset_zero();
                    sv.apply_parametric(&ansatz, params);
                }
                let counts = sample_counts(ws.statevector(), k, &mut energy_rng);
                let total: f64 = counts
                    .iter()
                    .map(|(bits, c)| diagonal[bits as usize] * c as f64)
                    .sum();
                total / counts.shots() as f64
            }
            None if noise.is_ideal() && engine == EnergyEngine::Compiled => {
                ws.energy(&compiled, params, &diagonal)
            }
            None if noise.is_ideal() => {
                ws.ensure_qubits(n);
                let sv = ws.statevector_mut();
                sv.reset_zero();
                sv.apply_parametric(&ansatz, params);
                sv.expectation_diagonal(&diagonal)
            }
            None => noisy_expectation_ws(
                &ansatz,
                &compiled,
                params,
                &diagonal,
                &noise,
                trajectories,
                &mut energy_rng,
                ws,
            ),
        };
        m_energy_evals.inc();
        let eval_end_ns = tel_clock.now_ns();
        h_energy_eval.record(eval_end_ns.saturating_sub(eval_start_ns));
        // Both edges push at completion: fault paths above emit nothing,
        // so begin/end stay balanced, and timestamps stay nondecreasing.
        if let Some(rec) = recorder.as_deref() {
            rec.event(
                qdb_telemetry::EventKind::Begin,
                "vqe.energy_eval",
                eval_start_ns,
            );
            rec.event(
                qdb_telemetry::EventKind::End,
                "vqe.energy_eval",
                eval_end_ns,
            );
        }
        let e = injector.observe_energy(eval, e);
        // Divergence guard: a NaN/∞ energy must never leak into the
        // history (and from there into `lowest_energy`/`highest_energy`
        // or the optimizer's trust region).
        if !e.is_finite() {
            fault = Some(VqeError::NonFiniteEnergy { eval });
            return 0.0;
        }
        raw_history.push(e);
        e
    };
    let optimizer = Cobyla::with_budget(config.max_iters);
    let result = {
        let _stage1 = telemetry.span("vqe.optimize");
        optimizer.minimize(&mut objective, &x0)
    };
    telemetry.counter("vqe.iterations").add(result.evals as u64);
    if let Some(e) = fault {
        return Err(e);
    }

    let lowest = raw_history.iter().copied().fold(f64::INFINITY, f64::min);
    let highest = raw_history
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);

    // Stage 2: freeze θ*, sample. The backend commits to a shot budget up
    // front; delivering less than the configuration asked for voids the
    // attempt (the paper's campaign saw exactly such short counts).
    let delivered = injector.stage2_shots(config.shots);
    if delivered < config.shots {
        return Err(VqeError::ShotShortfall {
            delivered,
            requested: config.shots,
        });
    }

    // Under noise, the shot budget splits across independent trajectories —
    // on hardware each shot sees a fresh error pattern, the stochastic
    // perturbation §5.2 leans on.
    let mut sample_rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(2));
    let sample_noise = config.sample_noise;
    let stage2_span = telemetry.span("vqe.sample");
    let counts = if sample_noise.is_ideal() {
        if engine == EnergyEngine::Compiled {
            ws.run(&compiled, &result.x);
        } else {
            ws.ensure_qubits(n);
            let sv = ws.statevector_mut();
            sv.reset_zero();
            sv.apply_parametric(&ansatz, &result.x);
        }
        sample_counts(ws.statevector(), config.shots, &mut sample_rng)
    } else {
        let batches = config.sample_trajectories.max(1) as u64;
        let mut merged: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        ws.ensure_qubits(n);
        for batch in 0..batches {
            let shots = config.shots / batches + if batch < config.shots % batches { 1 } else { 0 };
            if shots == 0 {
                continue;
            }
            let sv = ws.statevector_mut();
            sv.reset_zero();
            apply_noisy(sv, &ansatz, &result.x, &sample_noise, &mut sample_rng);
            let mut c = sample_counts(ws.statevector(), shots, &mut sample_rng);
            if sample_noise.readout > 0.0 {
                c = c.with_readout_error(n, sample_noise.readout, &mut sample_rng);
            }
            for (bits, count) in c.iter() {
                *merged.entry(bits).or_insert(0) += count;
            }
        }
        Counts::from_map(merged)
    };
    drop(stage2_span);

    telemetry.counter("vqe.shots_sampled").add(counts.shots());

    // Map sampled bitstrings to conformation energies; take the minimum
    // over *finite* energies (total order, no NaN panic). Bitstrings are
    // reflection-canonicalized (chirality gauge) so the prediction is
    // stable across degenerate mirror twins.
    let enc = ham.encoding();
    let (best_bitstring, best_bitstring_energy) = counts
        .iter()
        .map(|(bits, _)| (enc.canonicalize(bits), ham.energy_of_bits(bits)))
        .filter(|(_, e)| e.is_finite())
        .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
        .ok_or(VqeError::NoSamples)?;

    Ok(VqeOutcome {
        best_params: result.x,
        lowest_energy: lowest,
        highest_energy: highest,
        history: raw_history,
        counts,
        best_bitstring,
        best_bitstring_energy,
        evals: result.evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan};
    use qdb_lattice::hamiltonian::EnergyScale;
    use qdb_lattice::sequence::ProteinSequence;

    fn ham(s: &str) -> FoldingHamiltonian {
        FoldingHamiltonian::with_unit_scale(ProteinSequence::parse(s).unwrap())
    }

    fn run_vqe(h: &FoldingHamiltonian, cfg: &VqeConfig) -> VqeOutcome {
        super::run_vqe(h, cfg).expect("fault-free run succeeds")
    }

    #[test]
    fn vqe_finds_valid_conformation_small() {
        let h = ham("VKDRS");
        let out = run_vqe(&h, &VqeConfig::fast(11));
        let c = h.conformation_of(out.best_bitstring);
        assert!(
            c.is_self_avoiding(),
            "VQE should sample at least one penalty-free conformation"
        );
        assert!(out.lowest_energy <= out.highest_energy);
        assert_eq!(out.history.len(), out.evals);
    }

    #[test]
    fn vqe_approaches_ground_state_energy() {
        let h = ham("IQFHFH");
        let (_, e_ground) = h.ground_state();
        let cfg = VqeConfig {
            max_iters: 150,
            ..VqeConfig::fast(3)
        };
        let out = run_vqe(&h, &cfg);
        // Stage-2 best sampled energy must land at the true ground state
        // for this small register (sampling explores broadly even if
        // optimization is imperfect).
        assert!(
            (out.best_bitstring_energy - e_ground).abs() < 1e-9,
            "sampled {} vs ground {}",
            out.best_bitstring_energy,
            e_ground
        );
        assert!(
            out.best_bitstring_energy >= e_ground - 1e-9,
            "cannot beat the ground state"
        );
    }

    #[test]
    fn optimization_reduces_energy() {
        let h = ham("PWWERYQP");
        let out = run_vqe(&h, &VqeConfig::fast(5));
        // The optimizer probes upward occasionally (trust-region moves), so
        // compare the run's floor against the opening average.
        let early: f64 = out.history[..5].iter().sum::<f64>() / 5.0;
        assert!(
            out.lowest_energy < early - 0.5,
            "optimization should dig below the opening energies: early {early}, lowest {}",
            out.lowest_energy
        );
    }

    #[test]
    fn seed_determinism() {
        let h = ham("VKDRS");
        let a = run_vqe(&h, &VqeConfig::fast(21));
        let b = run_vqe(&h, &VqeConfig::fast(21));
        assert_eq!(a.best_bitstring, b.best_bitstring);
        assert_eq!(a.history, b.history);
        let c = run_vqe(&h, &VqeConfig::fast(22));
        assert_ne!(a.history, c.history, "different seed must differ");
    }

    #[test]
    fn noisy_run_still_produces_valid_output() {
        let h = ham("RYRDV");
        let cfg = VqeConfig {
            noise: NoiseModel::eagle_like().scaled(5.0),
            trajectories: 2,
            ..VqeConfig::fast(9)
        };
        let out = run_vqe(&h, &cfg);
        assert_eq!(out.counts.shots(), cfg.shots);
        assert!(out.best_bitstring_energy.is_finite());
        assert!(out.energy_range() >= 0.0);
    }

    #[test]
    fn shot_estimator_converges_to_exact() {
        let h = ham("VKDRS");
        let exact = run_vqe(&h, &VqeConfig::fast(31));
        // With many estimator shots the optimization trace stays close to
        // the exact-expectation trace at the start (same x0).
        let cfg = VqeConfig {
            estimator_shots: Some(50_000),
            ..VqeConfig::fast(31)
        };
        let shot_based = run_vqe(&h, &cfg);
        let d0 = (shot_based.history[0] - exact.history[0]).abs();
        assert!(d0 < 0.5, "first-evaluation estimate off by {d0}");
        // And the run still ends with a valid prediction.
        assert!(shot_based.best_bitstring_energy.is_finite());
        // Fewer shots → noisier estimates (statistical sanity).
        let cfg_small = VqeConfig {
            estimator_shots: Some(64),
            ..VqeConfig::fast(31)
        };
        let noisy = run_vqe(&h, &cfg_small);
        let dev_small = (noisy.history[0] - exact.history[0]).abs();
        assert!(dev_small.is_finite());
    }

    #[test]
    fn calibrated_scale_energy_band() {
        // With the calibrated scale the optimization trace sits in the
        // paper's absolute band: lowest ≈ offset, highest ≈ 1.1–1.6× offset.
        let seq = ProteinSequence::parse("DGPHGM").unwrap();
        let h = FoldingHamiltonian::new(seq, Default::default(), EnergyScale::calibrated(23));
        let out = run_vqe(&h, &VqeConfig::fast(2));
        let offset = h.scale().offset;
        assert!(
            out.lowest_energy > 0.5 * offset && out.lowest_energy < 1.6 * offset,
            "lowest {} vs offset {offset}",
            out.lowest_energy
        );
        assert!(out.highest_energy > out.lowest_energy);
    }

    #[test]
    fn injected_rejection_surfaces_as_typed_error() {
        let h = ham("VKDRS");
        let plan = FaultPlan::none().with_target("job", FaultKind::Reject, 1);
        let mut ws = SimWorkspace::new(h.num_qubits());
        let err = run_vqe_injected(
            &h,
            &VqeConfig::fast(4),
            &mut ws,
            &mut plan.injector("job", 0),
        )
        .unwrap_err();
        assert_eq!(err, VqeError::JobRejected);
        // Retry (attempt 1) is clean and matches the uninjected run exactly.
        let retried = run_vqe_injected(
            &h,
            &VqeConfig::fast(4),
            &mut ws,
            &mut plan.injector("job", 1),
        )
        .unwrap();
        let clean = run_vqe(&h, &VqeConfig::fast(4));
        assert_eq!(retried.best_bitstring, clean.best_bitstring);
        assert_eq!(retried.history, clean.history);
    }

    #[test]
    fn injected_drift_aborts_the_attempt() {
        let h = ham("VKDRS");
        let plan = FaultPlan::none().with_target("job", FaultKind::Drift, 1);
        let mut ws = SimWorkspace::new(h.num_qubits());
        let err = run_vqe_injected(
            &h,
            &VqeConfig::fast(4),
            &mut ws,
            &mut plan.injector("job", 0),
        )
        .unwrap_err();
        assert!(
            matches!(err, VqeError::CalibrationDrift { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn injected_shortfall_reports_delivered_and_requested() {
        let h = ham("VKDRS");
        let plan = FaultPlan::none().with_target("job", FaultKind::Shortfall, 1);
        let cfg = VqeConfig::fast(4);
        let mut ws = SimWorkspace::new(h.num_qubits());
        let err = run_vqe_injected(&h, &cfg, &mut ws, &mut plan.injector("job", 0)).unwrap_err();
        match err {
            VqeError::ShotShortfall {
                delivered,
                requested,
            } => {
                assert_eq!(requested, cfg.shots);
                assert!(delivered < requested);
            }
            other => panic!("expected shortfall, got {other:?}"),
        }
    }

    #[test]
    fn nan_guard_rejects_corrupted_energies() {
        let h = ham("VKDRS");
        let plan = FaultPlan::none().with_target("job", FaultKind::NanEnergy, 1);
        let mut ws = SimWorkspace::new(h.num_qubits());
        let err = run_vqe_injected(
            &h,
            &VqeConfig::fast(4),
            &mut ws,
            &mut plan.injector("job", 0),
        )
        .unwrap_err();
        assert!(matches!(err, VqeError::NonFiniteEnergy { .. }), "{err:?}");
        // The guard fires at the corrupted evaluation, not at the end:
        // no non-finite value ever reaches a history the caller could see.
        if let VqeError::NonFiniteEnergy { eval } = err {
            assert!(
                eval < 12,
                "corruption was scheduled in the first dozen evals"
            );
        }
    }

    #[test]
    fn zero_shot_budget_is_no_samples_not_a_panic() {
        let h = ham("VKDRS");
        let cfg = VqeConfig {
            shots: 0,
            sample_noise: qdb_quantum::noise::NoiseModel::IDEAL,
            ..VqeConfig::fast(4)
        };
        assert_eq!(super::run_vqe(&h, &cfg).unwrap_err(), VqeError::NoSamples);
    }
}
