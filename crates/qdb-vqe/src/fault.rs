//! Deterministic fault injection for utility-level backend flakiness.
//!
//! The paper's 55-fragment campaign ran on shared IBM Eagle hardware; the
//! companion framework paper restarts failed fragment jobs by hand after
//! queue rejections, calibration drift, and short shot counts. This module
//! models that environment *deterministically*: a seeded [`FaultPlan`]
//! decides, per `(job, attempt)`, whether and how an attempt fails, so a
//! faulted build is exactly replayable and recovery properties can be
//! asserted in tests (a plan whose faults are exhausted before the retry
//! budget yields outputs byte-identical to a fault-free run).
//!
//! The runner consumes faults through the [`FaultInjector`] trait. The
//! default [`NoFaults`] implementation is a zero-sized type whose hooks
//! compile to nothing — production runs pay nothing for the layer.

use crate::error::VqeError;
use qdb_quantum::noise::NoiseModel;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Hooks the VQE runner calls at each backend interaction point.
///
/// Implementations may perturb what the "hardware" returns or abort the
/// attempt with a typed error. All hooks default to transparent pass-through.
pub trait FaultInjector {
    /// Called once before the job starts; `Err` models queue-level
    /// rejection (the job never consumes compute).
    fn on_submit(&mut self) -> Result<(), VqeError> {
        Ok(())
    }

    /// Called before each stage-1 objective evaluation with the configured
    /// noise model. May return a perturbed model (calibration drift in
    /// progress) or abort the attempt (drift detected).
    fn stage1_noise(&mut self, eval: usize, base: NoiseModel) -> Result<NoiseModel, VqeError> {
        let _ = eval;
        Ok(base)
    }

    /// Called with each measured stage-1 energy; may corrupt it (a backend
    /// returning garbage estimates). The runner's divergence guard turns a
    /// non-finite corrupted energy into [`VqeError::NonFiniteEnergy`].
    fn observe_energy(&mut self, eval: usize, energy: f64) -> f64 {
        let _ = eval;
        energy
    }

    /// Called before stage-2 sampling with the requested shot budget;
    /// returns the number of shots the backend will actually deliver.
    fn stage2_shots(&mut self, requested: u64) -> u64 {
        requested
    }
}

/// The production injector: every hook is a transparent pass-through that
/// the optimizer inlines away.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

/// The failure classes a [`FaultPlan`] can schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Queue-level job rejection at submission.
    Reject,
    /// Mid-run calibration drift: a few evaluations run under a perturbed
    /// noise model, then the attempt aborts when the drift is detected.
    Drift,
    /// Stage-2 sampling delivers fewer shots than requested.
    Shortfall,
    /// One stage-1 energy estimate comes back non-finite (garbage readout).
    NanEnergy,
    /// The backend client panics outright (models a crash bug; used to
    /// exercise panic isolation in the batch pool and supervisor).
    Panic,
}

impl FaultKind {
    /// Stable identifier for logs and manifests.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Reject => "reject",
            FaultKind::Drift => "drift",
            FaultKind::Shortfall => "shortfall",
            FaultKind::NanEnergy => "nan-energy",
            FaultKind::Panic => "panic",
        }
    }
}

/// An explicit per-job fault override: `job` fails with `kind` on every
/// attempt below `attempts`.
#[derive(Clone, Debug)]
pub struct TargetedFault {
    /// Job id the fault applies to.
    pub job: String,
    /// Failure class.
    pub kind: FaultKind,
    /// Attempts affected: attempt indices `0..attempts` fail. Use
    /// `usize::MAX` for a permanent fault.
    pub attempts: usize,
}

/// A seeded, deterministic schedule of backend faults.
///
/// Probabilistic rates draw per `(job, attempt)` from a stream keyed by
/// `(plan seed, job id, attempt)` — the *deterministic seed-shift on
/// retry*: each retry rolls fresh (but reproducible) fault dice rather
/// than replaying the identical environment. Attempts at or beyond
/// `faulty_attempts` are always clean, which bounds how long a job can be
/// starved and is what makes recovery properties provable.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Master seed for all fault decisions.
    pub seed: u64,
    /// Per-attempt probability of queue rejection.
    pub rejection: f64,
    /// Per-attempt probability of mid-run calibration drift.
    pub drift: f64,
    /// Per-attempt probability of a stage-2 shot shortfall.
    pub shortfall: f64,
    /// Per-attempt probability of a corrupted (non-finite) energy estimate.
    pub nan_energy: f64,
    /// Attempt indices `0..faulty_attempts` may fault; later attempts are
    /// guaranteed clean.
    pub faulty_attempts: usize,
    /// Explicit per-job overrides, checked before the probabilistic draw.
    pub targets: Vec<TargetedFault>,
}

impl FaultPlan {
    /// A plan that injects nothing (the supervisor's default environment).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            rejection: 0.0,
            drift: 0.0,
            shortfall: 0.0,
            nan_energy: 0.0,
            faulty_attempts: 0,
            targets: Vec::new(),
        }
    }

    /// A moderately hostile utility-level backend: transient faults only
    /// (rejection, drift, shortfall), at most the first two attempts of
    /// each job affected.
    pub fn flaky(seed: u64) -> Self {
        FaultPlan {
            seed,
            rejection: 0.25,
            drift: 0.15,
            shortfall: 0.15,
            nan_energy: 0.0,
            faulty_attempts: 2,
            targets: Vec::new(),
        }
    }

    /// Adds an explicit per-job fault override.
    pub fn with_target(mut self, job: &str, kind: FaultKind, attempts: usize) -> Self {
        self.targets.push(TargetedFault {
            job: job.to_string(),
            kind,
            attempts,
        });
        self
    }

    /// The fault (if any) this plan schedules for `(job, attempt)`.
    pub fn scheduled(&self, job: &str, attempt: usize) -> Option<FaultKind> {
        for t in &self.targets {
            if t.job == job {
                return (attempt < t.attempts).then_some(t.kind);
            }
        }
        if attempt >= self.faulty_attempts {
            return None;
        }
        let mut rng = self.rng_for(job, attempt);
        let u: f64 = rng.gen();
        let mut edge = self.rejection;
        if u < edge {
            return Some(FaultKind::Reject);
        }
        edge += self.drift;
        if u < edge {
            return Some(FaultKind::Drift);
        }
        edge += self.shortfall;
        if u < edge {
            return Some(FaultKind::Shortfall);
        }
        edge += self.nan_energy;
        if u < edge {
            return Some(FaultKind::NanEnergy);
        }
        None
    }

    /// Builds the injector for one attempt of one job.
    pub fn injector(&self, job: &str, attempt: usize) -> PlanInjector {
        let kind = self.scheduled(job, attempt);
        // Burn the scheduling draw so fault parameters are independent of
        // the accept/reject decision.
        let mut rng = self.rng_for(job, attempt);
        let _: f64 = rng.gen();
        let scheduled = match kind {
            None => Scheduled::None,
            Some(FaultKind::Reject) => Scheduled::Reject,
            Some(FaultKind::Drift) => Scheduled::Drift {
                at_eval: rng.gen_range(1..12),
                window: rng.gen_range(2..5),
                drift_seed: rng.gen(),
            },
            Some(FaultKind::Shortfall) => Scheduled::Shortfall {
                fraction: rng.gen_range(0.2..0.9),
            },
            Some(FaultKind::NanEnergy) => Scheduled::NanEnergy {
                at_eval: rng.gen_range(1..12),
            },
            Some(FaultKind::Panic) => Scheduled::Panic,
        };
        PlanInjector { scheduled }
    }

    fn rng_for(&self, job: &str, attempt: usize) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(splitmix(
            self.seed ^ fnv1a(job) ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

#[derive(Clone, Debug)]
enum Scheduled {
    None,
    Reject,
    Drift {
        at_eval: usize,
        window: usize,
        drift_seed: u64,
    },
    Shortfall {
        fraction: f64,
    },
    NanEnergy {
        at_eval: usize,
    },
    Panic,
}

/// The injector a [`FaultPlan`] issues for one `(job, attempt)` pair.
#[derive(Clone, Debug)]
pub struct PlanInjector {
    scheduled: Scheduled,
}

impl PlanInjector {
    /// An injector that never faults (equivalent to [`NoFaults`]).
    pub fn clean() -> Self {
        PlanInjector {
            scheduled: Scheduled::None,
        }
    }

    /// The fault class this injector will deliver, if any.
    pub fn kind(&self) -> Option<FaultKind> {
        match self.scheduled {
            Scheduled::None => None,
            Scheduled::Reject => Some(FaultKind::Reject),
            Scheduled::Drift { .. } => Some(FaultKind::Drift),
            Scheduled::Shortfall { .. } => Some(FaultKind::Shortfall),
            Scheduled::NanEnergy { .. } => Some(FaultKind::NanEnergy),
            Scheduled::Panic => Some(FaultKind::Panic),
        }
    }
}

impl FaultInjector for PlanInjector {
    fn on_submit(&mut self) -> Result<(), VqeError> {
        match self.scheduled {
            Scheduled::Reject => Err(VqeError::JobRejected),
            Scheduled::Panic => panic!("injected backend client crash"),
            _ => Ok(()),
        }
    }

    fn stage1_noise(&mut self, eval: usize, base: NoiseModel) -> Result<NoiseModel, VqeError> {
        if let Scheduled::Drift {
            at_eval,
            window,
            drift_seed,
        } = self.scheduled
        {
            if eval >= at_eval + window {
                return Err(VqeError::CalibrationDrift { at_eval: eval });
            }
            if eval >= at_eval {
                return Ok(base.drifted(drift_seed));
            }
        }
        Ok(base)
    }

    fn observe_energy(&mut self, eval: usize, energy: f64) -> f64 {
        if let Scheduled::NanEnergy { at_eval } = self.scheduled {
            if eval == at_eval {
                return f64::NAN;
            }
        }
        energy
    }

    fn stage2_shots(&mut self, requested: u64) -> u64 {
        if let Scheduled::Shortfall { fraction } = self.scheduled {
            return ((requested as f64) * fraction) as u64;
        }
        requested
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_job_and_attempt() {
        let plan = FaultPlan::flaky(99);
        for job in ["3ckz", "3eax", "5nkb"] {
            for attempt in 0..4 {
                assert_eq!(
                    plan.scheduled(job, attempt),
                    plan.scheduled(job, attempt),
                    "schedule must be a pure function of (seed, job, attempt)"
                );
            }
        }
    }

    #[test]
    fn attempts_beyond_faulty_window_are_clean() {
        let plan = FaultPlan {
            rejection: 1.0,
            ..FaultPlan::flaky(7)
        };
        for job in ["a", "b", "c"] {
            assert_eq!(plan.scheduled(job, 0), Some(FaultKind::Reject));
            assert_eq!(plan.scheduled(job, 1), Some(FaultKind::Reject));
            assert_eq!(plan.scheduled(job, 2), None, "faulty_attempts = 2");
            assert_eq!(plan.scheduled(job, 9), None);
        }
    }

    #[test]
    fn seed_shift_on_retry_rolls_fresh_dice() {
        // With a partial rate, some job must fault on attempt 0 but not
        // attempt 1 (or vice versa): retries see a shifted stream, not a
        // replay of the same draw.
        let plan = FaultPlan {
            rejection: 0.5,
            drift: 0.0,
            shortfall: 0.0,
            faulty_attempts: 2,
            ..FaultPlan::flaky(3)
        };
        let differs = (0..64).any(|i| {
            let job = format!("job{i}");
            plan.scheduled(&job, 0) != plan.scheduled(&job, 1)
        });
        assert!(differs, "attempt index must shift the fault stream");
    }

    #[test]
    fn targets_override_rates() {
        let plan = FaultPlan::none().with_target("3eax", FaultKind::Shortfall, 2);
        assert_eq!(plan.scheduled("3eax", 0), Some(FaultKind::Shortfall));
        assert_eq!(plan.scheduled("3eax", 1), Some(FaultKind::Shortfall));
        assert_eq!(plan.scheduled("3eax", 2), None);
        assert_eq!(plan.scheduled("3ckz", 0), None);
    }

    #[test]
    fn injector_hooks_deliver_the_scheduled_fault() {
        let plan = FaultPlan::none()
            .with_target("r", FaultKind::Reject, 1)
            .with_target("s", FaultKind::Shortfall, 1)
            .with_target("n", FaultKind::NanEnergy, 1);

        let mut rej = plan.injector("r", 0);
        assert_eq!(rej.on_submit(), Err(VqeError::JobRejected));

        let mut short = plan.injector("s", 0);
        assert!(short.on_submit().is_ok());
        let delivered = short.stage2_shots(10_000);
        assert!(delivered < 10_000, "shortfall must cut the budget");

        let mut nan = plan.injector("n", 0);
        let corrupted = (0..12).any(|e| !nan.observe_energy(e, 1.0).is_finite());
        assert!(corrupted, "NaN fault must corrupt one energy");

        let mut clean = plan.injector("r", 1);
        assert!(clean.on_submit().is_ok());
        assert_eq!(clean.stage2_shots(10_000), 10_000);
    }

    #[test]
    fn drift_injector_perturbs_then_aborts() {
        let plan = FaultPlan::none().with_target("d", FaultKind::Drift, 1);
        let mut inj = plan.injector("d", 0);
        let base = NoiseModel::IDEAL;
        let mut saw_perturbed = false;
        let mut aborted_at = None;
        for eval in 0..40 {
            match inj.stage1_noise(eval, base) {
                Ok(m) if !m.is_ideal() => saw_perturbed = true,
                Ok(_) => {}
                Err(VqeError::CalibrationDrift { at_eval }) => {
                    aborted_at = Some(at_eval);
                    break;
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(saw_perturbed, "drift window must perturb the noise model");
        assert!(aborted_at.is_some(), "drift must eventually be detected");
    }
}
