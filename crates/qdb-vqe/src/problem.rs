//! Generic VQE problems over diagonal Hamiltonians.
//!
//! The folding pipeline is one instance of a broader pattern — minimize a
//! classical cost function through a parameterized quantum state. This
//! module abstracts that pattern so the same two-stage runner machinery
//! serves other combinatorial problems (the paper positions QDockBank's
//! framework as "supporting a wide range of downstream applications").

use qdb_optimize::{Cobyla, Optimizer};
use qdb_quantum::ansatz::{efficient_su2, Entanglement};
use qdb_quantum::circuit::Circuit;
use qdb_quantum::compile::CompiledCircuit;
use qdb_quantum::exec::SimWorkspace;
use qdb_quantum::sampler::sample_counts;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A problem whose cost is a classical function of measurement bitstrings.
pub trait DiagonalProblem {
    /// Number of qubits.
    fn num_qubits(&self) -> usize;

    /// Cost of one basis state.
    fn cost(&self, bits: u64) -> f64;

    /// Dense cost vector (override when a faster path exists).
    fn dense_costs(&self) -> Vec<f64> {
        (0..1u64 << self.num_qubits())
            .map(|b| self.cost(b))
            .collect()
    }
}

/// MaxCut on an undirected weighted graph: cost = −(cut weight), so the
/// VQE minimum is the maximum cut. The canonical sanity problem for
/// diagonal-Hamiltonian solvers.
#[derive(Clone, Debug)]
pub struct MaxCut {
    num_vertices: usize,
    edges: Vec<(usize, usize, f64)>,
}

impl MaxCut {
    /// Builds a MaxCut instance.
    ///
    /// # Panics
    /// Panics on out-of-range vertices.
    pub fn new(num_vertices: usize, edges: Vec<(usize, usize, f64)>) -> Self {
        for &(a, b, _) in &edges {
            assert!(a < num_vertices && b < num_vertices && a != b, "bad edge");
        }
        Self {
            num_vertices,
            edges,
        }
    }

    /// The cut weight of a partition given as a bitmask.
    pub fn cut_weight(&self, bits: u64) -> f64 {
        self.edges
            .iter()
            .map(|&(a, b, w)| {
                if (bits >> a & 1) != (bits >> b & 1) {
                    w
                } else {
                    0.0
                }
            })
            .sum()
    }
}

impl DiagonalProblem for MaxCut {
    fn num_qubits(&self) -> usize {
        self.num_vertices
    }

    fn cost(&self, bits: u64) -> f64 {
        -self.cut_weight(bits)
    }
}

/// Result of a generic diagonal-problem VQE run.
#[derive(Clone, Debug)]
pub struct ProblemOutcome {
    /// Best sampled bitstring (lowest cost).
    pub best_bits: u64,
    /// Its cost.
    pub best_cost: f64,
    /// Final optimized expectation.
    pub final_expectation: f64,
    /// Objective evaluations used.
    pub evals: usize,
}

/// Solves a diagonal problem with the standard two-stage workflow:
/// EfficientSU2 + COBYLA, then sampling.
pub fn solve_diagonal<P: DiagonalProblem>(
    problem: &P,
    reps: usize,
    max_iters: usize,
    shots: u64,
    seed: u64,
) -> ProblemOutcome {
    let n = problem.num_qubits();
    assert!(n <= 24, "diagonal solver limited to 24 qubits");
    let ansatz: Circuit = efficient_su2(n, reps, Entanglement::Linear);
    let compiled = CompiledCircuit::compile(&ansatz);
    let costs = problem.dense_costs();

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let x0: Vec<f64> = (0..ansatz.num_params())
        .map(|_| rng.gen_range(-0.4..0.4))
        .collect();
    // Compiled plan + reusable workspace: every objective evaluation after
    // the first is allocation-free.
    let mut ws = SimWorkspace::new(n);
    let mut objective = |params: &[f64]| -> f64 { ws.energy(&compiled, params, &costs) };
    let result = Cobyla::with_budget(max_iters).minimize(&mut objective, &x0);

    ws.run(&compiled, &result.x);
    let counts = sample_counts(ws.statevector(), shots, &mut rng);
    let (best_bits, best_cost) = counts
        .iter()
        .map(|(bits, _)| (bits, costs[bits as usize]))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
        .expect("at least one shot");

    ProblemOutcome {
        best_bits,
        best_cost,
        final_expectation: result.fx,
        evals: result.evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> MaxCut {
        let edges = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        MaxCut::new(n, edges)
    }

    #[test]
    fn maxcut_cost_function() {
        let g = ring(4);
        // Alternating partition cuts all 4 edges.
        assert_eq!(g.cut_weight(0b0101), 4.0);
        assert_eq!(g.cut_weight(0b0000), 0.0);
        assert_eq!(g.cost(0b0101), -4.0);
        // Complementary partitions have equal cuts.
        assert_eq!(g.cut_weight(0b0101), g.cut_weight(0b1010));
    }

    #[test]
    fn vqe_solves_small_maxcut() {
        let g = ring(6);
        let out = solve_diagonal(&g, 2, 120, 20_000, 7);
        // Optimal 6-ring cut = 6 (alternating).
        assert_eq!(out.best_cost, -6.0, "best sampled cut must be optimal");
        assert!(out.final_expectation <= 0.0);
        assert!(out.evals <= 120);
    }

    #[test]
    fn weighted_graph_respects_weights() {
        // Two vertices, one heavy edge: optimum separates them.
        let g = MaxCut::new(3, vec![(0, 1, 5.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let out = solve_diagonal(&g, 2, 80, 5_000, 3);
        // Best cut: separate vertex 1 from 0 and 2 → weight 6.
        assert_eq!(out.best_cost, -6.0);
    }

    #[test]
    fn folding_hamiltonian_is_a_diagonal_problem() {
        // The trait unifies folding with other problems.
        struct Folding(qdb_lattice::hamiltonian::FoldingHamiltonian);
        impl DiagonalProblem for Folding {
            fn num_qubits(&self) -> usize {
                self.0.num_qubits()
            }
            fn cost(&self, bits: u64) -> f64 {
                self.0.energy_of_bits(bits)
            }
            fn dense_costs(&self) -> Vec<f64> {
                self.0.dense_diagonal()
            }
        }
        let seq = qdb_lattice::sequence::ProteinSequence::parse("VKDRS").unwrap();
        let problem = Folding(qdb_lattice::hamiltonian::FoldingHamiltonian::with_unit_scale(seq));
        let (_, exact) = problem.0.ground_state();
        let out = solve_diagonal(&problem, 2, 100, 10_000, 5);
        assert!(
            (out.best_cost - exact).abs() < 1e-9,
            "sampled {} vs ground {exact}",
            out.best_cost
        );
    }
}
