//! Hardware execution-time model.
//!
//! The `Exec. Time` column of Tables 1–3 mixes three components: quantum
//! execution proper (shots × circuit duration), per-job classical/IBM-cloud
//! overhead (hundreds of jobs per VQE run), and an occasional long queue
//! delay — visible as extreme outliers (4y79: 207,445 s; 5c28: 114,029 s)
//! that are an order of magnitude above their group's typical times. The
//! model reproduces exactly that structure: a deterministic base plus a
//! seeded heavy-tail queue component.

use qdb_quantum::circuit::Circuit;
use qdb_transpile::metrics::{circuit_duration_ns, GateDurations};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Execution-time model parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExecutionTimeModel {
    /// Gate/readout durations.
    pub durations: GateDurations,
    /// Shots used per energy estimation during optimization.
    pub shots_per_iteration: u64,
    /// Per-job overhead (compilation, transfer, scheduling) in seconds.
    pub job_overhead_s: f64,
    /// Probability that a run hits a long queue delay.
    pub queue_tail_prob: f64,
    /// Scale of the exponential queue-delay tail, seconds.
    pub queue_tail_scale_s: f64,
}

impl Default for ExecutionTimeModel {
    fn default() -> Self {
        Self {
            durations: GateDurations::eagle(),
            shots_per_iteration: 4_000,
            job_overhead_s: 20.0,
            queue_tail_prob: 0.12,
            queue_tail_scale_s: 60_000.0,
        }
    }
}

/// Breakdown of one run's estimated wall-clock time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecTime {
    /// Time spent executing quantum circuits (s).
    pub quantum_s: f64,
    /// Per-job classical overhead (s).
    pub classical_s: f64,
    /// Queue delay (s) — zero for most runs, huge for tail events.
    pub queue_s: f64,
}

impl ExecTime {
    /// Total wall-clock seconds.
    pub fn total_s(&self) -> f64 {
        self.quantum_s + self.classical_s + self.queue_s
    }
}

impl ExecutionTimeModel {
    /// Estimates the wall-clock time of a two-stage VQE run of `iterations`
    /// energy evaluations plus `final_shots` sampling shots of the given
    /// physical circuit. `seed` drives only the queue-tail draw.
    pub fn estimate(
        &self,
        physical_circuit: &Circuit,
        iterations: usize,
        final_shots: u64,
        seed: u64,
    ) -> ExecTime {
        let circuit_s = (circuit_duration_ns(physical_circuit, &self.durations)
            + self.durations.readout_ns
            + self.durations.reset_ns)
            * 1e-9;
        let total_shots = self.shots_per_iteration * iterations as u64 + final_shots;
        let quantum_s = circuit_s * total_shots as f64;
        // One hardware job per iteration plus the final sampling job.
        let classical_s = self.job_overhead_s * (iterations as f64 + 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let queue_s = if rng.gen::<f64>() < self.queue_tail_prob {
            // Exponential tail via inverse CDF.
            let u: f64 = rng.gen::<f64>().max(1e-12);
            self.queue_tail_scale_s * (-u.ln())
        } else {
            0.0
        };
        ExecTime {
            quantum_s,
            classical_s,
            queue_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_quantum::ansatz::{efficient_su2, Entanglement};
    use qdb_transpile::basis::lower_to_native;

    fn native(n: usize) -> Circuit {
        lower_to_native(&efficient_su2(n, 2, Entanglement::Linear))
    }

    #[test]
    fn base_time_in_paper_band() {
        // Typical S-group fragments without queue delay: ~4,000–5,000 s
        // (e.g. 1e2k 4,425 s; 6czf 4,310 s with 220 iterations).
        let model = ExecutionTimeModel::default();
        let c = native(10);
        // Seed chosen so the tail does not fire (checked below).
        let t = model.estimate(&c, 220, 100_000, 4);
        assert_eq!(t.queue_s, 0.0, "seed 4 must avoid the tail for this test");
        let total = t.total_s();
        assert!(
            (2_000.0..20_000.0).contains(&total),
            "base exec time {total} outside the paper's typical band"
        );
    }

    #[test]
    fn tail_events_match_outlier_magnitudes() {
        let model = ExecutionTimeModel::default();
        let c = native(10);
        // Scan seeds to find a tail event; verify magnitude is outlier-like.
        let mut saw_tail = false;
        for seed in 0..50 {
            let t = model.estimate(&c, 220, 100_000, seed);
            if t.queue_s > 0.0 {
                saw_tail = true;
                assert!(t.queue_s < 1_000_000.0);
            }
        }
        assert!(saw_tail, "12% tail probability must fire within 50 seeds");
    }

    #[test]
    fn deterministic_per_seed() {
        let model = ExecutionTimeModel::default();
        let c = native(8);
        assert_eq!(
            model.estimate(&c, 100, 1000, 9),
            model.estimate(&c, 100, 1000, 9)
        );
    }

    #[test]
    fn longer_circuits_cost_more() {
        let model = ExecutionTimeModel::default();
        let small = model.estimate(&native(6), 200, 100_000, 4).quantum_s;
        let large = model.estimate(&native(22), 200, 100_000, 4).quantum_s;
        assert!(large > small);
    }
}
