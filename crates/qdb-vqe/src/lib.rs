//! # qdb-vqe
//!
//! The paper's hybrid quantum–classical prediction engine: the two-stage
//! VQE workflow (optimize, then freeze-and-sample 100k shots), the §5.2
//! batch-processing architecture over many fragments, and the hardware
//! execution-time model behind the `Exec. Time` columns of Tables 1–3.
//!
//! Execution is failure-aware: every run returns `Result<_, VqeError>`
//! (see [`error`]), and utility-level backend flakiness — queue
//! rejections, calibration drift, shot shortfalls — can be rehearsed
//! deterministically through the seeded fault-injection layer in
//! [`fault`].

pub mod batch;
pub mod error;
pub mod fault;
pub mod problem;
pub mod runner;
pub mod timing;

pub use batch::{run_batch, run_batch_injected, VqeBatchResult, VqeJob};
pub use error::VqeError;
pub use fault::{FaultInjector, FaultKind, FaultPlan, NoFaults, PlanInjector};
pub use problem::{solve_diagonal, DiagonalProblem, MaxCut, ProblemOutcome};
pub use runner::{build_ansatz, run_vqe, run_vqe_injected, VqeConfig, VqeOutcome};
pub use timing::{ExecTime, ExecutionTimeModel};
