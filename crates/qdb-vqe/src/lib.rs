//! # qdb-vqe
//!
//! The paper's hybrid quantum–classical prediction engine: the two-stage
//! VQE workflow (optimize, then freeze-and-sample 100k shots), the §5.2
//! batch-processing architecture over many fragments, and the hardware
//! execution-time model behind the `Exec. Time` columns of Tables 1–3.

pub mod batch;
pub mod problem;
pub mod runner;
pub mod timing;

pub use batch::{run_batch, VqeBatchResult, VqeJob};
pub use problem::{solve_diagonal, DiagonalProblem, MaxCut, ProblemOutcome};
pub use runner::{build_ansatz, run_vqe, VqeConfig, VqeOutcome};
pub use timing::{ExecTime, ExecutionTimeModel};
