//! Batch execution architecture (paper §5.2).
//!
//! The paper batches all 55 fragments through the QPU as queued jobs. We
//! reproduce the architecture with a crossbeam work queue drained by a
//! bounded worker pool: each worker owns one fragment job at a time and
//! the inner VQE still uses rayon data-parallelism, so `workers` should
//! stay small (the default is 2) to avoid oversubscription.
//!
//! Jobs are failure-isolated: a panicking or erroring job yields an
//! `Err(VqeError)` in its result slot — it can neither take down the
//! worker pool nor poison state shared with later jobs. Fault injection
//! threads through via [`run_batch_injected`], which consults a seeded
//! [`FaultPlan`] per job.

use crate::error::{panic_message, VqeError};
use crate::fault::FaultPlan;
use crate::runner::{run_vqe_injected, VqeConfig, VqeOutcome};
use qdb_lattice::hamiltonian::FoldingHamiltonian;
use qdb_quantum::exec::SimWorkspace;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// A named VQE job.
#[derive(Clone, Debug)]
pub struct VqeJob {
    /// Job label (QDockBank uses the PDB id).
    pub id: String,
    /// The fragment Hamiltonian.
    pub hamiltonian: FoldingHamiltonian,
    /// Run configuration.
    pub config: VqeConfig,
}

/// A finished job.
#[derive(Clone, Debug)]
pub struct VqeBatchResult {
    /// Job label.
    pub id: String,
    /// The VQE outcome, or the typed failure that stopped this job (other
    /// jobs in the batch are unaffected).
    pub outcome: Result<VqeOutcome, VqeError>,
}

/// Runs all jobs through a fixed-size worker pool; results are returned in
/// submission order.
pub fn run_batch(jobs: Vec<VqeJob>, workers: usize) -> Vec<VqeBatchResult> {
    run_batch_injected(jobs, workers, &FaultPlan::none())
}

/// [`run_batch`] under a fault plan: each job's injector is drawn from
/// `plan` (attempt 0 — the batch layer itself does not retry; retry policy
/// belongs to the supervisor driving it).
pub fn run_batch_injected(
    jobs: Vec<VqeJob>,
    workers: usize,
    plan: &FaultPlan,
) -> Vec<VqeBatchResult> {
    assert!(workers >= 1, "need at least one worker");
    let num_jobs = jobs.len();
    // Snapshot ids before dispatch: if a worker dies between popping a job
    // and writing its slot, the backstop below still knows which job the
    // empty slot belonged to.
    let ids: Vec<String> = jobs.iter().map(|j| j.id.clone()).collect();
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, VqeJob)>();
    for item in jobs.into_iter().enumerate() {
        tx.send(item).expect("queue open");
    }
    drop(tx);

    // Pre-sized from the job count: workers only write their slot, never
    // grow the vector while holding the lock.
    let results: Mutex<Vec<Option<VqeBatchResult>>> =
        Mutex::new(std::iter::repeat_with(|| None).take(num_jobs).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            let results = &results;
            scope.spawn(move || {
                // One simulation workspace per worker, reused across jobs:
                // buffers only reallocate when the register width changes.
                let mut ws = SimWorkspace::new(0);
                while let Ok((index, job)) = rx.recv() {
                    // Injector construction sits inside the isolation
                    // boundary too: a fault plan that panics while being
                    // instantiated fails this job, not the worker.
                    let outcome = match catch_unwind(AssertUnwindSafe(|| {
                        let mut injector = plan.injector(&job.id, 0);
                        run_vqe_injected(&job.hamiltonian, &job.config, &mut ws, &mut injector)
                    })) {
                        Ok(result) => result,
                        Err(payload) => {
                            // The workspace may hold a half-evolved state;
                            // rebuild it so later jobs start clean.
                            ws = SimWorkspace::new(0);
                            Err(VqeError::Panicked(panic_message(payload.as_ref())))
                        }
                    };
                    // A panicked job cannot poison the results lock: the
                    // panic was caught above, so the guard below is only
                    // ever dropped on the normal path.
                    let mut guard = results.lock().unwrap_or_else(|e| e.into_inner());
                    guard[index] = Some(VqeBatchResult {
                        id: job.id,
                        outcome,
                    });
                }
            });
        }
    });

    let slots = results.into_inner().unwrap_or_else(|e| e.into_inner());
    fill_lost_slots(&ids, slots)
}

/// Converts the worker pool's slot vector into final results, turning any
/// empty slot — a job popped from the queue whose worker died before the
/// result write — into a typed per-job error instead of a batch-wide
/// panic. No submitted job can be silently dropped.
fn fill_lost_slots(ids: &[String], slots: Vec<Option<VqeBatchResult>>) -> Vec<VqeBatchResult> {
    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.unwrap_or_else(|| VqeBatchResult {
                id: ids[index].clone(),
                outcome: Err(VqeError::Panicked(format!(
                    "job {} lost by the worker pool between queue pop and result write",
                    ids[index]
                ))),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use crate::runner::run_vqe;
    use qdb_lattice::sequence::ProteinSequence;

    fn job(id: &str, seq: &str, seed: u64) -> VqeJob {
        VqeJob {
            id: id.to_string(),
            hamiltonian: FoldingHamiltonian::with_unit_scale(ProteinSequence::parse(seq).unwrap()),
            config: VqeConfig {
                max_iters: 25,
                shots: 500,
                ..VqeConfig::fast(seed)
            },
        }
    }

    #[test]
    fn batch_preserves_order_and_ids() {
        let jobs = vec![
            job("3ckz", "VKDRS", 1),
            job("3eax", "RYRDV", 2),
            job("4mo4", "NIGGF", 3),
        ];
        let results = run_batch(jobs, 2);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].id, "3ckz");
        assert_eq!(results[1].id, "3eax");
        assert_eq!(results[2].id, "4mo4");
        assert!(results.iter().all(|r| r.outcome.is_ok()));
    }

    #[test]
    fn batch_matches_sequential_execution() {
        let j = job("3ckz", "VKDRS", 7);
        let sequential = run_vqe(&j.hamiltonian, &j.config).unwrap();
        let batched = run_batch(vec![j], 2);
        let outcome = batched[0].outcome.as_ref().unwrap();
        assert_eq!(outcome.best_bitstring, sequential.best_bitstring);
        assert_eq!(outcome.history, sequential.history);
    }

    #[test]
    fn single_worker_works() {
        let results = run_batch(vec![job("a", "VKDRS", 1), job("b", "NIGGF", 2)], 1);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn panicking_job_is_isolated_from_the_rest() {
        let plan = FaultPlan::none().with_target("bad", FaultKind::Panic, usize::MAX);
        let jobs = vec![
            job("good-1", "VKDRS", 1),
            job("bad", "RYRDV", 2),
            job("good-2", "NIGGF", 3),
        ];
        let results = run_batch_injected(jobs, 2, &plan);
        assert_eq!(results.len(), 3);
        assert!(results[0].outcome.is_ok());
        assert!(
            matches!(results[1].outcome, Err(VqeError::Panicked(_))),
            "{:?}",
            results[1].outcome
        );
        assert!(results[2].outcome.is_ok(), "later jobs must still run");
        // The surviving jobs match their sequential outcomes exactly: the
        // panic did not leak state into the shared worker pool.
        let j = job("good-2", "NIGGF", 3);
        let clean = run_vqe(&j.hamiltonian, &j.config).unwrap();
        assert_eq!(
            results[2].outcome.as_ref().unwrap().best_bitstring,
            clean.best_bitstring
        );
    }

    #[test]
    fn every_submitted_job_appears_in_the_results_under_panics() {
        // All three jobs panic; each must still come back, in order, as a
        // typed error — none dropped, no batch-wide panic.
        let plan = FaultPlan::none()
            .with_target("a", FaultKind::Panic, usize::MAX)
            .with_target("b", FaultKind::Panic, usize::MAX)
            .with_target("c", FaultKind::Panic, usize::MAX);
        let jobs = vec![
            job("a", "VKDRS", 1),
            job("b", "RYRDV", 2),
            job("c", "NIGGF", 3),
        ];
        let results = run_batch_injected(jobs, 2, &plan);
        assert_eq!(
            results.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
        assert!(results
            .iter()
            .all(|r| matches!(r.outcome, Err(VqeError::Panicked(_)))));
    }

    #[test]
    fn lost_slot_becomes_a_typed_error_not_a_panic() {
        // Simulates a worker dying between queue pop and result write: the
        // slot is still None when the pool shuts down.
        let ids = vec!["ok".to_string(), "lost".to_string()];
        let slots = vec![
            Some(VqeBatchResult {
                id: "ok".to_string(),
                outcome: Err(VqeError::JobRejected),
            }),
            None,
        ];
        let results = fill_lost_slots(&ids, slots);
        assert_eq!(results.len(), 2);
        assert_eq!(results[1].id, "lost");
        match &results[1].outcome {
            Err(VqeError::Panicked(msg)) => {
                assert!(msg.contains("lost"), "diagnostic names the job: {msg}")
            }
            other => panic!("expected a typed per-job error, got {other:?}"),
        }
    }

    #[test]
    fn rejected_job_reports_typed_error() {
        let plan = FaultPlan::none().with_target("r", FaultKind::Reject, usize::MAX);
        let results = run_batch_injected(vec![job("r", "VKDRS", 5)], 1, &plan);
        assert!(
            matches!(results[0].outcome, Err(VqeError::JobRejected)),
            "{:?}",
            results[0].outcome
        );
    }
}
