//! Batch execution architecture (paper §5.2).
//!
//! The paper batches all 55 fragments through the QPU as queued jobs. We
//! reproduce the architecture with a crossbeam work queue drained by a
//! bounded worker pool: each worker owns one fragment job at a time and
//! the inner VQE still uses rayon data-parallelism, so `workers` should
//! stay small (the default is 2) to avoid oversubscription.

use crate::runner::{run_vqe_with_workspace, VqeConfig, VqeOutcome};
use qdb_lattice::hamiltonian::FoldingHamiltonian;
use qdb_quantum::exec::SimWorkspace;
use std::sync::Mutex;

/// A named VQE job.
#[derive(Clone, Debug)]
pub struct VqeJob {
    /// Job label (QDockBank uses the PDB id).
    pub id: String,
    /// The fragment Hamiltonian.
    pub hamiltonian: FoldingHamiltonian,
    /// Run configuration.
    pub config: VqeConfig,
}

/// A finished job.
#[derive(Clone, Debug)]
pub struct VqeBatchResult {
    /// Job label.
    pub id: String,
    /// The VQE outcome.
    pub outcome: VqeOutcome,
}

/// Runs all jobs through a fixed-size worker pool; results are returned in
/// submission order.
pub fn run_batch(jobs: Vec<VqeJob>, workers: usize) -> Vec<VqeBatchResult> {
    assert!(workers >= 1, "need at least one worker");
    let num_jobs = jobs.len();
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, VqeJob)>();
    for item in jobs.into_iter().enumerate() {
        tx.send(item).expect("queue open");
    }
    drop(tx);

    // Pre-sized from the job count: workers only write their slot, never
    // grow the vector while holding the lock.
    let results: Mutex<Vec<Option<VqeBatchResult>>> =
        Mutex::new(std::iter::repeat_with(|| None).take(num_jobs).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            let results = &results;
            scope.spawn(move || {
                // One simulation workspace per worker, reused across jobs:
                // buffers only reallocate when the register width changes.
                let mut ws = SimWorkspace::new(0);
                while let Ok((index, job)) = rx.recv() {
                    let outcome = run_vqe_with_workspace(&job.hamiltonian, &job.config, &mut ws);
                    let mut guard = results.lock().expect("no poisoned workers");
                    guard[index] = Some(VqeBatchResult {
                        id: job.id,
                        outcome,
                    });
                }
            });
        }
    });

    results
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|r| r.expect("every job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_vqe;
    use qdb_lattice::sequence::ProteinSequence;

    fn job(id: &str, seq: &str, seed: u64) -> VqeJob {
        VqeJob {
            id: id.to_string(),
            hamiltonian: FoldingHamiltonian::with_unit_scale(ProteinSequence::parse(seq).unwrap()),
            config: VqeConfig {
                max_iters: 25,
                shots: 500,
                ..VqeConfig::fast(seed)
            },
        }
    }

    #[test]
    fn batch_preserves_order_and_ids() {
        let jobs = vec![
            job("3ckz", "VKDRS", 1),
            job("3eax", "RYRDV", 2),
            job("4mo4", "NIGGF", 3),
        ];
        let results = run_batch(jobs, 2);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].id, "3ckz");
        assert_eq!(results[1].id, "3eax");
        assert_eq!(results[2].id, "4mo4");
    }

    #[test]
    fn batch_matches_sequential_execution() {
        let j = job("3ckz", "VKDRS", 7);
        let sequential = run_vqe(&j.hamiltonian, &j.config);
        let batched = run_batch(vec![j], 2);
        assert_eq!(batched[0].outcome.best_bitstring, sequential.best_bitstring);
        assert_eq!(batched[0].outcome.history, sequential.history);
    }

    #[test]
    fn single_worker_works() {
        let results = run_batch(vec![job("a", "VKDRS", 1), job("b", "NIGGF", 2)], 1);
        assert_eq!(results.len(), 2);
    }
}
