//! Batch execution architecture (paper §5.2).
//!
//! The paper batches all 55 fragments through the QPU as queued jobs. We
//! reproduce the architecture with a crossbeam work queue drained by a
//! bounded worker pool: each worker owns one fragment job at a time and
//! the inner VQE still uses rayon data-parallelism, so `workers` should
//! stay small (the default is 2) to avoid oversubscription.
//!
//! Jobs are failure-isolated: a panicking or erroring job yields an
//! `Err(VqeError)` in its result slot — it can neither take down the
//! worker pool nor poison state shared with later jobs. Fault injection
//! threads through via [`run_batch_injected`], which consults a seeded
//! [`FaultPlan`] per job.

use crate::error::{panic_message, VqeError};
use crate::fault::FaultPlan;
use crate::runner::{run_vqe_injected, VqeConfig, VqeOutcome};
use qdb_lattice::hamiltonian::FoldingHamiltonian;
use qdb_quantum::exec::SimWorkspace;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// A named VQE job.
#[derive(Clone, Debug)]
pub struct VqeJob {
    /// Job label (QDockBank uses the PDB id).
    pub id: String,
    /// The fragment Hamiltonian.
    pub hamiltonian: FoldingHamiltonian,
    /// Run configuration.
    pub config: VqeConfig,
}

/// A finished job.
#[derive(Clone, Debug)]
pub struct VqeBatchResult {
    /// Job label.
    pub id: String,
    /// The VQE outcome, or the typed failure that stopped this job (other
    /// jobs in the batch are unaffected).
    pub outcome: Result<VqeOutcome, VqeError>,
}

/// Runs all jobs through a fixed-size worker pool; results are returned in
/// submission order.
pub fn run_batch(jobs: Vec<VqeJob>, workers: usize) -> Vec<VqeBatchResult> {
    run_batch_injected(jobs, workers, &FaultPlan::none())
}

/// [`run_batch`] under a fault plan: each job's injector is drawn from
/// `plan` (attempt 0 — the batch layer itself does not retry; retry policy
/// belongs to the supervisor driving it).
pub fn run_batch_injected(
    jobs: Vec<VqeJob>,
    workers: usize,
    plan: &FaultPlan,
) -> Vec<VqeBatchResult> {
    assert!(workers >= 1, "need at least one worker");
    let num_jobs = jobs.len();
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, VqeJob)>();
    for item in jobs.into_iter().enumerate() {
        tx.send(item).expect("queue open");
    }
    drop(tx);

    // Pre-sized from the job count: workers only write their slot, never
    // grow the vector while holding the lock.
    let results: Mutex<Vec<Option<VqeBatchResult>>> =
        Mutex::new(std::iter::repeat_with(|| None).take(num_jobs).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            let results = &results;
            scope.spawn(move || {
                // One simulation workspace per worker, reused across jobs:
                // buffers only reallocate when the register width changes.
                let mut ws = SimWorkspace::new(0);
                while let Ok((index, job)) = rx.recv() {
                    let mut injector = plan.injector(&job.id, 0);
                    let outcome = match catch_unwind(AssertUnwindSafe(|| {
                        run_vqe_injected(&job.hamiltonian, &job.config, &mut ws, &mut injector)
                    })) {
                        Ok(result) => result,
                        Err(payload) => {
                            // The workspace may hold a half-evolved state;
                            // rebuild it so later jobs start clean.
                            ws = SimWorkspace::new(0);
                            Err(VqeError::Panicked(panic_message(payload.as_ref())))
                        }
                    };
                    // A panicked job cannot poison the results lock: the
                    // panic was caught above, so the guard below is only
                    // ever dropped on the normal path.
                    let mut guard = results.lock().unwrap_or_else(|e| e.into_inner());
                    guard[index] = Some(VqeBatchResult {
                        id: job.id,
                        outcome,
                    });
                }
            });
        }
    });

    results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|r| r.expect("every job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use crate::runner::run_vqe;
    use qdb_lattice::sequence::ProteinSequence;

    fn job(id: &str, seq: &str, seed: u64) -> VqeJob {
        VqeJob {
            id: id.to_string(),
            hamiltonian: FoldingHamiltonian::with_unit_scale(ProteinSequence::parse(seq).unwrap()),
            config: VqeConfig {
                max_iters: 25,
                shots: 500,
                ..VqeConfig::fast(seed)
            },
        }
    }

    #[test]
    fn batch_preserves_order_and_ids() {
        let jobs = vec![
            job("3ckz", "VKDRS", 1),
            job("3eax", "RYRDV", 2),
            job("4mo4", "NIGGF", 3),
        ];
        let results = run_batch(jobs, 2);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].id, "3ckz");
        assert_eq!(results[1].id, "3eax");
        assert_eq!(results[2].id, "4mo4");
        assert!(results.iter().all(|r| r.outcome.is_ok()));
    }

    #[test]
    fn batch_matches_sequential_execution() {
        let j = job("3ckz", "VKDRS", 7);
        let sequential = run_vqe(&j.hamiltonian, &j.config).unwrap();
        let batched = run_batch(vec![j], 2);
        let outcome = batched[0].outcome.as_ref().unwrap();
        assert_eq!(outcome.best_bitstring, sequential.best_bitstring);
        assert_eq!(outcome.history, sequential.history);
    }

    #[test]
    fn single_worker_works() {
        let results = run_batch(vec![job("a", "VKDRS", 1), job("b", "NIGGF", 2)], 1);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn panicking_job_is_isolated_from_the_rest() {
        let plan = FaultPlan::none().with_target("bad", FaultKind::Panic, usize::MAX);
        let jobs = vec![
            job("good-1", "VKDRS", 1),
            job("bad", "RYRDV", 2),
            job("good-2", "NIGGF", 3),
        ];
        let results = run_batch_injected(jobs, 2, &plan);
        assert_eq!(results.len(), 3);
        assert!(results[0].outcome.is_ok());
        assert!(
            matches!(results[1].outcome, Err(VqeError::Panicked(_))),
            "{:?}",
            results[1].outcome
        );
        assert!(results[2].outcome.is_ok(), "later jobs must still run");
        // The surviving jobs match their sequential outcomes exactly: the
        // panic did not leak state into the shared worker pool.
        let j = job("good-2", "NIGGF", 3);
        let clean = run_vqe(&j.hamiltonian, &j.config).unwrap();
        assert_eq!(
            results[2].outcome.as_ref().unwrap().best_bitstring,
            clean.best_bitstring
        );
    }

    #[test]
    fn rejected_job_reports_typed_error() {
        let plan = FaultPlan::none().with_target("r", FaultKind::Reject, usize::MAX);
        let results = run_batch_injected(vec![job("r", "VKDRS", 5)], 1, &plan);
        assert!(
            matches!(results[0].outcome, Err(VqeError::JobRejected)),
            "{:?}",
            results[0].outcome
        );
    }
}
