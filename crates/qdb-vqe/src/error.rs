//! Typed failure taxonomy for the VQE execution layer.
//!
//! The paper's pipeline ran on shared IBM Eagle hardware where jobs are
//! rejected at the queue, drift out of calibration mid-run, and come back
//! with short shot counts. Kirsopp et al. report this class of transient
//! failure dominating wall-clock on utility-level campaigns. The runner
//! surfaces each of these as a typed [`VqeError`] instead of panicking, so
//! a supervisor can decide per failure class whether to retry, shift the
//! seed, degrade the budget, or give up.

use std::fmt;

/// Everything that can go wrong while executing one VQE job.
#[derive(Clone, Debug, PartialEq)]
pub enum VqeError {
    /// The backend refused the job at submission (queue-level rejection).
    JobRejected,
    /// The backend drifted out of calibration mid-run and the attempt was
    /// aborted at objective evaluation `at_eval` (evaluations from drift
    /// onset until detection ran under a perturbed noise model and are
    /// discarded with the attempt).
    CalibrationDrift {
        /// Evaluation index at which the drift was detected.
        at_eval: usize,
    },
    /// Stage-2 sampling returned fewer shots than the configured budget.
    ShotShortfall {
        /// Shots the backend actually delivered.
        delivered: u64,
        /// Shots the configuration requested.
        requested: u64,
    },
    /// The optimizer produced a non-finite energy (NaN/∞ divergence) at
    /// evaluation `eval`. Deterministic for a fixed seed: retrying with
    /// the same seed reproduces it, so supervisors should seed-shift.
    NonFiniteEnergy {
        /// Evaluation index of the first non-finite energy.
        eval: usize,
    },
    /// Stage-2 sampling produced no usable (finite-energy) bitstring.
    NoSamples,
    /// The job panicked; the payload carries the panic message. Produced
    /// by `catch_unwind` isolation in the batch pool and the supervisor.
    Panicked(String),
}

impl VqeError {
    /// Short stable identifier used in manifests and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            VqeError::JobRejected => "job-rejected",
            VqeError::CalibrationDrift { .. } => "calibration-drift",
            VqeError::ShotShortfall { .. } => "shot-shortfall",
            VqeError::NonFiniteEnergy { .. } => "non-finite-energy",
            VqeError::NoSamples => "no-samples",
            VqeError::Panicked(_) => "panic",
        }
    }

    /// Whether a plain retry (same seed, same budget) can plausibly
    /// succeed. Injected backend faults are transient; a non-finite
    /// energy or a panic is deterministic for a fixed seed and needs a
    /// seed shift or a degraded configuration instead.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            VqeError::JobRejected
                | VqeError::CalibrationDrift { .. }
                | VqeError::ShotShortfall { .. }
        )
    }
}

impl fmt::Display for VqeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VqeError::JobRejected => write!(f, "backend rejected the job at submission"),
            VqeError::CalibrationDrift { at_eval } => {
                write!(f, "calibration drift detected at evaluation {at_eval}")
            }
            VqeError::ShotShortfall {
                delivered,
                requested,
            } => write!(
                f,
                "backend delivered {delivered} of {requested} requested shots"
            ),
            VqeError::NonFiniteEnergy { eval } => {
                write!(
                    f,
                    "optimizer produced a non-finite energy at evaluation {eval}"
                )
            }
            VqeError::NoSamples => write!(f, "sampling produced no finite-energy bitstring"),
            VqeError::Panicked(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl std::error::Error for VqeError {}

/// Extracts a human-readable message from a `catch_unwind` payload
/// (panics raised via `panic!("...")` carry `&str` or `String`).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        assert!(VqeError::JobRejected.is_transient());
        assert!(VqeError::CalibrationDrift { at_eval: 3 }.is_transient());
        assert!(VqeError::ShotShortfall {
            delivered: 10,
            requested: 100
        }
        .is_transient());
        assert!(!VqeError::NonFiniteEnergy { eval: 0 }.is_transient());
        assert!(!VqeError::NoSamples.is_transient());
        assert!(!VqeError::Panicked("boom".into()).is_transient());
    }

    #[test]
    fn kinds_are_stable_and_distinct() {
        let all = [
            VqeError::JobRejected,
            VqeError::CalibrationDrift { at_eval: 1 },
            VqeError::ShotShortfall {
                delivered: 1,
                requested: 2,
            },
            VqeError::NonFiniteEnergy { eval: 1 },
            VqeError::NoSamples,
            VqeError::Panicked(String::new()),
        ];
        let kinds: std::collections::HashSet<&str> = all.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), all.len());
        for e in &all {
            assert!(!e.to_string().is_empty());
        }
    }
}
