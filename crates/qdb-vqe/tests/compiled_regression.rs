//! Regression guarantees for the compiled execution engine in the VQE
//! runner:
//!
//! 1. Each engine is individually deterministic — a fixed seed reproduces
//!    the full optimization trace and the structure prediction bit for bit.
//! 2. The engines agree with each other on everything physical: the same
//!    initial energy (to 1e-9 — fused matrix products round differently in
//!    the last ulp, so traces are not bit-identical across engines; see
//!    DESIGN.md §"Execution engine") and the same predicted bitstring and
//!    conformation energy.

use qdb_lattice::hamiltonian::FoldingHamiltonian;
use qdb_lattice::sequence::ProteinSequence;
use qdb_quantum::exec::SimWorkspace;
use qdb_vqe::runner::{run_vqe_with_workspace, EnergyEngine, VqeConfig};

fn ham(s: &str) -> FoldingHamiltonian {
    FoldingHamiltonian::with_unit_scale(ProteinSequence::parse(s).unwrap())
}

/// All runs in this file are fault-free, so the `Result` unwraps.
fn run_vqe(h: &FoldingHamiltonian, cfg: &VqeConfig) -> qdb_vqe::VqeOutcome {
    qdb_vqe::runner::run_vqe(h, cfg).expect("fault-free run")
}

const FRAGMENTS: [(&str, u64); 3] = [("VKDRS", 7), ("RYRDV", 13), ("NIGGF", 29)];

#[test]
fn compiled_engine_is_deterministic() {
    for (seq, seed) in FRAGMENTS {
        let h = ham(seq);
        let cfg = VqeConfig::fast(seed); // engine: Compiled is the default
        let a = run_vqe(&h, &cfg);
        let b = run_vqe(&h, &cfg);
        assert_eq!(a.history, b.history, "{seq}: trace must reproduce exactly");
        assert_eq!(a.best_params, b.best_params, "{seq}");
        assert_eq!(a.best_bitstring, b.best_bitstring, "{seq}");
        assert_eq!(a.best_bitstring_energy, b.best_bitstring_energy, "{seq}");
    }
}

#[test]
fn direct_engine_is_deterministic() {
    for (seq, seed) in FRAGMENTS {
        let h = ham(seq);
        let cfg = VqeConfig {
            engine: EnergyEngine::Direct,
            ..VqeConfig::fast(seed)
        };
        let a = run_vqe(&h, &cfg);
        let b = run_vqe(&h, &cfg);
        assert_eq!(a.history, b.history, "{seq}: trace must reproduce exactly");
        assert_eq!(a.best_bitstring, b.best_bitstring, "{seq}");
    }
}

#[test]
fn engines_agree_on_predictions() {
    for (seq, seed) in FRAGMENTS {
        let h = ham(seq);
        let compiled = run_vqe(&h, &VqeConfig::fast(seed));
        let direct = run_vqe(
            &h,
            &VqeConfig {
                engine: EnergyEngine::Direct,
                ..VqeConfig::fast(seed)
            },
        );
        // Same x0, same unitary: the first evaluation agrees to rounding.
        let d0 = (compiled.history[0] - direct.history[0]).abs();
        assert!(d0 < 1e-9, "{seq}: initial energies diverge by {d0}");
        // The structure prediction — the dataset-facing output — matches.
        assert_eq!(
            compiled.best_bitstring, direct.best_bitstring,
            "{seq}: engines must predict the same conformation"
        );
        let de = (compiled.best_bitstring_energy - direct.best_bitstring_energy).abs();
        assert!(de < 1e-9, "{seq}: prediction energies diverge by {de}");
    }
}

#[test]
fn workspace_reuse_matches_fresh_workspace() {
    // A batch worker reuses one workspace across jobs of different widths;
    // results must be identical to fresh-workspace runs.
    let mut ws = SimWorkspace::new(0);
    for (seq, seed) in FRAGMENTS {
        let h = ham(seq);
        let cfg = VqeConfig::fast(seed);
        let reused = run_vqe_with_workspace(&h, &cfg, &mut ws).expect("fault-free run");
        let fresh = run_vqe(&h, &cfg);
        assert_eq!(reused.history, fresh.history, "{seq}");
        assert_eq!(reused.best_bitstring, fresh.best_bitstring, "{seq}");
    }
}
