//! Property-based tests: routing and lowering preserve circuit semantics
//! on arbitrary random circuits and devices.

use proptest::prelude::*;
use qdb_quantum::circuit::Circuit;
use qdb_quantum::statevector::Statevector;
use qdb_transpile::basis::{is_native_circuit, lower_to_native};
use qdb_transpile::coupling::CouplingMap;
use qdb_transpile::layout::Layout;
use qdb_transpile::routing::{respects_coupling, route};

/// Random circuit over `n` qubits mixing 1q rotations and CX/CZ.
fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(
        (0..5u8, 0..n as u32, 0..n as u32, -3.0f64..3.0),
        1..max_gates,
    )
    .prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for (kind, q0, q1, theta) in gates {
            match kind {
                0 => {
                    c.ry(q0, theta);
                }
                1 => {
                    c.rz(q0, theta);
                }
                2 => {
                    c.h(q0);
                }
                3 if q0 != q1 => {
                    c.cx(q0, q1);
                }
                4 if q0 != q1 => {
                    c.cz(q0, q1);
                }
                _ => {
                    c.sx(q0);
                }
            }
        }
        c
    })
}

/// Compares a logical circuit's distribution with a routed+lowered
/// physical realization, marginalized through the final layout.
fn distributions_match(logical: &Circuit, coupling: &CouplingMap, lower: bool) -> bool {
    let n = logical.num_qubits();
    let routed = route(logical, coupling, Layout::trivial(n, coupling.num_qubits()));
    if !respects_coupling(&routed.circuit, coupling) {
        return false;
    }
    let physical = if lower {
        lower_to_native(&routed.circuit)
    } else {
        routed.circuit.clone()
    };
    if lower && !is_native_circuit(&physical) {
        return false;
    }

    let mut ideal = Statevector::zero(n);
    ideal.apply_circuit(logical);
    let p_ideal = ideal.probabilities();

    let mut phys = Statevector::zero(coupling.num_qubits());
    phys.apply_circuit(&physical);
    let p_phys = phys.probabilities();

    let mut p_mapped = vec![0.0; 1 << n];
    for (state, &p) in p_phys.iter().enumerate() {
        if p < 1e-15 {
            continue;
        }
        let mut logical_state = 0usize;
        for l in 0..n as u32 {
            if state >> routed.final_layout.phys(l) & 1 == 1 {
                logical_state |= 1 << l;
            }
        }
        p_mapped[logical_state] += p;
    }
    p_ideal
        .iter()
        .zip(&p_mapped)
        .all(|(a, b)| (a - b).abs() < 1e-8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Routing on a line device preserves the measurement distribution.
    #[test]
    fn routing_preserves_distribution(c in arb_circuit(4, 14)) {
        let line = CouplingMap::line(6);
        prop_assert!(distributions_match(&c, &line, false));
    }

    /// Routing plus native lowering preserves the distribution.
    #[test]
    fn routing_and_lowering_preserve_distribution(c in arb_circuit(3, 10)) {
        let line = CouplingMap::line(5);
        prop_assert!(distributions_match(&c, &line, true));
    }

    /// Lowering alone is exactly unitary-equivalent (overlap 1 up to
    /// global phase) on any circuit.
    #[test]
    fn lowering_is_equivalent(c in arb_circuit(4, 16)) {
        let native = lower_to_native(&c);
        prop_assert!(is_native_circuit(&native));
        let mut a = Statevector::zero(4);
        a.apply_circuit(&c);
        let mut b = Statevector::zero(4);
        b.apply_circuit(&native);
        prop_assert!(a.inner(&b).abs() > 1.0 - 1e-8);
    }

    /// Routed circuits never contain a two-qubit gate on disconnected
    /// physical qubits, on any connected random device.
    #[test]
    fn routed_respects_any_device(
        c in arb_circuit(4, 12),
        extra_edges in proptest::collection::vec((0u32..8, 0u32..8), 0..6),
    ) {
        // Random device: a spanning line plus random chords.
        let mut edges: Vec<(u32, u32)> = (0..7).map(|i| (i, i + 1)).collect();
        for (a, b) in extra_edges {
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        let device = CouplingMap::from_edges(8, &edges);
        let routed = route(&c, &device, Layout::trivial(4, 8));
        prop_assert!(respects_coupling(&routed.circuit, &device));
    }

    /// BFS distances satisfy the triangle inequality on heavy-hex.
    #[test]
    fn eagle_distances_triangle_inequality(a in 0u32..127, b in 0u32..127, c in 0u32..127) {
        let eagle = CouplingMap::eagle127();
        let d = eagle.distance_matrix();
        prop_assert!(
            d[a as usize][c as usize] <= d[a as usize][b as usize] + d[b as usize][c as usize]
        );
        prop_assert_eq!(d[a as usize][b as usize], d[b as usize][a as usize]);
    }
}
