//! Lowering to the IBM Eagle native gate set `{ECR, RZ, SX, X, ID}` (§5.1).
//!
//! Single-qubit gates are rewritten through the ZSXZSX Euler form
//! `U3(θ, φ, λ) = RZ(φ + π) · SX · RZ(θ + π) · SX · RZ(λ)` (up to global
//! phase); `RZ` is virtual (zero duration) on IBM hardware, which is why the
//! hardware-depth metric in [`crate::metrics`] skips it. `CX` lowers to a
//! single `ECR` plus one-qubit corrections.

use qdb_quantum::circuit::{Circuit, Instruction};
use qdb_quantum::gate::{Angle, GateKind};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

/// The Eagle native set.
pub const NATIVE_GATES: [GateKind; 5] = [
    GateKind::Ecr,
    GateKind::Rz,
    GateKind::Sx,
    GateKind::X,
    GateKind::Id,
];

/// True if `kind` is native on Eagle.
pub fn is_native(kind: GateKind) -> bool {
    NATIVE_GATES.contains(&kind)
}

fn rz(q: u32, angle: Angle) -> Instruction {
    Instruction {
        kind: GateKind::Rz,
        q0: q,
        q1: u32::MAX,
        angle: Some(angle),
    }
}

fn sx(q: u32) -> Instruction {
    Instruction {
        kind: GateKind::Sx,
        q0: q,
        q1: u32::MAX,
        angle: None,
    }
}

fn x(q: u32) -> Instruction {
    Instruction {
        kind: GateKind::X,
        q0: q,
        q1: u32::MAX,
        angle: None,
    }
}

fn shifted(angle: Angle, delta: f64) -> Angle {
    match angle {
        Angle::Fixed(v) => Angle::Fixed(v + delta),
        Angle::Param {
            index,
            scale,
            offset,
        } => Angle::Param {
            index,
            scale,
            offset: offset + delta,
        },
    }
}

/// Emits the ZSXZSX sequence for `U3(θ, φ, λ)` with a fixed θ/φ/λ.
fn u3_fixed(out: &mut Vec<Instruction>, q: u32, theta: f64, phi: f64, lam: f64) {
    out.push(rz(q, Angle::Fixed(lam)));
    out.push(sx(q));
    out.push(rz(q, Angle::Fixed(theta + PI)));
    out.push(sx(q));
    out.push(rz(q, Angle::Fixed(phi + PI)));
}

/// Emits `U3(θ, 0, 0)` where θ is a (possibly parametric) angle — the Ry
/// lowering used for every ansatz rotation.
fn u3_theta(out: &mut Vec<Instruction>, q: u32, theta: Angle, phi: f64, lam: f64) {
    out.push(rz(q, Angle::Fixed(lam)));
    out.push(sx(q));
    out.push(rz(q, shifted(theta, PI)));
    out.push(sx(q));
    out.push(rz(q, Angle::Fixed(phi + PI)));
}

/// Lowers one instruction into native gates, appending to `out`.
fn lower_instr(out: &mut Vec<Instruction>, instr: &Instruction) {
    let q = instr.q0;
    match instr.kind {
        // Already native.
        GateKind::Id | GateKind::X | GateKind::Sx | GateKind::Rz | GateKind::Ecr => {
            out.push(*instr);
        }
        // Pure phases → virtual RZ.
        GateKind::Z => out.push(rz(q, Angle::Fixed(PI))),
        GateKind::S => out.push(rz(q, Angle::Fixed(FRAC_PI_2))),
        GateKind::Sdg => out.push(rz(q, Angle::Fixed(-FRAC_PI_2))),
        GateKind::T => out.push(rz(q, Angle::Fixed(FRAC_PI_4))),
        GateKind::Tdg => out.push(rz(q, Angle::Fixed(-FRAC_PI_4))),
        GateKind::P => out.push(rz(q, instr.angle.expect("P takes an angle"))),
        // Sxdg = RZ(π) SX RZ(π) up to global phase.
        GateKind::Sxdg => {
            out.push(rz(q, Angle::Fixed(PI)));
            out.push(sx(q));
            out.push(rz(q, Angle::Fixed(PI)));
        }
        // H = U3(π/2, 0, π)
        GateKind::H => u3_fixed(out, q, FRAC_PI_2, 0.0, PI),
        // Y = U3(π, π/2, π/2)
        GateKind::Y => u3_fixed(out, q, PI, FRAC_PI_2, FRAC_PI_2),
        // Ry(θ) = U3(θ, 0, 0)
        GateKind::Ry => u3_theta(out, q, instr.angle.expect("Ry takes an angle"), 0.0, 0.0),
        // Rx(θ) = U3(θ, -π/2, π/2)
        GateKind::Rx => u3_theta(
            out,
            q,
            instr.angle.expect("Rx takes an angle"),
            -FRAC_PI_2,
            FRAC_PI_2,
        ),
        // CX(c, t): native Eagle realization around one ECR
        // (verified numerically up to global phase):
        //   cx c,t ≡ rz(-π/2) c · sx t · ecr c,t · x c · x t
        GateKind::Cx => {
            let (c, t) = (instr.q0, instr.q1);
            out.push(rz(c, Angle::Fixed(-FRAC_PI_2)));
            out.push(sx(t));
            out.push(Instruction {
                kind: GateKind::Ecr,
                q0: c,
                q1: t,
                angle: None,
            });
            out.push(x(c));
            out.push(x(t));
        }
        // CZ(a,b) = (I⊗H) CX (I⊗H)
        GateKind::Cz => {
            let (a, b) = (instr.q0, instr.q1);
            u3_fixed(out, b, FRAC_PI_2, 0.0, PI);
            lower_instr(
                out,
                &Instruction {
                    kind: GateKind::Cx,
                    q0: a,
                    q1: b,
                    angle: None,
                },
            );
            u3_fixed(out, b, FRAC_PI_2, 0.0, PI);
        }
        // SWAP = 3 CX
        GateKind::Swap => {
            let (a, b) = (instr.q0, instr.q1);
            for (c, t) in [(a, b), (b, a), (a, b)] {
                lower_instr(
                    out,
                    &Instruction {
                        kind: GateKind::Cx,
                        q0: c,
                        q1: t,
                        angle: None,
                    },
                );
            }
        }
        // RZZ(θ) = CX · RZ(θ) on target · CX
        GateKind::Rzz => {
            let (a, b) = (instr.q0, instr.q1);
            lower_instr(
                out,
                &Instruction {
                    kind: GateKind::Cx,
                    q0: a,
                    q1: b,
                    angle: None,
                },
            );
            out.push(rz(b, instr.angle.expect("Rzz takes an angle")));
            lower_instr(
                out,
                &Instruction {
                    kind: GateKind::Cx,
                    q0: a,
                    q1: b,
                    angle: None,
                },
            );
        }
    }
}

/// Lowers an entire circuit to the native gate set, preserving free
/// parameters.
pub fn lower_to_native(circuit: &Circuit) -> Circuit {
    let mut out = Vec::with_capacity(circuit.len() * 4);
    for instr in circuit.instructions() {
        lower_instr(&mut out, instr);
    }
    Circuit::from_parts(circuit.num_qubits(), circuit.num_params(), out)
}

/// True when every instruction of `circuit` is native.
pub fn is_native_circuit(circuit: &Circuit) -> bool {
    circuit.instructions().iter().all(|i| is_native(i.kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_quantum::statevector::Statevector;

    /// Global-phase-insensitive equivalence on random input states.
    fn assert_same_action(a: &Circuit, b: &Circuit, n: usize) {
        // Prepare a generic product input so phases matter.
        let mut prep = Circuit::new(n);
        for q in 0..n as u32 {
            prep.ry(q, 0.3 + 0.41 * q as f64);
            prep.rz(q, -0.2 + 0.17 * q as f64);
        }
        let mut sa = Statevector::zero(n);
        sa.apply_circuit(&prep);
        let mut sb = sa.clone();
        sa.apply_circuit(a);
        sb.apply_circuit(b);
        let overlap = sa.inner(&sb).abs();
        assert!(overlap > 1.0 - 1e-9, "circuits differ, |⟨a|b⟩| = {overlap}");
    }

    fn single(kind: GateKind, theta: Option<f64>) -> Circuit {
        let mut c = Circuit::new(1);
        match theta {
            Some(t) => c.push1(kind, 0, Some(Angle::Fixed(t))),
            None => c.push1(kind, 0, None),
        };
        c
    }

    #[test]
    fn every_single_qubit_gate_lowers_equivalently() {
        let cases: Vec<(GateKind, Option<f64>)> = vec![
            (GateKind::Id, None),
            (GateKind::X, None),
            (GateKind::Y, None),
            (GateKind::Z, None),
            (GateKind::H, None),
            (GateKind::S, None),
            (GateKind::Sdg, None),
            (GateKind::T, None),
            (GateKind::Tdg, None),
            (GateKind::Sx, None),
            (GateKind::Sxdg, None),
            (GateKind::Rx, Some(0.77)),
            (GateKind::Ry, Some(-1.21)),
            (GateKind::Rz, Some(2.3)),
            (GateKind::P, Some(0.9)),
        ];
        for (kind, theta) in cases {
            let c = single(kind, theta);
            let lowered = lower_to_native(&c);
            assert!(is_native_circuit(&lowered), "{kind:?} not fully lowered");
            assert_same_action(&c, &lowered, 1);
        }
    }

    #[test]
    fn two_qubit_gates_lower_equivalently() {
        for kind in [GateKind::Cx, GateKind::Cz, GateKind::Swap] {
            let mut c = Circuit::new(2);
            c.push2(kind, 0, 1, None);
            let lowered = lower_to_native(&c);
            assert!(is_native_circuit(&lowered), "{kind:?} not fully lowered");
            assert_same_action(&c, &lowered, 2);
        }
        let mut c = Circuit::new(2);
        c.push2(GateKind::Rzz, 0, 1, Some(Angle::Fixed(0.63)));
        let lowered = lower_to_native(&c);
        assert!(is_native_circuit(&lowered));
        assert_same_action(&c, &lowered, 2);
    }

    #[test]
    fn cx_reversed_direction() {
        let mut c = Circuit::new(2);
        c.cx(1, 0);
        let lowered = lower_to_native(&c);
        assert!(is_native_circuit(&lowered));
        assert_same_action(&c, &lowered, 2);
    }

    #[test]
    fn parametric_ansatz_lowering_preserves_parameters() {
        use qdb_quantum::ansatz::{efficient_su2, Entanglement};
        let c = efficient_su2(3, 2, Entanglement::Linear);
        let lowered = lower_to_native(&c);
        assert_eq!(lowered.num_params(), c.num_params());
        assert!(is_native_circuit(&lowered));
        let params: Vec<f64> = (0..c.num_params())
            .map(|i| 0.1 * (i as f64 - 3.0))
            .collect();
        let bound_logical = c.bind(&params);
        let bound_native = lowered.bind(&params);
        assert_same_action(&bound_logical, &bound_native, 3);
    }

    #[test]
    fn ecr_passthrough() {
        let mut c = Circuit::new(2);
        c.ecr(0, 1);
        let lowered = lower_to_native(&c);
        assert_eq!(lowered.len(), 1);
    }
}
