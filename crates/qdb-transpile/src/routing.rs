//! SWAP routing of logical circuits onto constrained couplings.
//!
//! A lightweight deterministic SABRE-style router: gates are processed in
//! program order; when a two-qubit gate spans non-adjacent physical qubits,
//! we insert SWAPs chosen among the moves that strictly shorten the gate's
//! endpoint distance (guaranteeing termination), breaking ties with a
//! lookahead score over the next few two-qubit gates — the mechanism whose
//! routing overhead the paper's ancilla-margin strategy (§5.3) attacks.

use crate::coupling::CouplingMap;
use crate::layout::Layout;
use qdb_quantum::circuit::{Circuit, Instruction};
use qdb_quantum::gate::GateKind;

/// Result of routing a circuit.
#[derive(Clone, Debug)]
pub struct Routed {
    /// The physical circuit (width = device size), SWAPs included.
    pub circuit: Circuit,
    /// Layout after the final instruction.
    pub final_layout: Layout,
    /// Number of inserted SWAP gates.
    pub swap_count: usize,
}

/// How many upcoming two-qubit gates the tie-break heuristic inspects.
const LOOKAHEAD: usize = 8;
/// Weight of the lookahead term relative to the current gate.
const LOOKAHEAD_WEIGHT: f64 = 0.5;

/// Routes `circuit` onto `coupling` starting from `layout`.
///
/// # Panics
/// Panics if the layout is narrower than the circuit or the device region
/// is disconnected for some required pair.
pub fn route(circuit: &Circuit, coupling: &CouplingMap, layout: Layout) -> Routed {
    assert!(
        layout.num_logical() >= circuit.num_qubits(),
        "layout maps {} logical qubits, circuit needs {}",
        layout.num_logical(),
        circuit.num_qubits()
    );
    assert_eq!(layout.num_physical(), coupling.num_qubits());

    let dist = coupling.distance_matrix();
    let mut layout = layout;
    let mut out: Vec<Instruction> = Vec::with_capacity(circuit.len() * 2);
    let mut swap_count = 0usize;

    // Pre-extract the positions of two-qubit gates for lookahead scoring.
    let twoq_positions: Vec<usize> = circuit
        .instructions()
        .iter()
        .enumerate()
        .filter(|(_, i)| i.kind.arity() == 2)
        .map(|(idx, _)| idx)
        .collect();
    let mut twoq_cursor = 0usize;

    for (idx, instr) in circuit.instructions().iter().enumerate() {
        if instr.kind.arity() == 1 {
            out.push(Instruction {
                q0: layout.phys(instr.q0),
                ..*instr
            });
            continue;
        }
        // advance the lookahead cursor past this gate
        while twoq_cursor < twoq_positions.len() && twoq_positions[twoq_cursor] <= idx {
            twoq_cursor += 1;
        }

        loop {
            let pa = layout.phys(instr.q0);
            let pb = layout.phys(instr.q1);
            let d = dist[pa as usize][pb as usize];
            assert!(
                d != u32::MAX,
                "qubits {pa} and {pb} are disconnected on this device"
            );
            if d == 1 {
                out.push(Instruction {
                    q0: pa,
                    q1: pb,
                    ..*instr
                });
                break;
            }

            // Candidate swaps: edges incident to either endpoint that
            // strictly decrease the endpoint distance.
            let mut best: Option<((u32, u32), f64)> = None;
            for (active, other) in [(pa, pb), (pb, pa)] {
                for &n in coupling.neighbors(active) {
                    let new_d = dist[n as usize][other as usize];
                    if new_d + 1 > d {
                        continue; // not strictly closer after moving active → n
                    }
                    if new_d >= d {
                        continue;
                    }
                    // Lookahead: how does this swap affect upcoming gates?
                    let mut trial = layout.clone();
                    trial.swap_physical(active, n);
                    let mut score = new_d as f64;
                    let horizon = &twoq_positions
                        [twoq_cursor..twoq_positions.len().min(twoq_cursor + LOOKAHEAD)];
                    for &pos in horizon {
                        let g = &circuit.instructions()[pos];
                        let fa = trial.phys(g.q0);
                        let fb = trial.phys(g.q1);
                        score += LOOKAHEAD_WEIGHT * dist[fa as usize][fb as usize] as f64;
                    }
                    let key = (active.min(n), active.max(n));
                    let better = match best {
                        None => true,
                        Some((bk, bs)) => score < bs - 1e-12 || (score <= bs + 1e-12 && key < bk),
                    };
                    if better {
                        best = Some((key, score));
                    }
                }
            }
            let ((sa, sb), _) = best.expect("shortest-path swap always exists");
            layout.swap_physical(sa, sb);
            out.push(Instruction {
                kind: GateKind::Swap,
                q0: sa,
                q1: sb,
                angle: None,
            });
            swap_count += 1;
        }
    }

    Routed {
        circuit: Circuit::from_parts(coupling.num_qubits(), circuit.num_params(), out),
        final_layout: layout,
        swap_count,
    }
}

/// Checks that every two-qubit gate in `circuit` respects `coupling`.
pub fn respects_coupling(circuit: &Circuit, coupling: &CouplingMap) -> bool {
    circuit
        .instructions()
        .iter()
        .filter(|i| i.kind.arity() == 2)
        .all(|i| coupling.connected(i.q0, i.q1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_quantum::ansatz::{efficient_su2, Entanglement};
    use qdb_quantum::statevector::Statevector;

    /// Routing must preserve circuit semantics: simulate logical circuit vs
    /// routed circuit (un-permuting via the final layout).
    fn assert_equivalent(logical: &Circuit, routed: &Routed, params: &[f64]) {
        let mut ideal = Statevector::zero(logical.num_qubits());
        ideal.apply_parametric(logical, params);
        let p_ideal = ideal.probabilities();

        let mut phys = Statevector::zero(routed.circuit.num_qubits());
        phys.apply_parametric(&routed.circuit, params);
        let p_phys = phys.probabilities();

        // Marginalize the physical distribution onto logical bit order.
        let n = logical.num_qubits();
        let mut p_mapped = vec![0.0; 1 << n];
        for (state, &p) in p_phys.iter().enumerate() {
            if p < 1e-15 {
                continue;
            }
            let mut logical_state = 0usize;
            for l in 0..n as u32 {
                let pq = routed.final_layout.phys(l);
                if state >> pq & 1 == 1 {
                    logical_state |= 1 << l;
                }
            }
            p_mapped[logical_state] += p;
        }
        for i in 0..(1 << n) {
            assert!(
                (p_ideal[i] - p_mapped[i]).abs() < 1e-9,
                "probability mismatch at state {i}: {} vs {}",
                p_ideal[i],
                p_mapped[i]
            );
        }
    }

    #[test]
    fn adjacent_gates_route_without_swaps() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let line = CouplingMap::line(3);
        let routed = route(&c, &line, Layout::trivial(3, 3));
        assert_eq!(routed.swap_count, 0);
        assert!(respects_coupling(&routed.circuit, &line));
    }

    #[test]
    fn distant_gate_needs_swaps_on_line() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 3);
        let line = CouplingMap::line(4);
        let routed = route(&c, &line, Layout::trivial(4, 4));
        assert_eq!(routed.swap_count, 2, "distance 3 needs exactly 2 swaps");
        assert!(respects_coupling(&routed.circuit, &line));
        assert_equivalent(&c, &routed, &[]);
    }

    #[test]
    fn full_entanglement_on_line_is_correct() {
        let c = efficient_su2(4, 1, Entanglement::Full);
        let line = CouplingMap::line(4);
        let routed = route(&c, &line, Layout::trivial(4, 4));
        assert!(routed.swap_count > 0);
        assert!(respects_coupling(&routed.circuit, &line));
        let params: Vec<f64> = (0..c.num_params()).map(|i| 0.2 + 0.1 * i as f64).collect();
        assert_equivalent(&c, &routed, &params);
    }

    #[test]
    fn linear_ansatz_on_eagle_path_layout_is_swap_free() {
        let eagle = CouplingMap::eagle127();
        let c = efficient_su2(10, 3, Entanglement::Linear);
        let layout = Layout::along_path(&eagle, 0, 10);
        let routed = route(&c, &eagle, layout);
        assert_eq!(routed.swap_count, 0, "path layout should avoid all swaps");
        assert!(respects_coupling(&routed.circuit, &eagle));
    }

    #[test]
    fn circular_ansatz_on_line_needs_swaps_and_stays_correct() {
        let c = efficient_su2(5, 2, Entanglement::Circular);
        let line = CouplingMap::line(5);
        let routed = route(&c, &line, Layout::trivial(5, 5));
        assert!(routed.swap_count > 0);
        assert!(respects_coupling(&routed.circuit, &line));
        let params: Vec<f64> = (0..c.num_params()).map(|i| -0.15 * i as f64).collect();
        assert_equivalent(&c, &routed, &params);
    }

    #[test]
    fn routing_is_deterministic() {
        let c = efficient_su2(6, 2, Entanglement::Full);
        let line = CouplingMap::line(6);
        let a = route(&c, &line, Layout::trivial(6, 6));
        let b = route(&c, &line, Layout::trivial(6, 6));
        assert_eq!(a.swap_count, b.swap_count);
        assert_eq!(a.circuit, b.circuit);
    }
}
