//! The quantum-circuit margin strategy (paper §5.3).
//!
//! For large fragments the authors allocate 5–10 ancilla qubits beyond the
//! logical requirement: a bigger contiguous device region gives the router
//! more freedom, cutting SWAP insertions and therefore transpiled depth.
//! [`transpile_with_margin`] reproduces the mechanism end-to-end: pick a
//! BFS region of `logical + margin` physical qubits, restrict routing to
//! it, lower to the native basis, and report the resource deltas.

use crate::basis::lower_to_native;
use crate::coupling::CouplingMap;
use crate::layout::Layout;
use crate::metrics::{circuit_duration_ns, ecr_count, hardware_depth, GateDurations};
use crate::routing::{route, Routed};
use qdb_quantum::circuit::Circuit;

/// Resource report for one transpilation run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TranspileReport {
    /// Ancilla margin requested.
    pub margin: usize,
    /// Physical qubits made available to the router.
    pub region_size: usize,
    /// SWAPs inserted by routing.
    pub swap_count: usize,
    /// Hardware depth (virtual RZ excluded) after native lowering.
    pub hardware_depth: usize,
    /// Native two-qubit (ECR) gate count after lowering.
    pub ecr_count: usize,
    /// ASAP-scheduled single-execution duration in nanoseconds.
    pub duration_ns: f64,
}

/// Output of the full pipeline: the native-basis physical circuit plus its
/// report.
#[derive(Clone, Debug)]
pub struct Transpiled {
    /// Routed, native-basis circuit over the *region* qubits (relabelled
    /// `0..region_size`).
    pub circuit: Circuit,
    /// Region members as device qubit ids (index = relabelled id).
    pub region: Vec<u32>,
    /// Routing output (pre-lowering), for inspection.
    pub routed: Routed,
    /// Resource metrics.
    pub report: TranspileReport,
}

/// Routes and lowers `circuit` onto `coupling` using a BFS region of
/// `circuit.num_qubits() + margin` device qubits around `seed`.
///
/// # Panics
/// Panics if the device is smaller than the requested region.
pub fn transpile_with_margin(
    circuit: &Circuit,
    coupling: &CouplingMap,
    seed: u32,
    margin: usize,
) -> Transpiled {
    let logical = circuit.num_qubits();
    let want = logical + margin;
    assert!(
        want <= coupling.num_qubits(),
        "region of {want} exceeds device size {}",
        coupling.num_qubits()
    );
    let region = coupling.bfs_region(seed, want);
    assert!(region.len() >= logical, "connected region too small");
    let sub = coupling.subgraph(&region);
    // This is where the margin bites (§5.3): the ansatz's nearest-
    // neighbour entanglement wants a Hamiltonian path through the region.
    // A region of exactly `logical` qubits on heavy-hex frequently has no
    // such path (bridge qubits break it), forcing SWAP chains; each
    // ancilla of margin makes a clean path — and therefore SWAP-free
    // routing — more likely. Search for a path from every region qubit
    // and seat the circuit along the best one found.
    let layout = (0..sub.num_qubits() as u32)
        .map(|start| sub.greedy_path(start, logical))
        .find(|path| path.len() >= logical)
        .map(|path| Layout::new(path[..logical].to_vec(), sub.num_qubits()))
        .unwrap_or_else(|| Layout::trivial(logical, sub.num_qubits()));
    let routed = route(circuit, &sub, layout);
    let native = lower_to_native(&routed.circuit);
    let durations = GateDurations::eagle();
    let report = TranspileReport {
        margin,
        region_size: region.len(),
        swap_count: routed.swap_count,
        hardware_depth: hardware_depth(&native),
        ecr_count: ecr_count(&native),
        duration_ns: circuit_duration_ns(&native, &durations),
    };
    Transpiled {
        circuit: native,
        region,
        routed,
        report,
    }
}

/// Runs the §5.3 ablation: sweep `margins` and report resources for each.
pub fn margin_sweep(
    circuit: &Circuit,
    coupling: &CouplingMap,
    seed: u32,
    margins: &[usize],
) -> Vec<TranspileReport> {
    margins
        .iter()
        .map(|&m| transpile_with_margin(circuit, coupling, seed, m).report)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::respects_coupling;
    use qdb_quantum::ansatz::{efficient_su2, Entanglement};

    #[test]
    fn pipeline_produces_native_region_circuit() {
        let eagle = CouplingMap::eagle127();
        let c = efficient_su2(8, 2, Entanglement::Linear);
        let t = transpile_with_margin(&c, &eagle, 0, 5);
        assert_eq!(t.region.len(), 13);
        assert!(crate::basis::is_native_circuit(&t.circuit));
        let sub = eagle.subgraph(&t.region);
        assert!(respects_coupling(&t.circuit, &sub));
        assert!(t.report.hardware_depth > 0);
        assert!(t.report.duration_ns > 0.0);
    }

    #[test]
    fn margin_relieves_routing_pressure() {
        // The §5.3 effect near a device edge: a compact 14-qubit region
        // around seed 7 has no clean nearest-neighbour path, so the linear
        // ansatz pays SWAPs; 10 ancillas restore a Hamiltonian path and
        // routing collapses to (near) zero SWAPs.
        let eagle = CouplingMap::eagle127();
        let c = efficient_su2(14, 2, Entanglement::Linear);
        let reports = margin_sweep(&c, &eagle, 7, &[0, 10]);
        assert!(
            reports[0].swap_count > 0,
            "margin 0 should need SWAPs, got {}",
            reports[0].swap_count
        );
        assert_eq!(
            reports[1].swap_count, 0,
            "margin 10 should restore a clean path"
        );
        assert!(
            reports[1].hardware_depth < reports[0].hardware_depth,
            "depth should drop with margin: {} vs {}",
            reports[1].hardware_depth,
            reports[0].hardware_depth
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let eagle = CouplingMap::eagle127();
        let c = efficient_su2(10, 1, Entanglement::Linear);
        let a = transpile_with_margin(&c, &eagle, 30, 6).report;
        let b = transpile_with_margin(&c, &eagle, 30, 6).report;
        assert_eq!(a, b);
    }

    #[test]
    fn parameters_survive_the_pipeline() {
        let eagle = CouplingMap::eagle127();
        let c = efficient_su2(6, 2, Entanglement::Linear);
        let t = transpile_with_margin(&c, &eagle, 0, 4);
        assert_eq!(t.circuit.num_params(), c.num_params());
    }
}
