//! Physical qubit connectivity graphs.
//!
//! IBM's Eagle r3 processors (paper §5.1) use a *heavy-hex* lattice: rows of
//! degree-2 qubits joined by bridge qubits, keeping the maximum degree at 3
//! to limit crosstalk. [`CouplingMap::eagle127`] reproduces the 127-qubit
//! Eagle topology: 7 qubit rows (14 + 5×15 + 14) plus 24 bridge qubits.

use std::collections::VecDeque;

/// An undirected connectivity graph over physical qubits.
#[derive(Clone, Debug)]
pub struct CouplingMap {
    num_qubits: usize,
    adjacency: Vec<Vec<u32>>,
    edges: Vec<(u32, u32)>,
}

impl CouplingMap {
    /// Builds a map from undirected edges.
    ///
    /// # Panics
    /// Panics on out-of-range or self-loop edges.
    pub fn from_edges(num_qubits: usize, raw_edges: &[(u32, u32)]) -> Self {
        let mut adjacency = vec![Vec::new(); num_qubits];
        let mut edges = Vec::with_capacity(raw_edges.len());
        for &(a, b) in raw_edges {
            assert!(
                (a as usize) < num_qubits && (b as usize) < num_qubits,
                "edge out of range"
            );
            assert_ne!(a, b, "self loop");
            if !adjacency[a as usize].contains(&b) {
                adjacency[a as usize].push(b);
                adjacency[b as usize].push(a);
                edges.push((a.min(b), a.max(b)));
            }
        }
        for n in &mut adjacency {
            n.sort_unstable();
        }
        edges.sort_unstable();
        Self {
            num_qubits,
            adjacency,
            edges,
        }
    }

    /// A 1-D chain `0 — 1 — … — n-1`.
    pub fn line(n: usize) -> Self {
        let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1) as u32)
            .map(|i| (i, i + 1))
            .collect();
        Self::from_edges(n, &edges)
    }

    /// A ring.
    pub fn ring(n: usize) -> Self {
        let mut edges: Vec<(u32, u32)> = (0..n.saturating_sub(1) as u32)
            .map(|i| (i, i + 1))
            .collect();
        if n > 2 {
            edges.push((n as u32 - 1, 0));
        }
        Self::from_edges(n, &edges)
    }

    /// A fully connected graph (idealized all-to-all device).
    pub fn full(n: usize) -> Self {
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                edges.push((i, j));
            }
        }
        Self::from_edges(n, &edges)
    }

    /// The IBM Eagle 127-qubit heavy-hex lattice.
    ///
    /// Layout: 7 horizontal rows (row 0 has columns 0–13, rows 1–5 have
    /// columns 0–14, row 6 has columns 1–14) with 4 bridge qubits per row
    /// gap. Even gaps bridge columns {0, 4, 8, 12}; odd gaps {2, 6, 10, 14}.
    pub fn eagle127() -> Self {
        // Assign ids row by row, with each gap's bridges following the row
        // above them.
        let row_cols: [(usize, usize); 7] = [
            (0, 13),
            (0, 14),
            (0, 14),
            (0, 14),
            (0, 14),
            (0, 14),
            (1, 14),
        ];
        let mut id = 0u32;
        // qubit id of (row, col)
        let mut grid = vec![[u32::MAX; 15]; 7];
        let mut edges = Vec::new();
        for (r, &(lo, hi)) in row_cols.iter().enumerate() {
            for c in lo..=hi {
                grid[r][c] = id;
                if c > lo {
                    edges.push((grid[r][c - 1], id));
                }
                id += 1;
            }
            if r < 6 {
                // bridge qubits for the gap below row r
                let cols: [usize; 4] = if r % 2 == 0 {
                    [0, 4, 8, 12]
                } else {
                    [2, 6, 10, 14]
                };
                for &c in &cols {
                    // bridge id connects grid[r][c] now; the row below is
                    // connected after it is assigned, so remember bridges.
                    edges.push((grid[r][c], id));
                    // store bridge id in a side channel keyed by (gap, col)
                    // using negative trick: we instead push placeholder and
                    // fix after; simpler: record for later.
                    bridge_later(&mut edges, r, c, id);
                    id += 1;
                }
            }
        }
        // Second pass: connect each bridge to the row below it.
        // bridge_later encoded (gap, col, id) into `edges` via sentinel pairs;
        // decode them now that all rows have ids.
        let mut real_edges = Vec::with_capacity(edges.len());
        for (a, b) in edges {
            if a == SENTINEL {
                // b packs gap row (3 bits), col (4 bits), id (rest)
                let r = (b & 0b111) as usize;
                let c = ((b >> 3) & 0b1111) as usize;
                let bridge = b >> 7;
                real_edges.push((bridge, grid[r + 1][c]));
            } else {
                real_edges.push((a, b));
            }
        }
        let map = Self::from_edges(id as usize, &real_edges);
        debug_assert_eq!(map.num_qubits(), 127);
        map
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Undirected edge list, each edge once with `(min, max)`.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Neighbours of `q`, sorted.
    pub fn neighbors(&self, q: u32) -> &[u32] {
        &self.adjacency[q as usize]
    }

    /// Degree of `q`.
    pub fn degree(&self, q: u32) -> usize {
        self.adjacency[q as usize].len()
    }

    /// True when `a` and `b` share an edge.
    pub fn connected(&self, a: u32, b: u32) -> bool {
        self.adjacency[a as usize].binary_search(&b).is_ok()
    }

    /// BFS shortest-path distances from `src` (u32::MAX = unreachable).
    pub fn distances_from(&self, src: u32) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_qubits];
        let mut queue = VecDeque::new();
        dist[src as usize] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u as usize] {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Full all-pairs distance matrix.
    pub fn distance_matrix(&self) -> Vec<Vec<u32>> {
        (0..self.num_qubits as u32)
            .map(|q| self.distances_from(q))
            .collect()
    }

    /// BFS ball: the `k` qubits closest to `seed` (ties by id), always
    /// containing `seed`; returns fewer if the component is smaller.
    pub fn bfs_region(&self, seed: u32, k: usize) -> Vec<u32> {
        let dist = self.distances_from(seed);
        let mut ids: Vec<u32> = (0..self.num_qubits as u32)
            .filter(|&q| dist[q as usize] != u32::MAX)
            .collect();
        ids.sort_by_key(|&q| (dist[q as usize], q));
        ids.truncate(k);
        ids
    }

    /// Finds a simple path of `len` qubits starting at `seed` via bounded
    /// backtracking DFS (neighbours tried in min-degree order); used to seat
    /// linear-entanglement circuits. Returns the longest path found if the
    /// exact length is unreachable within the step budget.
    pub fn greedy_path(&self, seed: u32, len: usize) -> Vec<u32> {
        let mut path = vec![seed];
        let mut used = vec![false; self.num_qubits];
        used[seed as usize] = true;
        let mut best = path.clone();
        // Stack of per-node candidate lists with a cursor.
        let mut frames: Vec<(Vec<u32>, usize)> = Vec::new();
        let candidates = |m: &Self, q: u32, used: &[bool]| -> Vec<u32> {
            let mut c: Vec<u32> = m.adjacency[q as usize]
                .iter()
                .filter(|&&v| !used[v as usize])
                .copied()
                .collect();
            c.sort_by_key(|&v| (m.degree(v), v));
            c
        };
        frames.push((candidates(self, seed, &used), 0));
        let mut steps = 0usize;
        while path.len() < len && steps < 200_000 {
            steps += 1;
            let (cands, cursor) = frames.last_mut().expect("frame stack never empty here");
            if *cursor < cands.len() {
                let v = cands[*cursor];
                *cursor += 1;
                used[v as usize] = true;
                path.push(v);
                if path.len() > best.len() {
                    best = path.clone();
                }
                frames.push((candidates(self, v, &used), 0));
            } else {
                frames.pop();
                let v = path.pop().expect("path matches frames");
                used[v as usize] = false;
                if frames.is_empty() {
                    break;
                }
            }
        }
        if path.len() >= len {
            path
        } else {
            best
        }
    }

    /// Restricts the map to a subset of qubits, relabelling them
    /// `0..subset.len()` in the given order. Returns the submap.
    pub fn subgraph(&self, subset: &[u32]) -> CouplingMap {
        let mut rename = vec![u32::MAX; self.num_qubits];
        for (new, &old) in subset.iter().enumerate() {
            rename[old as usize] = new as u32;
        }
        let edges: Vec<(u32, u32)> = self
            .edges
            .iter()
            .filter_map(|&(a, b)| {
                let (na, nb) = (rename[a as usize], rename[b as usize]);
                (na != u32::MAX && nb != u32::MAX).then_some((na, nb))
            })
            .collect();
        CouplingMap::from_edges(subset.len(), &edges)
    }

    /// True if the whole graph is one connected component.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits == 0 {
            return true;
        }
        self.distances_from(0).iter().all(|&d| d != u32::MAX)
    }
}

const SENTINEL: u32 = u32::MAX - 1;

/// Encodes a bridge-to-lower-row connection that can only be resolved after
/// the next row's ids are assigned.
fn bridge_later(edges: &mut Vec<(u32, u32)>, gap_row: usize, col: usize, bridge_id: u32) {
    let packed = (gap_row as u32) | ((col as u32) << 3) | (bridge_id << 7);
    edges.push((SENTINEL, packed));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_ring() {
        let line = CouplingMap::line(5);
        assert_eq!(line.edges().len(), 4);
        assert!(line.connected(0, 1));
        assert!(!line.connected(0, 4));
        assert_eq!(line.distances_from(0)[4], 4);

        let ring = CouplingMap::ring(5);
        assert_eq!(ring.edges().len(), 5);
        assert_eq!(ring.distances_from(0)[4], 1);
        assert_eq!(ring.distances_from(0)[2], 2);
    }

    #[test]
    fn eagle127_shape() {
        let eagle = CouplingMap::eagle127();
        assert_eq!(eagle.num_qubits(), 127);
        assert!(eagle.is_connected());
        // Heavy-hex: max degree 3.
        let max_deg = (0..127u32).map(|q| eagle.degree(q)).max().unwrap();
        assert_eq!(max_deg, 3);
        // 7 rows contribute (14-1) + 5*(15-1) + (14-1) = 96 row edges,
        // 24 bridges contribute 2 edges each = 48; total 144.
        assert_eq!(eagle.edges().len(), 144);
        // Bridge qubits have degree exactly 2.
        let deg2 = (0..127u32).filter(|&q| eagle.degree(q) == 2).count();
        assert!(
            deg2 >= 24,
            "expected at least the 24 bridges at degree 2, got {deg2}"
        );
    }

    #[test]
    fn eagle_contains_long_paths() {
        let eagle = CouplingMap::eagle127();
        // The margin strategy relies on long simple paths existing: a
        // 14-residue fragment needs a 22-qubit logical line.
        let path = eagle.greedy_path(0, 22);
        assert!(path.len() >= 22, "greedy path too short: {}", path.len());
        for w in path.windows(2) {
            assert!(eagle.connected(w[0], w[1]));
        }
    }

    #[test]
    fn bfs_region_is_local_and_sized() {
        let eagle = CouplingMap::eagle127();
        let region = eagle.bfs_region(60, 30);
        assert_eq!(region.len(), 30);
        assert!(region.contains(&60));
        let dist = eagle.distances_from(60);
        let max_in = region.iter().map(|&q| dist[q as usize]).max().unwrap();
        assert!(
            max_in <= 8,
            "region should be a tight ball, radius {max_in}"
        );
    }

    #[test]
    fn subgraph_relabels() {
        let line = CouplingMap::line(6);
        let sub = line.subgraph(&[2, 3, 4]);
        assert_eq!(sub.num_qubits(), 3);
        assert!(sub.connected(0, 1));
        assert!(sub.connected(1, 2));
        assert!(!sub.connected(0, 2));
    }

    #[test]
    fn distance_matrix_symmetric() {
        let eagle = CouplingMap::eagle127();
        let d = eagle.distance_matrix();
        for a in (0..127).step_by(13) {
            for b in (0..127).step_by(17) {
                assert_eq!(d[a][b], d[b][a]);
            }
        }
        assert_eq!(d[0][0], 0);
    }

    #[test]
    fn full_graph_diameter_one() {
        let full = CouplingMap::full(6);
        let d = full.distance_matrix();
        for a in 0..6 {
            for b in 0..6 {
                assert_eq!(d[a][b], u32::from(a != b));
            }
        }
    }
}
