//! Hardware-level circuit metrics and the calibrated Eagle profile.
//!
//! Two kinds of numbers coexist (DESIGN.md §6):
//!
//! * **measured** — computed from circuits our own pipeline produced
//!   ([`hardware_depth`], [`circuit_duration_ns`], ECR counts);
//! * **calibrated** — the paper's reported per-fragment resources
//!   ([`EagleProfile::physical_qubits`], [`EagleProfile::paper_depth`]),
//!   reproduced from Tables 1–3 of the paper, where the transpiled depth of
//!   every fragment obeys `depth = 4·qubits + 5` exactly.

use qdb_quantum::circuit::Circuit;
use qdb_quantum::gate::GateKind;

/// Whether a gate consumes hardware time. `Rz` is implemented virtually
/// (frame change) on IBM hardware and `Id` is a scheduling placeholder.
pub fn is_timed(kind: GateKind) -> bool {
    !matches!(kind, GateKind::Rz | GateKind::Id)
}

/// Circuit depth counting only timed gates (virtual RZ excluded) — the
/// quantity IBM backends report as "transpiled depth".
pub fn hardware_depth(circuit: &Circuit) -> usize {
    let mut level = vec![0usize; circuit.num_qubits()];
    let mut depth = 0;
    for instr in circuit.instructions() {
        if !is_timed(instr.kind) {
            continue;
        }
        let l = instr.qubits().map(|q| level[q as usize]).max().unwrap_or(0) + 1;
        for q in instr.qubits() {
            level[q as usize] = l;
        }
        depth = depth.max(l);
    }
    depth
}

/// Per-gate durations in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GateDurations {
    /// √X pulse.
    pub sx_ns: f64,
    /// X pulse.
    pub x_ns: f64,
    /// Echoed cross-resonance pulse.
    pub ecr_ns: f64,
    /// Readout (measurement) duration.
    pub readout_ns: f64,
    /// Qubit reset / initialization between shots.
    pub reset_ns: f64,
}

impl GateDurations {
    /// IBM Eagle r3 calibration-sheet-typical values.
    pub fn eagle() -> Self {
        Self {
            sx_ns: 57.0,
            x_ns: 57.0,
            ecr_ns: 533.0,
            readout_ns: 1400.0,
            reset_ns: 1000.0,
        }
    }

    fn of(&self, kind: GateKind) -> f64 {
        match kind {
            GateKind::Sx | GateKind::Sxdg => self.sx_ns,
            GateKind::X => self.x_ns,
            GateKind::Ecr => self.ecr_ns,
            GateKind::Rz | GateKind::Id => 0.0,
            // Non-native gates get charged as if lowered: a rough upper
            // bound so duration stays monotone even pre-lowering.
            GateKind::Cx | GateKind::Cz | GateKind::Rzz => self.ecr_ns + 2.0 * self.sx_ns,
            GateKind::Swap => 3.0 * (self.ecr_ns + 2.0 * self.sx_ns),
            _ => 2.0 * self.sx_ns,
        }
    }
}

/// ASAP-scheduled duration of one circuit execution (excluding readout).
pub fn circuit_duration_ns(circuit: &Circuit, durations: &GateDurations) -> f64 {
    let mut t = vec![0.0f64; circuit.num_qubits()];
    for instr in circuit.instructions() {
        let d = durations.of(instr.kind);
        let start = instr.qubits().map(|q| t[q as usize]).fold(0.0f64, f64::max);
        for q in instr.qubits() {
            t[q as usize] = start + d;
        }
    }
    t.into_iter().fold(0.0, f64::max)
}

/// Number of two-qubit native entanglers — the error-budget-dominating count.
pub fn ecr_count(circuit: &Circuit) -> usize {
    circuit
        .instructions()
        .iter()
        .filter(|i| matches!(i.kind, GateKind::Ecr))
        .count()
}

/// Calibrated profile of the paper's Eagle r3 runs.
///
/// The per-fragment-length physical qubit budget reproduces the `Qubits`
/// column of Tables 1–3 (conformation register + interaction-slack register
/// + the §5.3 ancilla margin, as allocated by the authors' runs); the depth
/// law reproduces the `Depth` column.
#[derive(Clone, Copy, Debug, Default)]
pub struct EagleProfile;

impl EagleProfile {
    /// Physical qubits allocated for a fragment of `seq_len` residues
    /// (5 ≤ `seq_len` ≤ 14), per the paper's Tables 1–3.
    ///
    /// # Panics
    /// Panics outside the supported range.
    pub fn physical_qubits(seq_len: usize) -> usize {
        match seq_len {
            5 => 12,
            6 => 23,
            7 => 38,
            8 => 46,
            9 => 54,
            10 => 63,
            11 => 72,
            12 => 82,
            13 => 92,
            14 => 102,
            _ => panic!("fragment length {seq_len} outside the 5–14 residue range"),
        }
    }

    /// The transpiled-depth law observed across all 55 fragments of
    /// Tables 1–3: `depth = 4·qubits + 5`.
    pub fn paper_depth(physical_qubits: usize) -> usize {
        4 * physical_qubits + 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::lower_to_native;
    use qdb_quantum::ansatz::{efficient_su2, Entanglement};

    #[test]
    fn rz_is_free_in_hardware_depth() {
        let mut c = Circuit::new(1);
        c.rz(0, 1.0).rz(0, 2.0).rz(0, 3.0);
        assert_eq!(hardware_depth(&c), 0);
        assert_eq!(c.depth(), 3, "logical depth still counts rz");
        c.sx(0);
        assert_eq!(hardware_depth(&c), 1);
    }

    #[test]
    fn duration_accumulates_critical_path() {
        let d = GateDurations::eagle();
        let mut c = Circuit::new(2);
        c.sx(0).sx(0).ecr(0, 1).sx(1);
        // critical path: sx, sx, ecr, sx
        let expect = 2.0 * d.sx_ns + d.ecr_ns + d.sx_ns;
        assert!((circuit_duration_ns(&c, &d) - expect).abs() < 1e-9);
    }

    #[test]
    fn parallel_gates_do_not_add_duration() {
        let d = GateDurations::eagle();
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.sx(q);
        }
        assert!((circuit_duration_ns(&c, &d) - d.sx_ns).abs() < 1e-9);
    }

    #[test]
    fn eagle_profile_matches_paper_tables() {
        // The (len → qubits) pairs present in Tables 1–3.
        let rows = [
            (5, 12),
            (6, 23),
            (7, 38),
            (8, 46),
            (9, 54),
            (10, 63),
            (11, 72),
            (12, 82),
            (13, 92),
            (14, 102),
        ];
        for (len, qubits) in rows {
            assert_eq!(EagleProfile::physical_qubits(len), qubits);
        }
        // Depth spot checks straight from the tables.
        assert_eq!(EagleProfile::paper_depth(12), 53); // 3ckz, 3eax, 4mo4
        assert_eq!(EagleProfile::paper_depth(63), 257); // the 10-residue group
        assert_eq!(EagleProfile::paper_depth(102), 413); // the 14-residue group
    }

    #[test]
    fn lowered_ansatz_depth_scales_linearly() {
        // Our measured law: native EfficientSU2 depth grows ~linearly in
        // qubit count, same shape as the paper's 4q+5.
        let depth_at = |n: usize| {
            let c = efficient_su2(n, 3, Entanglement::Linear);
            hardware_depth(&lower_to_native(&c))
        };
        let d8 = depth_at(8);
        let d16 = depth_at(16);
        let d24 = depth_at(24);
        let slope1 = (d16 - d8) as f64 / 8.0;
        let slope2 = (d24 - d16) as f64 / 8.0;
        assert!(
            (slope1 - slope2).abs() < 0.5,
            "depth not linear: {slope1} vs {slope2}"
        );
        assert!(
            slope1 > 1.0,
            "entanglement chain must make depth grow with width"
        );
    }

    #[test]
    fn ecr_count_after_lowering() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2).swap(0, 2);
        let native = lower_to_native(&c);
        // 2 CX → 2 ECR, SWAP → 3 CX → 3 ECR
        assert_eq!(ecr_count(&native), 5);
    }
}
