//! # qdb-transpile
//!
//! Hardware model and compilation pipeline for IBM Eagle-class processors:
//! heavy-hex coupling maps, logical→physical layout, deterministic
//! SABRE-style SWAP routing, lowering to the native `{ECR, RZ, SX, X, ID}`
//! basis, the §5.3 ancilla-margin strategy, and calibrated/measured
//! resource metrics (depth, ECR count, schedule duration).
//!
//! Together with `qdb-quantum` this crate substitutes for the IBM Quantum +
//! Qiskit stack the paper executed on (DESIGN.md §1): circuits are routed
//! on the real Eagle-127 topology even though only the logical register is
//! simulated.

pub mod basis;
pub mod coupling;
pub mod layout;
pub mod margin;
pub mod metrics;
pub mod routing;

pub use coupling::CouplingMap;
pub use layout::Layout;
pub use margin::{margin_sweep, transpile_with_margin, TranspileReport, Transpiled};
pub use metrics::{circuit_duration_ns, ecr_count, hardware_depth, EagleProfile, GateDurations};
pub use routing::{respects_coupling, route, Routed};
