//! Logical→physical qubit placement.

use crate::coupling::CouplingMap;

/// A bijective partial map from logical qubits to physical qubits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layout {
    log2phys: Vec<u32>,
    phys2log: Vec<u32>,
}

impl Layout {
    /// Builds a layout from a logical→physical assignment over
    /// `num_physical` device qubits.
    ///
    /// # Panics
    /// Panics on duplicate or out-of-range physical qubits.
    pub fn new(log2phys: Vec<u32>, num_physical: usize) -> Self {
        let mut phys2log = vec![u32::MAX; num_physical];
        for (l, &p) in log2phys.iter().enumerate() {
            assert!(
                (p as usize) < num_physical,
                "physical qubit {p} out of range"
            );
            assert_eq!(
                phys2log[p as usize],
                u32::MAX,
                "physical qubit {p} used twice"
            );
            phys2log[p as usize] = l as u32;
        }
        Self { log2phys, phys2log }
    }

    /// Identity layout over the first `num_logical` physical qubits.
    pub fn trivial(num_logical: usize, num_physical: usize) -> Self {
        assert!(num_logical <= num_physical);
        Self::new((0..num_logical as u32).collect(), num_physical)
    }

    /// Seats `num_logical` qubits along a device path starting from `seed`
    /// — the natural layout for linear-entanglement ansatz circuits.
    /// Falls back to a BFS ball if the greedy path is too short.
    pub fn along_path(coupling: &CouplingMap, seed: u32, num_logical: usize) -> Self {
        let path = coupling.greedy_path(seed, num_logical);
        if path.len() >= num_logical {
            return Self::new(path[..num_logical].to_vec(), coupling.num_qubits());
        }
        Self::dense(coupling, seed, num_logical)
    }

    /// Seats `num_logical` qubits on the BFS ball around `seed`, assigning
    /// logical indices in BFS order.
    ///
    /// # Panics
    /// Panics if the connected component around `seed` is too small.
    pub fn dense(coupling: &CouplingMap, seed: u32, num_logical: usize) -> Self {
        let region = coupling.bfs_region(seed, num_logical);
        assert!(
            region.len() >= num_logical,
            "device region too small: {} < {num_logical}",
            region.len()
        );
        Self::new(region, coupling.num_qubits())
    }

    /// Number of mapped logical qubits.
    pub fn num_logical(&self) -> usize {
        self.log2phys.len()
    }

    /// Number of device qubits.
    pub fn num_physical(&self) -> usize {
        self.phys2log.len()
    }

    /// Physical qubit hosting logical `l`.
    #[inline]
    pub fn phys(&self, l: u32) -> u32 {
        self.log2phys[l as usize]
    }

    /// Logical qubit on physical `p`, if any.
    #[inline]
    pub fn logical(&self, p: u32) -> Option<u32> {
        let l = self.phys2log[p as usize];
        (l != u32::MAX).then_some(l)
    }

    /// The set of physical qubits currently in use.
    pub fn used_physical(&self) -> &[u32] {
        &self.log2phys
    }

    /// Applies a SWAP between two physical qubits (either may be an
    /// unoccupied ancilla).
    pub fn swap_physical(&mut self, a: u32, b: u32) {
        let la = self.phys2log[a as usize];
        let lb = self.phys2log[b as usize];
        if la != u32::MAX {
            self.log2phys[la as usize] = b;
        }
        if lb != u32::MAX {
            self.log2phys[lb as usize] = a;
        }
        self.phys2log.swap(a as usize, b as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_round_trip() {
        let l = Layout::trivial(3, 5);
        for q in 0..3u32 {
            assert_eq!(l.phys(q), q);
            assert_eq!(l.logical(q), Some(q));
        }
        assert_eq!(l.logical(4), None);
    }

    #[test]
    fn swap_updates_both_maps() {
        let mut l = Layout::trivial(2, 4);
        l.swap_physical(1, 3); // logical 1 moves to physical 3
        assert_eq!(l.phys(1), 3);
        assert_eq!(l.logical(3), Some(1));
        assert_eq!(l.logical(1), None);
        // Swap two ancillas: no-op on logical side.
        l.swap_physical(1, 2);
        assert_eq!(l.phys(0), 0);
        assert_eq!(l.phys(1), 3);
    }

    #[test]
    fn along_path_is_adjacent_chain() {
        let eagle = CouplingMap::eagle127();
        let l = Layout::along_path(&eagle, 0, 10);
        for q in 0..9u32 {
            assert!(
                eagle.connected(l.phys(q), l.phys(q + 1)),
                "path layout must seat neighbours adjacently"
            );
        }
    }

    #[test]
    #[should_panic(expected = "used twice")]
    fn duplicate_assignment_panics() {
        let _ = Layout::new(vec![1, 1], 4);
    }

    #[test]
    fn dense_layout_contiguous() {
        let eagle = CouplingMap::eagle127();
        let l = Layout::dense(&eagle, 30, 12);
        assert_eq!(l.num_logical(), 12);
        // Every seated qubit has at least one seated neighbour (connected blob).
        for q in 0..12u32 {
            let p = l.phys(q);
            let has_neighbor = eagle.neighbors(p).iter().any(|&n| l.logical(n).is_some());
            assert!(has_neighbor, "qubit {q} isolated in dense layout");
        }
    }
}
