//! Synthetic "X-ray" reference structures (the PDBbind-crystal substitute,
//! DESIGN.md §1).
//!
//! Native fragment conformations minimize their contact free energy — the
//! physical fact the whole lattice-VQE approach rests on. The synthetic
//! crystal therefore starts from the fragment's *exact* Miyazawa–Jernigan
//! lattice ground state (exhaustively computed), then relaxes it
//! off-lattice: its Cα pseudo-bond angles and dihedrals are blended toward
//! the Chou–Fasman secondary-structure ideal for the sequence and given a
//! small seeded jitter, and the chain is rebuilt at exact 3.8 Å spacing.
//! The result is deterministic per (PDB id, sequence), correlated with —
//! but measurably different from — both the lattice optimum and the
//! canonical secondary structure, which is exactly the regime the paper's
//! evaluation probes. All predictors (QDock, AF2, AF3) are evaluated
//! against these same references.

use crate::secondary::{assign_secondary, Secondary};
use qdb_lattice::coords::CaTrace;
use qdb_lattice::hamiltonian::FoldingHamiltonian;
use qdb_lattice::sequence::ProteinSequence;
use qdb_mol::builder::{build_peptide, classify_side_chain, ResidueSpec};
use qdb_mol::geometry::Vec3;
use qdb_mol::structure::Structure;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Cα–Cα virtual bond length (Å).
pub const CA_SPACING: f64 = 3.8;

/// A generated reference: trace + rebuilt backbone + SS assignment.
#[derive(Clone, Debug)]
pub struct ReferenceStructure {
    /// Cα trace (Å), centered.
    pub trace: Vec<Vec3>,
    /// Full-backbone structure, centered.
    pub structure: Structure,
    /// Per-residue secondary structure.
    pub secondary: Vec<Secondary>,
}

/// Stable FNV-1a hash of a PDB id (seeding).
pub fn pdb_id_seed(pdb_id: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in pdb_id.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// NeRF-style placement: next point at distance `r` from `c`, pseudo-bond
/// angle `theta` at `c`, pseudo-dihedral `phi` about the b→c axis.
pub fn place_next(a: Vec3, b: Vec3, c: Vec3, r: f64, theta: f64, phi: f64) -> Vec3 {
    let bc = (c - b).normalized();
    let n = {
        let raw = (b - a).cross(bc);
        if raw.norm() > 1e-9 {
            raw.normalized()
        } else {
            bc.any_perpendicular()
        }
    };
    let m = n.cross(bc);
    let (st, ct) = theta.sin_cos();
    let (sp, cp) = phi.sin_cos();
    c + r * (-bc * ct + m * (st * cp) + n * (st * sp))
}

/// Per-class ideal Cα pseudo-geometry `(theta, phi)` in radians.
pub fn class_geometry(ss: Secondary) -> (f64, f64) {
    let deg = std::f64::consts::PI / 180.0;
    match ss {
        Secondary::Helix => (91.0 * deg, 52.0 * deg),
        Secondary::Sheet => (128.0 * deg, -170.0 * deg),
        Secondary::Coil => (115.0 * deg, -80.0 * deg),
    }
}

/// Internal Cα pseudo-geometry of a trace: the bond angle at point 2 and
/// `(theta_i, phi_i)` for every placement of point `i ≥ 3`.
pub fn extract_internal(trace: &[Vec3]) -> (f64, Vec<(f64, f64)>) {
    let n = trace.len();
    let theta2 = if n > 2 {
        (trace[0] - trace[1]).angle_to(trace[2] - trace[1])
    } else {
        std::f64::consts::PI
    };
    let mut internal = Vec::with_capacity(n.saturating_sub(3));
    for i in 3..n {
        let (a, b, c, d) = (trace[i - 3], trace[i - 2], trace[i - 1], trace[i]);
        let theta = (b - c).angle_to(d - c);
        let b1 = b - a;
        let b2 = c - b;
        let b3 = d - c;
        let n1 = b1.cross(b2);
        let n2 = b2.cross(b3);
        let phi = if n1.norm() < 1e-9 || n2.norm() < 1e-9 {
            0.0 // collinear segment: dihedral undefined, pick 0
        } else {
            let n1h = n1.normalized();
            let n2h = n2.normalized();
            let m = n1h.cross(b2.normalized());
            let x = n1h.dot(n2h);
            let y = m.dot(n2h);
            // Negated so that `place_next(..., theta, phi)` reproduces `d`
            // exactly (verified by the round-trip test below).
            -y.atan2(x)
        };
        internal.push((theta, phi));
    }
    (theta2, internal)
}

/// Rebuilds a Cα trace from internal geometry at exact `CA_SPACING`.
pub fn rebuild_from_internal(n: usize, theta2: f64, internal: &[(f64, f64)]) -> Vec<Vec3> {
    let mut trace = vec![Vec3::ZERO, Vec3::new(CA_SPACING, 0.0, 0.0)];
    if n > 2 {
        trace.push(trace[1] + Vec3::new(-theta2.cos(), theta2.sin(), 0.0) * CA_SPACING);
    }
    for i in 3..n {
        let (theta, phi) = internal[i - 3];
        let p = place_next(
            trace[i - 3],
            trace[i - 2],
            trace[i - 1],
            CA_SPACING,
            theta,
            phi,
        );
        trace.push(p);
    }
    trace.truncate(n);
    trace
}

/// Standard normal via Box–Muller.
pub fn gaussian(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    (-2.0 * u1.ln()).sqrt() * u2.cos()
}

/// Circular blend of angle `a` toward angle `b` by fraction `alpha`.
pub fn blend_angle(a: f64, b: f64, alpha: f64) -> f64 {
    let diff =
        (b - a + std::f64::consts::PI).rem_euclid(std::f64::consts::TAU) - std::f64::consts::PI;
    a + alpha * diff
}

/// Fraction of off-lattice relaxation toward the Chou–Fasman ideal.
pub const RELAX_BLEND: f64 = 0.20;
/// Jitter σ on pseudo-bond angles (degrees).
const JITTER_THETA_DEG: f64 = 4.0;
/// Jitter σ on pseudo-dihedrals (degrees).
const JITTER_PHI_DEG: f64 = 7.0;

/// Generates the reference Cα trace for a sequence: exact lattice ground
/// state, relaxed in internal coordinates toward the per-residue
/// secondary-structure ideal with a small seeded jitter.
pub fn generate_trace(seq: &ProteinSequence, secondary: &[Secondary], seed: u64) -> Vec<Vec3> {
    let n = seq.len();
    assert!(n >= 4);
    // 1. Exact MJ lattice ground state (exhaustive, parallel). The scale
    //    has zero offset and the same penalty/interaction ratio (24:1) as
    //    `EnergyScale::calibrated`, so this argmin is *identical* to the
    //    ground state the pipeline's VQE targets.
    let hamiltonian = FoldingHamiltonian::new(
        seq.clone(),
        Default::default(),
        qdb_lattice::hamiltonian::EnergyScale {
            offset: 0.0,
            penalty: 24.0,
            interaction: 1.0,
        },
    );
    let (ground_bits, _) = hamiltonian.ground_state();
    let conformation = hamiltonian.conformation_of(ground_bits);
    let lattice: Vec<Vec3> = CaTrace::from_conformation(&conformation)
        .coords()
        .iter()
        .map(|&c| Vec3::from_array(c))
        .collect();

    // 2. Off-lattice relaxation in internal coordinates; retried with a
    //    reduced blend if the relaxed chain develops steric clashes
    //    (< 2.9 Å between non-bonded Cα).
    let deg = std::f64::consts::PI / 180.0;
    let (theta2, internal) = extract_internal(&lattice);
    for attempt in 0..10u64 {
        let blend = RELAX_BLEND * (1.0 - attempt as f64 * 0.1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(attempt * 0xD1CE));
        let relaxed: Vec<(f64, f64)> = internal
            .iter()
            .enumerate()
            .map(|(k, &(theta, phi))| {
                // internal[k] shapes the placement of residue k+3; use the
                // class of the central residue of that step.
                let ss = secondary[(k + 2).min(n - 1)];
                let (ideal_theta, ideal_phi) = class_geometry(ss);
                let t = blend_angle(theta, ideal_theta, blend)
                    + gaussian(&mut rng) * JITTER_THETA_DEG * deg;
                let p =
                    blend_angle(phi, ideal_phi, blend) + gaussian(&mut rng) * JITTER_PHI_DEG * deg;
                (t.clamp(0.35, std::f64::consts::PI - 0.05), p)
            })
            .collect();
        let theta2_r = (blend_angle(theta2, class_geometry(secondary[1]).0, blend)
            + gaussian(&mut rng) * JITTER_THETA_DEG * deg)
            .clamp(0.35, std::f64::consts::PI - 0.05);

        // 3. Rebuild with exact spacing and accept if clash-free.
        let trace = rebuild_from_internal(n, theta2_r, &relaxed);
        let clash = (0..n).any(|i| ((i + 2)..n).any(|j| trace[i].distance(trace[j]) < 2.9));
        if !clash || attempt == 9 {
            return trace;
        }
    }
    unreachable!("loop always returns by attempt 9")
}

/// Residue specs for the peptide builder from a sequence.
pub fn specs_for(seq: &ProteinSequence, start_res: i32) -> Vec<ResidueSpec> {
    seq.residues()
        .iter()
        .enumerate()
        .map(|(i, aa)| ResidueSpec {
            name: aa.three_letter().to_string(),
            seq_num: start_res + i as i32,
            side_chain: classify_side_chain(aa.one_letter()),
        })
        .collect()
}

/// Generates the deterministic reference ("X-ray") structure of a
/// fragment. Results are memoized process-wide: the exhaustive
/// lattice-ground-state search behind each reference is expensive and the
/// pipeline asks for the same reference repeatedly.
pub fn generate_reference(
    pdb_id: &str,
    seq: &ProteinSequence,
    start_res: i32,
) -> ReferenceStructure {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<(String, String, i32), ReferenceStructure>>> =
        OnceLock::new();
    let key = (pdb_id.to_string(), seq.to_string(), start_res);
    if let Some(hit) = CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("reference cache lock")
        .get(&key)
    {
        return hit.clone();
    }
    let fresh = generate_reference_uncached(pdb_id, seq, start_res);
    CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("reference cache lock")
        .insert(key, fresh.clone());
    fresh
}

fn generate_reference_uncached(
    pdb_id: &str,
    seq: &ProteinSequence,
    start_res: i32,
) -> ReferenceStructure {
    let secondary = assign_secondary(seq.residues());
    let seed = pdb_id_seed(pdb_id) ^ seq.stable_hash();
    let raw_trace = generate_trace(seq, &secondary, seed);
    // Center the trace.
    let centroid = raw_trace
        .iter()
        .fold(Vec3::ZERO, |acc, &p| acc + p / raw_trace.len() as f64);
    let trace: Vec<Vec3> = raw_trace.into_iter().map(|p| p - centroid).collect();
    let mut structure = build_peptide(&trace, &specs_for(seq, start_res));
    structure.center();
    ReferenceStructure {
        trace,
        structure,
        secondary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> ProteinSequence {
        ProteinSequence::parse(s).unwrap()
    }

    #[test]
    fn reference_is_deterministic() {
        let s = seq("DYLEAYGKGGVKAK");
        let a = generate_reference("4jpy", &s, 154);
        let b = generate_reference("4jpy", &s, 154);
        assert_eq!(a.trace, b.trace);
        // Different PDB id → different conformation even for the same
        // sequence (the paper's repeated sequences live in different
        // structural contexts).
        let c = generate_reference("1zsf", &s, 154);
        assert_ne!(a.trace, c.trace);
    }

    #[test]
    fn trace_spacing_exact() {
        let s = seq("PWWERYQP");
        let r = generate_reference("1ppi", &s, 57);
        for w in r.trace.windows(2) {
            assert!((w[0].distance(w[1]) - CA_SPACING).abs() < 1e-9);
        }
        assert_eq!(r.trace.len(), 8);
        assert_eq!(r.structure.len(), 8);
    }

    #[test]
    fn relaxation_pulls_dihedrals_toward_assigned_class() {
        // The reference = lattice ground state relaxed toward the
        // Chou–Fasman ideal: a helix-former's reference dihedrals must sit
        // closer to the helix value (52°) than a sheet-former's.
        let helix = generate_reference("test", &seq("EEEEEEEEEE"), 1);
        let sheet = generate_reference("test", &seq("VVVVVVVVVV"), 1);
        assert!(helix.secondary.iter().all(|&x| x == Secondary::Helix));
        assert!(sheet.secondary.iter().all(|&x| x == Secondary::Sheet));
        let mean_dist_to_helix = |trace: &[Vec3]| {
            let (_, internal) = extract_internal(trace);
            let target = 52.0f64.to_radians();
            internal
                .iter()
                .map(|&(_, phi)| {
                    (phi - target + std::f64::consts::PI).rem_euclid(std::f64::consts::TAU)
                        - std::f64::consts::PI
                })
                .map(f64::abs)
                .sum::<f64>()
                / internal.len() as f64
        };
        assert!(
            mean_dist_to_helix(&helix.trace) < mean_dist_to_helix(&sheet.trace),
            "helix-former should relax toward helical dihedrals"
        );
    }

    #[test]
    fn no_severe_self_clashes() {
        for id in ["1yc4", "3d7z", "5cqu", "2qbs"] {
            let r = generate_reference(id, &seq("HCSAGIGRSGT"), 214);
            for i in 0..r.trace.len() {
                for j in (i + 2)..r.trace.len() {
                    assert!(
                        r.trace[i].distance(r.trace[j]) > 2.5,
                        "{id}: residues {i},{j} clash"
                    );
                }
            }
        }
    }

    #[test]
    fn structure_is_centered_with_full_backbone() {
        let r = generate_reference("3eax", &seq("RYRDV"), 45);
        assert!(r.structure.centroid().norm() < 1e-9);
        for res in &r.structure.residues {
            for name in ["N", "CA", "C", "O"] {
                assert!(res.atom(name).is_some(), "missing {name}");
            }
        }
        assert_eq!(r.structure.residues[0].seq_num, 45);
        assert_eq!(r.structure.residues[0].name, "ARG");
    }
}
