//! AlphaFold2 / AlphaFold3 surrogate predictors (DESIGN.md §1).
//!
//! We cannot run AlphaFold offline in Rust; the paper uses AF2/AF3 only
//! as comparison points, so each surrogate produces a prediction =
//! reference conformation + a *prior-bias error model*:
//!
//! 1. **Helix bias** — deep-learning predictors over-predict canonical
//!    helices on short, data-sparse fragments (§1 of the paper:
//!    "data sparsity and high variability often lead to significant
//!    performance degradation"). The surrogate blends the true trace
//!    toward an ideal helix; fragments that really are helical are barely
//!    hurt, exactly as for the real models.
//! 2. **Correlated coordinate noise** — a smoothed random displacement
//!    field whose RMS amplitude shrinks with fragment length (longer
//!    fragments give the network more context).
//!
//! The two amplitudes are calibrated per model so the dataset-level win
//! rates land near the paper's (AF2 worse than AF3; QDock ahead of both);
//! EXPERIMENTS.md reports which numbers are calibrated vs measured.

#[cfg(test)]
use crate::reference::CA_SPACING;
use crate::reference::{
    blend_angle, extract_internal, gaussian, pdb_id_seed, rebuild_from_internal, specs_for,
    ReferenceStructure,
};
use qdb_lattice::sequence::ProteinSequence;
use qdb_mol::builder::build_peptide;
use qdb_mol::geometry::Vec3;
use qdb_mol::structure::Structure;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which baseline predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AfModel {
    /// AlphaFold2 (ColabFold protocol in the paper).
    Af2,
    /// AlphaFold3.
    Af3,
}

impl AfModel {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AfModel::Af2 => "AF2",
            AfModel::Af3 => "AF3",
        }
    }
}

/// Error-model calibration (per predictor).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AfConfig {
    /// Fraction of blending of the Cα pseudo-dihedrals toward ideal-helix
    /// values (the short-fragment prior bias: *relative* accuracy degrades
    /// most when the true conformation is non-helical).
    pub helix_bias: f64,
    /// Standard deviation (degrees) of the Gaussian noise on each Cα
    /// pseudo-dihedral — deep models' errors are torsion errors.
    pub dihedral_sigma_deg: f64,
    /// Standard deviation (degrees) of the noise on each pseudo-bond
    /// angle.
    pub angle_sigma_deg: f64,
}

impl AfConfig {
    /// Default calibration for a model. These constants are the only
    /// paper-calibrated quantities of the surrogates: they are set so the
    /// dataset-level win rates against the *measured* QDock predictions
    /// land near the paper's §6.2 values (92.7% / 80.0% on RMSD).
    pub fn for_model(model: AfModel) -> AfConfig {
        match model {
            AfModel::Af2 => AfConfig {
                helix_bias: 0.45,
                dihedral_sigma_deg: 88.0,
                angle_sigma_deg: 18.0,
            },
            AfModel::Af3 => AfConfig {
                helix_bias: 0.28,
                dihedral_sigma_deg: 48.0,
                angle_sigma_deg: 12.0,
            },
        }
    }
}

/// An AF surrogate prediction.
#[derive(Clone, Debug)]
pub struct AfPrediction {
    /// Predicted Cα trace, centered, exact 3.8 Å spacing.
    pub trace: Vec<Vec3>,
    /// Rebuilt full-backbone structure, centered.
    pub structure: Structure,
}

/// Runs the surrogate predictor for a fragment.
pub fn predict(
    model: AfModel,
    pdb_id: &str,
    seq: &ProteinSequence,
    start_res: i32,
    reference: &ReferenceStructure,
) -> AfPrediction {
    let config = AfConfig::for_model(model);
    predict_with(model, config, pdb_id, seq, start_res, reference)
}

/// Runs the surrogate with explicit calibration (ablations).
pub fn predict_with(
    model: AfModel,
    config: AfConfig,
    pdb_id: &str,
    seq: &ProteinSequence,
    start_res: i32,
    reference: &ReferenceStructure,
) -> AfPrediction {
    let n = seq.len();
    assert_eq!(reference.trace.len(), n, "reference/sequence mismatch");
    let model_salt = match model {
        AfModel::Af2 => 0xAF2u64,
        AfModel::Af3 => 0xAF3u64,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(pdb_id_seed(pdb_id) ^ seq.stable_hash() ^ model_salt);

    // Work in internal-coordinate (pseudo-dihedral) space: deep models'
    // errors are torsion errors, and this keeps the 3.8 Å geometry exact.
    let (theta2, internal) = extract_internal(&reference.trace);
    let deg = std::f64::consts::PI / 180.0;
    let helix_theta = 91.0 * deg;
    let helix_phi = 52.0 * deg;
    let alpha = config.helix_bias;
    let perturbed: Vec<(f64, f64)> = internal
        .iter()
        .map(|&(theta, phi)| {
            // 1. Prior bias toward helical geometry.
            let theta_b = blend_angle(theta, helix_theta, alpha);
            let phi_b = blend_angle(phi, helix_phi, alpha);
            // 2. Gaussian torsion noise.
            let theta_n = (theta_b + gaussian(&mut rng) * config.angle_sigma_deg * deg)
                .clamp(0.35, std::f64::consts::PI - 0.05);
            let phi_n = phi_b + gaussian(&mut rng) * config.dihedral_sigma_deg * deg;
            (theta_n, phi_n)
        })
        .collect();
    let theta2_n = (blend_angle(theta2, helix_theta, alpha)
        + gaussian(&mut rng) * config.angle_sigma_deg * deg)
        .clamp(0.35, std::f64::consts::PI - 0.05);

    // 3. Rebuild with exact virtual-bond geometry.
    let trace = rebuild_from_internal(n, theta2_n, &perturbed);
    let centroid = trace.iter().fold(Vec3::ZERO, |acc, &p| acc + p / n as f64);
    let trace: Vec<Vec3> = trace.into_iter().map(|p| p - centroid).collect();
    let mut structure = build_peptide(&trace, &specs_for(seq, start_res));
    structure.center();
    AfPrediction { trace, structure }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::generate_reference;
    use qdb_mol::kabsch::ca_rmsd;

    fn setup(s: &str, id: &str) -> (ProteinSequence, ReferenceStructure) {
        let seq = ProteinSequence::parse(s).unwrap();
        let reference = generate_reference(id, &seq, 1);
        (seq, reference)
    }

    #[test]
    fn predictions_deterministic_per_model() {
        let (seq, r) = setup("LLDTGADDTV", "1zsf");
        let a = predict(AfModel::Af2, "1zsf", &seq, 1, &r);
        let b = predict(AfModel::Af2, "1zsf", &seq, 1, &r);
        assert_eq!(a.trace, b.trace);
        let c = predict(AfModel::Af3, "1zsf", &seq, 1, &r);
        assert_ne!(a.trace, c.trace, "models must differ");
    }

    #[test]
    fn trace_geometry_valid() {
        let (seq, r) = setup("EDACQGDSGG", "2bok");
        for model in [AfModel::Af2, AfModel::Af3] {
            let p = predict(model, "2bok", &seq, 1, &r);
            assert_eq!(p.trace.len(), 10);
            for w in p.trace.windows(2) {
                assert!((w[0].distance(w[1]) - CA_SPACING).abs() < 1e-9);
            }
            assert_eq!(p.structure.len(), 10);
        }
    }

    #[test]
    fn af3_is_more_accurate_than_af2_on_average() {
        // Average over several fragments: AF3 RMSD < AF2 RMSD.
        let cases = [
            ("3b26", "ELISNSSDAL"),
            ("3d83", "YLVTHLMGAD"),
            ("2qbs", "HCSAGIGRSGT"),
            ("1ppi", "PWWERYQP"),
            ("3eax", "RYRDV"),
            ("5cxa", "FDGKGGILAHA"),
        ];
        let mut af2_total = 0.0;
        let mut af3_total = 0.0;
        for (id, s) in cases {
            let (seq, r) = setup(s, id);
            let p2 = predict(AfModel::Af2, id, &seq, 1, &r);
            let p3 = predict(AfModel::Af3, id, &seq, 1, &r);
            af2_total += ca_rmsd(&p2.trace, &r.trace);
            af3_total += ca_rmsd(&p3.trace, &r.trace);
        }
        assert!(
            af3_total < af2_total,
            "AF3 should beat AF2 in aggregate: {af3_total} vs {af2_total}"
        );
    }

    #[test]
    fn helical_fragments_are_easier_for_the_surrogate() {
        // The helix prior barely hurts genuinely helical fragments:
        // aggregate over several ids so single-seed torsion noise cannot
        // flip the comparison.
        let helix_formers = ["EEEEEEEEEE", "EEAAEEAAEE", "MEEAMEEAME"];
        let sheet_formers = ["VSVGVSVGVS", "VVTVVTVVTV", "CYVCYVCYVC"];
        let mut rh = 0.0;
        let mut rv = 0.0;
        for (k, s) in helix_formers.iter().enumerate() {
            let id = format!("hx{k}");
            let (seq, r) = setup(s, &id);
            let p = predict(AfModel::Af2, &id, &seq, 1, &r);
            rh += ca_rmsd(&p.trace, &r.trace);
        }
        for (k, s) in sheet_formers.iter().enumerate() {
            let id = format!("sh{k}");
            let (seq, r) = setup(s, &id);
            let p = predict(AfModel::Af2, &id, &seq, 1, &r);
            rv += ca_rmsd(&p.trace, &r.trace);
        }
        assert!(
            rh < rv,
            "helix prior should punish non-helical fragments more: {rh} vs {rv}"
        );
    }

    #[test]
    fn errors_are_nonzero_but_bounded() {
        let (seq, r) = setup("MIITEYMENGA", "5nkd");
        for model in [AfModel::Af2, AfModel::Af3] {
            let p = predict(model, "5nkd", &seq, 1, &r);
            let rmsd = ca_rmsd(&p.trace, &r.trace);
            assert!(rmsd > 0.3, "{model:?} should not be perfect: {rmsd}");
            assert!(rmsd < 12.0, "{model:?} should not explode: {rmsd}");
        }
    }
}
