//! Chou–Fasman secondary-structure propensities.
//!
//! The synthetic crystal generator assigns each residue a secondary
//! structure class from the classic Chou–Fasman single-residue
//! propensities with a smoothing window, mirroring how real fragment
//! conformations are dominated by local sequence preferences.

use qdb_lattice::amino::AminoAcid;

/// Coarse secondary-structure classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Secondary {
    /// α-helix.
    Helix,
    /// β-strand.
    Sheet,
    /// Loop/coil.
    Coil,
}

/// Chou–Fasman helix propensity `P(a)`.
pub fn helix_propensity(aa: AminoAcid) -> f64 {
    match aa {
        AminoAcid::Ala => 1.42,
        AminoAcid::Arg => 0.98,
        AminoAcid::Asn => 0.67,
        AminoAcid::Asp => 1.01,
        AminoAcid::Cys => 0.70,
        AminoAcid::Gln => 1.11,
        AminoAcid::Glu => 1.51,
        AminoAcid::Gly => 0.57,
        AminoAcid::His => 1.00,
        AminoAcid::Ile => 1.08,
        AminoAcid::Leu => 1.21,
        AminoAcid::Lys => 1.16,
        AminoAcid::Met => 1.45,
        AminoAcid::Phe => 1.13,
        AminoAcid::Pro => 0.57,
        AminoAcid::Ser => 0.77,
        AminoAcid::Thr => 0.83,
        AminoAcid::Trp => 1.08,
        AminoAcid::Tyr => 0.69,
        AminoAcid::Val => 1.06,
    }
}

/// Chou–Fasman sheet propensity `P(b)`.
pub fn sheet_propensity(aa: AminoAcid) -> f64 {
    match aa {
        AminoAcid::Ala => 0.83,
        AminoAcid::Arg => 0.93,
        AminoAcid::Asn => 0.89,
        AminoAcid::Asp => 0.54,
        AminoAcid::Cys => 1.19,
        AminoAcid::Gln => 1.10,
        AminoAcid::Glu => 0.37,
        AminoAcid::Gly => 0.75,
        AminoAcid::His => 0.87,
        AminoAcid::Ile => 1.60,
        AminoAcid::Leu => 1.30,
        AminoAcid::Lys => 0.74,
        AminoAcid::Met => 1.05,
        AminoAcid::Phe => 1.38,
        AminoAcid::Pro => 0.55,
        AminoAcid::Ser => 0.75,
        AminoAcid::Thr => 1.19,
        AminoAcid::Trp => 1.37,
        AminoAcid::Tyr => 1.47,
        AminoAcid::Val => 1.70,
    }
}

/// Assigns secondary structure per residue: window-averaged propensities
/// (window 3), helix if `P(a)` wins and exceeds 1.0, sheet if `P(b)` wins
/// and exceeds 1.0, else coil.
pub fn assign_secondary(residues: &[AminoAcid]) -> Vec<Secondary> {
    let n = residues.len();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(1);
            let hi = (i + 2).min(n);
            let window = &residues[lo..hi];
            let pa: f64 =
                window.iter().map(|&a| helix_propensity(a)).sum::<f64>() / window.len() as f64;
            let pb: f64 =
                window.iter().map(|&a| sheet_propensity(a)).sum::<f64>() / window.len() as f64;
            if pa >= pb && pa > 1.0 {
                Secondary::Helix
            } else if pb > pa && pb > 1.0 {
                Secondary::Sheet
            } else {
                Secondary::Coil
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_lattice::sequence::ProteinSequence;

    fn assign(s: &str) -> Vec<Secondary> {
        assign_secondary(ProteinSequence::parse(s).unwrap().residues())
    }

    #[test]
    fn poly_glutamate_is_helical() {
        let ss = assign("EEEEEEEE");
        assert!(ss.iter().all(|&s| s == Secondary::Helix));
    }

    #[test]
    fn poly_valine_is_sheet() {
        let ss = assign("VVVVVVVV");
        assert!(ss.iter().all(|&s| s == Secondary::Sheet));
    }

    #[test]
    fn glycine_proline_break_structure() {
        let ss = assign("GGPPGG");
        assert!(ss.iter().all(|&s| s == Secondary::Coil));
    }

    #[test]
    fn mixed_sequence_produces_mixed_assignment() {
        // Helix-former block then sheet-former block.
        let ss = assign("EEEAAAVVVIII");
        assert_eq!(ss[0], Secondary::Helix);
        assert_eq!(*ss.last().unwrap(), Secondary::Sheet);
        let kinds: std::collections::HashSet<_> = ss.into_iter().collect();
        assert!(kinds.len() >= 2);
    }

    #[test]
    fn propensity_tables_complete_and_positive() {
        use qdb_lattice::amino::ALL_AMINO_ACIDS;
        for aa in ALL_AMINO_ACIDS {
            assert!(helix_propensity(aa) > 0.0);
            assert!(sheet_propensity(aa) > 0.0);
        }
    }
}
