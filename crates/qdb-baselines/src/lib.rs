//! # qdb-baselines
//!
//! Comparison substrates for the evaluation: Chou–Fasman secondary
//! structure, the deterministic synthetic "X-ray" reference generator
//! (PDBbind-crystal substitute), and the AlphaFold2/AlphaFold3 surrogate
//! predictors with a calibrated prior-bias error model (DESIGN.md §1).

pub mod alphafold;
pub mod reference;
pub mod secondary;

pub use alphafold::{predict, predict_with, AfConfig, AfModel, AfPrediction};
pub use reference::{generate_reference, pdb_id_seed, ReferenceStructure};
pub use secondary::{assign_secondary, Secondary};
