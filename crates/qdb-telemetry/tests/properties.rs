//! Property tests for the telemetry histogram (merge commutativity,
//! percentile monotonicity and bracketing, no-loss recording under
//! sharded concurrency), the flight recorder (monotone per-thread
//! timestamps, balanced begin/end, exact drop accounting, and
//! ManualClock-deterministic agreement between the event stream and the
//! span histograms), and the fleet merge (commutative monoid over
//! worker deltas with count-exact, quantile-bounded histogram folding).

use proptest::prelude::*;
use qdb_telemetry::trace::TraceConfig;
use qdb_telemetry::{
    EventKind, FleetSnapshot, Histogram, HistogramSnapshot, ManualClock, Registry, TraceRecorder,
    WorkerDelta,
};
use std::collections::BTreeMap;
use std::sync::Arc;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Generated payload for one flushed worker delta.
type DeltaSpec = (
    usize,             // worker index
    u64,               // flush seq
    u64,               // flush wall ms
    Vec<(usize, u64)>, // counter bumps (name index, amount)
    Vec<(usize, i64)>, // gauge sets (name index, value)
    Vec<u64>,          // histogram samples
);

fn delta_of(spec: &DeltaSpec) -> WorkerDelta {
    const WORKERS: [&str; 3] = ["w0", "w1", "w2"];
    const NAMES: [&str; 3] = ["m.a", "m.b", "m.c"];
    let (widx, seq, at_ms, counters, gauges, samples) = spec;
    let r = Registry::new();
    for (n, v) in counters {
        r.counter(NAMES[n % NAMES.len()]).add(*v);
    }
    for (n, v) in gauges {
        r.gauge(NAMES[n % NAMES.len()]).set(*v);
    }
    for v in samples {
        r.histogram("m.h").record(*v);
    }
    WorkerDelta {
        version: WorkerDelta::VERSION,
        worker_id: WORKERS[widx % WORKERS.len()].to_string(),
        seq: *seq,
        flushed_at_ms: *at_ms,
        kind: "periodic".to_string(),
        delta: r.snapshot(),
    }
}

fn delta_specs(max: usize) -> impl Strategy<Value = Vec<DeltaSpec>> {
    proptest::collection::vec(
        (
            0usize..3,
            0u64..1_000,
            0u64..10_000,
            proptest::collection::vec((0usize..3, 0u64..1_000), 0..4),
            proptest::collection::vec((0usize..3, -1_000i64..1_000), 0..3),
            proptest::collection::vec(1u64..1_000_000_000, 0..6),
        ),
        1..max,
    )
}

proptest! {
    /// Merging snapshots is commutative, and merging partitions of a
    /// record stream equals recording the stream whole.
    #[test]
    fn prop_merge_commutes_and_matches_combined(
        a in proptest::collection::vec(any::<u64>(), 0..200),
        b in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let ab = sa.merge(&sb);
        let ba = sb.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(&ab, &snapshot_of(&all));
    }

    /// p50 ≤ p90 ≤ p99 ≤ max, and every percentile stays inside the exact
    /// observed [min, max] band.
    #[test]
    fn prop_percentiles_monotone_and_bracketed(
        values in proptest::collection::vec(0u64..u64::MAX / 2, 1..300),
    ) {
        let s = snapshot_of(&values);
        prop_assert!(s.p50 <= s.p90);
        prop_assert!(s.p90 <= s.p99);
        prop_assert!(s.p99 <= s.max);
        prop_assert!(s.p50 >= s.min);
        let exact_min = *values.iter().min().unwrap();
        let exact_max = *values.iter().max().unwrap();
        prop_assert_eq!(s.min, exact_min);
        prop_assert_eq!(s.max, exact_max);
        prop_assert_eq!(s.count, values.len() as u64);
        // Generic quantile stays monotone in q as well.
        let mut last = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = s.quantile(q);
            prop_assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    /// A percentile estimate overshoots its exact counterpart by at most
    /// the bucket's 1/32 relative width.
    #[test]
    fn prop_median_estimate_within_bucket_error(
        values in proptest::collection::vec(1u64..1_000_000_000, 1..200),
    ) {
        let s = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact_p50 = sorted[(values.len() - 1) / 2];
        prop_assert!(s.p50 >= exact_p50, "estimate below exact median");
        let bound = exact_p50 + exact_p50 / 32 + 1;
        prop_assert!(
            s.p50 <= bound,
            "p50 estimate {} above error bound {} (exact {})",
            s.p50, bound, exact_p50
        );
    }

    /// Concurrent recording across threads (each landing in a per-thread
    /// shard) loses nothing: count and sum are exact.
    #[test]
    fn prop_sharded_concurrent_recording_is_lossless(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 1..50),
            1..6,
        ),
    ) {
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = per_thread
            .iter()
            .cloned()
            .map(|values| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for v in values {
                        h.record(v);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let s = h.snapshot();
        let expected_count: u64 = per_thread.iter().map(|v| v.len() as u64).sum();
        let expected_sum: u64 = per_thread.iter().flatten().sum();
        prop_assert_eq!(s.count, expected_count);
        prop_assert_eq!(s.sum, expected_sum);
        // And equals the single-threaded recording of the same values.
        let flat: Vec<u64> = per_thread.iter().flatten().copied().collect();
        prop_assert_eq!(s, snapshot_of(&flat));
    }

    /// Every thread's ring keeps its events in nondecreasing timestamp
    /// order, keeps exactly `min(pushed, capacity)` of them, and accounts
    /// for every overwritten event in its drop counter — for any mix of
    /// thread counts, event counts, and (tiny) ring capacities.
    #[test]
    fn prop_recorder_rings_are_monotone_and_drop_accounted(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000, 1..40),
            1..5,
        ),
        capacity in 1usize..40,
    ) {
        let rec = Arc::new(TraceRecorder::new(TraceConfig {
            events_per_thread: capacity,
        }));
        let cap = rec.capacity_per_thread() as u64;
        let handles: Vec<_> = per_thread
            .iter()
            .cloned()
            .map(|increments| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    let mut ts = 0u64;
                    for (i, inc) in increments.iter().enumerate() {
                        ts += inc;
                        let kind = match i % 3 {
                            0 => EventKind::Begin,
                            1 => EventKind::End,
                            _ => EventKind::Instant,
                        };
                        rec.event(kind, "prop.event", ts);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let dump = rec.dump();
        prop_assert_eq!(dump.tracks.len(), per_thread.len());
        for track in &dump.tracks {
            prop_assert!(
                track.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
                "track {} not monotone", track.track
            );
        }
        // Each thread contributed one track; pushed = kept + dropped, and
        // the ring keeps at most its capacity.
        let mut pushed: Vec<u64> = dump
            .tracks
            .iter()
            .map(|t| t.events.len() as u64 + t.dropped)
            .collect();
        pushed.sort_unstable();
        let mut expected: Vec<u64> = per_thread.iter().map(|v| v.len() as u64).collect();
        expected.sort_unstable();
        prop_assert_eq!(pushed, expected);
        for track in &dump.tracks {
            let total = track.events.len() as u64 + track.dropped;
            prop_assert_eq!(track.events.len() as u64, total.min(cap));
            prop_assert_eq!(track.dropped, total.saturating_sub(cap));
        }
        prop_assert_eq!(
            dump.dropped(),
            dump.tracks.iter().map(|t| t.dropped).sum::<u64>()
        );
    }

    /// The fleet merge is a commutative monoid: merging partial fleet
    /// views commutes, associates, has `FleetSnapshot::empty` as the
    /// identity, and any grouping or ordering of the same worker deltas
    /// reaches the same fleet snapshot — so readers may fold journals in
    /// whatever order the filesystem hands them out.
    #[test]
    fn prop_fleet_merge_is_a_commutative_monoid(specs in delta_specs(12)) {
        // Unique per-delta sequence numbers, as the journal guarantees:
        // a duplicated (worker, seq, at_ms) stamp with two different
        // gauge values would make last-writer-wins genuinely ambiguous.
        let deltas: Vec<WorkerDelta> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let mut d = delta_of(spec);
                d.seq = i as u64;
                d
            })
            .collect();
        // Partition the deltas three ways and build partial views.
        let group = |rem: usize| {
            FleetSnapshot::from_deltas(
                deltas.iter().enumerate().filter(|(i, _)| i % 3 == rem).map(|(_, d)| d),
            )
        };
        let (f0, f1, f2) = (group(0), group(1), group(2));
        prop_assert_eq!(f0.merge(&f1), f1.merge(&f0));
        prop_assert_eq!(f0.merge(&f1).merge(&f2), f0.merge(&f1.merge(&f2)));
        let empty = FleetSnapshot::empty();
        prop_assert_eq!(empty.merge(&f0), f0.clone());
        prop_assert_eq!(f0.merge(&empty), f0.clone());

        // One-shot fold, grouped fold, and reversed-order fold all agree.
        let whole = FleetSnapshot::from_deltas(&deltas);
        prop_assert_eq!(&whole, &f0.merge(&f1).merge(&f2));
        let reversed = FleetSnapshot::from_deltas(deltas.iter().rev());
        prop_assert_eq!(&whole, &reversed);

        // The merged view satisfies the identity every consumer gates on.
        prop_assert_eq!(whole.identity_problems(), Vec::<String>::new());
        prop_assert_eq!(whole.total_flushes(), deltas.len() as u64);
    }

    /// Fleet histogram folding is lossless in count and bounded in
    /// quantile error: merging per-worker partitions of a sample stream
    /// equals recording the stream whole, total count is preserved
    /// exactly, and the merged median overshoots the exact combined
    /// median by at most the bucket's 1/32 relative width.
    #[test]
    fn prop_fleet_histogram_merge_preserves_count_and_quantile_bound(
        per_worker in proptest::collection::vec(
            proptest::collection::vec(1u64..1_000_000_000, 1..60),
            1..4,
        ),
    ) {
        let deltas: Vec<WorkerDelta> = per_worker
            .iter()
            .enumerate()
            .map(|(w, samples)| {
                delta_of(&(w, 0, w as u64, Vec::new(), Vec::new(), samples.clone()))
            })
            .collect();
        let fleet = FleetSnapshot::from_deltas(&deltas);
        let merged = &fleet.histograms["m.h"];

        let mut all: Vec<u64> = per_worker.iter().flatten().copied().collect();
        prop_assert_eq!(merged.count, all.len() as u64);
        prop_assert_eq!(merged.sum, all.iter().sum::<u64>());
        // Bucket-wise merge of partitions ≡ one histogram fed the stream.
        prop_assert_eq!(merged, &snapshot_of(&all));

        all.sort_unstable();
        let exact_p50 = all[(all.len() - 1) / 2];
        prop_assert!(merged.p50 >= exact_p50, "merged estimate below exact median");
        let bound = exact_p50 + exact_p50 / 32 + 1;
        prop_assert!(
            merged.p50 <= bound,
            "merged p50 {} above error bound {} (exact {})",
            merged.p50, bound, exact_p50
        );
    }

    /// End-to-end determinism under a ManualClock: arbitrarily nested
    /// span programs leave a trace whose begin/end events balance (LIFO,
    /// names matching), and whose per-name end-event count and bracketed
    /// durations agree exactly with the registry histograms the same
    /// spans recorded.
    #[test]
    fn prop_traced_spans_balance_and_match_histograms(
        program in proptest::collection::vec(
            (0usize..4, 1u64..1_000, any::<bool>()),
            1..60,
        ),
    ) {
        const NAMES: [&str; 4] = ["prop.a", "prop.b", "prop.c", "prop.d"];

        fn nest(r: &Registry, clock: &ManualClock, chunk: &[(usize, u64, bool)]) {
            if let Some(((idx, advance, mark), rest)) = chunk.split_first() {
                let _g = r.span(NAMES[idx % NAMES.len()]);
                clock.advance_ns(*advance);
                if *mark {
                    r.instant("prop.mark");
                }
                nest(r, clock, rest);
            }
        }

        let clock = Arc::new(ManualClock::new());
        let r = Registry::with_clock(clock.clone());
        // Capacity far above anything 60 events can wrap: balance must hold.
        r.install_recorder(Arc::new(TraceRecorder::new(TraceConfig {
            events_per_thread: 1 << 12,
        })));
        for chunk in program.chunks(7) {
            nest(&r, &clock, chunk);
        }
        let dump = r.take_recorder().expect("installed above").dump();
        prop_assert_eq!(dump.dropped(), 0);
        prop_assert_eq!(dump.tracks.len(), 1);
        let events = &dump.tracks[0].events;
        prop_assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));

        // Replay: LIFO balance, per-name end counts, per-name duration sums.
        let mut stack: Vec<(&str, u64)> = Vec::new();
        let mut ends: BTreeMap<&str, u64> = BTreeMap::new();
        let mut sums: BTreeMap<&str, u64> = BTreeMap::new();
        let mut instants = 0u64;
        for ev in events {
            match ev.event_kind() {
                Some(EventKind::Begin) => stack.push((&ev.name, ev.ts_ns)),
                Some(EventKind::End) => {
                    let (open, began) = stack.pop().expect("end without begin");
                    prop_assert_eq!(open, ev.name.as_str(), "end closes wrong span");
                    *ends.entry(open).or_default() += 1;
                    *sums.entry(open).or_default() += ev.ts_ns - began;
                }
                Some(EventKind::Instant) => instants += 1,
                None => prop_assert!(false, "unknown kind {:?}", ev.kind),
            }
        }
        prop_assert!(stack.is_empty(), "{} spans never closed", stack.len());
        prop_assert_eq!(
            instants,
            program.iter().filter(|(_, _, mark)| *mark).count() as u64
        );
        let snap = r.snapshot();
        for name in NAMES {
            let end_count = ends.get(name).copied().unwrap_or(0);
            let hist = snap.histograms.get(name);
            prop_assert_eq!(end_count, hist.map_or(0, |h| h.count));
            prop_assert_eq!(
                sums.get(name).copied().unwrap_or(0),
                hist.map_or(0, |h| h.sum)
            );
        }
    }
}
