//! Property tests for the telemetry histogram: merge commutativity,
//! percentile monotonicity and bracketing, and no-loss recording under
//! sharded concurrency.

use proptest::prelude::*;
use qdb_telemetry::{Histogram, HistogramSnapshot};
use std::sync::Arc;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// Merging snapshots is commutative, and merging partitions of a
    /// record stream equals recording the stream whole.
    #[test]
    fn prop_merge_commutes_and_matches_combined(
        a in proptest::collection::vec(any::<u64>(), 0..200),
        b in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let ab = sa.merge(&sb);
        let ba = sb.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(&ab, &snapshot_of(&all));
    }

    /// p50 ≤ p90 ≤ p99 ≤ max, and every percentile stays inside the exact
    /// observed [min, max] band.
    #[test]
    fn prop_percentiles_monotone_and_bracketed(
        values in proptest::collection::vec(0u64..u64::MAX / 2, 1..300),
    ) {
        let s = snapshot_of(&values);
        prop_assert!(s.p50 <= s.p90);
        prop_assert!(s.p90 <= s.p99);
        prop_assert!(s.p99 <= s.max);
        prop_assert!(s.p50 >= s.min);
        let exact_min = *values.iter().min().unwrap();
        let exact_max = *values.iter().max().unwrap();
        prop_assert_eq!(s.min, exact_min);
        prop_assert_eq!(s.max, exact_max);
        prop_assert_eq!(s.count, values.len() as u64);
        // Generic quantile stays monotone in q as well.
        let mut last = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = s.quantile(q);
            prop_assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    /// A percentile estimate overshoots its exact counterpart by at most
    /// the bucket's 1/32 relative width.
    #[test]
    fn prop_median_estimate_within_bucket_error(
        values in proptest::collection::vec(1u64..1_000_000_000, 1..200),
    ) {
        let s = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact_p50 = sorted[(values.len() - 1) / 2];
        prop_assert!(s.p50 >= exact_p50, "estimate below exact median");
        let bound = exact_p50 + exact_p50 / 32 + 1;
        prop_assert!(
            s.p50 <= bound,
            "p50 estimate {} above error bound {} (exact {})",
            s.p50, bound, exact_p50
        );
    }

    /// Concurrent recording across threads (each landing in a per-thread
    /// shard) loses nothing: count and sum are exact.
    #[test]
    fn prop_sharded_concurrent_recording_is_lossless(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 1..50),
            1..6,
        ),
    ) {
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = per_thread
            .iter()
            .cloned()
            .map(|values| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for v in values {
                        h.record(v);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let s = h.snapshot();
        let expected_count: u64 = per_thread.iter().map(|v| v.len() as u64).sum();
        let expected_sum: u64 = per_thread.iter().flatten().sum();
        prop_assert_eq!(s.count, expected_count);
        prop_assert_eq!(s.sum, expected_sum);
        // And equals the single-threaded recording of the same values.
        let flat: Vec<u64> = per_thread.iter().flatten().copied().collect();
        prop_assert_eq!(s, snapshot_of(&flat));
    }
}
