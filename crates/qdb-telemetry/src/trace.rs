//! Flight recorder: bounded, per-thread, lock-free event tracing.
//!
//! The metrics registry aggregates — a histogram can say `vqe.energy_eval`
//! p99 without saying *when* each evaluation ran, on which rayon worker,
//! or what the build's critical path was. The flight recorder keeps the
//! timeline: every span entry/exit and every instant marker becomes a
//! timestamped event in a **per-thread ring buffer**, cheap enough to
//! leave on for a whole dataset build and bounded enough to never grow
//! without limit (a wrapped ring overwrites its oldest events and counts
//! every overwrite in an explicit drop counter).
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when off.** No recorder installed ⇒ the span hot path
//!    pays exactly one relaxed `AtomicBool` load per event site (a plain
//!    `mov` on x86, no RMW, no fence) and touches nothing else. The
//!    perf-regression gate (`bench_gate`) holds this to within the
//!    benchmark noise tolerance.
//! 2. **Lock-free when on.** Each thread writes only its own ring; the
//!    only locks are one short mutex at first-event thread registration
//!    and a read lock per *new* static name (interning). Steady-state
//!    recording is two relaxed stores and one release store per event.
//! 3. **Deterministic under test.** Timestamps come from the owning
//!    [`Registry`]'s [`Clock`](crate::Clock), so a
//!    [`ManualClock`](crate::ManualClock) makes whole traces exactly
//!    reproducible.
//!
//! Event names are interned `&'static str`s (16-bit ids inside the ring
//! slots); each event carries a 46-bit correlation argument taken from a
//! thread-local set by [`correlate`] — the supervisor tags every fragment
//! with its build index so exporters can cut per-fragment tracks.
//!
//! Export goes two ways: [`TraceDump`] (versioned raw JSON, the archival
//! format) and [`crate::export::chrome`] (Chrome trace-event JSON,
//! loadable in Perfetto / `chrome://tracing`).

use crate::counter::Counter;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// What one event marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point event (retry, fault, fsync, …) with no duration.
    Instant,
}

impl EventKind {
    /// Wire name used in dump files (`"begin"` / `"end"` / `"instant"`).
    pub const fn as_str(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::End => "end",
            EventKind::Instant => "instant",
        }
    }

    /// Parses a wire name back; `None` for anything else.
    pub fn from_wire(s: &str) -> Option<Self> {
        match s {
            "begin" => Some(EventKind::Begin),
            "end" => Some(EventKind::End),
            "instant" => Some(EventKind::Instant),
            _ => None,
        }
    }

    fn to_bits(self) -> u64 {
        match self {
            EventKind::Begin => 0,
            EventKind::End => 1,
            EventKind::Instant => 2,
        }
    }

    fn from_bits(bits: u64) -> Self {
        match bits {
            0 => EventKind::Begin,
            1 => EventKind::End,
            _ => EventKind::Instant,
        }
    }
}

/// Slot packing: `kind` in bits 62–63, interned name id in bits 46–61,
/// correlation argument in bits 0–45.
pub const ARG_BITS: u32 = 46;
/// Mask selecting the correlation argument of a packed slot word.
pub const ARG_MASK: u64 = (1 << ARG_BITS) - 1;
const NAME_BITS: u32 = 16;
const NAME_MASK: u64 = (1 << NAME_BITS) - 1;

/// Bits of a correlation argument carrying the fragment field (low bits).
pub const LANE_FRAGMENT_BITS: u32 = 32;
/// Mask selecting the fragment field of a correlation argument.
pub const LANE_FRAGMENT_MASK: u64 = (1 << LANE_FRAGMENT_BITS) - 1;
/// Bits of a correlation argument carrying the worker ordinal (bits
/// 32..46 — 14 bits, so ordinals range `0..16384`).
pub const LANE_WORKER_BITS: u32 = ARG_BITS - LANE_FRAGMENT_BITS;
/// Largest worker ordinal a correlation argument can carry.
pub const LANE_WORKER_MAX: u64 = (1 << LANE_WORKER_BITS) - 1;

/// Packs a `(worker ordinal, fragment field)` pair into one correlation
/// argument so events from different processes stay attributable after a
/// fleet merge: the worker ordinal lands in bits 32..46 and the fragment
/// field in bits 0..32. Ordinal 0 means "unattributed" and reproduces the
/// legacy single-process encoding bit for bit (the fragment field alone),
/// so existing traces decode unchanged.
pub fn pack_lane(worker_ordinal: u64, fragment: u64) -> u64 {
    ((worker_ordinal & LANE_WORKER_MAX) << LANE_FRAGMENT_BITS) | (fragment & LANE_FRAGMENT_MASK)
}

/// The worker ordinal packed into a correlation argument (0 = none).
pub fn lane_worker(arg: u64) -> u64 {
    (arg >> LANE_FRAGMENT_BITS) & LANE_WORKER_MAX
}

/// The fragment field packed into a correlation argument.
pub fn lane_fragment(arg: u64) -> u64 {
    arg & LANE_FRAGMENT_MASK
}

/// A stable nonzero ordinal for a worker-id string, derived by FNV-1a
/// folded to [`LANE_WORKER_BITS`] bits. Deterministic across processes
/// (two runs of worker `"w0"` always pack the same lanes) and nonzero so
/// an attributed lane is never mistaken for the legacy encoding; distinct
/// ids can collide in principle (14-bit space), which merges their lanes
/// in a trace view but never corrupts metric accounting (snapshots are
/// keyed by the full worker-id string).
pub fn worker_ordinal(worker_id: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in worker_id.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let folded = (hash ^ (hash >> 32) ^ (hash >> 14)) & LANE_WORKER_MAX;
    folded.max(1)
}

fn pack(kind: EventKind, name_id: u16, arg: u64) -> u64 {
    (kind.to_bits() << 62) | ((name_id as u64) << ARG_BITS) | (arg & ARG_MASK)
}

fn unpack(word: u64) -> (EventKind, u16, u64) {
    (
        EventKind::from_bits(word >> 62),
        ((word >> ARG_BITS) & NAME_MASK) as u16,
        word & ARG_MASK,
    )
}

/// Recorder sizing.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Ring capacity per thread, in events; rounded up to a power of two
    /// (minimum 8). Each event is 16 bytes, so the default 2¹⁸ costs
    /// 4 MiB per recording thread — roomy for a 55-fragment build at
    /// ~25k span events while staying strictly bounded.
    pub events_per_thread: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            events_per_thread: 1 << 18,
        }
    }
}

/// One thread's ring: written only by its owning thread, read at dump
/// time. Slots are atomics so a dump racing a straggler writer reads
/// stale-but-initialized words, never undefined ones.
struct ThreadRing {
    track: u32,
    thread_name: String,
    capacity: usize,
    /// Events ever written (the ring index is `head & (capacity - 1)`).
    head: AtomicU64,
    /// Events overwritten after the ring wrapped.
    dropped: AtomicU64,
    slots: Box<[Slot]>,
}

struct Slot {
    ts_ns: AtomicU64,
    word: AtomicU64,
}

impl ThreadRing {
    fn new(track: u32, thread_name: String, capacity: usize) -> Self {
        let slots = (0..capacity)
            .map(|_| Slot {
                ts_ns: AtomicU64::new(0),
                word: AtomicU64::new(0),
            })
            .collect();
        Self {
            track,
            thread_name,
            capacity,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots,
        }
    }

    /// Single-writer push; returns `true` when it overwrote (dropped) an
    /// older event.
    fn push(&self, ts_ns: u64, word: u64) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head as usize) & (self.capacity - 1)];
        slot.ts_ns.store(ts_ns, Ordering::Relaxed);
        slot.word.store(word, Ordering::Relaxed);
        self.head.store(head + 1, Ordering::Release);
        if head >= self.capacity as u64 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
}

/// Static-name intern table: names live for the program, ids fit a slot.
#[derive(Default)]
struct NameTable {
    ids: HashMap<&'static str, u16>,
    names: Vec<&'static str>,
}

/// Unique-per-process recorder ids let the thread-local ring cache detect
/// that a *different* recorder has been installed since it was filled.
static NEXT_RECORDER_ID: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// This thread's ring in the recorder it last wrote to.
    static THREAD_RING: RefCell<Option<(usize, Arc<ThreadRing>)>> = const { RefCell::new(None) };
    /// Correlation argument stamped on every event this thread records.
    static CURRENT_ARG: Cell<u64> = const { Cell::new(0) };
}

/// The flight recorder: a set of per-thread event rings plus the shared
/// name intern table. Install on a [`Registry`] with
/// [`Registry::install_recorder`](crate::Registry::install_recorder);
/// spans and instants then stream into it until
/// [`take_recorder`](crate::Registry::take_recorder) detaches it for
/// [`dump`](TraceRecorder::dump)ing.
pub struct TraceRecorder {
    id: usize,
    capacity: usize,
    names: RwLock<NameTable>,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    /// `trace.dropped` handle, bound when installed on a registry so ring
    /// wrap is visible in ordinary metric snapshots too.
    dropped_counter: OnceLock<Arc<Counter>>,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("id", &self.id)
            .field("capacity", &self.capacity)
            .field("tracks", &self.rings.lock().len())
            .finish()
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new(TraceConfig::default())
    }
}

impl TraceRecorder {
    /// A recorder with `config` sizing.
    pub fn new(config: TraceConfig) -> Self {
        Self {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            capacity: config.events_per_thread.max(8).next_power_of_two(),
            names: RwLock::new(NameTable::default()),
            rings: Mutex::new(Vec::new()),
            dropped_counter: OnceLock::new(),
        }
    }

    /// Binds the registry counter that mirrors ring-wrap drops
    /// (idempotent; called by `Registry::install_recorder`).
    pub(crate) fn bind_dropped_counter(&self, counter: Arc<Counter>) {
        let _ = self.dropped_counter.set(counter);
    }

    /// Ring capacity per thread (post power-of-two rounding), in events.
    pub fn capacity_per_thread(&self) -> usize {
        self.capacity
    }

    fn intern(&self, name: &'static str) -> u16 {
        if let Some(&id) = self.names.read().ids.get(name) {
            return id;
        }
        let mut table = self.names.write();
        if let Some(&id) = table.ids.get(name) {
            return id;
        }
        if table.names.len() >= NAME_MASK as usize {
            // Table saturated: fold everything new into id 0 rather than
            // corrupting slot packing. 65k distinct static names means
            // something is generating names; 0 maps to the first name
            // interned, documented as best-effort.
            return 0;
        }
        let id = table.names.len() as u16;
        table.names.push(name);
        table.ids.insert(name, id);
        id
    }

    /// Records one event at an explicit timestamp. Callers that already
    /// read the clock (the span guard) pass the same reading here, so
    /// tracing adds no clock reads of its own.
    pub fn event(&self, kind: EventKind, name: &'static str, ts_ns: u64) {
        let word = pack(kind, self.intern(name), CURRENT_ARG.with(|a| a.get()));
        THREAD_RING.with(|cell| {
            let mut cached = cell.borrow_mut();
            let stale = !matches!(cached.as_ref(), Some((id, _)) if *id == self.id);
            if stale {
                *cached = Some((self.id, self.register_current_thread()));
            }
            let (_, ring) = cached.as_ref().expect("cached just above");
            if ring.push(ts_ns, word) {
                if let Some(c) = self.dropped_counter.get() {
                    c.inc();
                }
            }
        });
    }

    fn register_current_thread(&self) -> Arc<ThreadRing> {
        let mut rings = self.rings.lock();
        let track = rings.len() as u32;
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{track}"));
        let ring = Arc::new(ThreadRing::new(track, name, self.capacity));
        rings.push(ring.clone());
        ring
    }

    /// Total events dropped to ring wrap, across all threads.
    pub fn dropped(&self) -> u64 {
        self.rings
            .lock()
            .iter()
            .map(|r| r.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Drains every ring into a serializable [`TraceDump`]. Call at
    /// quiescence (after the traced workload finished); a dump racing an
    /// active writer may pair a timestamp with a neighbouring event's
    /// payload but can never read uninitialized memory.
    pub fn dump(&self) -> TraceDump {
        let names = self.names.read();
        let rings = self.rings.lock();
        let tracks = rings
            .iter()
            .map(|ring| {
                let head = ring.head.load(Ordering::Acquire);
                let kept = head.min(ring.capacity as u64);
                let mut events: Vec<RawEvent> = (head - kept..head)
                    .map(|i| {
                        let slot = &ring.slots[(i as usize) & (ring.capacity - 1)];
                        let (kind, name_id, arg) = unpack(slot.word.load(Ordering::Acquire));
                        RawEvent {
                            ts_ns: slot.ts_ns.load(Ordering::Relaxed),
                            kind: kind.as_str().to_string(),
                            name: names
                                .names
                                .get(name_id as usize)
                                .copied()
                                .unwrap_or("?")
                                .to_string(),
                            arg,
                        }
                    })
                    .collect();
                // Ring order is push order, which can trail timestamp
                // order: a site that times a region with its own clock
                // reads pushes its begin/end pair at completion, after any
                // instants recorded *inside* the region. The stable sort
                // restores timeline order (ties keep push order, so an
                // end at t still precedes an unrelated begin at t).
                events.sort_by_key(|e| e.ts_ns);
                TrackDump {
                    track: ring.track,
                    thread: ring.thread_name.clone(),
                    dropped: ring.dropped.load(Ordering::Relaxed),
                    events,
                }
            })
            .collect();
        TraceDump {
            version: TraceDump::VERSION,
            tracks,
        }
    }
}

/// Sets this thread's correlation argument for the guard's lifetime;
/// every event the thread records while the guard lives carries it. The
/// supervisor correlates each fragment's events with its 1-based build
/// index (0 = uncorrelated), which the Chrome exporter turns into
/// per-fragment tracks.
pub fn correlate(arg: u64) -> CorrelationGuard {
    let prev = CURRENT_ARG.with(|a| a.replace(arg & ARG_MASK));
    CorrelationGuard {
        prev,
        _not_send: std::marker::PhantomData,
    }
}

/// The correlation argument currently stamped on this thread's events.
pub fn current_correlation() -> u64 {
    CURRENT_ARG.with(|a| a.get())
}

/// RAII guard restoring the previous correlation argument on drop.
#[derive(Debug)]
pub struct CorrelationGuard {
    prev: u64,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for CorrelationGuard {
    fn drop(&mut self) {
        CURRENT_ARG.with(|a| a.set(self.prev));
    }
}

/// One decoded event of a dumped trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawEvent {
    /// Timestamp (registry-clock nanoseconds).
    pub ts_ns: u64,
    /// [`EventKind`] wire name (`"begin"` / `"end"` / `"instant"`); kept
    /// as a string so the dump schema is plain JSON structs end to end.
    pub kind: String,
    /// Interned event name, resolved.
    pub name: String,
    /// Correlation argument (0 = none).
    pub arg: u64,
}

impl RawEvent {
    /// The typed event kind, `None` if the dump carried an unknown name.
    pub fn event_kind(&self) -> Option<EventKind> {
        EventKind::from_wire(&self.kind)
    }
}

/// One thread's dumped ring.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackDump {
    /// Track id (registration order).
    pub track: u32,
    /// OS thread name, or `thread-<track>` when unnamed.
    pub thread: String,
    /// Events this ring overwrote after wrapping.
    pub dropped: u64,
    /// Surviving events, oldest first; timestamps are nondecreasing.
    pub events: Vec<RawEvent>,
}

/// The versioned raw export — everything the recorder held, losslessly.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceDump {
    /// Schema version ([`TraceDump::VERSION`]).
    pub version: u32,
    /// Per-thread tracks, in registration order.
    pub tracks: Vec<TrackDump>,
}

impl TraceDump {
    /// Current raw-dump schema version.
    pub const VERSION: u32 = 1;

    /// Total events dropped across tracks.
    pub fn dropped(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped).sum()
    }

    /// Total surviving events across tracks.
    pub fn num_events(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Pretty JSON, schema-versioned.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace dump serializes")
    }

    /// Parses a dump, rejecting unknown versions.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let dump: TraceDump = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if dump.version != Self::VERSION {
            return Err(format!(
                "trace dump version {} unsupported (expected {})",
                dump.version,
                Self::VERSION
            ));
        }
        Ok(dump)
    }

    /// Writes the raw dump as JSON to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    /// Reads a raw dump back from `path`.
    pub fn read(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::registry::Registry;

    fn recorder(capacity: usize) -> TraceRecorder {
        TraceRecorder::new(TraceConfig {
            events_per_thread: capacity,
        })
    }

    #[test]
    fn events_round_trip_through_packing() {
        for kind in [EventKind::Begin, EventKind::End, EventKind::Instant] {
            let word = pack(kind, 513, 0x3FFF_FFFF_FFFF);
            assert_eq!(unpack(word), (kind, 513, 0x3FFF_FFFF_FFFF));
        }
    }

    #[test]
    fn lane_packing_round_trips_and_preserves_legacy_encoding() {
        let arg = pack_lane(0x3A7, 1_000_042);
        assert_eq!(lane_worker(arg), 0x3A7);
        assert_eq!(lane_fragment(arg), 1_000_042);
        assert!(arg <= ARG_MASK, "packed lanes must fit the slot arg field");
        // Ordinal 0 is bit-identical to the legacy fragment-only encoding.
        assert_eq!(pack_lane(0, 77), 77);
        assert_eq!(lane_worker(77), 0);
        // Ordinals are deterministic, nonzero, and in range.
        assert_eq!(worker_ordinal("w0"), worker_ordinal("w0"));
        assert_ne!(worker_ordinal("w0"), worker_ordinal("w1"));
        for id in ["", "w0", "w-doomed", "a-much-longer-worker-name"] {
            let ord = worker_ordinal(id);
            assert!((1..=LANE_WORKER_MAX).contains(&ord));
        }
    }

    #[test]
    fn recorder_keeps_events_in_order_with_names_resolved() {
        let rec = recorder(64);
        rec.event(EventKind::Begin, "a.outer", 10);
        rec.event(EventKind::Instant, "a.mark", 20);
        rec.event(EventKind::End, "a.outer", 30);
        let dump = rec.dump();
        assert_eq!(dump.version, TraceDump::VERSION);
        assert_eq!(dump.tracks.len(), 1);
        let events = &dump.tracks[0].events;
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "a.outer");
        assert_eq!(events[0].event_kind(), Some(EventKind::Begin));
        assert_eq!(events[1].name, "a.mark");
        assert_eq!(events[2].event_kind(), Some(EventKind::End));
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(dump.dropped(), 0);
    }

    #[test]
    fn ring_wrap_drops_oldest_and_counts_them() {
        let rec = recorder(8);
        for i in 0..11u64 {
            rec.event(EventKind::Instant, "tick", i);
        }
        let dump = rec.dump();
        assert_eq!(dump.tracks[0].events.len(), 8);
        assert_eq!(dump.tracks[0].dropped, 3);
        assert_eq!(dump.dropped(), 3);
        // The survivors are the *newest* 8.
        assert_eq!(dump.tracks[0].events[0].ts_ns, 3);
        assert_eq!(dump.tracks[0].events[7].ts_ns, 10);
    }

    #[test]
    fn correlation_guard_nests_and_restores() {
        let rec = recorder(64);
        assert_eq!(current_correlation(), 0);
        {
            let _outer = correlate(7);
            rec.event(EventKind::Instant, "outer", 1);
            {
                let _inner = correlate(9);
                rec.event(EventKind::Instant, "inner", 2);
            }
            rec.event(EventKind::Instant, "outer-again", 3);
        }
        assert_eq!(current_correlation(), 0);
        let events = &rec.dump().tracks[0].events;
        assert_eq!(events[0].arg, 7);
        assert_eq!(events[1].arg, 9);
        assert_eq!(events[2].arg, 7);
    }

    #[test]
    fn dump_round_trips_through_json() {
        let rec = recorder(64);
        rec.event(EventKind::Begin, "x", 5);
        rec.event(EventKind::End, "x", 9);
        let dump = rec.dump();
        let back = TraceDump::from_json(&dump.to_json()).unwrap();
        assert_eq!(back, dump);
    }

    #[test]
    fn unknown_dump_version_rejected() {
        let mut dump = TraceDump::default();
        dump.version = 9;
        assert!(TraceDump::from_json(&dump.to_json())
            .unwrap_err()
            .contains("9"));
    }

    #[test]
    fn registry_spans_stream_into_an_installed_recorder() {
        let clock = Arc::new(ManualClock::new());
        let r = Registry::with_clock(clock.clone());
        r.install_recorder(Arc::new(recorder(64)));
        {
            let _outer = r.span("t.outer");
            clock.advance_ns(100);
            {
                let _inner = r.span("t.inner");
                clock.advance_ns(50);
            }
            r.instant("t.mark");
            clock.advance_ns(25);
        }
        let rec = r.take_recorder().expect("recorder installed");
        let dump = rec.dump();
        let events = &dump.tracks[0].events;
        let seq: Vec<(&str, &str, u64)> = events
            .iter()
            .map(|e| (e.kind.as_str(), e.name.as_str(), e.ts_ns))
            .collect();
        assert_eq!(
            seq,
            vec![
                ("begin", "t.outer", 0),
                ("begin", "t.inner", 100),
                ("end", "t.inner", 150),
                ("instant", "t.mark", 150),
                ("end", "t.outer", 175),
            ]
        );
        // The histograms recorded the same durations the events bracket.
        let snap = r.snapshot();
        assert_eq!(snap.histograms["t.inner"].sum, 50);
        assert_eq!(snap.histograms["t.outer"].sum, 175);
        // Detached: later spans are not recorded.
        {
            let _late = r.span("t.late");
        }
        assert_eq!(rec.dump().num_events(), 5);
    }

    #[test]
    fn ring_wrap_ticks_the_registry_drop_counter() {
        let r = Registry::with_clock(Arc::new(ManualClock::new()));
        r.install_recorder(Arc::new(recorder(8)));
        for _ in 0..10 {
            r.instant("w.tick");
        }
        let rec = r.take_recorder().unwrap();
        assert_eq!(rec.dropped(), 2);
        assert_eq!(r.snapshot().counters["trace.dropped"], 2);
    }
}
