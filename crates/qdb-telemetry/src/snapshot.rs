//! The serializable point-in-time view of a registry.
//!
//! Snapshots are the contract between the pipeline and its consumers: the
//! `--telemetry` flags write them as JSON, CI validates them against the
//! schema documented in DESIGN.md §9, and two snapshots of the same run
//! diff cleanly because every map is sorted (`BTreeMap`) and histogram
//! buckets are sparse.

use crate::histogram::HistogramSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything a registry held at one instant.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct Snapshot {
    /// Schema version ([`Snapshot::VERSION`]); bumped on any
    /// backwards-incompatible layout change.
    pub version: u32,
    /// Monotone event totals, by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Last-value readings, by metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Distribution summaries (durations in nanoseconds unless the name
    /// says otherwise), by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Current schema version.
    pub const VERSION: u32 = 1;

    /// Parses a snapshot from its JSON form, rejecting unknown versions.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let snap: Snapshot = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if snap.version != Self::VERSION {
            return Err(format!(
                "snapshot version {} unsupported (expected {})",
                snap.version,
                Self::VERSION
            ));
        }
        Ok(snap)
    }

    /// Pretty JSON, keys sorted — stable across runs of identical builds.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Whether the snapshot carries no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The delta of this (cumulative) snapshot since an earlier snapshot
    /// of the **same registry in the same process life**.
    ///
    /// Counters keep only the keys that advanced (by how much they
    /// advanced); gauges keep only the keys whose value changed (at their
    /// absolute current reading — gauge merge is last-writer-wins, so an
    /// omitted gauge correctly leaves the previous flush's value in
    /// force); histograms keep only the keys whose count grew, diffed via
    /// [`HistogramSnapshot::diff_since`]. Merging every delta a worker
    /// ever flushed reproduces its final cumulative snapshot.
    pub fn delta_since(&self, prev: &Snapshot) -> Snapshot {
        let mut delta = Snapshot {
            version: Self::VERSION,
            ..Snapshot::default()
        };
        for (name, &total) in &self.counters {
            let d = total.saturating_sub(prev.counters.get(name).copied().unwrap_or(0));
            if d > 0 {
                delta.counters.insert(name.clone(), d);
            }
        }
        for (name, &value) in &self.gauges {
            if prev.gauges.get(name) != Some(&value) {
                delta.gauges.insert(name.clone(), value);
            }
        }
        for (name, hist) in &self.histograms {
            let before_count = prev.histograms.get(name).map_or(0, |h| h.count);
            if hist.count <= before_count {
                continue;
            }
            let diffed = match prev.histograms.get(name) {
                Some(before) => hist.diff_since(before),
                None => hist.clone(),
            };
            delta.histograms.insert(name.clone(), diffed);
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn json_round_trip() {
        let r = Registry::new();
        r.counter("a.b").add(3);
        r.gauge("c.d").set(9);
        r.histogram("e.f").record(1234);
        let snap = r.snapshot();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut snap = Snapshot::default();
        snap.version = 999;
        let err = Snapshot::from_json(&snap.to_json()).unwrap_err();
        assert!(err.contains("999"));
    }

    #[test]
    fn identical_registries_serialize_identically() {
        let build = || {
            let r = Registry::new();
            r.counter("z").inc();
            r.counter("a").add(2);
            r.histogram("m").record(77);
            r.snapshot().to_json()
        };
        assert_eq!(build(), build());
    }
}
