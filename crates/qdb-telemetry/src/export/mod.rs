//! Snapshot exporters: JSON (machine, CI-diffable), Prometheus text
//! exposition (scrapers), a console tree (humans running examples), and
//! Chrome trace-event JSON for flight-recorder dumps (Perfetto /
//! `chrome://tracing`).

pub mod chrome;
pub mod console;
pub mod json;
pub mod prometheus;
