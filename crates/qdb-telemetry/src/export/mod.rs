//! Snapshot exporters: JSON (machine, CI-diffable), Prometheus text
//! exposition (scrapers), and a console tree (humans running examples).

pub mod console;
pub mod json;
pub mod prometheus;
