//! JSON snapshot exporter — the `--telemetry <path>` format.

use crate::snapshot::Snapshot;
use std::path::Path;

/// Writes `snapshot` as pretty, key-sorted JSON to `path`.
pub fn write_snapshot(path: &Path, snapshot: &Snapshot) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, snapshot.to_json())
}

/// Reads a snapshot back from `path`, validating the schema version.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Snapshot::from_json(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn write_then_read_round_trips() {
        let r = Registry::new();
        r.counter("io.test").add(5);
        r.histogram("io.lat").record(42);
        let snap = r.snapshot();
        let path =
            std::env::temp_dir().join(format!("qdb-telemetry-json-{}.json", std::process::id()));
        write_snapshot(&path, &snap).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), snap);
        let _ = std::fs::remove_file(&path);
    }
}
