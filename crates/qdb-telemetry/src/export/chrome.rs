//! Chrome trace-event exporter: turns a [`TraceDump`] into the JSON
//! object format Perfetto and `chrome://tracing` load directly.
//!
//! Layout: process 1 ("workers") carries one track per recording thread
//! (rayon workers, the supervising main thread); process 2 ("fragments")
//! carries one synthetic track per fragment — every event recorded under
//! a nonzero correlation argument (see [`crate::trace::correlate`]) is
//! mirrored onto the track of that fragment id, so a build's per-fragment
//! pipelines read as parallel lanes even though the supervisor schedules
//! them on one thread.
//!
//! The file keeps machine-checkable metadata under a `qdb` key (schema
//! version, per-track drop counters) that Perfetto ignores but
//! `validate_telemetry --trace` and `trace_report` rely on. Timestamps
//! are microseconds (the trace-event contract); the raw nanosecond dump
//! is the lossless archival format.
//!
//! Serialization sticks to plain named-field structs (no field renames,
//! no skipped fields): optional members serialize as `null`, which the
//! viewers ignore, and camelCase members (`traceEvents`) are literal
//! field names.

use crate::trace::{EventKind, TraceDump};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::path::Path;

/// Process id of the per-thread tracks.
pub const PID_WORKERS: u32 = 1;
/// Process id of the synthetic per-fragment tracks.
pub const PID_FRAGMENTS: u32 = 2;

/// One trace-event entry (the subset of the Chrome schema we emit).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Phase: `B` begin, `E` end, `i` instant, `M` metadata.
    pub ph: String,
    /// Process id ([`PID_WORKERS`] or [`PID_FRAGMENTS`]).
    pub pid: u32,
    /// Track id within the process.
    pub tid: u64,
    /// Timestamp in microseconds (0 on metadata events).
    pub ts: f64,
    /// Event name.
    pub name: String,
    /// Instant scope (`t` = thread), read by the viewer only for `i`.
    pub s: Option<String>,
    /// Arguments (fragment correlation id, metadata names).
    pub args: Option<serde_json::Value>,
}

/// Per-track accounting mirrored into the `qdb` metadata block.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChromeTrackMeta {
    /// Process id the track's events carry ([`PID_WORKERS`] in a
    /// single-process export; a per-worker pid in a fleet merge).
    pub pid: u32,
    /// Track id within its process.
    pub tid: u64,
    /// Thread name.
    pub thread: String,
    /// Events this track's ring dropped to wrap.
    pub dropped: u64,
    /// Events this track contributed.
    pub events: u64,
}

/// The machine-checkable metadata block.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChromeMeta {
    /// Trace schema version (tracks [`TraceDump::VERSION`]).
    pub version: u32,
    /// Total events dropped across all rings.
    pub dropped: u64,
    /// Per-thread accounting.
    pub tracks: Vec<ChromeTrackMeta>,
}

/// A whole Chrome-format trace file. The camelCase fields are part of
/// the trace-event contract, hence the lint allowance.
#[allow(non_snake_case)]
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChromeTraceFile {
    /// Viewer display unit.
    pub displayTimeUnit: String,
    /// QDockBank metadata (ignored by viewers).
    pub qdb: ChromeMeta,
    /// The event stream.
    pub traceEvents: Vec<ChromeEvent>,
}

fn meta_event(pid: u32, tid: u64, what: &str, name: &str) -> ChromeEvent {
    ChromeEvent {
        ph: "M".to_string(),
        pid,
        tid,
        ts: 0.0,
        name: what.to_string(),
        s: None,
        args: Some(serde_json::json!({ "name": name })),
    }
}

/// Renders `dump` as a Chrome trace-event file.
pub fn chrome_trace(dump: &TraceDump) -> ChromeTraceFile {
    let mut events = Vec::with_capacity(dump.num_events() * 2 + dump.tracks.len() + 4);
    events.push(meta_event(PID_WORKERS, 0, "process_name", "workers"));
    events.push(meta_event(PID_FRAGMENTS, 0, "process_name", "fragments"));
    let mut fragment_ids: BTreeSet<u64> = BTreeSet::new();
    for track in &dump.tracks {
        events.push(meta_event(
            PID_WORKERS,
            track.track as u64,
            "thread_name",
            &track.thread,
        ));
        for ev in &track.events {
            let Some(kind) = ev.event_kind() else {
                continue;
            };
            let ph = match kind {
                EventKind::Begin => "B",
                EventKind::End => "E",
                EventKind::Instant => "i",
            };
            let ts_us = ev.ts_ns as f64 / 1_000.0;
            let scope = (kind == EventKind::Instant).then(|| "t".to_string());
            let args = (ev.arg != 0).then(|| serde_json::json!({ "frag": ev.arg }));
            events.push(ChromeEvent {
                ph: ph.to_string(),
                pid: PID_WORKERS,
                tid: track.track as u64,
                ts: ts_us,
                name: ev.name.clone(),
                s: scope.clone(),
                args: args.clone(),
            });
            // Mirror correlated events onto the fragment lane. Correlated
            // spans all open and close on the thread that set the
            // correlation, so the mirrored lane nests exactly like the
            // source slice.
            if ev.arg != 0 {
                fragment_ids.insert(ev.arg);
                events.push(ChromeEvent {
                    ph: ph.to_string(),
                    pid: PID_FRAGMENTS,
                    tid: ev.arg,
                    ts: ts_us,
                    name: ev.name.clone(),
                    s: scope,
                    args,
                });
            }
        }
    }
    for frag in fragment_ids {
        events.push(meta_event(
            PID_FRAGMENTS,
            frag,
            "thread_name",
            &format!("fragment-{frag}"),
        ));
    }
    ChromeTraceFile {
        displayTimeUnit: "ms".to_string(),
        qdb: ChromeMeta {
            version: dump.version,
            dropped: dump.dropped(),
            tracks: dump
                .tracks
                .iter()
                .map(|t| ChromeTrackMeta {
                    pid: PID_WORKERS,
                    tid: t.track as u64,
                    thread: t.thread.clone(),
                    dropped: t.dropped,
                    events: t.events.len() as u64,
                })
                .collect(),
        },
        traceEvents: events,
    }
}

/// First per-worker process id a fleet merge assigns (worker `i` of the
/// merge input gets pid `PID_FLEET_BASE + i`).
pub const PID_FLEET_BASE: u32 = 100;

/// A merged fragment lane's tid packs `(worker index + 1, original tid)`
/// so fragment lanes from different workers never collide; this undoes
/// the packing. Returns `(worker index + 1, original fragment tid)` —
/// the first element is 0 for lanes of an unmerged single-process file.
pub fn split_fleet_fragment_tid(tid: u64) -> (u64, u64) {
    use crate::trace::{ARG_BITS, ARG_MASK};
    (tid >> ARG_BITS, tid & ARG_MASK)
}

fn pack_fleet_fragment_tid(worker_index: usize, tid: u64) -> u64 {
    use crate::trace::{ARG_BITS, ARG_MASK};
    ((worker_index as u64 + 1) << ARG_BITS) | (tid & ARG_MASK)
}

/// Merges per-worker Chrome traces into one fleet file with distinct
/// per-process tracks: worker `i`'s thread lanes move to pid
/// [`PID_FLEET_BASE`]` + i` under a `worker:<id>` process name, and its
/// fragment lanes stay under [`PID_FRAGMENTS`] with tids repacked via
/// `(worker index + 1, tid)` so lanes from different workers never
/// collide. Track metadata is concatenated with each track's final pid,
/// and drop counters sum, so the merged file still satisfies the
/// per-track event accounting that trace validation checks. All inputs
/// must share the current schema version; inputs must be single-process
/// exports (not already-merged fleet files).
pub fn merge_chrome_traces(parts: &[(String, ChromeTraceFile)]) -> Result<ChromeTraceFile, String> {
    if parts.is_empty() {
        return Err("no worker traces to merge".to_string());
    }
    let mut events: Vec<ChromeEvent> = Vec::new();
    let mut tracks: Vec<ChromeTrackMeta> = Vec::new();
    let mut dropped = 0u64;
    events.push(meta_event(PID_FRAGMENTS, 0, "process_name", "fragments"));
    for (idx, (worker_id, file)) in parts.iter().enumerate() {
        if file.qdb.version != TraceDump::VERSION {
            return Err(format!(
                "worker {worker_id}: trace version {} unsupported (expected {})",
                file.qdb.version,
                TraceDump::VERSION
            ));
        }
        if file.qdb.tracks.iter().any(|t| t.pid != PID_WORKERS) {
            return Err(format!(
                "worker {worker_id}: input is already a merged fleet trace"
            ));
        }
        let pid = PID_FLEET_BASE + idx as u32;
        events.push(meta_event(
            pid,
            0,
            "process_name",
            &format!("worker:{worker_id}"),
        ));
        dropped += file.qdb.dropped;
        for t in &file.qdb.tracks {
            tracks.push(ChromeTrackMeta {
                pid,
                tid: t.tid,
                thread: format!("{worker_id}/{}", t.thread),
                dropped: t.dropped,
                events: t.events,
            });
        }
        for ev in &file.traceEvents {
            if ev.pid == PID_FRAGMENTS {
                let tid = pack_fleet_fragment_tid(idx, ev.tid);
                if ev.ph == "M" {
                    if ev.name == "thread_name" {
                        events.push(meta_event(
                            PID_FRAGMENTS,
                            tid,
                            "thread_name",
                            &format!("{worker_id}/fragment-{}", ev.tid),
                        ));
                    }
                    continue;
                }
                let mut e = ev.clone();
                e.tid = tid;
                events.push(e);
            } else {
                if ev.ph == "M" && ev.name == "process_name" {
                    continue; // replaced by the worker:<id> process meta
                }
                let mut e = ev.clone();
                e.pid = pid;
                events.push(e);
            }
        }
    }
    Ok(ChromeTraceFile {
        displayTimeUnit: "ms".to_string(),
        qdb: ChromeMeta {
            version: TraceDump::VERSION,
            dropped,
            tracks,
        },
        traceEvents: events,
    })
}

/// Writes an in-memory Chrome trace file to `path`.
pub fn write_chrome_trace_file(path: &Path, file: &ChromeTraceFile) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(
        path,
        serde_json::to_string_pretty(file).expect("chrome trace serializes"),
    )
}

/// Writes `dump` to `path` in Chrome trace-event JSON.
pub fn write_chrome_trace(path: &Path, dump: &TraceDump) -> std::io::Result<()> {
    write_chrome_trace_file(path, &chrome_trace(dump))
}

/// Reads a Chrome-format trace back, rejecting unknown schema versions.
pub fn read_chrome_trace(path: &Path) -> Result<ChromeTraceFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let file: ChromeTraceFile = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    if file.qdb.version != TraceDump::VERSION {
        return Err(format!(
            "trace version {} unsupported (expected {})",
            file.qdb.version,
            TraceDump::VERSION
        ));
    }
    Ok(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{correlate, TraceConfig, TraceRecorder};

    fn sample_dump() -> TraceDump {
        let rec = TraceRecorder::new(TraceConfig {
            events_per_thread: 64,
        });
        {
            let _c = correlate(3);
            rec.event(EventKind::Begin, "pipeline.fragment", 1_000);
            rec.event(EventKind::Instant, "supervisor.retry", 1_500);
            rec.event(EventKind::End, "pipeline.fragment", 2_000);
        }
        rec.event(EventKind::Instant, "store.fsync", 2_500);
        rec.dump()
    }

    #[test]
    fn chrome_export_mirrors_correlated_events_onto_fragment_tracks() {
        let file = chrome_trace(&sample_dump());
        assert_eq!(file.qdb.version, TraceDump::VERSION);
        assert_eq!(file.qdb.dropped, 0);
        let worker_events: Vec<_> = file
            .traceEvents
            .iter()
            .filter(|e| e.pid == PID_WORKERS && e.ph != "M")
            .collect();
        assert_eq!(worker_events.len(), 4);
        let frag_events: Vec<_> = file
            .traceEvents
            .iter()
            .filter(|e| e.pid == PID_FRAGMENTS && e.ph != "M")
            .collect();
        assert_eq!(frag_events.len(), 3, "only correlated events mirror");
        assert!(frag_events.iter().all(|e| e.tid == 3));
        // µs conversion.
        assert_eq!(worker_events[0].ts, 1.0);
        // Fragment lane is named.
        assert!(file
            .traceEvents
            .iter()
            .any(|e| e.ph == "M" && e.pid == PID_FRAGMENTS && e.tid == 3));
    }

    #[test]
    fn fleet_merge_keeps_processes_distinct_and_accounting_intact() {
        let a = chrome_trace(&sample_dump());
        let b = chrome_trace(&sample_dump());
        let non_meta = |f: &ChromeTraceFile| f.traceEvents.iter().filter(|e| e.ph != "M").count();
        let merged =
            merge_chrome_traces(&[("w0".to_string(), a.clone()), ("w1".to_string(), b.clone())])
                .unwrap();
        // Every non-meta event survives the merge.
        assert_eq!(non_meta(&merged), non_meta(&a) + non_meta(&b));
        // Worker lanes land on distinct per-process pids with process names.
        let pids: BTreeSet<u32> = merged
            .traceEvents
            .iter()
            .filter(|e| e.ph != "M" && e.pid != PID_FRAGMENTS)
            .map(|e| e.pid)
            .collect();
        assert_eq!(pids, BTreeSet::from([PID_FLEET_BASE, PID_FLEET_BASE + 1]));
        for (pid, id) in [(PID_FLEET_BASE, "w0"), (PID_FLEET_BASE + 1, "w1")] {
            let want = serde_json::json!({ "name": format!("worker:{id}") });
            assert!(merged.traceEvents.iter().any(|e| e.ph == "M"
                && e.pid == pid
                && e.name == "process_name"
                && e.args.as_ref() == Some(&want)));
        }
        // Fragment lanes from different workers never collide: both inputs
        // used fragment tid 3, the merged file carries two distinct tids
        // that unpack back to (worker index + 1, 3).
        let frag_tids: BTreeSet<u64> = merged
            .traceEvents
            .iter()
            .filter(|e| e.ph != "M" && e.pid == PID_FRAGMENTS)
            .map(|e| e.tid)
            .collect();
        assert_eq!(frag_tids.len(), 2);
        let unpacked: BTreeSet<(u64, u64)> = frag_tids
            .iter()
            .map(|&t| split_fleet_fragment_tid(t))
            .collect();
        assert_eq!(unpacked, BTreeSet::from([(1, 3), (2, 3)]));
        // Track metadata concatenates with per-track pids; drops sum.
        assert_eq!(
            merged.qdb.tracks.len(),
            a.qdb.tracks.len() + b.qdb.tracks.len()
        );
        assert!(merged.qdb.tracks.iter().all(|t| t.pid >= PID_FLEET_BASE));
        assert_eq!(merged.qdb.dropped, a.qdb.dropped + b.qdb.dropped);
        // A merged file refuses to merge again; an empty merge refuses too.
        assert!(merge_chrome_traces(&[("again".to_string(), merged)]).is_err());
        assert!(merge_chrome_traces(&[]).is_err());
    }

    #[test]
    fn chrome_file_round_trips_through_disk() {
        let dump = sample_dump();
        let path = std::env::temp_dir().join(format!(
            "qdb-chrome-trace-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        write_chrome_trace(&path, &dump).unwrap();
        let back = read_chrome_trace(&path).unwrap();
        assert_eq!(back.qdb.dropped, 0);
        assert_eq!(
            back.traceEvents.len(),
            chrome_trace(&dump).traceEvents.len()
        );
        let _ = std::fs::remove_file(&path);
    }
}
