//! Chrome trace-event exporter: turns a [`TraceDump`] into the JSON
//! object format Perfetto and `chrome://tracing` load directly.
//!
//! Layout: process 1 ("workers") carries one track per recording thread
//! (rayon workers, the supervising main thread); process 2 ("fragments")
//! carries one synthetic track per fragment — every event recorded under
//! a nonzero correlation argument (see [`crate::trace::correlate`]) is
//! mirrored onto the track of that fragment id, so a build's per-fragment
//! pipelines read as parallel lanes even though the supervisor schedules
//! them on one thread.
//!
//! The file keeps machine-checkable metadata under a `qdb` key (schema
//! version, per-track drop counters) that Perfetto ignores but
//! `validate_telemetry --trace` and `trace_report` rely on. Timestamps
//! are microseconds (the trace-event contract); the raw nanosecond dump
//! is the lossless archival format.
//!
//! Serialization sticks to plain named-field structs (no field renames,
//! no skipped fields): optional members serialize as `null`, which the
//! viewers ignore, and camelCase members (`traceEvents`) are literal
//! field names.

use crate::trace::{EventKind, TraceDump};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::path::Path;

/// Process id of the per-thread tracks.
pub const PID_WORKERS: u32 = 1;
/// Process id of the synthetic per-fragment tracks.
pub const PID_FRAGMENTS: u32 = 2;

/// One trace-event entry (the subset of the Chrome schema we emit).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Phase: `B` begin, `E` end, `i` instant, `M` metadata.
    pub ph: String,
    /// Process id ([`PID_WORKERS`] or [`PID_FRAGMENTS`]).
    pub pid: u32,
    /// Track id within the process.
    pub tid: u64,
    /// Timestamp in microseconds (0 on metadata events).
    pub ts: f64,
    /// Event name.
    pub name: String,
    /// Instant scope (`t` = thread), read by the viewer only for `i`.
    pub s: Option<String>,
    /// Arguments (fragment correlation id, metadata names).
    pub args: Option<serde_json::Value>,
}

/// Per-track accounting mirrored into the `qdb` metadata block.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChromeTrackMeta {
    /// Track id (tid under [`PID_WORKERS`]).
    pub tid: u64,
    /// Thread name.
    pub thread: String,
    /// Events this track's ring dropped to wrap.
    pub dropped: u64,
    /// Events this track contributed.
    pub events: u64,
}

/// The machine-checkable metadata block.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChromeMeta {
    /// Trace schema version (tracks [`TraceDump::VERSION`]).
    pub version: u32,
    /// Total events dropped across all rings.
    pub dropped: u64,
    /// Per-thread accounting.
    pub tracks: Vec<ChromeTrackMeta>,
}

/// A whole Chrome-format trace file. The camelCase fields are part of
/// the trace-event contract, hence the lint allowance.
#[allow(non_snake_case)]
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChromeTraceFile {
    /// Viewer display unit.
    pub displayTimeUnit: String,
    /// QDockBank metadata (ignored by viewers).
    pub qdb: ChromeMeta,
    /// The event stream.
    pub traceEvents: Vec<ChromeEvent>,
}

fn meta_event(pid: u32, tid: u64, what: &str, name: &str) -> ChromeEvent {
    ChromeEvent {
        ph: "M".to_string(),
        pid,
        tid,
        ts: 0.0,
        name: what.to_string(),
        s: None,
        args: Some(serde_json::json!({ "name": name })),
    }
}

/// Renders `dump` as a Chrome trace-event file.
pub fn chrome_trace(dump: &TraceDump) -> ChromeTraceFile {
    let mut events = Vec::with_capacity(dump.num_events() * 2 + dump.tracks.len() + 4);
    events.push(meta_event(PID_WORKERS, 0, "process_name", "workers"));
    events.push(meta_event(PID_FRAGMENTS, 0, "process_name", "fragments"));
    let mut fragment_ids: BTreeSet<u64> = BTreeSet::new();
    for track in &dump.tracks {
        events.push(meta_event(
            PID_WORKERS,
            track.track as u64,
            "thread_name",
            &track.thread,
        ));
        for ev in &track.events {
            let Some(kind) = ev.event_kind() else {
                continue;
            };
            let ph = match kind {
                EventKind::Begin => "B",
                EventKind::End => "E",
                EventKind::Instant => "i",
            };
            let ts_us = ev.ts_ns as f64 / 1_000.0;
            let scope = (kind == EventKind::Instant).then(|| "t".to_string());
            let args = (ev.arg != 0).then(|| serde_json::json!({ "frag": ev.arg }));
            events.push(ChromeEvent {
                ph: ph.to_string(),
                pid: PID_WORKERS,
                tid: track.track as u64,
                ts: ts_us,
                name: ev.name.clone(),
                s: scope.clone(),
                args: args.clone(),
            });
            // Mirror correlated events onto the fragment lane. Correlated
            // spans all open and close on the thread that set the
            // correlation, so the mirrored lane nests exactly like the
            // source slice.
            if ev.arg != 0 {
                fragment_ids.insert(ev.arg);
                events.push(ChromeEvent {
                    ph: ph.to_string(),
                    pid: PID_FRAGMENTS,
                    tid: ev.arg,
                    ts: ts_us,
                    name: ev.name.clone(),
                    s: scope,
                    args,
                });
            }
        }
    }
    for frag in fragment_ids {
        events.push(meta_event(
            PID_FRAGMENTS,
            frag,
            "thread_name",
            &format!("fragment-{frag}"),
        ));
    }
    ChromeTraceFile {
        displayTimeUnit: "ms".to_string(),
        qdb: ChromeMeta {
            version: dump.version,
            dropped: dump.dropped(),
            tracks: dump
                .tracks
                .iter()
                .map(|t| ChromeTrackMeta {
                    tid: t.track as u64,
                    thread: t.thread.clone(),
                    dropped: t.dropped,
                    events: t.events.len() as u64,
                })
                .collect(),
        },
        traceEvents: events,
    }
}

/// Writes `dump` to `path` in Chrome trace-event JSON.
pub fn write_chrome_trace(path: &Path, dump: &TraceDump) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file = chrome_trace(dump);
    std::fs::write(
        path,
        serde_json::to_string_pretty(&file).expect("chrome trace serializes"),
    )
}

/// Reads a Chrome-format trace back, rejecting unknown schema versions.
pub fn read_chrome_trace(path: &Path) -> Result<ChromeTraceFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let file: ChromeTraceFile = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    if file.qdb.version != TraceDump::VERSION {
        return Err(format!(
            "trace version {} unsupported (expected {})",
            file.qdb.version,
            TraceDump::VERSION
        ));
    }
    Ok(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{correlate, TraceConfig, TraceRecorder};

    fn sample_dump() -> TraceDump {
        let rec = TraceRecorder::new(TraceConfig {
            events_per_thread: 64,
        });
        {
            let _c = correlate(3);
            rec.event(EventKind::Begin, "pipeline.fragment", 1_000);
            rec.event(EventKind::Instant, "supervisor.retry", 1_500);
            rec.event(EventKind::End, "pipeline.fragment", 2_000);
        }
        rec.event(EventKind::Instant, "store.fsync", 2_500);
        rec.dump()
    }

    #[test]
    fn chrome_export_mirrors_correlated_events_onto_fragment_tracks() {
        let file = chrome_trace(&sample_dump());
        assert_eq!(file.qdb.version, TraceDump::VERSION);
        assert_eq!(file.qdb.dropped, 0);
        let worker_events: Vec<_> = file
            .traceEvents
            .iter()
            .filter(|e| e.pid == PID_WORKERS && e.ph != "M")
            .collect();
        assert_eq!(worker_events.len(), 4);
        let frag_events: Vec<_> = file
            .traceEvents
            .iter()
            .filter(|e| e.pid == PID_FRAGMENTS && e.ph != "M")
            .collect();
        assert_eq!(frag_events.len(), 3, "only correlated events mirror");
        assert!(frag_events.iter().all(|e| e.tid == 3));
        // µs conversion.
        assert_eq!(worker_events[0].ts, 1.0);
        // Fragment lane is named.
        assert!(file
            .traceEvents
            .iter()
            .any(|e| e.ph == "M" && e.pid == PID_FRAGMENTS && e.tid == 3));
    }

    #[test]
    fn chrome_file_round_trips_through_disk() {
        let dump = sample_dump();
        let path = std::env::temp_dir().join(format!(
            "qdb-chrome-trace-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        write_chrome_trace(&path, &dump).unwrap();
        let back = read_chrome_trace(&path).unwrap();
        assert_eq!(back.qdb.dropped, 0);
        assert_eq!(
            back.traceEvents.len(),
            chrome_trace(&dump).traceEvents.len()
        );
        let _ = std::fs::remove_file(&path);
    }
}
