//! Prometheus text-exposition exporter.
//!
//! Dotted metric names become underscore-separated (`vqe.energy_evals` →
//! `qdb_vqe_energy_evals`); histograms export as summaries with
//! `quantile` labels plus `_sum`/`_count`/`_min`/`_max` series.

use crate::snapshot::Snapshot;
use std::fmt::Write;

/// Sanitizes a dotted metric name into a Prometheus identifier.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("qdb_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders `snapshot` in the Prometheus text exposition format.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let p = prom_name(name);
        let _ = writeln!(out, "# TYPE {p} counter");
        let _ = writeln!(out, "{p} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let p = prom_name(name);
        let _ = writeln!(out, "# TYPE {p} gauge");
        let _ = writeln!(out, "{p} {value}");
    }
    for (name, h) in &snapshot.histograms {
        let p = prom_name(name);
        let _ = writeln!(out, "# TYPE {p} summary");
        for (q, v) in [(0.5, h.p50), (0.9, h.p90), (0.99, h.p99)] {
            let _ = writeln!(out, "{p}{{quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(out, "{p}_sum {}", h.sum);
        let _ = writeln!(out, "{p}_count {}", h.count);
        let _ = writeln!(out, "{p}_min {}", h.min);
        let _ = writeln!(out, "{p}_max {}", h.max);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn renders_all_metric_kinds() {
        let r = Registry::new();
        r.counter("vqe.energy_evals").add(12);
        r.gauge("exec.workspace_qubits").set(22);
        for v in [10u64, 20, 30] {
            r.histogram("pipeline.vqe").record(v);
        }
        let text = render(&r.snapshot());
        assert!(text.contains("# TYPE qdb_vqe_energy_evals counter"));
        assert!(text.contains("qdb_vqe_energy_evals 12"));
        assert!(text.contains("qdb_exec_workspace_qubits 22"));
        assert!(text.contains("qdb_pipeline_vqe{quantile=\"0.5\"}"));
        assert!(text.contains("qdb_pipeline_vqe_count 3"));
        assert!(text.contains("qdb_pipeline_vqe_sum 60"));
    }
}
