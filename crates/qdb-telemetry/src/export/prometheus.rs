//! Prometheus text-exposition exporter.
//!
//! Dotted metric names become underscore-separated (`vqe.energy_evals` →
//! `qdb_vqe_energy_evals`); runs of non-alphanumerics collapse to a
//! single `_` and trailing separators are trimmed, so no exported name
//! carries double or dangling underscores. Duration histograms gain a
//! `_ns` suffix per the Prometheus base-unit naming conventions —
//! histogram values are nanoseconds unless the source name already
//! declares its unit (`supervisor.backoff_ms`, `store.write_us`).
//! Histograms export as summaries with `quantile` labels plus
//! `_sum`/`_count`/`_min`/`_max` series, and every family carries
//! `# HELP`/`# TYPE` headers naming its dotted source metric.
//!
//! Exposition is family-first: every distinct `(kind, source metric)`
//! pair resolves to exactly one exported family name before anything is
//! rendered, and all samples of a family — including per-worker labeled
//! samples when multiple snapshots are rendered together — are grouped
//! under a single `# HELP`/`# TYPE` block, as the exposition format
//! requires. When sanitization makes two different source metrics (or a
//! counter and a gauge of the same name) land on one identifier, the
//! later family (in deterministic kind-then-name order) gets a numeric
//! `_2`, `_3`, … suffix instead of silently colliding — so merging
//! snapshots from workers with disjoint metric sets can never emit two
//! conflicting `# TYPE` lines for one name.

use crate::snapshot::Snapshot;
use std::collections::BTreeSet;
use std::fmt::Write;

/// Sanitizes a dotted metric name into a Prometheus identifier:
/// consecutive non-alphanumerics collapse to one `_`, trailing
/// separators are dropped.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("qdb_");
    let mut pending_sep = false;
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            if pending_sep && !out.ends_with('_') {
                out.push('_');
            }
            pending_sep = false;
            out.push(ch);
        } else {
            pending_sep = true;
        }
    }
    out
}

/// Unit suffixes a metric name can already carry; anything else is a
/// nanosecond duration by crate convention.
const UNIT_SUFFIXES: [&str; 5] = ["_ns", "_us", "_ms", "_s", "_bytes"];

/// Prometheus name of a duration histogram: `_ns`-suffixed unless the
/// source name already declares its unit.
fn prom_hist_name(name: &str) -> String {
    let p = prom_name(name);
    if UNIT_SUFFIXES.iter().any(|u| p.ends_with(u)) {
        p
    } else {
        format!("{p}_ns")
    }
}

/// Metric kinds, in exposition order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    Counter,
    Gauge,
    Summary,
}

/// Resolves every `(kind, source)` pair present in `parts` to a unique
/// exported family name, deterministically suffixing collisions.
fn assign_families(parts: &[(Option<&str>, &Snapshot)]) -> Vec<(String, Kind, String)> {
    let mut pairs: BTreeSet<(Kind, &str)> = BTreeSet::new();
    for (_, snap) in parts {
        pairs.extend(snap.counters.keys().map(|n| (Kind::Counter, n.as_str())));
        pairs.extend(snap.gauges.keys().map(|n| (Kind::Gauge, n.as_str())));
        pairs.extend(snap.histograms.keys().map(|n| (Kind::Summary, n.as_str())));
    }
    let mut taken: BTreeSet<String> = BTreeSet::new();
    let mut families = Vec::with_capacity(pairs.len());
    for (kind, source) in pairs {
        let base = match kind {
            Kind::Summary => prom_hist_name(source),
            _ => prom_name(source),
        };
        let mut name = base.clone();
        let mut n = 2;
        while taken.contains(&name) {
            name = format!("{base}_{n}");
            n += 1;
        }
        taken.insert(name.clone());
        families.push((name, kind, source.to_string()));
    }
    families
}

fn label_suffix(worker: Option<&str>) -> String {
    worker
        .map(|w| format!("{{worker=\"{w}\"}}"))
        .unwrap_or_default()
}

/// Renders one or more snapshots in the Prometheus text exposition
/// format. Each entry pairs an optional worker id with its snapshot;
/// when the id is set, every sample from that snapshot carries a
/// `worker="<id>"` label. Families are resolved across all entries
/// first, so snapshots with disjoint (or colliding) metric sets share
/// one header per family.
pub fn render_workers(parts: &[(Option<&str>, &Snapshot)]) -> String {
    let mut out = String::new();
    for (p, kind, source) in assign_families(parts) {
        match kind {
            Kind::Counter => {
                let _ = writeln!(out, "# HELP {p} QDockBank counter `{source}`.");
                let _ = writeln!(out, "# TYPE {p} counter");
                for (worker, snap) in parts {
                    if let Some(v) = snap.counters.get(&source) {
                        let _ = writeln!(out, "{p}{} {v}", label_suffix(*worker));
                    }
                }
            }
            Kind::Gauge => {
                let _ = writeln!(out, "# HELP {p} QDockBank gauge `{source}`.");
                let _ = writeln!(out, "# TYPE {p} gauge");
                for (worker, snap) in parts {
                    if let Some(v) = snap.gauges.get(&source) {
                        let _ = writeln!(out, "{p}{} {v}", label_suffix(*worker));
                    }
                }
            }
            Kind::Summary => {
                let _ = writeln!(
                    out,
                    "# HELP {p} QDockBank distribution `{source}` (log-linear histogram summary)."
                );
                let _ = writeln!(out, "# TYPE {p} summary");
                for (worker, snap) in parts {
                    let Some(h) = snap.histograms.get(&source) else {
                        continue;
                    };
                    for (q, v) in [(0.5, h.p50), (0.9, h.p90), (0.99, h.p99)] {
                        let labels = match worker {
                            Some(w) => format!("{{quantile=\"{q}\",worker=\"{w}\"}}"),
                            None => format!("{{quantile=\"{q}\"}}"),
                        };
                        let _ = writeln!(out, "{p}{labels} {v}");
                    }
                    let suffix = label_suffix(*worker);
                    let _ = writeln!(out, "{p}_sum{suffix} {}", h.sum);
                    let _ = writeln!(out, "{p}_count{suffix} {}", h.count);
                    let _ = writeln!(out, "{p}_min{suffix} {}", h.min);
                    let _ = writeln!(out, "{p}_max{suffix} {}", h.max);
                }
            }
        }
    }
    out
}

/// Renders `snapshot` in the Prometheus text exposition format.
pub fn render(snapshot: &Snapshot) -> String {
    render_workers(&[(None, snapshot)])
}

/// Renders `snapshot` with an optional `worker="<id>"` label on every
/// sample — what a serving process with a configured worker id exposes
/// on `/metrics`, so a fleet-level scrape can tell its workers apart.
pub fn render_with_worker(snapshot: &Snapshot, worker: Option<&str>) -> String {
    render_workers(&[(worker, snapshot)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn renders_all_metric_kinds() {
        let r = Registry::new();
        r.counter("vqe.energy_evals").add(12);
        r.gauge("exec.workspace_qubits").set(22);
        for v in [10u64, 20, 30] {
            r.histogram("pipeline.vqe").record(v);
        }
        let text = render(&r.snapshot());
        assert!(text.contains("# HELP qdb_vqe_energy_evals QDockBank counter `vqe.energy_evals`."));
        assert!(text.contains("# TYPE qdb_vqe_energy_evals counter"));
        assert!(text.contains("qdb_vqe_energy_evals 12"));
        assert!(text.contains("qdb_exec_workspace_qubits 22"));
        // Duration histograms are `_ns`-suffixed.
        assert!(text.contains("# TYPE qdb_pipeline_vqe_ns summary"));
        assert!(text.contains("qdb_pipeline_vqe_ns{quantile=\"0.5\"}"));
        assert!(text.contains("qdb_pipeline_vqe_ns_count 3"));
        assert!(text.contains("qdb_pipeline_vqe_ns_sum 60"));
    }

    #[test]
    fn histograms_with_declared_units_keep_them() {
        let r = Registry::new();
        r.histogram("supervisor.backoff_ms").record(10);
        r.histogram("store.write_us").record(7);
        let text = render(&r.snapshot());
        assert!(text.contains("# TYPE qdb_supervisor_backoff_ms summary"));
        assert!(!text.contains("qdb_supervisor_backoff_ms_ns"));
        assert!(text.contains("qdb_store_write_us{quantile="));
    }

    #[test]
    fn prom_name_collapses_and_trims_separators() {
        assert_eq!(prom_name("a.b"), "qdb_a_b");
        assert_eq!(prom_name("a..b"), "qdb_a_b");
        assert_eq!(prom_name("a.-b."), "qdb_a_b");
        assert_eq!(prom_name(".a"), "qdb_a");
        assert_eq!(prom_name("trace.dropped"), "qdb_trace_dropped");
    }

    #[test]
    fn worker_label_lands_on_every_sample() {
        let r = Registry::new();
        r.counter("jobs.done").add(4);
        r.gauge("queue.depth").set(2);
        r.histogram("serve.job").record(500);
        let text = render_with_worker(&r.snapshot(), Some("w0"));
        assert!(text.contains("qdb_jobs_done{worker=\"w0\"} 4"));
        assert!(text.contains("qdb_queue_depth{worker=\"w0\"} 2"));
        assert!(text.contains("qdb_serve_job_ns{quantile=\"0.5\",worker=\"w0\"}"));
        assert!(text.contains("qdb_serve_job_ns_count{worker=\"w0\"} 1"));
        // Headers never carry labels.
        assert!(text.contains("# TYPE qdb_jobs_done counter\n"));
    }

    #[test]
    fn disjoint_worker_sets_share_one_header_per_family() {
        let a = Registry::new();
        a.counter("fragments").add(3);
        a.counter("only.a").inc();
        let b = Registry::new();
        b.counter("fragments").add(5);
        b.gauge("only.b").set(7);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let text = render_workers(&[(Some("wA"), &sa), (Some("wB"), &sb)]);
        // One TYPE header for the shared family, both labeled samples under it.
        assert_eq!(text.matches("# TYPE qdb_fragments counter").count(), 1);
        let idx = text.find("# TYPE qdb_fragments counter").unwrap();
        let tail = &text[idx..];
        let block: &str = tail.split("# HELP").next().unwrap();
        assert!(block.contains("qdb_fragments{worker=\"wA\"} 3"));
        assert!(block.contains("qdb_fragments{worker=\"wB\"} 5"));
        // Disjoint metrics render once each, correctly labeled.
        assert!(text.contains("qdb_only_a{worker=\"wA\"} 1"));
        assert!(text.contains("qdb_only_b{worker=\"wB\"} 7"));
    }

    #[test]
    fn sanitize_and_cross_kind_collisions_get_deterministic_suffixes() {
        // Two source counters sanitize to the same identifier...
        let a = Registry::new();
        a.counter("a.b").add(1);
        let b = Registry::new();
        b.counter("a..b").add(2);
        // ...and a gauge shares the name with a counter on another worker.
        b.gauge("a.b").set(9);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let text = render_workers(&[(Some("w0"), &sa), (Some("w1"), &sb)]);
        // Every family keeps exactly one TYPE line and no name hosts two kinds.
        assert_eq!(text.matches("# TYPE qdb_a_b counter\n").count(), 1);
        assert_eq!(text.matches("# TYPE qdb_a_b_2 counter\n").count(), 1);
        assert_eq!(text.matches("# TYPE qdb_a_b_3 gauge\n").count(), 1);
        // Assignment follows deterministic kind-then-source order: the
        // source `a..b` sorts before `a.b`, so it keeps the base name.
        assert!(text.contains("qdb_a_b{worker=\"w1\"} 2"));
        assert!(text.contains("qdb_a_b_2{worker=\"w0\"} 1"));
        assert!(text.contains("qdb_a_b_3{worker=\"w1\"} 9"));
        // Deterministic: rendering again gives the same assignment.
        assert_eq!(
            text,
            render_workers(&[(Some("w0"), &sa), (Some("w1"), &sb)])
        );
    }
}
