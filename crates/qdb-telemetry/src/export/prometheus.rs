//! Prometheus text-exposition exporter.
//!
//! Dotted metric names become underscore-separated (`vqe.energy_evals` →
//! `qdb_vqe_energy_evals`); runs of non-alphanumerics collapse to a
//! single `_` and trailing separators are trimmed, so no exported name
//! carries double or dangling underscores. Duration histograms gain a
//! `_ns` suffix per the Prometheus base-unit naming conventions —
//! histogram values are nanoseconds unless the source name already
//! declares its unit (`supervisor.backoff_ms`, `store.write_us`).
//! Histograms export as summaries with `quantile` labels plus
//! `_sum`/`_count`/`_min`/`_max` series, and every family carries
//! `# HELP`/`# TYPE` headers naming its dotted source metric.

use crate::snapshot::Snapshot;
use std::fmt::Write;

/// Sanitizes a dotted metric name into a Prometheus identifier:
/// consecutive non-alphanumerics collapse to one `_`, trailing
/// separators are dropped.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("qdb_");
    let mut pending_sep = false;
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            if pending_sep && !out.ends_with('_') {
                out.push('_');
            }
            pending_sep = false;
            out.push(ch);
        } else {
            pending_sep = true;
        }
    }
    out
}

/// Unit suffixes a metric name can already carry; anything else is a
/// nanosecond duration by crate convention.
const UNIT_SUFFIXES: [&str; 5] = ["_ns", "_us", "_ms", "_s", "_bytes"];

/// Prometheus name of a duration histogram: `_ns`-suffixed unless the
/// source name already declares its unit.
fn prom_hist_name(name: &str) -> String {
    let p = prom_name(name);
    if UNIT_SUFFIXES.iter().any(|u| p.ends_with(u)) {
        p
    } else {
        format!("{p}_ns")
    }
}

/// Renders `snapshot` in the Prometheus text exposition format.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let p = prom_name(name);
        let _ = writeln!(out, "# HELP {p} QDockBank counter `{name}`.");
        let _ = writeln!(out, "# TYPE {p} counter");
        let _ = writeln!(out, "{p} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let p = prom_name(name);
        let _ = writeln!(out, "# HELP {p} QDockBank gauge `{name}`.");
        let _ = writeln!(out, "# TYPE {p} gauge");
        let _ = writeln!(out, "{p} {value}");
    }
    for (name, h) in &snapshot.histograms {
        let p = prom_hist_name(name);
        let _ = writeln!(
            out,
            "# HELP {p} QDockBank distribution `{name}` (log-linear histogram summary)."
        );
        let _ = writeln!(out, "# TYPE {p} summary");
        for (q, v) in [(0.5, h.p50), (0.9, h.p90), (0.99, h.p99)] {
            let _ = writeln!(out, "{p}{{quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(out, "{p}_sum {}", h.sum);
        let _ = writeln!(out, "{p}_count {}", h.count);
        let _ = writeln!(out, "{p}_min {}", h.min);
        let _ = writeln!(out, "{p}_max {}", h.max);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn renders_all_metric_kinds() {
        let r = Registry::new();
        r.counter("vqe.energy_evals").add(12);
        r.gauge("exec.workspace_qubits").set(22);
        for v in [10u64, 20, 30] {
            r.histogram("pipeline.vqe").record(v);
        }
        let text = render(&r.snapshot());
        assert!(text.contains("# HELP qdb_vqe_energy_evals QDockBank counter `vqe.energy_evals`."));
        assert!(text.contains("# TYPE qdb_vqe_energy_evals counter"));
        assert!(text.contains("qdb_vqe_energy_evals 12"));
        assert!(text.contains("qdb_exec_workspace_qubits 22"));
        // Duration histograms are `_ns`-suffixed.
        assert!(text.contains("# TYPE qdb_pipeline_vqe_ns summary"));
        assert!(text.contains("qdb_pipeline_vqe_ns{quantile=\"0.5\"}"));
        assert!(text.contains("qdb_pipeline_vqe_ns_count 3"));
        assert!(text.contains("qdb_pipeline_vqe_ns_sum 60"));
    }

    #[test]
    fn histograms_with_declared_units_keep_them() {
        let r = Registry::new();
        r.histogram("supervisor.backoff_ms").record(10);
        r.histogram("store.write_us").record(7);
        let text = render(&r.snapshot());
        assert!(text.contains("# TYPE qdb_supervisor_backoff_ms summary"));
        assert!(!text.contains("qdb_supervisor_backoff_ms_ns"));
        assert!(text.contains("qdb_store_write_us{quantile="));
    }

    #[test]
    fn prom_name_collapses_and_trims_separators() {
        assert_eq!(prom_name("a.b"), "qdb_a_b");
        assert_eq!(prom_name("a..b"), "qdb_a_b");
        assert_eq!(prom_name("a.-b."), "qdb_a_b");
        assert_eq!(prom_name(".a"), "qdb_a");
        assert_eq!(prom_name("trace.dropped"), "qdb_trace_dropped");
    }
}
