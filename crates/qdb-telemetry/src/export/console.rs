//! Human-readable console tree.
//!
//! Metric names use dotted `stage.op` paths (DESIGN.md §9); the tree
//! groups them by their first segment so one glance shows where a run
//! spent its events and its time:
//!
//! ```text
//! pipeline
//! ├─ dock            hist  count 4  p50 1.2ms  p99 3.4ms  max 3.5ms
//! └─ vqe             hist  count 4  p50 310ms  p99 340ms  max 341ms
//! supervisor
//! ├─ attempts        count 6
//! └─ retries         count 2
//! ```

use crate::snapshot::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Formats nanoseconds with a readable unit.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        10_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

enum Line {
    Counter(u64),
    Gauge(i64),
    Hist(String),
}

/// Renders `snapshot` as a tree grouped by the leading name segment.
pub fn render_tree(snapshot: &Snapshot) -> String {
    // group → (rest-of-name → line)
    let mut groups: BTreeMap<&str, BTreeMap<&str, Line>> = BTreeMap::new();
    fn split(name: &str) -> (&str, &str) {
        match name.split_once('.') {
            Some((g, rest)) => (g, rest),
            None => (name, name),
        }
    }
    for (name, v) in &snapshot.counters {
        let (g, rest) = split(name);
        groups.entry(g).or_default().insert(rest, Line::Counter(*v));
    }
    for (name, v) in &snapshot.gauges {
        let (g, rest) = split(name);
        groups.entry(g).or_default().insert(rest, Line::Gauge(*v));
    }
    for (name, h) in &snapshot.histograms {
        let (g, rest) = split(name);
        let detail = format!(
            "count {}  p50 {}  p99 {}  max {}",
            h.count,
            fmt_ns(h.p50),
            fmt_ns(h.p99),
            fmt_ns(h.max)
        );
        groups
            .entry(g)
            .or_default()
            .insert(rest, Line::Hist(detail));
    }

    let mut out = String::new();
    for (group, entries) in &groups {
        let _ = writeln!(out, "{group}");
        let last = entries.len().saturating_sub(1);
        for (i, (name, line)) in entries.iter().enumerate() {
            let branch = if i == last { "└─" } else { "├─" };
            match line {
                Line::Counter(v) => {
                    let _ = writeln!(out, "{branch} {name:<24} count {v}");
                }
                Line::Gauge(v) => {
                    let _ = writeln!(out, "{branch} {name:<24} gauge {v}");
                }
                Line::Hist(detail) => {
                    let _ = writeln!(out, "{branch} {name:<24} hist  {detail}");
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn groups_by_leading_segment() {
        let r = Registry::new();
        r.counter("supervisor.attempts").add(6);
        r.counter("supervisor.retries").add(2);
        r.histogram("pipeline.vqe").record(310_000_000);
        let tree = render_tree(&r.snapshot());
        assert!(tree.contains("supervisor\n"));
        assert!(tree.contains("pipeline\n"));
        assert!(tree.contains("attempts"));
        assert!(tree.contains("310.0ms"));
        // Exactly one last-branch glyph per group.
        assert_eq!(tree.matches("└─").count(), 2);
    }

    #[test]
    fn duration_units_scale() {
        assert_eq!(fmt_ns(900), "900ns");
        assert_eq!(fmt_ns(45_000), "45.0µs");
        assert_eq!(fmt_ns(12_000_000), "12.0ms");
        assert_eq!(fmt_ns(3_200_000_000), "3.20s");
    }
}
