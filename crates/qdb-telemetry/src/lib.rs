//! # qdb-telemetry
//!
//! Zero-dependency observability for the QDockBank pipeline. The paper's
//! headline tables are telemetry — qubit counts, circuit depth, execution
//! time per fragment — and its own campaign hit queue-delay outliers
//! (4y79: 207,445 s) that only a distribution, not a mean, can surface.
//! This crate gives every stage a shared vocabulary for that data:
//!
//! * **metrics registry** ([`Registry`]) — named atomic [`Counter`]s and
//!   [`Gauge`]s plus sharded log₂-scale [`Histogram`]s with p50/p90/p99
//!   estimation; recording is lock-free, rayon workers shard writes,
//!   scrapes merge.
//! * **hierarchical spans** ([`span!`], [`span_sampled!`]) — thread-local
//!   span stacks with a cheap RAII guard recording durations into registry
//!   histograms; sampling-capable for compiled-engine hot loops.
//! * **clock abstraction** ([`Clock`]) — [`MonotonicClock`] in production,
//!   [`ManualClock`] in tests, so deadline/backoff logic never needs a
//!   real sleep to be tested.
//! * **flight recorder** ([`trace`]) — bounded per-thread lock-free event
//!   rings behind the same span machinery: install a [`TraceRecorder`]
//!   on a registry and every span entry/exit and [`instant!`] marker
//!   becomes a timestamped, correlation-tagged timeline event; strictly
//!   one relaxed load per event site when no recorder is installed.
//! * **exporters** ([`export`]) — schema-stable JSON snapshots (diffable
//!   in CI), Prometheus text exposition, a console tree, and Chrome
//!   trace-event JSON (Perfetto / `chrome://tracing`) for recorder dumps.
//!
//! Metric names are dotted `stage.op` paths (`vqe.energy_evals`,
//! `pipeline.dock`); histogram values are **nanoseconds** unless the name
//! carries another unit (`supervisor.backoff_ms`). See DESIGN.md §9/§11.

pub mod clock;
pub mod counter;
pub mod export;
pub mod fleet;
pub mod gauge;
pub mod histogram;
pub mod registry;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock, WallClock};
pub use counter::Counter;
pub use fleet::{FleetSnapshot, StampedGauge, WorkerDelta, WorkerTotals};
pub use gauge::Gauge;
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::Registry;
pub use snapshot::Snapshot;
pub use span::{current_span, span_depth, SpanGuard};
pub use trace::{EventKind, TraceConfig, TraceDump, TraceRecorder};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry every built-in instrumentation site records
/// into. Created on first use, on real time.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_one_instance() {
        global().counter("lib.test.global").inc();
        assert!(global().snapshot().counters["lib.test.global"] >= 1);
    }

    #[test]
    fn span_macro_records_into_global() {
        {
            let _g = span!("lib.test.span");
        }
        assert!(global().snapshot().histograms["lib.test.span"].count >= 1);
    }

    #[test]
    fn sampled_span_skips_off_cycle_hits_but_counts_them() {
        for _ in 0..10 {
            let _g = span_sampled!("lib.test.sampled", 5);
        }
        let snap = global().snapshot();
        let count = snap.histograms["lib.test.sampled"].count;
        assert_eq!(count, 2, "10 hits at 1-in-5 sampling record twice");
        // The 8 skipped hits are accounted, so the true rate (count +
        // skipped = 10) is reconstructible from a snapshot.
        assert_eq!(snap.counters["lib.test.sampled.skipped"], 8);
    }
}
