//! Time sources for telemetry and time-dependent control flow.
//!
//! Everything in the workspace that measures durations or sleeps goes
//! through [`Clock`], so production code runs on a [`MonotonicClock`]
//! while tests drive a [`ManualClock`] — deadline and backoff logic
//! becomes deterministic and instant instead of depending on real
//! wall-clock sleeps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic time source with nanosecond resolution.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since an arbitrary (per-clock) epoch. Never decreases.
    fn now_ns(&self) -> u64;

    /// Blocks for `ms` milliseconds ([`ManualClock`] advances virtually
    /// instead of blocking).
    fn sleep_ms(&self, ms: u64);

    /// Milliseconds elapsed since `start_ns` (a prior [`now_ns`] reading).
    ///
    /// [`now_ns`]: Clock::now_ns
    fn elapsed_ms(&self, start_ns: u64) -> u64 {
        self.now_ns().saturating_sub(start_ns) / 1_000_000
    }
}

/// Real time: [`Instant`]-backed, sleeps with the OS.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is its moment of construction.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn sleep_ms(&self, ms: u64) {
        if ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }
}

/// Wall-clock time: nanoseconds since the UNIX epoch.
///
/// [`MonotonicClock`] epochs are per-process (the moment of
/// construction), which is exactly wrong for state shared *between*
/// processes — a shard-lease deadline written by one worker must be
/// comparable in another worker started minutes later. `WallClock` gives
/// every process the same epoch. The price is that wall time can step
/// under NTP; lease TTLs are seconds-scale, so small steps only shift a
/// takeover by the step size, never corrupt anything (fencing tokens,
/// not clocks, are the correctness mechanism).
#[derive(Clone, Copy, Debug, Default)]
pub struct WallClock;

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
    }

    fn sleep_ms(&self, ms: u64) {
        if ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }
}

/// Virtual time for tests: starts at zero, only moves when told to.
///
/// `sleep_ms` advances the clock instead of blocking, so retry/backoff
/// logic driven by a `ManualClock` runs in microseconds of real time while
/// observing exactly the virtual delays it asked for.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ns: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock frozen at `ns` nanoseconds.
    pub fn at_ns(ns: u64) -> Self {
        Self {
            now_ns: AtomicU64::new(ns),
        }
    }

    /// Moves time forward by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.now_ns.fetch_add(ns, Ordering::SeqCst);
    }

    /// Moves time forward by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.advance_ns(ms.saturating_mul(1_000_000));
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::SeqCst)
    }

    fn sleep_ms(&self, ms: u64) {
        self.advance_ms(ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_shares_the_unix_epoch() {
        // Two independently constructed wall clocks agree, which is the
        // whole point: cross-process lease deadlines stay comparable.
        let a = WallClock.now_ns();
        let b = WallClock.now_ns();
        assert!(b >= a);
        assert!(
            a > 1_577_836_800_000_000_000,
            "epoch must be UNIX, not boot"
        );
    }

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_frozen_until_advanced() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance_ms(5);
        assert_eq!(c.now_ns(), 5_000_000);
        assert_eq!(c.elapsed_ms(0), 5);
    }

    #[test]
    fn manual_sleep_advances_instead_of_blocking() {
        let c = ManualClock::new();
        let t0 = Instant::now();
        c.sleep_ms(10_000);
        assert!(t0.elapsed().as_millis() < 1_000, "sleep must be virtual");
        assert_eq!(c.elapsed_ms(0), 10_000);
    }
}
