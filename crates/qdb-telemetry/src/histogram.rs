//! Fixed-bucket log₂-scale histograms with per-thread sharding.
//!
//! Values land in log-linear buckets: a log₂ major bucket subdivided into
//! 32 linear sub-buckets, so any recorded value is reconstructed from its
//! bucket bound with ≤ 1/32 (~3%) relative error across the full `u64`
//! range — tight enough to report benchmark percentiles, coarse enough to
//! stay fixed-size (1920 buckets, no reallocation ever).
//!
//! Recording is lock-free and rayon-friendly: each OS thread writes to one
//! of a small set of shards (relaxed atomic adds, no CAS loops, no locks),
//! so parallel workers do not contend on one cache line. A scrape merges
//! the shards into an immutable [`HistogramSnapshot`] carrying count, sum,
//! exact min/max, and p50/p90/p99 estimates.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Linear sub-buckets per power of two (2⁵).
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS; // 32

/// Total buckets: values `0..32` exactly, then 32 sub-buckets for each of
/// the 59 remaining powers of two.
pub const NUM_BUCKETS: usize = SUB * 60;

/// Shards threads spread their writes over.
const SHARDS: usize = 8;

/// Bucket index of a value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let h = 63 - v.leading_zeros(); // ≥ SUB_BITS
        let m = (v >> (h - SUB_BITS)) as usize; // SUB..2·SUB
        SUB * (h as usize - SUB_BITS as usize + 1) + (m - SUB)
    }
}

/// Largest value a bucket can hold.
fn bucket_upper(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let g = (i / SUB) as u32; // ≥ 1
        let sub = (i % SUB) as u128;
        let h = g + SUB_BITS - 1; // ≥ SUB_BITS
        let ub = ((sub + SUB as u128 + 1) << (h - SUB_BITS)) - 1;
        ub.min(u64::MAX as u128) as u64
    }
}

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Process-wide thread ordinal, assigned on first record. Const-initialized,
    /// so reading it never allocates (the hot loop stays allocation-free).
    static THREAD_ORDINAL: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn shard_of(n: usize) -> usize {
    THREAD_ORDINAL.with(|c| {
        let mut i = c.get();
        if i == usize::MAX {
            i = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(i);
        }
        i % n
    })
}

#[derive(Debug)]
struct Shard {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` while the shard is empty.
    min: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A concurrent log₂-scale histogram.
///
/// [`record`](Histogram::record) takes a raw `u64`; by convention the
/// workspace records durations in **nanoseconds** and counts as plain
/// values (the metric name documents the unit — see DESIGN.md §9).
#[derive(Debug)]
pub struct Histogram {
    shards: Box<[Shard]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// Records one value. Lock- and allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        let s = &self.shards[shard_of(self.shards.len())];
        s.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
        s.min.fetch_min(v, Ordering::Relaxed);
        s.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total recordings so far (cheap; does not merge buckets).
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Merges all shards into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut dense = vec![0u64; NUM_BUCKETS];
        let (mut count, mut sum) = (0u64, 0u64);
        let (mut min, mut max) = (u64::MAX, 0u64);
        for s in self.shards.iter() {
            for (d, b) in dense.iter_mut().zip(s.buckets.iter()) {
                *d += b.load(Ordering::Relaxed);
            }
            count += s.count.load(Ordering::Relaxed);
            sum = sum.wrapping_add(s.sum.load(Ordering::Relaxed));
            min = min.min(s.min.load(Ordering::Relaxed));
            max = max.max(s.max.load(Ordering::Relaxed));
        }
        let buckets: Vec<(u32, u64)> = dense
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect();
        HistogramSnapshot::assemble(count, sum, if count == 0 { 0 } else { min }, max, buckets)
    }
}

/// An immutable merged view of a [`Histogram`]: exact count/sum/min/max
/// plus bucket-bound percentile estimates. Serializes with sparse buckets
/// (only non-empty ones), so snapshots stay diffable and compact.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values (wrapping in the astronomically unlikely
    /// case a sum exceeds `u64::MAX`).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self::assemble(0, 0, 0, 0, Vec::new())
    }

    fn assemble(count: u64, sum: u64, min: u64, max: u64, buckets: Vec<(u32, u64)>) -> Self {
        let mut snap = Self {
            count,
            sum,
            min,
            max,
            p50: 0,
            p90: 0,
            p99: 0,
            buckets,
        };
        snap.p50 = snap.quantile(0.50);
        snap.p90 = snap.quantile(0.90);
        snap.p99 = snap.quantile(0.99);
        snap
    }

    /// Estimated value at quantile `q ∈ [0, 1]`: the upper bound of the
    /// bucket holding the rank-`⌈q·count⌉` value, clamped to the exact
    /// observed `[min, max]`. Monotone in `q` by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(i, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return bucket_upper(i as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The delta of this snapshot relative to an earlier snapshot of the
    /// **same histogram in the same process life** (`prev`).
    ///
    /// Buckets only ever grow, so the delta is the bucket-wise difference;
    /// count and sum subtract likewise. `min`/`max` carry the *cumulative*
    /// bounds at flush time rather than per-interval bounds: min is
    /// nonincreasing and max nondecreasing over a histogram's life, so
    /// [`merge`](Self::merge)-folding every delta of one worker reproduces
    /// the final cumulative snapshot **exactly** (buckets/count/sum by
    /// additivity, min/max because the last delta carries the final
    /// bounds and merge takes min-of-mins / max-of-maxes). Each individual
    /// delta's own percentiles stay valid bounds: any value recorded in
    /// the interval lies within the cumulative `[min, max]`, so the
    /// quantile clamp never moves a bucket bound past a real value.
    pub fn diff_since(&self, prev: &Self) -> Self {
        let earlier: std::collections::BTreeMap<u32, u64> = prev.buckets.iter().copied().collect();
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .map(|&(i, c)| (i, c.saturating_sub(earlier.get(&i).copied().unwrap_or(0))))
            .filter(|&(_, c)| c > 0)
            .collect();
        Self::assemble(
            self.count.saturating_sub(prev.count),
            self.sum.wrapping_sub(prev.sum),
            self.min,
            self.max,
            buckets,
        )
    }

    /// Merges two snapshots (commutative and associative; percentiles are
    /// recomputed from the combined buckets).
    pub fn merge(&self, other: &Self) -> Self {
        let mut dense = std::collections::BTreeMap::new();
        for &(i, c) in self.buckets.iter().chain(&other.buckets) {
            *dense.entry(i).or_insert(0u64) += c;
        }
        let count = self.count + other.count;
        let min = match (self.count, other.count) {
            (0, _) => other.min,
            (_, 0) => self.min,
            _ => self.min.min(other.min),
        };
        Self::assemble(
            count,
            self.sum.wrapping_add(other.sum),
            min,
            self.max.max(other.max),
            dense.into_iter().collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_bracket_every_value() {
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1 << 20,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(bucket_upper(i) >= v, "upper({i}) < {v}");
            if i > 0 {
                assert!(bucket_upper(i - 1) < v, "value {v} fits an earlier bucket");
            }
        }
    }

    #[test]
    fn relative_error_within_one_thirty_second() {
        for v in [100u64, 999, 12_345, 1 << 30, (1 << 40) + 7] {
            let ub = bucket_upper(bucket_index(v));
            let err = (ub - v) as f64 / v as f64;
            assert!(err <= 1.0 / 32.0 + 1e-12, "v={v} ub={ub} err={err}");
        }
    }

    #[test]
    fn snapshot_of_known_values() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.sum, 55);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        // Values < 32 land in exact buckets, so percentiles are exact.
        assert_eq!(s.p50, 5);
        assert_eq!(s.p90, 9);
        assert_eq!(s.p99, 10);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let (a, b, c) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 1..=100u64 {
            c.record(v * 17);
            if v % 2 == 0 {
                a.record(v * 17);
            } else {
                b.record(v * 17);
            }
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged, c.snapshot());
    }
}
