//! Hierarchical timing spans.
//!
//! A span is an RAII guard: entering pushes its name onto a thread-local
//! stack, dropping pops it and records the elapsed nanoseconds into the
//! registry histogram of the same name. Nesting is free — a parent span's
//! duration naturally includes its children's — and the stack gives any
//! code its current attribution context ([`current_span`], [`span_depth`]).
//!
//! Cost per span: two clock reads, one histogram record, two thread-local
//! vector operations — tens of nanoseconds. For loops hot enough that even
//! that matters, [`span_sampled!`](crate::span_sampled) times every Nth
//! entry per call site and skips the rest at the price of one relaxed
//! atomic increment.

use crate::histogram::Histogram;
use crate::registry::Registry;
use crate::trace::EventKind;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::Arc;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Name of the innermost open span on this thread, if any.
pub fn current_span() -> Option<&'static str> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// Number of open spans on this thread.
pub fn span_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

/// RAII guard for one span. Created by [`Registry::span`]; records on drop.
///
/// Deliberately `!Send`: the guard belongs to the thread whose span stack
/// it sits on.
#[derive(Debug)]
pub struct SpanGuard<'r> {
    registry: &'r Registry,
    hist: Arc<Histogram>,
    name: &'static str,
    start_ns: u64,
    _not_send: PhantomData<*const ()>,
}

impl<'r> SpanGuard<'r> {
    pub(crate) fn enter(registry: &'r Registry, name: &'static str) -> Self {
        let hist = registry.histogram(name);
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        let start_ns = registry.clock().now_ns();
        // Flight-recorder edge: a no-op costing one relaxed load when no
        // recorder is installed; reuses the clock reading above.
        registry.trace_event(EventKind::Begin, name, start_ns);
        Self {
            registry,
            hist,
            name,
            start_ns,
            _not_send: PhantomData,
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let now_ns = self.registry.clock().now_ns();
        self.hist.record(now_ns.saturating_sub(self.start_ns));
        self.registry.trace_event(EventKind::End, self.name, now_ns);
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Opens a span on the global registry: `let _g = span!("stage.op");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name)
    };
}

/// Records an instant event on the global registry's flight recorder
/// (a no-op when none is installed): `instant!("supervisor.retry");`.
#[macro_export]
macro_rules! instant {
    ($name:expr) => {
        $crate::global().instant($name)
    };
}

/// Opens a span on the global registry for every `$every`-th hit of this
/// call site (per-site counter, shared across threads). Binds an
/// `Option<SpanGuard>`.
///
/// Skipped hits are not invisible: each one increments a sibling
/// `<name>.skipped` counter, so consumers reconstruct the true event
/// rate as `histogram.count + counter("<name>.skipped")` instead of
/// under-reading a 1-in-N sample as the whole population. A skipped hit
/// costs the site counter's relaxed increment, one `OnceLock` load, and
/// the skipped counter's relaxed increment.
#[macro_export]
macro_rules! span_sampled {
    ($name:expr, $every:expr) => {{
        static SITE_HITS: ::std::sync::atomic::AtomicU64 = ::std::sync::atomic::AtomicU64::new(0);
        static SKIPPED: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        let hit = SITE_HITS.fetch_add(1, ::std::sync::atomic::Ordering::Relaxed);
        if hit % ($every as u64) == 0 {
            Some($crate::global().span($name))
        } else {
            SKIPPED
                .get_or_init(|| $crate::global().counter(&format!("{}.skipped", $name)))
                .inc();
            None
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn nested_spans_attribute_parent_and_child_durations() {
        let clock = Arc::new(ManualClock::new());
        let r = Registry::with_clock(clock.clone());
        {
            let _outer = r.span("test.outer");
            assert_eq!(current_span(), Some("test.outer"));
            clock.advance_ms(10);
            {
                let _inner = r.span("test.inner");
                assert_eq!(span_depth(), 2);
                assert_eq!(current_span(), Some("test.inner"));
                clock.advance_ms(5);
            }
            assert_eq!(current_span(), Some("test.outer"));
        }
        assert_eq!(span_depth(), 0);
        let snap = r.snapshot();
        let outer = &snap.histograms["test.outer"];
        let inner = &snap.histograms["test.inner"];
        // The child saw exactly its own 5 ms; the parent's 15 ms includes
        // the child — correct hierarchical attribution.
        assert_eq!(inner.sum, 5_000_000);
        assert_eq!(outer.sum, 15_000_000);
        assert_eq!(inner.count, 1);
        assert_eq!(outer.count, 1);
    }

    #[test]
    fn repeated_spans_accumulate_into_one_histogram() {
        let clock = Arc::new(ManualClock::new());
        let r = Registry::with_clock(clock.clone());
        for _ in 0..4 {
            let _g = r.span("test.loop");
            clock.advance_ns(1_000);
        }
        let h = r.snapshot().histograms["test.loop"].clone();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 4_000);
    }
}
