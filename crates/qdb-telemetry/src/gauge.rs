//! Last-value gauges.

use std::sync::atomic::{AtomicI64, Ordering};

/// A lock-free gauge: a signed value that can move both ways.
///
/// Used for instantaneous readings — current workspace width, in-flight
/// jobs, resident cache entries.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current reading.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_add_read() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }
}
