//! Monotone event counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// A lock-free monotone counter.
///
/// Increments are single relaxed atomic adds, cheap enough for per-call
/// instrumentation on hot paths; readers see an eventually-consistent
/// total. Counters never decrease.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_up() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn concurrent_increments_lose_nothing() {
        let c = std::sync::Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
