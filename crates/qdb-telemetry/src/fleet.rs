//! Fleet merge: combining per-worker telemetry deltas across processes.
//!
//! A single registry [`Snapshot`](crate::Snapshot) is process-local; a
//! sharded build or a serving pool is a *fleet* of processes, each
//! flushing [`WorkerDelta`]s (monotone-sequence-numbered, worker-id-
//! stamped registry deltas) into durable journals under the build root.
//! This module owns the pure merge math — reading and writing the
//! journals lives in `qdb-store`, which depends on this crate.
//!
//! Merge semantics, per metric kind:
//!
//! * **Counters sum.** Each delta carries how much a counter advanced
//!   since the worker's previous flush, so folding every delta of every
//!   worker gives the exact fleet total: addition over `u64` is a
//!   commutative monoid and deltas partition each worker's increments.
//! * **Gauges are last-writer-wins by timestamp.** Every gauge value is
//!   stamped `(flushed_at_ms, worker_id, seq)` and the merge keeps the
//!   lexicographically largest stamp — a total order (ties on wall time
//!   break by worker id, then sequence number), so the result is
//!   independent of merge order.
//! * **Histograms merge bucket-wise** via
//!   [`HistogramSnapshot::merge`]: bucket counts add, so total count is
//!   preserved exactly, and because every recorded value still sits in
//!   the same log-linear bucket after the merge, quantile estimates keep
//!   the structural ≤ 1/32 relative-error bound (see
//!   [`HistogramSnapshot::diff_since`] for why per-worker delta chains
//!   reassemble exactly).
//!
//! All three are per-key commutative monoids with
//! [`FleetSnapshot::empty`] as identity, which is what makes the fleet
//! snapshot well-defined no matter how many workers flushed, in what
//! order their journals are read, or how partial merges are grouped —
//! properties locked down by proptests in `tests/properties.rs`.

use crate::histogram::HistogramSnapshot;
use crate::snapshot::Snapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One durably flushed registry delta: what a worker's metrics did
/// between its previous flush and this one.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerDelta {
    /// Schema version ([`WorkerDelta::VERSION`]).
    pub version: u32,
    /// The flushing worker's id (stable across that worker's flushes).
    pub worker_id: String,
    /// Monotone per-worker flush sequence number (0-based; survives a
    /// same-id restart because the flusher resumes past the journal).
    pub seq: u64,
    /// Wall-clock flush time in milliseconds (the build's clock), used
    /// as the gauge last-writer stamp.
    pub flushed_at_ms: u64,
    /// Why the flush happened: `"start"`, `"shard"`, `"periodic"`,
    /// `"exit"`, or `"error"` (free-form for forward compatibility).
    pub kind: String,
    /// The registry delta itself (see [`Snapshot::delta_since`]).
    pub delta: Snapshot,
}

impl WorkerDelta {
    /// Current schema version.
    pub const VERSION: u32 = 1;

    /// Compact single-line JSON — the journal payload format.
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("worker delta serializes")
    }

    /// Parses a journal payload line, rejecting unknown versions.
    pub fn from_line(line: &str) -> Result<Self, String> {
        let delta: WorkerDelta = serde_json::from_str(line).map_err(|e| e.to_string())?;
        if delta.version != Self::VERSION {
            return Err(format!(
                "worker delta version {} unsupported (expected {})",
                delta.version,
                Self::VERSION
            ));
        }
        Ok(delta)
    }
}

/// A gauge value plus the stamp that decides last-writer-wins merges.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StampedGauge {
    /// The gauge reading.
    pub value: i64,
    /// Flush wall time of the delta that carried it.
    pub at_ms: u64,
    /// Worker that flushed it.
    pub worker: String,
    /// That worker's flush sequence number.
    pub seq: u64,
}

impl StampedGauge {
    /// The total-order merge key: `(at_ms, worker, seq)`, lexicographic.
    fn stamp(&self) -> (u64, &str, u64) {
        (self.at_ms, self.worker.as_str(), self.seq)
    }
}

/// Per-worker accounting inside a [`FleetSnapshot`]: how many deltas the
/// worker flushed and what its counters summed to — the receipts behind
/// the merge-identity check (fleet counters ≡ Σ per-worker counters).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerTotals {
    /// Deltas absorbed from this worker.
    pub flushes: u64,
    /// Highest flush sequence number seen.
    pub last_seq: u64,
    /// Latest flush wall time seen.
    pub last_flushed_at_ms: u64,
    /// Sum of this worker's counter deltas, by metric name.
    pub counters: BTreeMap<String, u64>,
}

/// The merged, fleet-wide view of every worker's flushed deltas.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// Schema version ([`FleetSnapshot::VERSION`]).
    pub version: u32,
    /// Fleet counter totals (sum across workers).
    pub counters: BTreeMap<String, u64>,
    /// Fleet gauge readings (last writer by stamp).
    pub gauges: BTreeMap<String, StampedGauge>,
    /// Fleet histograms (bucket-wise merge).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Per-worker receipts, keyed by worker id.
    pub workers: BTreeMap<String, WorkerTotals>,
}

impl Default for FleetSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl FleetSnapshot {
    /// Current schema version.
    pub const VERSION: u32 = 1;

    /// The merge identity: absorbing or merging into it changes nothing.
    pub fn empty() -> Self {
        Self {
            version: Self::VERSION,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            workers: BTreeMap::new(),
        }
    }

    /// Folds one worker delta into the fleet view.
    pub fn absorb_delta(&mut self, d: &WorkerDelta) {
        for (name, &v) in &d.delta.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, &value) in &d.delta.gauges {
            let candidate = StampedGauge {
                value,
                at_ms: d.flushed_at_ms,
                worker: d.worker_id.clone(),
                seq: d.seq,
            };
            match self.gauges.get(name) {
                Some(current) if current.stamp() >= candidate.stamp() => {}
                _ => {
                    self.gauges.insert(name.clone(), candidate);
                }
            }
        }
        for (name, hist) in &d.delta.histograms {
            match self.histograms.get_mut(name) {
                Some(current) => *current = current.merge(hist),
                None => {
                    self.histograms
                        .insert(name.clone(), HistogramSnapshot::empty().merge(hist));
                }
            }
        }
        let totals = self.workers.entry(d.worker_id.clone()).or_default();
        totals.flushes += 1;
        totals.last_seq = totals.last_seq.max(d.seq);
        totals.last_flushed_at_ms = totals.last_flushed_at_ms.max(d.flushed_at_ms);
        for (name, &v) in &d.delta.counters {
            *totals.counters.entry(name.clone()).or_insert(0) += v;
        }
    }

    /// Builds a fleet snapshot from a batch of deltas (any order).
    pub fn from_deltas<'a>(deltas: impl IntoIterator<Item = &'a WorkerDelta>) -> Self {
        let mut fleet = Self::empty();
        for d in deltas {
            fleet.absorb_delta(d);
        }
        fleet
    }

    /// Merges two fleet views (commutative, associative,
    /// [`empty`](Self::empty)-identity): counters and per-worker receipt
    /// counters sum, histograms merge bucket-wise, gauges keep the newer
    /// stamp, worker receipts combine per id.
    pub fn merge(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (name, &v) in &other.counters {
            *out.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, gauge) in &other.gauges {
            match out.gauges.get(name) {
                Some(current) if current.stamp() >= gauge.stamp() => {}
                _ => {
                    out.gauges.insert(name.clone(), gauge.clone());
                }
            }
        }
        for (name, hist) in &other.histograms {
            match out.histograms.get_mut(name) {
                Some(current) => *current = current.merge(hist),
                None => {
                    out.histograms
                        .insert(name.clone(), HistogramSnapshot::empty().merge(hist));
                }
            }
        }
        for (id, theirs) in &other.workers {
            let totals = out.workers.entry(id.clone()).or_default();
            totals.flushes += theirs.flushes;
            totals.last_seq = totals.last_seq.max(theirs.last_seq);
            totals.last_flushed_at_ms = totals.last_flushed_at_ms.max(theirs.last_flushed_at_ms);
            for (name, &v) in &theirs.counters {
                *totals.counters.entry(name.clone()).or_insert(0) += v;
            }
        }
        out
    }

    /// Checks the merge identity that every consumer gates on: each fleet
    /// counter must equal the sum of the per-worker receipt counters, key
    /// for key. Returns human-readable problems (empty = identity holds).
    pub fn identity_problems(&self) -> Vec<String> {
        let mut summed: BTreeMap<&str, u64> = BTreeMap::new();
        for totals in self.workers.values() {
            for (name, &v) in &totals.counters {
                *summed.entry(name.as_str()).or_insert(0) += v;
            }
        }
        let mut problems = Vec::new();
        for (name, &total) in &self.counters {
            let per_worker = summed.remove(name.as_str()).unwrap_or(0);
            if per_worker != total {
                problems.push(format!(
                    "counter {name}: fleet total {total} != per-worker sum {per_worker}"
                ));
            }
        }
        for (name, v) in summed {
            problems.push(format!(
                "counter {name}: per-worker sum {v} missing from fleet totals"
            ));
        }
        problems
    }

    /// Total deltas absorbed across all workers.
    pub fn total_flushes(&self) -> u64 {
        self.workers.values().map(|w| w.flushes).sum()
    }

    /// Pretty JSON, keys sorted.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet snapshot serializes")
    }

    /// Parses a fleet snapshot, rejecting unknown versions.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let fleet: FleetSnapshot = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if fleet.version != Self::VERSION {
            return Err(format!(
                "fleet snapshot version {} unsupported (expected {})",
                fleet.version,
                Self::VERSION
            ));
        }
        Ok(fleet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn delta(worker: &str, seq: u64, at_ms: u64, build: impl FnOnce(&Registry)) -> WorkerDelta {
        let r = Registry::new();
        build(&r);
        WorkerDelta {
            version: WorkerDelta::VERSION,
            worker_id: worker.to_string(),
            seq,
            flushed_at_ms: at_ms,
            kind: "shard".to_string(),
            delta: r.snapshot().delta_since(&Snapshot::default()),
        }
    }

    #[test]
    fn delta_chain_reassembles_the_cumulative_snapshot() {
        let r = Registry::new();
        r.counter("c").add(3);
        r.histogram("h").record(100);
        let first = r.snapshot();
        let d1 = first.delta_since(&Snapshot::default());
        r.counter("c").add(4);
        r.gauge("g").set(-7);
        r.histogram("h").record(9_999);
        let second = r.snapshot();
        let d2 = second.delta_since(&first);

        assert_eq!(d1.counters["c"], 3);
        assert_eq!(d2.counters["c"], 4);
        assert_eq!(d2.gauges["g"], -7);
        // Counters and histogram contents reassemble exactly.
        let rebuilt = d1.histograms["h"].merge(&d2.histograms["h"]);
        assert_eq!(rebuilt, second.histograms["h"]);
        // An idle interval produces an empty delta.
        assert!(second.delta_since(&second).is_empty());
    }

    #[test]
    fn fleet_counters_sum_and_identity_holds() {
        let a = delta("wA", 0, 10, |r| {
            r.counter("fragments").add(5);
            r.counter("only_a").inc();
        });
        let b = delta("wB", 0, 11, |r| r.counter("fragments").add(7));
        let fleet = FleetSnapshot::from_deltas([&a, &b]);
        assert_eq!(fleet.counters["fragments"], 12);
        assert_eq!(fleet.counters["only_a"], 1);
        assert_eq!(fleet.workers["wA"].counters["fragments"], 5);
        assert_eq!(fleet.workers["wB"].counters["fragments"], 7);
        assert!(fleet.identity_problems().is_empty());
        assert_eq!(fleet.total_flushes(), 2);

        let mut broken = fleet.clone();
        *broken.counters.get_mut("fragments").unwrap() += 1;
        assert_eq!(broken.identity_problems().len(), 1);
    }

    #[test]
    fn gauges_keep_the_newest_stamp_regardless_of_order() {
        let older = delta("wB", 3, 100, |r| r.gauge("depth").set(10));
        let newer = delta("wA", 1, 200, |r| r.gauge("depth").set(4));
        let forward = FleetSnapshot::from_deltas([&older, &newer]);
        let backward = FleetSnapshot::from_deltas([&newer, &older]);
        assert_eq!(forward, backward);
        assert_eq!(forward.gauges["depth"].value, 4);
        assert_eq!(forward.gauges["depth"].worker, "wA");
        // Wall-time tie: worker id breaks it deterministically.
        let tie_a = delta("wA", 0, 100, |r| r.gauge("tie").set(1));
        let tie_b = delta("wB", 0, 100, |r| r.gauge("tie").set(2));
        let merged = FleetSnapshot::from_deltas([&tie_b, &tie_a]);
        assert_eq!(merged.gauges["tie"].value, 2);
    }

    #[test]
    fn merge_is_commutative_associative_with_empty_identity() {
        let parts = [
            delta("wA", 0, 1, |r| {
                r.counter("x").add(2);
                r.histogram("h").record(50);
            }),
            delta("wB", 0, 2, |r| {
                r.counter("x").add(3);
                r.gauge("g").set(9);
            }),
            delta("wA", 1, 3, |r| r.histogram("h").record(5_000)),
        ];
        let [f0, f1, f2] = [
            FleetSnapshot::from_deltas([&parts[0]]),
            FleetSnapshot::from_deltas([&parts[1]]),
            FleetSnapshot::from_deltas([&parts[2]]),
        ];
        assert_eq!(f0.merge(&f1), f1.merge(&f0));
        assert_eq!(f0.merge(&f1).merge(&f2), f0.merge(&f1.merge(&f2)));
        assert_eq!(FleetSnapshot::empty().merge(&f0), f0);
        assert_eq!(f0.merge(&FleetSnapshot::empty()), f0);
        // And batch-building equals pairwise merging.
        assert_eq!(
            FleetSnapshot::from_deltas(parts.iter()),
            f0.merge(&f1).merge(&f2)
        );
    }

    #[test]
    fn json_round_trip_and_version_gates() {
        let d = delta("w0", 0, 5, |r| {
            r.counter("c").inc();
            r.gauge("g").set(3);
            r.histogram("h").record(123);
        });
        let back = WorkerDelta::from_line(&d.to_line()).unwrap();
        assert_eq!(back, d);
        let fleet = FleetSnapshot::from_deltas([&d]);
        assert_eq!(FleetSnapshot::from_json(&fleet.to_json()).unwrap(), fleet);

        let mut bad = d.clone();
        bad.version = 99;
        assert!(WorkerDelta::from_line(&bad.to_line())
            .unwrap_err()
            .contains("99"));
        let mut bad_fleet = fleet.clone();
        bad_fleet.version = 99;
        assert!(FleetSnapshot::from_json(&bad_fleet.to_json())
            .unwrap_err()
            .contains("99"));
    }
}
