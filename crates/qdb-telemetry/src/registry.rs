//! The metrics registry: named counters, gauges, and histograms.
//!
//! Registration (name → metric) takes a short `parking_lot` lock once per
//! name; every *recording* after that is a lock-free atomic operation on a
//! cached [`Arc`] handle. Hot paths fetch their handles up front (e.g. in a
//! constructor) and pay only relaxed atomic adds per event.
//!
//! Most code records into the process-global registry ([`crate::global`]);
//! tests build private [`Registry`] instances — usually with a
//! [`ManualClock`](crate::clock::ManualClock) — so assertions never race
//! against other tests.

use crate::clock::{Clock, MonotonicClock};
use crate::counter::Counter;
use crate::gauge::Gauge;
use crate::histogram::Histogram;
use crate::snapshot::Snapshot;
use crate::span::SpanGuard;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Default)]
struct Maps {
    counters: HashMap<String, Arc<Counter>>,
    gauges: HashMap<String, Arc<Gauge>>,
    histograms: HashMap<String, Arc<Histogram>>,
}

/// A self-contained metrics registry with its own time source.
#[derive(Debug)]
pub struct Registry {
    clock: Arc<dyn Clock>,
    maps: RwLock<Maps>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry on real time.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A registry on an explicit clock (tests pass a
    /// [`ManualClock`](crate::clock::ManualClock)).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock,
            maps: RwLock::new(Maps::default()),
        }
    }

    /// The registry's time source.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The counter named `name`, created on first use. Cache the handle
    /// on hot paths.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.maps.read().counters.get(name) {
            return c.clone();
        }
        self.maps
            .write()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.maps.read().gauges.get(name) {
            return g.clone();
        }
        self.maps
            .write()
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.maps.read().histograms.get(name) {
            return h.clone();
        }
        self.maps
            .write()
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Opens a span named `name`: an RAII guard that, on drop, records the
    /// elapsed nanoseconds into the histogram of the same name. Spans nest
    /// through a thread-local stack (see [`crate::span`]).
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard::enter(self, name)
    }

    /// Merges every metric into one point-in-time [`Snapshot`], sorted by
    /// name (stable, diffable output).
    pub fn snapshot(&self) -> Snapshot {
        let maps = self.maps.read();
        Snapshot {
            version: Snapshot::VERSION,
            counters: maps
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: maps
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: maps
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        assert_eq!(r.counter("y").get(), 0);
    }

    #[test]
    fn snapshot_collects_all_kinds() {
        let r = Registry::new();
        r.counter("c.one").inc();
        r.gauge("g.one").set(-7);
        r.histogram("h.one").record(5);
        let s = r.snapshot();
        assert_eq!(s.counters["c.one"], 1);
        assert_eq!(s.gauges["g.one"], -7);
        assert_eq!(s.histograms["h.one"].count, 1);
    }
}
