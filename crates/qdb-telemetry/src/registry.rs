//! The metrics registry: named counters, gauges, and histograms.
//!
//! Registration (name → metric) takes a short `parking_lot` lock once per
//! name; every *recording* after that is a lock-free atomic operation on a
//! cached [`Arc`] handle. Hot paths fetch their handles up front (e.g. in a
//! constructor) and pay only relaxed atomic adds per event.
//!
//! Most code records into the process-global registry ([`crate::global`]);
//! tests build private [`Registry`] instances — usually with a
//! [`ManualClock`](crate::clock::ManualClock) — so assertions never race
//! against other tests.

use crate::clock::{Clock, MonotonicClock};
use crate::counter::Counter;
use crate::gauge::Gauge;
use crate::histogram::Histogram;
use crate::snapshot::Snapshot;
use crate::span::SpanGuard;
use crate::trace::{EventKind, TraceRecorder};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct Maps {
    counters: HashMap<String, Arc<Counter>>,
    gauges: HashMap<String, Arc<Gauge>>,
    histograms: HashMap<String, Arc<Histogram>>,
}

/// A self-contained metrics registry with its own time source.
#[derive(Debug)]
pub struct Registry {
    clock: Arc<dyn Clock>,
    maps: RwLock<Maps>,
    /// Flight recorder, when installed. `tracing` mirrors `Some`-ness so
    /// the span hot path can rule tracing out with one relaxed load (a
    /// plain `mov`, no RMW) instead of a lock.
    recorder: RwLock<Option<Arc<TraceRecorder>>>,
    tracing: AtomicBool,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry on real time.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A registry on an explicit clock (tests pass a
    /// [`ManualClock`](crate::clock::ManualClock)).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock,
            maps: RwLock::new(Maps::default()),
            recorder: RwLock::new(None),
            tracing: AtomicBool::new(false),
        }
    }

    /// The registry's time source.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The counter named `name`, created on first use. Cache the handle
    /// on hot paths.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.maps.read().counters.get(name) {
            return c.clone();
        }
        self.maps
            .write()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.maps.read().gauges.get(name) {
            return g.clone();
        }
        self.maps
            .write()
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.maps.read().histograms.get(name) {
            return h.clone();
        }
        self.maps
            .write()
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Opens a span named `name`: an RAII guard that, on drop, records the
    /// elapsed nanoseconds into the histogram of the same name. Spans nest
    /// through a thread-local stack (see [`crate::span`]). With a flight
    /// recorder installed, entry and exit also become trace events — at
    /// the same clock readings the histogram uses.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard::enter(self, name)
    }

    /// Installs a flight recorder: every span on this registry emits
    /// begin/end events and [`instant`](Self::instant) markers record,
    /// until [`take_recorder`](Self::take_recorder) detaches it. Ring
    /// wrap is mirrored into this registry's `trace.dropped` counter.
    pub fn install_recorder(&self, recorder: Arc<TraceRecorder>) {
        recorder.bind_dropped_counter(self.counter("trace.dropped"));
        *self.recorder.write() = Some(recorder);
        self.tracing.store(true, Ordering::Release);
    }

    /// Detaches the installed recorder (if any) for dumping. Spans keep
    /// timing into histograms; they just stop emitting events.
    pub fn take_recorder(&self) -> Option<Arc<TraceRecorder>> {
        self.tracing.store(false, Ordering::Release);
        self.recorder.write().take()
    }

    /// The installed recorder, if any. Hot loops that emit hand-rolled
    /// begin/end pairs (e.g. the VQE objective) fetch this once per run
    /// so the recorder-absent path costs one relaxed load at fetch time
    /// and nothing per event.
    pub fn recorder(&self) -> Option<Arc<TraceRecorder>> {
        if !self.tracing.load(Ordering::Relaxed) {
            return None;
        }
        self.recorder.read().clone()
    }

    /// Records an instant event (no duration) on the installed recorder;
    /// a no-op costing one relaxed load when none is installed. The
    /// clock is read only when a recorder is listening.
    #[inline]
    pub fn instant(&self, name: &'static str) {
        if self.tracing.load(Ordering::Relaxed) {
            if let Some(rec) = self.recorder.read().as_deref() {
                rec.event(EventKind::Instant, name, self.clock.now_ns());
            }
        }
    }

    /// Emits a span-edge trace event when a recorder is installed;
    /// called by [`SpanGuard`] with the clock reading it already took.
    #[inline]
    pub(crate) fn trace_event(&self, kind: EventKind, name: &'static str, ts_ns: u64) {
        if self.tracing.load(Ordering::Relaxed) {
            if let Some(rec) = self.recorder.read().as_deref() {
                rec.event(kind, name, ts_ns);
            }
        }
    }

    /// Merges every metric into one point-in-time [`Snapshot`], sorted by
    /// name (stable, diffable output).
    pub fn snapshot(&self) -> Snapshot {
        let maps = self.maps.read();
        Snapshot {
            version: Snapshot::VERSION,
            counters: maps
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: maps
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: maps
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        assert_eq!(r.counter("y").get(), 0);
    }

    #[test]
    fn snapshot_collects_all_kinds() {
        let r = Registry::new();
        r.counter("c.one").inc();
        r.gauge("g.one").set(-7);
        r.histogram("h.one").record(5);
        let s = r.snapshot();
        assert_eq!(s.counters["c.one"], 1);
        assert_eq!(s.gauges["g.one"], -7);
        assert_eq!(s.histograms["h.one"].count, 1);
    }
}
