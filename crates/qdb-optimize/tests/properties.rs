//! Property-based tests for the optimizer suite.

use proptest::prelude::*;
use qdb_optimize::{Cobyla, NelderMead, Optimizer, Spsa};

fn quadratic(center: Vec<f64>) -> impl FnMut(&[f64]) -> f64 {
    move |x: &[f64]| x.iter().zip(&center).map(|(a, b)| (a - b) * (a - b)).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every optimizer improves (or at least never worsens) the starting
    /// value of a convex quadratic within its budget.
    #[test]
    fn optimizers_never_worsen(
        center in proptest::collection::vec(-3.0f64..3.0, 2..5),
        start_offset in 0.5f64..4.0,
    ) {
        let start: Vec<f64> = center.iter().map(|c| c + start_offset).collect();
        let f0: f64 = start.iter().zip(&center).map(|(a, b)| (a - b) * (a - b)).sum();

        let optimizers: Vec<Box<dyn Optimizer>> = vec![
            Box::new(Cobyla::with_budget(150)),
            Box::new(NelderMead::with_budget(150)),
            Box::new(Spsa::with_budget(150, 11)),
        ];
        for opt in optimizers {
            let mut f = quadratic(center.clone());
            let r = opt.minimize(&mut f, &start);
            prop_assert!(r.fx <= f0 + 1e-9, "{} worsened: {} > {f0}", opt.name(), r.fx);
            prop_assert!(r.evals <= 150);
            prop_assert_eq!(r.history.len(), r.evals);
        }
    }

    /// History is best-so-far: monotone non-increasing, final entry = fx.
    #[test]
    fn history_monotone(center in proptest::collection::vec(-2.0f64..2.0, 3..4)) {
        let start = vec![5.0; center.len()];
        let mut f = quadratic(center);
        let r = Cobyla::with_budget(100).minimize(&mut f, &start);
        for w in r.history.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-15);
        }
        prop_assert_eq!(*r.history.last().unwrap(), r.fx);
    }

    /// COBYLA and Nelder–Mead reach near the optimum of well-conditioned
    /// quadratics from any nearby start.
    #[test]
    fn convex_convergence(center in proptest::collection::vec(-2.0f64..2.0, 2..4)) {
        let start = vec![0.0; center.len()];
        let mut f1 = quadratic(center.clone());
        let r1 = Cobyla { rho_end: 1e-8, max_evals: 600, ..Default::default() }
            .minimize(&mut f1, &start);
        prop_assert!(r1.fx < 0.05, "COBYLA fx = {}", r1.fx);

        let mut f2 = quadratic(center.clone());
        let r2 = NelderMead { max_evals: 600, ..Default::default() }.minimize(&mut f2, &start);
        prop_assert!(r2.fx < 0.05, "NM fx = {}", r2.fx);
    }

    /// The reported x actually attains the reported fx.
    #[test]
    fn reported_point_consistent(center in proptest::collection::vec(-2.0f64..2.0, 2..4)) {
        let start = vec![1.0; center.len()];
        let mut f = quadratic(center.clone());
        let r = NelderMead::with_budget(200).minimize(&mut f, &start);
        let check: f64 = r.x.iter().zip(&center).map(|(a, b)| (a - b) * (a - b)).sum();
        prop_assert!((check - r.fx).abs() < 1e-9);
    }
}
