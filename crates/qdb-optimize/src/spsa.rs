//! Simultaneous Perturbation Stochastic Approximation (ablation baseline).
//!
//! SPSA estimates the gradient from two evaluations regardless of
//! dimension, which made it a popular VQE optimizer on noisy hardware; we
//! include it to compare against COBYLA in the optimizer ablation.

use crate::{OptResult, Optimizer, Tracker};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// SPSA with the standard gain sequences
/// `a_k = a / (k + 1 + A)^α`, `c_k = c / (k + 1)^γ`.
#[derive(Clone, Copy, Debug)]
pub struct Spsa {
    /// Step-size numerator `a`.
    pub a: f64,
    /// Perturbation numerator `c`.
    pub c: f64,
    /// Stability constant `A`.
    pub stability: f64,
    /// Step exponent α (0.602 is Spall's recommendation).
    pub alpha: f64,
    /// Perturbation exponent γ (0.101).
    pub gamma: f64,
    /// Maximum objective evaluations (2 per iteration).
    pub max_evals: usize,
    /// RNG seed for the ± perturbation directions.
    pub seed: u64,
}

impl Default for Spsa {
    fn default() -> Self {
        Self {
            a: 0.2,
            c: 0.15,
            stability: 10.0,
            alpha: 0.602,
            gamma: 0.101,
            max_evals: 200,
            seed: 0,
        }
    }
}

impl Spsa {
    /// SPSA with a budget and seed.
    pub fn with_budget(max_evals: usize, seed: u64) -> Self {
        Self {
            max_evals,
            seed,
            ..Default::default()
        }
    }
}

impl Optimizer for Spsa {
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptResult {
        let n = x0.len();
        assert!(n > 0, "empty parameter vector");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut tracker = Tracker::new(f, n);
        let mut x = x0.to_vec();
        let mut k = 0usize;
        while tracker.evals + 2 <= self.max_evals {
            let ak = self.a / (k as f64 + 1.0 + self.stability).powf(self.alpha);
            let ck = self.c / (k as f64 + 1.0).powf(self.gamma);
            // Rademacher perturbation.
            let delta: Vec<f64> = (0..n)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let xp: Vec<f64> = x.iter().zip(&delta).map(|(v, d)| v + ck * d).collect();
            let xm: Vec<f64> = x.iter().zip(&delta).map(|(v, d)| v - ck * d).collect();
            let fp = tracker.eval(&xp);
            let fm = tracker.eval(&xm);
            let g0 = (fp - fm) / (2.0 * ck);
            for (xi, di) in x.iter_mut().zip(&delta) {
                *xi -= ak * g0 / di;
            }
            k += 1;
        }
        // Final evaluation at the settled point (if budget allows).
        if tracker.evals < self.max_evals {
            tracker.eval(&x);
        }
        tracker.finish()
    }

    fn name(&self) -> &'static str {
        "SPSA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_functions::shifted_sphere;

    #[test]
    fn descends_quadratic() {
        let opt = Spsa {
            a: 0.5,
            max_evals: 2000,
            seed: 7,
            ..Default::default()
        };
        let start = [4.0, 4.0];
        let r = opt.minimize(&mut |x| shifted_sphere(x), &start);
        assert!(
            r.fx < shifted_sphere(&start) * 0.05,
            "should descend substantially, fx = {}",
            r.fx
        );
    }

    #[test]
    fn seed_reproducible() {
        let opt = Spsa::with_budget(400, 42);
        let a = opt.minimize(&mut |x| shifted_sphere(x), &[2.0; 3]);
        let b = opt.minimize(&mut |x| shifted_sphere(x), &[2.0; 3]);
        assert_eq!(a.x, b.x);
        let other = Spsa::with_budget(400, 43).minimize(&mut |x| shifted_sphere(x), &[2.0; 3]);
        assert_ne!(a.x, other.x);
    }

    #[test]
    fn budget_respected() {
        let opt = Spsa::with_budget(101, 0);
        let mut calls = 0;
        let _ = opt.minimize(
            &mut |x| {
                calls += 1;
                shifted_sphere(x)
            },
            &[1.0; 8],
        );
        assert!(calls <= 101);
    }

    #[test]
    fn works_in_high_dimension() {
        // SPSA's 2-evals-per-step shines when n is large.
        let opt = Spsa {
            a: 0.4,
            max_evals: 3000,
            seed: 1,
            ..Default::default()
        };
        let start = vec![2.0; 24];
        let r = opt.minimize(&mut |x| shifted_sphere(x), &start);
        assert!(r.fx < shifted_sphere(&start) * 0.3, "fx = {}", r.fx);
    }
}
