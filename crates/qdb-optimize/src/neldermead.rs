//! The Nelder–Mead downhill simplex method (ablation baseline).

use crate::{OptResult, Optimizer, Tracker};

/// Standard Nelder–Mead with adaptive-free classic coefficients
/// (reflection 1, expansion 2, contraction ½, shrink ½).
#[derive(Clone, Copy, Debug)]
pub struct NelderMead {
    /// Initial simplex edge length.
    pub initial_step: f64,
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Stop when the simplex value spread drops below this.
    pub f_tolerance: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        Self {
            initial_step: 0.5,
            max_evals: 200,
            f_tolerance: 1e-10,
        }
    }
}

impl NelderMead {
    /// Nelder–Mead with the given evaluation budget.
    pub fn with_budget(max_evals: usize) -> Self {
        Self {
            max_evals,
            ..Default::default()
        }
    }
}

fn centroid(simplex: &[Vec<f64>], exclude: usize) -> Vec<f64> {
    let n = simplex[0].len();
    let m = (simplex.len() - 1) as f64;
    let mut c = vec![0.0; n];
    for (i, v) in simplex.iter().enumerate() {
        if i == exclude {
            continue;
        }
        for k in 0..n {
            c[k] += v[k] / m;
        }
    }
    c
}

fn blend(a: &[f64], b: &[f64], t: f64) -> Vec<f64> {
    // a + t·(a − b)
    a.iter().zip(b).map(|(x, y)| x + t * (x - y)).collect()
}

impl Optimizer for NelderMead {
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptResult {
        let n = x0.len();
        assert!(n > 0, "empty parameter vector");
        let mut tracker = Tracker::new(f, n);

        let mut simplex: Vec<Vec<f64>> = vec![x0.to_vec()];
        let mut values = vec![tracker.eval(x0)];
        for i in 0..n {
            if tracker.evals >= self.max_evals {
                break;
            }
            let mut xi = x0.to_vec();
            xi[i] += self.initial_step;
            values.push(tracker.eval(&xi));
            simplex.push(xi);
        }

        while tracker.evals < self.max_evals && simplex.len() == n + 1 {
            // Order: find best, worst, second worst.
            let mut order: Vec<usize> = (0..values.len()).collect();
            order.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).unwrap());
            let (best, worst) = (order[0], order[n]);
            let second_worst = order[n - 1];
            if (values[worst] - values[best]).abs() < self.f_tolerance {
                break;
            }
            let c = centroid(&simplex, worst);

            // Reflection.
            let xr = blend(&c, &simplex[worst], 1.0);
            let fr = tracker.eval(&xr);
            if fr < values[best] {
                // Expansion.
                if tracker.evals >= self.max_evals {
                    simplex[worst] = xr;
                    values[worst] = fr;
                    break;
                }
                let xe = blend(&c, &simplex[worst], 2.0);
                let fe = tracker.eval(&xe);
                if fe < fr {
                    simplex[worst] = xe;
                    values[worst] = fe;
                } else {
                    simplex[worst] = xr;
                    values[worst] = fr;
                }
            } else if fr < values[second_worst] {
                simplex[worst] = xr;
                values[worst] = fr;
            } else {
                // Contraction (outside if reflected better than worst).
                if tracker.evals >= self.max_evals {
                    break;
                }
                let toward = if fr < values[worst] {
                    &xr
                } else {
                    &simplex[worst]
                };
                let xc: Vec<f64> = c.iter().zip(toward).map(|(a, b)| 0.5 * (a + b)).collect();
                let fc = tracker.eval(&xc);
                if fc < values[worst].min(fr) {
                    simplex[worst] = xc;
                    values[worst] = fc;
                } else {
                    // Shrink toward the best vertex.
                    let best_point = simplex[best].clone();
                    for i in 0..simplex.len() {
                        if i == best {
                            continue;
                        }
                        if tracker.evals >= self.max_evals {
                            break;
                        }
                        simplex[i] = simplex[i]
                            .iter()
                            .zip(&best_point)
                            .map(|(a, b)| 0.5 * (a + b))
                            .collect();
                        values[i] = tracker.eval(&simplex[i]);
                    }
                }
            }
        }
        tracker.finish()
    }

    fn name(&self) -> &'static str {
        "Nelder-Mead"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_functions::{rosenbrock, shifted_sphere};

    #[test]
    fn solves_quadratic() {
        let opt = NelderMead {
            max_evals: 600,
            ..Default::default()
        };
        let r = opt.minimize(&mut |x| shifted_sphere(x), &[0.0, 0.0]);
        assert!(r.fx < 1e-6, "fx = {}", r.fx);
    }

    #[test]
    fn reaches_rosenbrock_minimum() {
        let opt = NelderMead {
            max_evals: 2000,
            f_tolerance: 1e-14,
            ..Default::default()
        };
        let r = opt.minimize(&mut |x| rosenbrock(x), &[-1.2, 1.0]);
        assert!(r.fx < 1e-4, "fx = {}", r.fx);
        assert!((r.x[0] - 1.0).abs() < 0.05);
        assert!((r.x[1] - 1.0).abs() < 0.05);
    }

    #[test]
    fn respects_budget() {
        let opt = NelderMead::with_budget(25);
        let mut calls = 0;
        let r = opt.minimize(
            &mut |x| {
                calls += 1;
                shifted_sphere(x)
            },
            &[3.0; 4],
        );
        assert!(calls <= 25);
        assert_eq!(r.evals, calls);
    }

    #[test]
    fn deterministic() {
        let opt = NelderMead::with_budget(300);
        let a = opt.minimize(&mut |x| rosenbrock(x), &[0.0, 0.0]);
        let b = opt.minimize(&mut |x| rosenbrock(x), &[0.0, 0.0]);
        assert_eq!(a.x, b.x);
    }
}
