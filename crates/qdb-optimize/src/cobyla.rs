//! COBYLA-style linear-approximation trust-region optimizer.
//!
//! Powell's COBYLA maintains a non-degenerate simplex of `n+1` points,
//! interpolates a linear model of the objective through them, and steps
//! the trust-region radius ρ against the model gradient, shrinking ρ when
//! progress stalls. This implementation covers the unconstrained case used
//! by VQE (the paper's Hamiltonian has no side constraints — all four
//! terms live inside the objective) and reproduces COBYLA's characteristic
//! ρ_beg → ρ_end staircase behaviour.

use crate::linalg::{axpy, norm, solve};
use crate::{OptResult, Optimizer, Tracker};

/// Configuration for [`Cobyla`].
#[derive(Clone, Copy, Debug)]
pub struct Cobyla {
    /// Initial trust-region radius ρ_beg.
    pub rho_begin: f64,
    /// Final radius ρ_end; the run stops once ρ shrinks below it.
    pub rho_end: f64,
    /// Maximum objective evaluations (the paper runs >200 VQE iterations;
    /// each iteration is one evaluation here).
    pub max_evals: usize,
}

impl Default for Cobyla {
    fn default() -> Self {
        Self {
            rho_begin: 0.5,
            rho_end: 1e-4,
            max_evals: 200,
        }
    }
}

impl Cobyla {
    /// COBYLA with the paper's default evaluation budget.
    pub fn with_budget(max_evals: usize) -> Self {
        Self {
            max_evals,
            ..Default::default()
        }
    }
}

impl Optimizer for Cobyla {
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptResult {
        let n = x0.len();
        assert!(n > 0, "empty parameter vector");
        let mut tracker = Tracker::new(f, n);
        let mut rho = self.rho_begin;

        // Initial simplex: x0 plus rho steps along each axis.
        let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        let mut values: Vec<f64> = Vec::with_capacity(n + 1);
        simplex.push(x0.to_vec());
        values.push(tracker.eval(x0));
        for i in 0..n {
            if tracker.evals >= self.max_evals {
                break;
            }
            let mut xi = x0.to_vec();
            xi[i] += rho;
            values.push(tracker.eval(&xi));
            simplex.push(xi);
        }

        'outer: while rho > self.rho_end && tracker.evals < self.max_evals {
            if simplex.len() < n + 1 {
                break;
            }
            // Identify best vertex.
            let best = (0..values.len())
                .min_by(|&i, &j| values[i].partial_cmp(&values[j]).unwrap())
                .unwrap();
            // Linear model through the simplex: g solves
            // (x_i - x_best)·g = f_i - f_best for the n non-best vertices.
            let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
            let mut rhs: Vec<f64> = Vec::with_capacity(n);
            for i in 0..simplex.len() {
                if i == best {
                    continue;
                }
                rows.push(
                    simplex[i]
                        .iter()
                        .zip(&simplex[best])
                        .map(|(a, b)| a - b)
                        .collect(),
                );
                rhs.push(values[i] - values[best]);
            }
            let gradient = match solve(&mut rows, &mut rhs) {
                Some(g) if norm(&g) > 1e-14 => g,
                _ => {
                    // Degenerate simplex: rebuild around the best vertex at
                    // the current radius.
                    let center = simplex[best].clone();
                    let fc = values[best];
                    simplex.clear();
                    values.clear();
                    simplex.push(center.clone());
                    values.push(fc);
                    for i in 0..n {
                        if tracker.evals >= self.max_evals {
                            break 'outer;
                        }
                        let mut xi = center.clone();
                        xi[i] += rho;
                        values.push(tracker.eval(&xi));
                        simplex.push(xi);
                    }
                    continue;
                }
            };

            // Trust-region step against the model gradient.
            let g_norm = norm(&gradient);
            let step: Vec<f64> = gradient.iter().map(|g| -rho * g / g_norm).collect();
            let candidate = axpy(&simplex[best], 1.0, &step);
            if tracker.evals >= self.max_evals {
                break;
            }
            let fc = tracker.eval(&candidate);

            // Replace the worst vertex if we improved on it.
            let worst = (0..values.len())
                .max_by(|&i, &j| values[i].partial_cmp(&values[j]).unwrap())
                .unwrap();
            if fc < values[worst] {
                simplex[worst] = candidate;
                values[worst] = fc;
            }
            if fc < values[best] {
                // Successful step: cautiously re-expand the radius so the
                // optimizer can track long curved valleys.
                rho = (rho * 1.3).min(self.rho_begin);
            } else {
                // Shrink when the candidate fails to beat the best vertex.
                rho *= 0.5;
            }
        }
        tracker.finish()
    }

    fn name(&self) -> &'static str {
        "COBYLA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_functions::{rosenbrock, shifted_sphere};

    #[test]
    fn solves_quadratic() {
        let opt = Cobyla {
            rho_begin: 0.5,
            rho_end: 1e-7,
            max_evals: 500,
        };
        let r = opt.minimize(&mut |x| shifted_sphere(x), &[0.0, 0.0, 0.0]);
        assert!(r.fx < 1e-3, "fx = {}", r.fx);
        assert!((r.x[0] - 1.0).abs() < 0.05);
        assert!((r.x[1] + 2.0).abs() < 0.05);
        assert!((r.x[2] - 3.0).abs() < 0.05);
    }

    #[test]
    fn makes_progress_on_rosenbrock() {
        let opt = Cobyla {
            rho_begin: 0.25,
            rho_end: 1e-8,
            max_evals: 2000,
        };
        let start = [-1.2, 1.0];
        let r = opt.minimize(&mut |x| rosenbrock(x), &start);
        assert!(
            r.fx < rosenbrock(&start) * 0.05,
            "should descend the valley, fx = {}",
            r.fx
        );
    }

    #[test]
    fn history_is_monotone_best_so_far() {
        let opt = Cobyla::with_budget(120);
        let r = opt.minimize(&mut |x| shifted_sphere(x), &[5.0, 5.0]);
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-15);
        }
        assert_eq!(r.history.len(), r.evals);
        assert!(r.evals <= 120);
    }

    #[test]
    fn respects_budget_exactly_under_pressure() {
        let opt = Cobyla::with_budget(10);
        let mut calls = 0usize;
        let _ = opt.minimize(
            &mut |x| {
                calls += 1;
                shifted_sphere(x)
            },
            &[0.0; 6],
        );
        assert!(calls <= 10, "called {calls} times");
    }

    #[test]
    fn deterministic() {
        let opt = Cobyla::with_budget(100);
        let a = opt.minimize(&mut |x| rosenbrock(x), &[0.5, 0.5]);
        let b = opt.minimize(&mut |x| rosenbrock(x), &[0.5, 0.5]);
        assert_eq!(a.x, b.x);
        assert_eq!(a.fx, b.fx);
    }

    #[test]
    fn single_parameter_problem() {
        let opt = Cobyla {
            rho_begin: 0.5,
            rho_end: 1e-8,
            max_evals: 200,
        };
        let r = opt.minimize(&mut |x| (x[0] - 2.5).powi(2), &[0.0]);
        assert!((r.x[0] - 2.5).abs() < 1e-2, "x = {}", r.x[0]);
    }
}
