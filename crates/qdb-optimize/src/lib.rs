//! # qdb-optimize
//!
//! Gradient-free classical optimizers for the hybrid VQE loop (§4.3.2):
//! a COBYLA-style linear-approximation trust-region method (the paper's
//! optimizer), Nelder–Mead, and SPSA for ablations. All optimizers are
//! deterministic given their inputs (SPSA takes an explicit seed).

pub mod cobyla;
pub mod linalg;
pub mod neldermead;
pub mod spsa;

pub use cobyla::Cobyla;
pub use neldermead::NelderMead;
pub use spsa::Spsa;

/// Result of a minimization run.
#[derive(Clone, Debug)]
pub struct OptResult {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Total objective evaluations used.
    pub evals: usize,
    /// Best-so-far objective value after each evaluation (monotone
    /// non-increasing); drives the paper's energy-range statistics.
    pub history: Vec<f64>,
}

impl OptResult {
    /// Minimum observed objective value.
    pub fn lowest(&self) -> f64 {
        self.fx
    }

    /// The first best-so-far entry — the optimizer's starting energy.
    pub fn initial(&self) -> f64 {
        self.history.first().copied().unwrap_or(self.fx)
    }
}

/// A common interface over the optimizers.
pub trait Optimizer {
    /// Minimizes `f` starting from `x0` within the evaluation budget
    /// configured on the optimizer.
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptResult;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Tracks best-so-far while delegating to the raw objective.
pub(crate) struct Tracker<'a> {
    f: &'a mut dyn FnMut(&[f64]) -> f64,
    pub evals: usize,
    pub best_x: Vec<f64>,
    pub best_fx: f64,
    pub history: Vec<f64>,
}

impl<'a> Tracker<'a> {
    pub fn new(f: &'a mut dyn FnMut(&[f64]) -> f64, dim: usize) -> Self {
        Self {
            f,
            evals: 0,
            best_x: vec![0.0; dim],
            best_fx: f64::INFINITY,
            history: Vec::new(),
        }
    }

    pub fn eval(&mut self, x: &[f64]) -> f64 {
        let v = (self.f)(x);
        self.evals += 1;
        if v < self.best_fx {
            self.best_fx = v;
            self.best_x.clear();
            self.best_x.extend_from_slice(x);
        }
        self.history.push(self.best_fx);
        v
    }

    pub fn finish(self) -> OptResult {
        OptResult {
            x: self.best_x,
            fx: self.best_fx,
            evals: self.evals,
            history: self.history,
        }
    }
}

#[cfg(test)]
pub(crate) mod test_functions {
    /// Convex quadratic with minimum at (1, -2, 3, …).
    pub fn shifted_sphere(x: &[f64]) -> f64 {
        x.iter()
            .enumerate()
            .map(|(i, &v)| {
                let target = (i as f64 + 1.0) * if i % 2 == 0 { 1.0 } else { -1.0 };
                (v - target).powi(2)
            })
            .sum()
    }

    /// The classic banana valley, minimum 0 at (1, 1).
    pub fn rosenbrock(x: &[f64]) -> f64 {
        100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2)
    }
}
