//! Tiny dense linear algebra: just enough for COBYLA's linear models.

/// Solves `A·x = b` in place via Gaussian elimination with partial
/// pivoting. Returns `None` when `A` is (numerically) singular.
///
/// `a` is row-major `n×n`; `b` has length `n`.
pub fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix/vector size mismatch");
    for row in a.iter() {
        assert_eq!(row.len(), n, "matrix must be square");
    }
    for col in 0..n {
        // Pivot
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Euclidean norm.
pub fn norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// `a + s·b` elementwise.
pub fn axpy(a: &[f64], s: f64, b: &[f64]) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| x + s * y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut b = vec![3.0, -4.0];
        let x = solve(&mut a, &mut b).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_general_system() {
        // [2 1; 1 3] x = [5; 10] → x = [1; 3]
        let mut a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let mut b = vec![5.0, 10.0];
        let x = solve(&mut a, &mut b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading() {
        let mut a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let mut b = vec![2.0, 7.0];
        let x = solve(&mut a, &mut b).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_returns_none() {
        let mut a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut b = vec![1.0, 2.0];
        assert!(solve(&mut a, &mut b).is_none());
    }

    #[test]
    fn norm_and_axpy() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(axpy(&[1.0, 2.0], 2.0, &[0.5, -1.0]), vec![2.0, 0.0]);
    }
}
