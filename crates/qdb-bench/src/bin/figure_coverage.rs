//! Regenerates Figure 5: amino-acid interaction coverage across the 55
//! fragment sequences (paper: 395/400 ordered pair types).
//!
//! ```text
//! cargo run --release -p qdb-bench --bin figure_coverage
//! ```

use qdockbank::evaluation::interaction_coverage;
use qdockbank::fragments::all_fragments;
use qdockbank::report::render_coverage;

fn main() {
    let report = interaction_coverage(&all_fragments());
    print!("{}", render_coverage(&report));
}
