//! Regenerates the Figure 4 aggregate statistics: affinity and RMSD
//! distributions for QDock, AF2 and AF3, overall and per group.
//!
//! ```text
//! cargo run --release -p qdb-bench --bin figure_boxstats -- all
//! ```

use qdb_bench::{preset_from_env, run_comparisons, select_records};
use qdockbank::report::render_box_stats;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let records = select_records(&args, "all");
    let config = preset_from_env();
    let comparisons = run_comparisons(&records, &config);
    print!("{}", render_box_stats(&comparisons));
}
