//! Service-level latency/throughput report for a `qdb-serve` run.
//!
//! Reads the metrics snapshot the daemon writes on exit
//! (`serve --telemetry out.json`) and renders the service's robustness
//! ledger: admission accounting, queue-wait and execution latency
//! distributions, and sustained throughput — the numbers a capacity
//! plan or a perf regression hunt starts from.
//!
//! ```text
//! cargo run --release -p qdb-bench --bin serve_report -- out.json
//! ```
//!
//! Exits non-zero if the snapshot carries no service metrics at all
//! (wrong file) or the admission accounting identity is broken.

use qdb_telemetry::export::json::read_snapshot;
use qdb_telemetry::{HistogramSnapshot, Snapshot};
use std::path::PathBuf;
use std::process::ExitCode;

fn latency_line(name: &str, label: &str, h: &HistogramSnapshot) -> String {
    format!(
        "  {label:<22} n={:<6} p50={:<8} p90={:<8} p99={:<8} max={:<8} ({name})",
        h.count, h.p50, h.p90, h.p99, h.max
    )
}

fn report(snap: &Snapshot) -> Result<String, String> {
    let count = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let submitted = count("serve.submitted");
    if submitted == 0 && !snap.counters.keys().any(|k| k.starts_with("serve.")) {
        return Err("snapshot carries no serve.* metrics — not a service run".to_string());
    }
    let admitted = count("serve.admitted");
    let shed = count("serve.shed");
    let cache_hits = count("serve.cache_hits");
    let dedup_hits = count("serve.dedup_hits");
    let completed = count("serve.completed");
    let failed = count("serve.failed");
    let accounted = admitted + shed + cache_hits + dedup_hits;
    if accounted != submitted {
        return Err(format!(
            "admission accounting broken: admitted {admitted} + shed {shed} + cache_hits \
             {cache_hits} + dedup_hits {dedup_hits} = {accounted} != submitted {submitted}"
        ));
    }
    let mut out = String::new();
    out.push_str("qdb-serve service report\n");
    out.push_str("========================\n\n");
    out.push_str("admission\n");
    out.push_str(&format!(
        "  submitted {submitted}, admitted {admitted}, shed {shed}, cache hits {cache_hits}, \
         dedup hits {dedup_hits}\n"
    ));
    let served_free = cache_hits + dedup_hits;
    if submitted > 0 {
        out.push_str(&format!(
            "  shed rate {:.1}%, served-without-execution {:.1}%\n",
            100.0 * shed as f64 / submitted as f64,
            100.0 * served_free as f64 / submitted as f64,
        ));
    }
    out.push_str("\noutcomes\n");
    out.push_str(&format!(
        "  completed {completed}, failed {failed}, expired {}, cancelled {}, resumed {}\n",
        count("serve.expired"),
        count("serve.cancelled"),
        count("serve.resumed"),
    ));
    out.push_str("\nlatency (ms except spans, which are ns)\n");
    for (name, label) in [
        ("serve.queue_wait_ms", "queue wait"),
        ("serve.job_ms", "job execution"),
        ("serve.submit", "submit span"),
        ("serve.job", "job span"),
    ] {
        if let Some(h) = snap.histograms.get(name) {
            out.push_str(&latency_line(name, label, h));
            out.push('\n');
        }
    }
    if let Some(job) = snap.histograms.get("serve.job_ms") {
        if job.sum > 0 {
            out.push_str(&format!(
                "\nthroughput\n  {:.2} jobs/s of busy worker time ({} jobs over {} ms busy)\n",
                1_000.0 * job.count as f64 / job.sum as f64,
                job.count,
                job.sum
            ));
        }
    }
    let reliability: Vec<String> = [
        "serve.journal_recoveries",
        "serve.journal_errors",
        "serve.result_write_errors",
        "serve.drains",
        "serve.http_errors",
    ]
    .iter()
    .filter_map(|name| {
        let v = count(name);
        (v > 0).then(|| format!("  {name} {v}"))
    })
    .collect();
    if !reliability.is_empty() {
        out.push_str("\nreliability events\n");
        out.push_str(&reliability.join("\n"));
        out.push('\n');
    }
    Ok(out)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next().map(PathBuf::from) else {
        eprintln!("usage: serve_report <snapshot.json>");
        return ExitCode::FAILURE;
    };
    let snap = match read_snapshot(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("FAIL: snapshot unreadable: {e}");
            return ExitCode::FAILURE;
        }
    };
    match report(&snap) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(count: u64, sum: u64) -> HistogramSnapshot {
        HistogramSnapshot {
            count,
            sum,
            min: 1,
            max: 10,
            p50: 2,
            p90: 5,
            p99: 9,
            buckets: vec![(16, count)],
        }
    }

    fn serve_snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("serve.submitted".to_string(), 10);
        snap.counters.insert("serve.admitted".to_string(), 6);
        snap.counters.insert("serve.shed".to_string(), 2);
        snap.counters.insert("serve.cache_hits".to_string(), 1);
        snap.counters.insert("serve.dedup_hits".to_string(), 1);
        snap.counters.insert("serve.completed".to_string(), 6);
        snap.histograms
            .insert("serve.job_ms".to_string(), hist(6, 600));
        snap.histograms
            .insert("serve.queue_wait_ms".to_string(), hist(6, 60));
        snap
    }

    #[test]
    fn balanced_snapshot_reports_cleanly() {
        let text = report(&serve_snapshot()).unwrap();
        assert!(text.contains("submitted 10, admitted 6, shed 2"));
        assert!(text.contains("shed rate 20.0%"));
        assert!(text.contains("10.00 jobs/s"));
    }

    #[test]
    fn broken_accounting_fails() {
        let mut snap = serve_snapshot();
        snap.counters.insert("serve.shed".to_string(), 3);
        let err = report(&snap).unwrap_err();
        assert!(err.contains("accounting broken"), "{err}");
    }

    #[test]
    fn non_service_snapshot_fails() {
        let mut snap = Snapshot::default();
        snap.counters.insert("vqe.runs".to_string(), 5);
        assert!(report(&snap).is_err());
    }
}
