//! Regenerates the §7.2 case study: structural accuracy on 2qbs
//! (paper: QDock 2.428 Å vs AF3 4.234 Å Cα RMSD).
//!
//! ```text
//! cargo run --release -p qdb-bench --bin case_2qbs
//! ```

use qdb_bench::preset_from_env;
use qdockbank::evaluation::{per_residue_deviation, FragmentComparison};
use qdockbank::fragments::fragment;

fn main() {
    let record = fragment("2qbs").expect("2qbs is in the manifest");
    let config = preset_from_env();
    eprintln!("predicting 2qbs ({})…", record.sequence);
    let c = FragmentComparison::run(record, &config).expect("fault-free run");
    println!("RMSD-based structural comparison for PDB entry 2qbs");
    println!("  paper   : QDock 2.428 Å   AF3 4.234 Å");
    println!(
        "  measured: QDock {:.3} Å   AF3 {:.3} Å   (AF2 {:.3} Å)",
        c.qdock.qdock.ca_rmsd, c.af3.ca_rmsd, c.af2.ca_rmsd
    );
    let ratio = c.af3.ca_rmsd / c.qdock.qdock.ca_rmsd;
    println!("  AF3/QDock RMSD ratio: measured {ratio:.2}× (paper ≈ 1.74×)");

    // Figure 7's per-residue coloring: green = close alignment (< 2 Å),
    // red = structural deviation.
    let classify = |d: &f64| if *d < 2.0 { 'G' } else { 'R' };
    let qdev = per_residue_deviation(&c.qdock.qdock.trace, &c.qdock.reference.trace);
    let adev = per_residue_deviation(&c.af3.trace, &c.qdock.reference.trace);
    println!(
        "\n  per-residue deviation (G = <2 Å, R = ≥2 Å), residues {}..{}:",
        record.residue_start, record.residue_end
    );
    let qcolors: String = qdev.iter().map(&classify).collect();
    let acolors: String = adev.iter().map(&classify).collect();
    println!("    QDock: {qcolors}");
    println!("    AF3  : {acolors}");
}
