//! Regenerates Table 1 (L), Table 2 (M) or Table 3 (S): per-fragment
//! quantum metrics, paper-reported vs measured.
//!
//! ```text
//! cargo run --release -p qdb-bench --bin table_groups -- S
//! ```

use qdb_bench::{group_rows, preset_from_env, run_comparisons, select_records};
use qdockbank::fragments::Group;
use qdockbank::report::render_group_table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let records = select_records(&args, "S");
    let config = preset_from_env();
    let comparisons = run_comparisons(&records, &config);
    for group in [Group::L, Group::M, Group::S] {
        let rows = group_rows(&comparisons, group);
        if !rows.is_empty() {
            print!("{}", render_group_table(group, &rows));
            println!();
        }
    }
}
