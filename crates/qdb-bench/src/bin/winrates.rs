//! Regenerates the §6.2 headline statistics: QDock win rates against AF2
//! and AF3 on affinity and RMSD, overall and per group.
//!
//! Paper reference: vs AF2 — affinity 53/55 (96.4%), RMSD 51/55 (92.7%);
//! vs AF3 — affinity 50/55 (90.9%), RMSD 44/55 (80.0%).
//!
//! ```text
//! cargo run --release -p qdb-bench --bin winrates -- all
//! ```

use qdb_baselines::alphafold::AfModel;
use qdb_bench::{preset_from_env, run_comparisons, select_records};
use qdockbank::evaluation::win_rates;
use qdockbank::report::render_win_rates;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let records = select_records(&args, "all");
    let config = preset_from_env();
    let comparisons = run_comparisons(&records, &config);
    print!(
        "{}",
        render_win_rates(&win_rates(&comparisons, AfModel::Af2))
    );
    print!(
        "{}",
        render_win_rates(&win_rates(&comparisons, AfModel::Af3))
    );
}
