//! Fleet report over a sharded build root: merges every worker's
//! flight-recorder dump under `telemetry/` into one Perfetto-loadable
//! `fleet_trace.json`, validates the merged trace structurally, checks
//! the merged telemetry identities (fleet counters ≡ the sum of every
//! worker's flushed deltas; the stored `fleet_telemetry.json` ≡ the
//! journal merge), and prints per-worker occupancy, shard skew with the
//! straggler named, and the cross-worker critical path.
//!
//! ```text
//! cargo run --release -p qdb-bench --bin fleet_report -- <root> [--out trace.json]
//! ```
//!
//! Exit codes: 0 = report printed and every gate held; 1 = a gate
//! failed (unreadable/invalid traces, identity violation); 2 = usage.

use qdb_bench::fleet::{
    analyze_fleet, check_fleet_invariants, collect_worker_traces, render_fleet_report,
    FLEET_TRACE_FILE,
};
use qdb_bench::trace::validate_trace;
use qdb_store::StdVfs;
use qdb_telemetry::export::chrome::{merge_chrome_traces, write_chrome_trace_file};
use qdb_telemetry::FleetSnapshot;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--out needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            other if root.is_none() => root = Some(PathBuf::from(other)),
            other => {
                eprintln!("unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let Some(root) = root else {
        eprintln!("usage: fleet_report <build-root> [--out trace.json]");
        return ExitCode::from(2);
    };
    let mut problems: Vec<String> = Vec::new();

    // 1. Merge every worker's trace into one fleet file.
    let parts = match collect_worker_traces(&root) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("FAIL: {e}");
            return ExitCode::FAILURE;
        }
    };
    if parts.is_empty() {
        eprintln!(
            "FAIL: no worker traces under {}/telemetry (run workers with a flight recorder)",
            root.display()
        );
        return ExitCode::FAILURE;
    }
    let merged = match merge_chrome_traces(&parts) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("FAIL: trace merge: {e}");
            return ExitCode::FAILURE;
        }
    };
    for p in validate_trace(&merged) {
        problems.push(format!("merged trace: {p}"));
    }
    let out_path = out_path.unwrap_or_else(|| root.join(FLEET_TRACE_FILE));
    if let Err(e) = write_chrome_trace_file(&out_path, &merged) {
        problems.push(format!("cannot write {}: {e}", out_path.display()));
    }

    // 2. Telemetry identities over the durable journals.
    let fleet = match qdb_store::merge_worker_deltas(&StdVfs, &root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("FAIL: worker telemetry journals unreadable: {e}");
            return ExitCode::FAILURE;
        }
    };
    if fleet.workers.is_empty() {
        problems.push("no worker telemetry journals under telemetry/".to_string());
    }
    for p in fleet.identity_problems() {
        problems.push(format!("telemetry identity: {p}"));
    }
    let stored_path = qdb_store::fleet_telemetry_path(&root);
    if stored_path.exists() {
        match qdb_store::read_fleet_snapshot(&StdVfs, &root) {
            Ok(stored) => {
                if stored != fleet {
                    problems.push(
                        "fleet_telemetry.json does not equal the merge of the worker journals"
                            .to_string(),
                    );
                }
            }
            Err(e) => problems.push(format!("fleet_telemetry.json unreadable: {e}")),
        }
    }

    // 3. The fleet analysis proper.
    let ids: Vec<String> = parts.iter().map(|(id, _)| id.clone()).collect();
    let report = match analyze_fleet(&merged, &ids) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: fleet analysis: {e}");
            return ExitCode::FAILURE;
        }
    };
    if report.dropped == 0 {
        problems.extend(check_fleet_invariants(&report));
    }

    print!("{}", render_fleet_report(&report));
    println!(
        "\ntelemetry: {} worker(s), {} flush(es), {} fleet counter(s)",
        fleet.workers.len(),
        fleet.total_flushes(),
        fleet.counters.len()
    );
    summarize_fleet_counters(&fleet);
    println!("merged trace → {}", out_path.display());

    if problems.is_empty() {
        println!(
            "OK: merged trace valid, telemetry identities hold across {} worker(s)",
            fleet.workers.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: {} problem(s):", problems.len());
        for p in &problems {
            eprintln!("  - {p}");
        }
        ExitCode::FAILURE
    }
}

/// Prints the headline counters with their per-worker decomposition —
/// the "counters sum exactly" surface, human-readable.
fn summarize_fleet_counters(fleet: &FleetSnapshot) {
    for key in [
        "supervisor.shard.fragments",
        "supervisor.shard.done",
        "supervisor.shard.lost",
        "store.writes",
    ] {
        let Some(total) = fleet.counters.get(key) else {
            continue;
        };
        let breakdown: Vec<String> = fleet
            .workers
            .iter()
            .filter_map(|(id, totals)| totals.counters.get(key).map(|v| format!("{id} {v}")))
            .collect();
        println!("  {key} = {total} ({})", breakdown.join(" + "));
    }
}
