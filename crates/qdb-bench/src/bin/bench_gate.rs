//! Perf-regression gate: reruns the engine benchmark sweep of
//! `perf_statevector` and compares the fresh medians (direct and
//! compiled, per qubit count) against the committed
//! `BENCH_statevector.json`. Any median more than the tolerance (default
//! +25%) above its baseline fails the gate with exit code 1 — CI runs
//! this so an accidental slowdown of the VQE hot loop can't land silently.
//!
//! ```text
//! cargo run --release -p qdb-bench --bin bench_gate
//! cargo run --release -p qdb-bench --bin bench_gate -- --tolerance 0.40
//! # refresh the baseline after an intentional perf change:
//! cargo run --release -p qdb-bench --bin bench_gate -- --update
//! ```

use qdb_bench::perf::{gate_checks, read_report, run_engine_bench, write_report};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = PathBuf::from("BENCH_statevector.json");
    let mut tolerance = 0.25;
    let mut update = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                i += 1;
                let path = args.get(i).unwrap_or_else(|| {
                    eprintln!("--baseline needs a path");
                    std::process::exit(1);
                });
                baseline_path = PathBuf::from(path);
            }
            "--tolerance" => {
                i += 1;
                tolerance = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--tolerance needs a fraction (e.g. 0.25)");
                    std::process::exit(1);
                });
            }
            "--update" => update = true,
            other => {
                eprintln!("unknown argument {other:?} (use --baseline, --tolerance, --update)");
                std::process::exit(1);
            }
        }
        i += 1;
    }

    eprintln!(
        "bench_gate: fresh engine sweep vs {} (tolerance +{:.0}%)",
        baseline_path.display(),
        tolerance * 100.0
    );
    let fresh = run_engine_bench();
    if update {
        write_report(&baseline_path, &fresh).expect("write baseline");
        println!("baseline refreshed at {}", baseline_path.display());
        return;
    }

    let baseline = match read_report(&baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_gate: cannot read baseline: {e}");
            std::process::exit(1);
        }
    };
    let checks = match gate_checks(&baseline, &fresh) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "{:>7} {:>9} {:>15} {:>15} {:>8}  verdict",
        "qubits", "engine", "baseline(ns)", "fresh(ns)", "ratio"
    );
    let mut regressions = 0;
    for check in &checks {
        let regressed = check.regressed(tolerance);
        if regressed {
            regressions += 1;
        }
        println!(
            "{:>7} {:>9} {:>15} {:>15} {:>7.2}x  {}",
            check.qubits,
            check.engine,
            check.baseline_ns,
            check.fresh_ns,
            check.ratio,
            if regressed { "REGRESSED" } else { "ok" }
        );
    }
    if regressions > 0 {
        eprintln!(
            "bench_gate: {regressions} median(s) regressed more than {:.0}% — \
             investigate, or rerun with --update after an intentional change",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!("bench_gate: all medians within +{:.0}%", tolerance * 100.0);
}
