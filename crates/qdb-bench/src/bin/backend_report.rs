//! Cross-backend docking agreement report.
//!
//! Docks a fragment panel with the Vina-style engine and the QUBO pose
//! generator *independently* over a shared seed schedule, then measures
//! how much the two backends agree: RMSD between their best poses, the
//! correlation of their per-seed best scores, and the QUBO win rate.
//! It also exercises the `auto` fallback ladder end-to-end and — under
//! `--chaos` — injects a QUBO fault to prove the Vina fallback engages
//! and is recorded in telemetry.
//!
//! ```text
//! cargo run --release -p qdb-bench --bin backend_report -- \
//!     --fragments 3ckz,3eax --runs 3 --chaos \
//!     --output backend_report.json --telemetry backend_telemetry.json
//! ```
//!
//! Exits non-zero when any gate fails:
//! - either backend fails to produce a finite-scored pose for a fragment,
//! - the `auto` ladder errors even though a rung could have succeeded,
//! - under `--chaos`, the injected QUBO fault does not fall back to Vina.

use qdb_baselines::reference::{generate_reference, pdb_id_seed};
use qdb_dock::backend::{DockBackend, DockContext, FaultInjectedBackend, VinaBackend};
use qdb_dock::cluster::rmsd_upper_bound;
use qdb_dock::dispatch::{DispatchPolicy, Dispatcher};
use qdb_dock::engine::{DockParams, DockRun};
use qdb_mol::geometry::Vec3;
use qdb_mol::ligand::Ligand;
use qdb_mol::structure::Structure;
use qdb_qubo::QuboDockBackend;
use qdb_telemetry::MonotonicClock;
use qdockbank::pipeline::ligand_for;
use qdockbank::{fragment, PipelineConfig};
use serde::Serialize;
use std::path::PathBuf;
use std::process::ExitCode;

/// Seed stride matching the dispatcher's replicate schedule.
const SEED_STRIDE: u64 = 0x1000_0000_0001;

/// Per-backend docking summary for one fragment.
#[derive(Debug, Serialize)]
struct BackendStats {
    backend: String,
    /// Best (lowest) affinity across all seeds.
    best_affinity: f64,
    /// Mean of the per-seed best affinities.
    mean_best_affinity: f64,
    /// Per-seed best affinities, in seed-schedule order.
    per_seed_best: Vec<f64>,
    /// Total poses returned across all seeds.
    poses: usize,
    /// True when every seed produced at least one finite-scored pose.
    all_runs_finite: bool,
}

/// Cross-backend agreement numbers for one fragment.
#[derive(Debug, Serialize)]
struct Agreement {
    /// RMSD (Å) between the two backends' overall best poses.
    best_pose_rmsd: f64,
    /// Pearson correlation of per-seed best affinities (NaN if degenerate).
    score_correlation: f64,
    /// Fraction of seeds where the QUBO best score beat (or tied) Vina's.
    qubo_win_rate: f64,
}

/// `auto` ladder outcome for one fragment.
#[derive(Debug, Serialize)]
struct AutoOutcome {
    ok: bool,
    backend: String,
    fallbacks: u64,
    best_affinity: f64,
}

/// Chaos drill outcome: QUBO rung rigged to fail its first call.
#[derive(Debug, Serialize)]
struct ChaosOutcome {
    ok: bool,
    /// Backend that actually served the run (must be "vina").
    served_by: String,
    fallbacks: u64,
}

#[derive(Debug, Serialize)]
struct FragmentReport {
    pdb_id: String,
    runs: usize,
    vina: BackendStats,
    qubo: BackendStats,
    agreement: Agreement,
    auto: AutoOutcome,
    chaos: Option<ChaosOutcome>,
    gates_passed: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    schema_version: u32,
    fragments: Vec<FragmentReport>,
    all_gates_passed: bool,
}

/// Docks `runs` replicates with one backend over the shared seed
/// schedule, collecting per-seed runs. Returns `None` per slot when the
/// backend errored for that seed.
fn dock_series(
    backend: &dyn DockBackend,
    receptor: &Structure,
    ligand: &Ligand,
    params: &DockParams,
    base_seed: u64,
    runs: usize,
) -> Vec<Option<DockRun>> {
    let clock = MonotonicClock::new();
    (0..runs)
        .map(|i| {
            let seed = base_seed.wrapping_add(i as u64 * SEED_STRIDE);
            let ctx = DockContext::unbounded(&clock);
            backend.dock(receptor, ligand, params, seed, &ctx).ok()
        })
        .collect()
}

/// Best finite pose (lowest affinity) across a series of runs.
fn best_pose(series: &[Option<DockRun>]) -> Option<(f64, Vec<Vec3>)> {
    series
        .iter()
        .flatten()
        .flat_map(|run| run.poses.iter())
        .filter(|p| p.affinity.is_finite())
        .map(|p| (p.affinity, p.coords.clone()))
        .min_by(|a, b| a.0.total_cmp(&b.0))
}

fn backend_stats(name: &str, series: &[Option<DockRun>]) -> BackendStats {
    let per_seed_best: Vec<f64> = series
        .iter()
        .map(|run| run.as_ref().map(|r| r.best_affinity()).unwrap_or(f64::NAN))
        .collect();
    let finite: Vec<f64> = per_seed_best
        .iter()
        .copied()
        .filter(|a| a.is_finite())
        .collect();
    let poses = series.iter().flatten().map(|r| r.poses.len()).sum();
    BackendStats {
        backend: name.to_string(),
        best_affinity: finite.iter().copied().fold(f64::INFINITY, f64::min),
        mean_best_affinity: if finite.is_empty() {
            f64::NAN
        } else {
            finite.iter().sum::<f64>() / finite.len() as f64
        },
        all_runs_finite: finite.len() == series.len() && !series.is_empty(),
        per_seed_best,
        poses,
    }
}

/// Pearson correlation over pairs where both values are finite.
fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let pairs: Vec<(f64, f64)> = a
        .iter()
        .zip(b)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| (x, y))
        .collect();
    let n = pairs.len() as f64;
    if pairs.len() < 2 {
        return f64::NAN;
    }
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (x, y) in &pairs {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        f64::NAN
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

fn report_fragment(pdb_id: &str, runs: usize, chaos: bool) -> Result<FragmentReport, String> {
    let record = fragment(pdb_id).ok_or_else(|| format!("unknown fragment {pdb_id:?}"))?;
    let reference = generate_reference(record.pdb_id, &record.sequence(), record.residue_start);
    let ligand = ligand_for(record, &reference);
    // Site-focused docking, mirroring the pipeline's evaluation protocol.
    let mut params = PipelineConfig::fast().dock_params();
    params.center = ligand.centroid();
    params.box_size = Vec3::new(16.0, 16.0, 16.0);
    params.local_only = true;
    let receptor = &reference.structure;
    let base_seed = pdb_id_seed(record.pdb_id) ^ 0x0D0C;

    let vina = VinaBackend;
    let qubo = QuboDockBackend::default();
    let vina_series = dock_series(&vina, receptor, &ligand, &params, base_seed, runs);
    let qubo_series = dock_series(&qubo, receptor, &ligand, &params, base_seed, runs);
    let vina_stats = backend_stats("vina", &vina_series);
    let qubo_stats = backend_stats("qubo", &qubo_series);

    let agreement = match (best_pose(&vina_series), best_pose(&qubo_series)) {
        (Some((_, vp)), Some((_, qp))) if vp.len() == qp.len() => {
            let wins = vina_stats
                .per_seed_best
                .iter()
                .zip(&qubo_stats.per_seed_best)
                .filter(|(v, q)| v.is_finite() && q.is_finite())
                .map(|(v, q)| u32::from(q <= v))
                .sum::<u32>();
            let paired = vina_stats
                .per_seed_best
                .iter()
                .zip(&qubo_stats.per_seed_best)
                .filter(|(v, q)| v.is_finite() && q.is_finite())
                .count();
            Agreement {
                best_pose_rmsd: rmsd_upper_bound(&vp, &qp),
                score_correlation: pearson(&vina_stats.per_seed_best, &qubo_stats.per_seed_best),
                qubo_win_rate: if paired == 0 {
                    f64::NAN
                } else {
                    wins as f64 / paired as f64
                },
            }
        }
        _ => Agreement {
            best_pose_rmsd: f64::NAN,
            score_correlation: f64::NAN,
            qubo_win_rate: f64::NAN,
        },
    };

    // The auto ladder must never error while a rung can succeed.
    let clock = MonotonicClock::new();
    let policy = DispatchPolicy {
        per_backend_deadline_ms: None,
    };
    let ladder: Vec<&dyn DockBackend> = vec![&qubo, &vina];
    let auto = match Dispatcher::new(ladder, &clock, policy)
        .replicates(receptor, &ligand, &params, base_seed, runs)
    {
        Ok(d) => AutoOutcome {
            ok: true,
            backend: d.backend,
            fallbacks: d.fallbacks,
            best_affinity: d.outcome.best_affinity(),
        },
        Err(e) => {
            eprintln!("  {pdb_id}: auto ladder failed: {e}");
            AutoOutcome {
                ok: false,
                backend: String::new(),
                fallbacks: 0,
                best_affinity: f64::NAN,
            }
        }
    };

    // Chaos drill: first QUBO call fails, the ladder must recover on Vina.
    let chaos_outcome = chaos.then(|| {
        let flaky = FaultInjectedBackend::new(QuboDockBackend::default(), 1, true);
        let ladder: Vec<&dyn DockBackend> = vec![&flaky, &vina];
        match Dispatcher::new(ladder, &clock, policy).dock(receptor, &ligand, &params, base_seed) {
            Ok(r) => ChaosOutcome {
                ok: r.backend == "vina" && r.fallbacks >= 1,
                served_by: r.backend.to_string(),
                fallbacks: r.fallbacks,
            },
            Err(e) => {
                eprintln!("  {pdb_id}: chaos dispatch failed outright: {e}");
                ChaosOutcome {
                    ok: false,
                    served_by: String::new(),
                    fallbacks: 0,
                }
            }
        }
    });

    let gates_passed = vina_stats.all_runs_finite
        && qubo_stats.all_runs_finite
        && auto.ok
        && chaos_outcome.as_ref().map(|c| c.ok).unwrap_or(true);
    Ok(FragmentReport {
        pdb_id: record.pdb_id.to_string(),
        runs,
        vina: vina_stats,
        qubo: qubo_stats,
        agreement,
        auto,
        chaos: chaos_outcome,
        gates_passed,
    })
}

fn render(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("cross-backend docking agreement\n");
    out.push_str("===============================\n");
    for f in &report.fragments {
        out.push_str(&format!(
            "\n{} ({} runs/backend) — gates {}\n",
            f.pdb_id,
            f.runs,
            if f.gates_passed { "PASS" } else { "FAIL" }
        ));
        for s in [&f.vina, &f.qubo] {
            out.push_str(&format!(
                "  {:<5} best {:>8.3}  mean-best {:>8.3}  poses {:<4} finite-runs {}\n",
                s.backend,
                s.best_affinity,
                s.mean_best_affinity,
                s.poses,
                if s.all_runs_finite { "all" } else { "MISSING" }
            ));
        }
        out.push_str(&format!(
            "  agreement: best-pose rmsd {:.3} Å, score corr {:.3}, qubo win rate {:.2}\n",
            f.agreement.best_pose_rmsd, f.agreement.score_correlation, f.agreement.qubo_win_rate
        ));
        out.push_str(&format!(
            "  auto: backend {:?}, fallbacks {}, best {:.3}\n",
            f.auto.backend, f.auto.fallbacks, f.auto.best_affinity
        ));
        if let Some(c) = &f.chaos {
            out.push_str(&format!(
                "  chaos: served by {:?} after {} fallback(s) — {}\n",
                c.served_by,
                c.fallbacks,
                if c.ok { "recovered" } else { "NOT RECOVERED" }
            ));
        }
    }
    out.push_str(&format!(
        "\noverall: {}\n",
        if report.all_gates_passed {
            "all gates passed"
        } else {
            "GATE FAILURES"
        }
    ));
    out
}

struct Args {
    fragments: Vec<String>,
    runs: usize,
    chaos: bool,
    output: Option<PathBuf>,
    telemetry: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        fragments: vec!["3ckz".to_string(), "3eax".to_string()],
        runs: 3,
        chaos: false,
        output: None,
        telemetry: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--fragments" => {
                args.fragments = value("--fragments")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--runs" => {
                args.runs = value("--runs")?
                    .parse()
                    .map_err(|e| format!("--runs: {e}"))?;
            }
            "--chaos" => args.chaos = true,
            "--output" => args.output = Some(PathBuf::from(value("--output")?)),
            "--telemetry" => args.telemetry = Some(PathBuf::from(value("--telemetry")?)),
            other => {
                return Err(format!(
                    "unknown flag {other:?} (usage: backend_report [--fragments a,b] [--runs N] \
                     [--chaos] [--output path] [--telemetry path])"
                ))
            }
        }
    }
    if args.fragments.is_empty() {
        return Err("--fragments needs at least one id".to_string());
    }
    if args.runs == 0 {
        return Err("--runs must be at least 1".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("FAIL: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut fragments = Vec::new();
    for id in &args.fragments {
        match report_fragment(id, args.runs, args.chaos) {
            Ok(f) => fragments.push(f),
            Err(e) => {
                eprintln!("FAIL: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = Report {
        schema_version: 1,
        all_gates_passed: fragments.iter().all(|f| f.gates_passed),
        fragments,
    };
    print!("{}", render(&report));
    if let Some(path) = &args.output {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("FAIL: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("report written to {}", path.display());
    }
    if let Some(path) = &args.telemetry {
        let snap = qdb_telemetry::global().snapshot();
        if let Err(e) = qdb_telemetry::export::json::write_snapshot(path, &snap) {
            eprintln!("FAIL: cannot write telemetry {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("telemetry snapshot written to {}", path.display());
    }
    if report.all_gates_passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_dock::cluster::ScoredPose;

    fn run(affinities: &[f64]) -> DockRun {
        DockRun {
            seed: 0,
            poses: affinities
                .iter()
                .map(|&a| ScoredPose {
                    coords: vec![Vec3::new(a, 0.0, 0.0)],
                    affinity: a,
                    rmsd_lb: 0.0,
                    rmsd_ub: 0.0,
                })
                .collect(),
        }
    }

    #[test]
    fn backend_stats_flag_missing_runs() {
        let ok = backend_stats("vina", &[Some(run(&[-5.0, -4.0])), Some(run(&[-6.0]))]);
        assert!(ok.all_runs_finite);
        assert_eq!(ok.best_affinity, -6.0);
        assert_eq!(ok.poses, 3);
        let gap = backend_stats("qubo", &[Some(run(&[-5.0])), None]);
        assert!(!gap.all_runs_finite);
        assert_eq!(gap.per_seed_best.len(), 2);
        assert!(gap.per_seed_best[1].is_nan());
    }

    #[test]
    fn best_pose_ignores_nonfinite_scores() {
        let series = vec![Some(run(&[f64::NAN, -3.0])), Some(run(&[-7.0]))];
        let (affinity, coords) = best_pose(&series).unwrap();
        assert_eq!(affinity, -7.0);
        assert_eq!(coords[0].x, -7.0);
    }

    #[test]
    fn pearson_matches_hand_computation() {
        let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]);
        assert!((r - 1.0).abs() < 1e-12);
        let anti = pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]);
        assert!((anti + 1.0).abs() < 1e-12);
        assert!(pearson(&[1.0], &[2.0]).is_nan());
        assert!(pearson(&[1.0, 1.0, 1.0], &[2.0, 3.0, 4.0]).is_nan());
    }

    #[test]
    fn pearson_skips_nonfinite_pairs() {
        let r = pearson(&[1.0, f64::NAN, 3.0, 4.0], &[2.0, 9.0, 6.0, 8.0]);
        assert!((r - 1.0).abs() < 1e-12);
    }
}
