//! Regenerates the §4.2 dataset analysis: per-group qubit/depth/energy/
//! execution-time statistics of the 55-fragment manifest.
//!
//! ```text
//! cargo run --release -p qdb-bench --bin dataset_stats
//! ```

use qdockbank::evaluation::group_resource_stats;
use qdockbank::fragments::Group;

fn main() {
    println!("QDockBank §4.2 dataset statistics (from the Tables 1-3 manifest)");
    println!(
        "{:>5} {:>6} {:>11} {:>11} {:>11} {:>13} {:>13} {:>13}",
        "group",
        "count",
        "qubits",
        "mean-qubits",
        "mean-depth",
        "mean-E-range",
        "median-t(s)",
        "max-t(s)"
    );
    for group in [Group::L, Group::M, Group::S] {
        let s = group_resource_stats(group);
        println!(
            "{:>5} {:>6} {:>4}-{:<6} {:>11.1} {:>11.1} {:>13.1} {:>13.1} {:>13.1}",
            group.name(),
            s.count,
            s.qubits_min,
            s.qubits_max,
            s.qubits_mean,
            s.depth_mean,
            s.energy_range_mean,
            s.exec_time_median_s,
            s.exec_time_max_s,
        );
    }
    println!();
    print!("{}", qdockbank::report::render_protein_classes());
    println!("\npaper §4.2 reference: L qubits 92-102 (avg 98.2), S 12-46 (typical 23);");
    println!("depth averages S 127, M 262, L 396; L energy range avg 6883.6 (max 9200.3);");
    println!("M outlier 4y79 at 207,445 s; most S fragments between 4,000-20,000 s.");
}
