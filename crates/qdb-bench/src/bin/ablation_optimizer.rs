//! Ablation C: classical optimizer choice (COBYLA vs Nelder–Mead vs SPSA)
//! on the same VQE energy landscape with an identical evaluation budget.
//!
//! ```text
//! cargo run --release -p qdb-bench --bin ablation_optimizer
//! ```

use qdb_lattice::hamiltonian::FoldingHamiltonian;
use qdb_lattice::sequence::ProteinSequence;
use qdb_optimize::{Cobyla, NelderMead, Optimizer, Spsa};
use qdb_quantum::statevector::Statevector;
use qdb_vqe::runner::build_ansatz;

fn main() {
    let budget = 200usize;
    let fragments = ["VKDRS", "IQFHFH", "PWWERYQP", "AQITMGMPY"];
    println!("optimizer ablation: best VQE expectation after {budget} evaluations");
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "sequence", "COBYLA", "Nelder-Mead", "SPSA"
    );
    for s in fragments {
        let seq = ProteinSequence::parse(s).unwrap();
        let ham = FoldingHamiltonian::with_unit_scale(seq);
        let ansatz = build_ansatz(&ham, 2);
        let diag = ham.dense_diagonal();
        let n = ham.num_qubits();
        let x0 = vec![0.2; ansatz.num_params()];

        let mut objective = |x: &[f64]| -> f64 {
            let mut sv = Statevector::zero(n);
            sv.apply_parametric(&ansatz, x);
            sv.expectation_diagonal(&diag)
        };

        let cobyla = Cobyla::with_budget(budget).minimize(&mut objective, &x0).fx;
        let nm = NelderMead::with_budget(budget)
            .minimize(&mut objective, &x0)
            .fx;
        let spsa = Spsa::with_budget(budget, 7)
            .minimize(&mut objective, &x0)
            .fx;
        let (_, ground) = ham.ground_state();
        println!(
            "{:<12} {:>12.4} {:>12.4} {:>12.4}   (exact ground {:.4})",
            s, cobyla, nm, spsa, ground
        );
    }
}
