//! One-shot driver: runs the complete 55-fragment evaluation once and
//! emits every table and figure of the paper into an output directory
//! (and to stdout). This is the recommended way to regenerate the whole
//! evaluation — the per-table binaries recompute from scratch.
//!
//! ```text
//! QDB_PRESET=fast cargo run --release -p qdb-bench --bin full_evaluation -- out_dir
//! # with a pipeline telemetry snapshot alongside the tables:
//! ... --bin full_evaluation -- out_dir --telemetry out_dir/telemetry.json
//! # with a flight-recorder timeline (Perfetto-loadable; the raw dump
//! # lands next to it as *.raw.json):
//! ... --bin full_evaluation -- out_dir --trace out_dir/trace.json
//! ```

use qdb_baselines::alphafold::AfModel;
use qdb_bench::{group_rows, preset_from_env, preset_name, run_comparisons};
use qdockbank::evaluation::{interaction_coverage, win_rates};
use qdockbank::fragments::{all_fragments, Group};
use qdockbank::report::{
    render_box_stats, render_coverage, render_group_table, render_scatter, render_win_rates,
};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut telemetry_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--telemetry" => {
                i += 1;
                let path = args.get(i).unwrap_or_else(|| {
                    eprintln!("--telemetry needs an output path");
                    std::process::exit(1);
                });
                telemetry_path = Some(PathBuf::from(path));
            }
            "--trace" => {
                i += 1;
                let path = args.get(i).unwrap_or_else(|| {
                    eprintln!("--trace needs an output path");
                    std::process::exit(1);
                });
                trace_path = Some(PathBuf::from(path));
            }
            other => positional.push(other),
        }
        i += 1;
    }
    let out_dir: PathBuf = positional
        .first()
        .copied()
        .unwrap_or("evaluation_output")
        .into();
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let config = preset_from_env();
    eprintln!(
        "running the full 55-fragment evaluation (preset: {})",
        preset_name(&config)
    );

    if trace_path.is_some() {
        qdb_telemetry::global()
            .install_recorder(std::sync::Arc::new(qdb_telemetry::TraceRecorder::default()));
        eprintln!("flight recorder armed");
    }

    let records = all_fragments();
    let comparisons = run_comparisons(&records, &config);

    let emit = |name: &str, body: String| {
        println!("==== {name} ====\n{body}");
        std::fs::write(out_dir.join(name), body).expect("write output file");
    };

    // Tables 1–3.
    for (group, file) in [
        (Group::L, "table1_L_group.txt"),
        (Group::M, "table2_M_group.txt"),
        (Group::S, "table3_S_group.txt"),
    ] {
        emit(
            file,
            render_group_table(group, &group_rows(&comparisons, group)),
        );
    }

    // Figures 2 and 3 (scatter series).
    emit(
        "figure2_qdock_vs_af2.csv",
        render_scatter(&comparisons, AfModel::Af2),
    );
    emit(
        "figure3_qdock_vs_af3.csv",
        render_scatter(&comparisons, AfModel::Af3),
    );

    // Figure 4 (distribution summaries).
    emit("figure4_box_stats.txt", render_box_stats(&comparisons));

    // §6.2 headline win rates.
    let mut winrate_text = String::new();
    winrate_text.push_str(&render_win_rates(&win_rates(&comparisons, AfModel::Af2)));
    winrate_text.push_str(&render_win_rates(&win_rates(&comparisons, AfModel::Af3)));
    emit("winrates.txt", winrate_text);

    // Figure 5 (interaction coverage).
    emit(
        "figure5_coverage.txt",
        render_coverage(&interaction_coverage(&records)),
    );

    if let Some(path) = telemetry_path {
        let snap = qdb_telemetry::global().snapshot();
        qdb_telemetry::export::json::write_snapshot(&path, &snap)
            .expect("write telemetry snapshot");
        eprintln!("telemetry snapshot written to {}", path.display());
    }
    if let Some(path) = trace_path {
        let rec = qdb_telemetry::global()
            .take_recorder()
            .expect("recorder installed above");
        let dump = rec.dump();
        qdb_telemetry::export::chrome::write_chrome_trace(&path, &dump)
            .expect("write chrome trace");
        dump.write(&path.with_extension("raw.json"))
            .expect("write raw trace dump");
        eprintln!(
            "trace written to {} ({} events, {} dropped)",
            path.display(),
            dump.num_events(),
            dump.dropped()
        );
    }
    eprintln!("all outputs written to {}", out_dir.display());
}
