//! Ablation B (§5.2): the noise-as-perturbation claim. Sweeps the
//! hardware noise scale applied to VQE and reports (a) the best sampled
//! conformation energy and (b) whether the exact lattice ground state was
//! found, averaged over S-group fragments.
//!
//! ```text
//! cargo run --release -p qdb-bench --bin ablation_noise
//! ```

use qdb_baselines::reference::pdb_id_seed;
use qdb_lattice::hamiltonian::{EnergyScale, FoldingHamiltonian};
use qdb_lattice::Lambdas;
use qdb_quantum::noise::NoiseModel;
use qdb_transpile::metrics::EagleProfile;
use qdb_vqe::runner::{run_vqe, VqeConfig};
use qdockbank::fragments::fragments_in;
use qdockbank::Group;

fn main() {
    let records: Vec<_> = fragments_in(Group::S).into_iter().take(8).collect();
    println!(
        "noise-as-perturbation ablation over {} S-group fragments",
        records.len()
    );
    println!(
        "{:>12} {:>14} {:>16} {:>14}",
        "noise scale", "ground found", "mean gap", "mean range"
    );
    for scale in [0.0, 1.0, 3.0, 6.0, 10.0, 20.0] {
        let mut found = 0usize;
        let mut gap_total = 0.0;
        let mut range_total = 0.0;
        for record in &records {
            let seq = record.sequence();
            let ham = FoldingHamiltonian::new(
                seq,
                Lambdas::default(),
                EnergyScale::calibrated(EagleProfile::physical_qubits(record.len())),
            );
            let (_, ground) = ham.ground_state();
            let mut cfg = VqeConfig::fast(pdb_id_seed(record.pdb_id));
            cfg.sample_noise = if scale == 0.0 {
                NoiseModel::IDEAL
            } else {
                NoiseModel::eagle_like().scaled(scale)
            };
            let out = run_vqe(&ham, &cfg).expect("fault-free run");
            if (out.best_bitstring_energy - ground).abs() < 1e-6 {
                found += 1;
            }
            gap_total += out.best_bitstring_energy - ground;
            range_total += out.energy_range();
        }
        println!(
            "{:>12.1} {:>10}/{:<3} {:>16.4} {:>14.3}",
            scale,
            found,
            records.len(),
            gap_total / records.len() as f64,
            range_total / records.len() as f64
        );
    }
    println!("\n(gap = best sampled conformation energy − exact ground energy; 0 is optimal)");
}
