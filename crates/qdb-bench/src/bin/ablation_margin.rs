//! Ablation A (§5.3): ancilla margin vs routing cost on Eagle-127, swept
//! over fragment-sized ansatz circuits.
//!
//! ```text
//! cargo run --release -p qdb-bench --bin ablation_margin
//! ```

use qdb_quantum::ansatz::{efficient_su2, Entanglement};
use qdb_transpile::coupling::CouplingMap;
use qdb_transpile::margin::margin_sweep;

fn main() {
    let eagle = CouplingMap::eagle127();
    let margins = [0usize, 1, 2, 3, 5, 7, 10];
    // Seed 7 sits near a device edge — the realistic case where a compact
    // qubit allocation has no clean nearest-neighbour path and ancillas
    // restore one (§5.3). Central allocations (e.g. seed 60) show the
    // same mechanism only at much larger margins; the paper's 5-10 ancilla
    // recommendation matches the edge regime.
    let seed = 7;
    println!(
        "ancilla-margin ablation on Eagle-127 (EfficientSU2 reps 2, linear entanglement, seed {seed})"
    );
    println!(
        "{:>7} {:>7} {:>7} {:>7} {:>7} {:>9} {:>13}",
        "qubits", "margin", "region", "swaps", "depth", "ECRs", "duration(us)"
    );
    for qubits in [10usize, 14, 18, 22] {
        let circuit = efficient_su2(qubits, 2, Entanglement::Linear);
        for report in margin_sweep(&circuit, &eagle, seed, &margins) {
            println!(
                "{:>7} {:>7} {:>7} {:>7} {:>7} {:>9} {:>13.2}",
                qubits,
                report.margin,
                report.region_size,
                report.swap_count,
                report.hardware_depth,
                report.ecr_count,
                report.duration_ns / 1000.0
            );
        }
        println!();
    }
}
