//! Headline numbers for the compiled execution engine: wall-time
//! distribution of one full VQE energy evaluation through the direct
//! gate-by-gate simulator and through the compiled plan + workspace, at
//! 10/16/22 qubits. The measurement loop lives in [`qdb_bench::perf`] so
//! `bench_gate` runs the identical sweep when it checks for regressions.
//!
//! Writes `BENCH_statevector.json` to the current directory.
//!
//! ```text
//! cargo run --release -p qdb-bench --bin perf_statevector
//! ```

use qdb_bench::perf::{run_engine_bench, write_report};
use std::path::Path;

fn main() {
    let report = run_engine_bench();
    println!(
        "{:>7} {:>15} {:>15} {:>9}",
        "qubits", "direct(ns)", "compiled(ns)", "speedup"
    );
    for row in &report.rows {
        println!(
            "{:>7} {:>15} {:>15} {:>8.2}x",
            row.qubits, row.direct_median_ns, row.compiled_median_ns, row.speedup
        );
    }
    let path = Path::new("BENCH_statevector.json");
    write_report(path, &report).expect("writable working directory");
    println!("wrote {}", path.display());
}
