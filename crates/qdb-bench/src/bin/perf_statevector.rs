//! Headline numbers for the compiled execution engine: median wall time of
//! one full VQE energy evaluation (EfficientSU2 reps 2, linear entanglement,
//! diagonal expectation) through the direct gate-by-gate simulator and
//! through the compiled plan + workspace, at 10/16/22 qubits.
//!
//! Writes `BENCH_statevector.json` to the current directory.
//!
//! ```text
//! cargo run --release -p qdb-bench --bin perf_statevector
//! ```

use qdb_quantum::ansatz::{efficient_su2, Entanglement};
use qdb_quantum::compile::CompiledCircuit;
use qdb_quantum::exec::SimWorkspace;
use qdb_quantum::statevector::Statevector;
use std::hint::black_box;
use std::time::Instant;

/// Median of per-evaluation times (ns) over `reps` timed runs of `f`,
/// after `warmup` untimed runs.
fn median_ns(warmup: usize, reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let mut rows = Vec::new();
    println!(
        "{:>7} {:>15} {:>15} {:>9}",
        "qubits", "direct(ns)", "compiled(ns)", "speedup"
    );
    for qubits in [10usize, 16, 22] {
        let circuit = efficient_su2(qubits, 2, Entanglement::Linear);
        let params: Vec<f64> = (0..circuit.num_params())
            .map(|i| 0.1 + 0.01 * i as f64)
            .collect();
        let diag: Vec<f64> = (0..1u64 << qubits).map(|i| (i % 997) as f64).collect();
        // Fewer reps at the widest register — one 22-qubit evaluation
        // moves 4M amplitudes through every pass.
        let (warmup, reps) = if qubits >= 20 { (2, 9) } else { (5, 31) };

        let direct = median_ns(warmup, reps, || {
            let mut sv = Statevector::zero(qubits);
            sv.apply_parametric(&circuit, &params);
            sv.expectation_diagonal(&diag)
        });

        let compiled = CompiledCircuit::compile(&circuit);
        let mut ws = SimWorkspace::new(qubits);
        let fused = median_ns(warmup, reps, || ws.energy(&compiled, &params, &diag));

        let speedup = direct / fused;
        println!("{qubits:>7} {direct:>15.0} {fused:>15.0} {speedup:>8.2}x");
        rows.push(serde_json::json!({
            "qubits": qubits,
            "direct_median_ns": direct,
            "compiled_median_ns": fused,
            "speedup": speedup,
            "passes_direct": circuit.instructions().len(),
            "passes_compiled": compiled.num_passes(),
        }));
    }

    let report = serde_json::json!({
        "benchmark": "energy_evaluation_engine",
        "ansatz": "efficient_su2(reps=2, linear)",
        "threads": rayon::current_num_threads(),
        "rows": rows,
    });
    let path = "BENCH_statevector.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("writable working directory");
    println!("wrote {path}");
}
