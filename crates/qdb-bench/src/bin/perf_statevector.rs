//! Headline numbers for the compiled execution engine: wall-time
//! distribution of one full VQE energy evaluation (EfficientSU2 reps 2,
//! linear entanglement, diagonal expectation) through the direct
//! gate-by-gate simulator and through the compiled plan + workspace, at
//! 10/16/22 qubits. Samples go through a [`qdb_telemetry::Histogram`], so
//! the reported p50/p99/max carry the same ≤1/32 bucket error as every
//! other duration in a pipeline telemetry snapshot.
//!
//! Writes `BENCH_statevector.json` to the current directory.
//!
//! ```text
//! cargo run --release -p qdb-bench --bin perf_statevector
//! ```

use qdb_quantum::ansatz::{efficient_su2, Entanglement};
use qdb_quantum::compile::CompiledCircuit;
use qdb_quantum::exec::SimWorkspace;
use qdb_quantum::statevector::Statevector;
use qdb_telemetry::HistogramSnapshot;
use std::hint::black_box;
use std::time::Instant;

/// Distribution of per-evaluation times (ns) over `reps` timed runs of
/// `f` after `warmup` untimed runs, accumulated in a telemetry histogram.
fn timing_hist(warmup: usize, reps: usize, mut f: impl FnMut() -> f64) -> HistogramSnapshot {
    for _ in 0..warmup {
        black_box(f());
    }
    let hist = qdb_telemetry::Histogram::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        hist.record(t0.elapsed().as_nanos() as u64);
    }
    hist.snapshot()
}

fn main() {
    let mut rows = Vec::new();
    println!(
        "{:>7} {:>15} {:>15} {:>9}",
        "qubits", "direct(ns)", "compiled(ns)", "speedup"
    );
    for qubits in [10usize, 16, 22] {
        let circuit = efficient_su2(qubits, 2, Entanglement::Linear);
        let params: Vec<f64> = (0..circuit.num_params())
            .map(|i| 0.1 + 0.01 * i as f64)
            .collect();
        let diag: Vec<f64> = (0..1u64 << qubits).map(|i| (i % 997) as f64).collect();
        // Fewer reps at the widest register — one 22-qubit evaluation
        // moves 4M amplitudes through every pass.
        let (warmup, reps) = if qubits >= 20 { (2, 9) } else { (5, 31) };

        let direct = timing_hist(warmup, reps, || {
            let mut sv = Statevector::zero(qubits);
            sv.apply_parametric(&circuit, &params);
            sv.expectation_diagonal(&diag)
        });

        let compiled = CompiledCircuit::compile(&circuit);
        let mut ws = SimWorkspace::new(qubits);
        let fused = timing_hist(warmup, reps, || ws.energy(&compiled, &params, &diag));

        let speedup = direct.p50 as f64 / fused.p50 as f64;
        println!(
            "{qubits:>7} {:>15} {:>15} {speedup:>8.2}x",
            direct.p50, fused.p50
        );
        rows.push(serde_json::json!({
            "qubits": qubits,
            "direct_median_ns": direct.p50,
            "direct_p99_ns": direct.p99,
            "direct_max_ns": direct.max,
            "compiled_median_ns": fused.p50,
            "compiled_p99_ns": fused.p99,
            "compiled_max_ns": fused.max,
            "speedup": speedup,
            "passes_direct": circuit.instructions().len(),
            "passes_compiled": compiled.num_passes(),
        }));
    }

    let report = serde_json::json!({
        "benchmark": "energy_evaluation_engine",
        "ansatz": "efficient_su2(reps=2, linear)",
        "threads": rayon::current_num_threads(),
        "quantiles": "qdb-telemetry log-linear histogram, <=1/32 relative error",
        "rows": rows,
    });
    let path = "BENCH_statevector.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("writable working directory");
    println!("wrote {path}");
}
