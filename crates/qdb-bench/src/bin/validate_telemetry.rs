//! CI gate for pipeline telemetry snapshots: reads the JSON written by
//! `build_dataset --telemetry <path>`, checks the schema version, and
//! fails unless every metric the pipeline declares it emits is present
//! and consistent — all six stage spans recorded, counters non-zero,
//! histogram quantiles ordered. A refactor that silently drops an
//! instrumentation site breaks this binary, not a dashboard three weeks
//! later.
//!
//! With `--trace <trace.json>` it additionally validates a flight-recorder
//! export from the same run: schema version, balanced begin/end per lane,
//! monotone per-lane timestamps, and drop accounting (see
//! [`qdb_bench::trace::validate_trace`]).
//!
//! With `--fleet` the positional argument is a *sharded build root*
//! instead of a snapshot file: the per-worker telemetry journals under
//! `telemetry/` are replayed (schema versions, strictly monotone
//! per-worker sequence numbers), merged, checked against the merge
//! identities (fleet counters ≡ Σ worker deltas), and compared to the
//! stored `fleet_telemetry.json`.
//!
//! ```text
//! cargo run --release -p qdb-bench --bin validate_telemetry -- out.json
//! cargo run --release -p qdb-bench --bin validate_telemetry -- out.json --trace trace.json
//! # sharded build: the dataset-build set plus the lease/shard counters
//! cargo run --release -p qdb-bench --bin validate_telemetry -- out.json --shards
//! # fleet mode: validate the durable journals under a build root
//! cargo run --release -p qdb-bench --bin validate_telemetry -- dataset/ --fleet
//! ```

use qdb_bench::trace::validate_trace;
use qdb_store::StdVfs;
use qdb_telemetry::export::chrome::read_chrome_trace;
use qdb_telemetry::export::json::read_snapshot;
use qdb_telemetry::{FleetSnapshot, Snapshot, WorkerDelta};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Counters every dataset build must tick at least once.
const REQUIRED_COUNTERS: &[&str] = &[
    "exec.runs",
    "exec.gate_ops",
    "vqe.runs",
    "vqe.energy_evals",
    "vqe.iterations",
    "vqe.shots_sampled",
    "dock.runs",
    "dock.chains",
    "dock.energy_evals",
    "dock.poses_generated",
    "dock.poses_reported",
    // Backend dispatch seam: every evaluation routes through the ladder,
    // and the default build runs on the Vina rung.
    "dock.backend.dispatches",
    "dock.backend.vina.runs",
    "supervisor.attempts",
    "supervisor.fragments_completed",
    // Artifact store: every build persists entries through the atomic
    // checksummed write path, so these tick on any successful fragment.
    // (store.checksum_failures / recoveries / quarantines are legitimately
    // zero on a healthy build and are deliberately not required.)
    "store.writes",
    "store.bytes",
    "store.fsyncs",
    "store.renames",
];

/// Duration histograms every dataset build must record: the six pipeline
/// stage spans, the whole-fragment span, the VQE objective timer, and
/// the artifact store's per-write latency.
const REQUIRED_HISTOGRAMS: &[&str] = &[
    "pipeline.encode",
    "pipeline.hamiltonian",
    "pipeline.vqe",
    "pipeline.reconstruct",
    "pipeline.dock",
    "pipeline.rmsd",
    "pipeline.fragment",
    "vqe.energy_eval",
    "vqe.optimize",
    "vqe.sample",
    "dock.chain",
    "store.write_us",
];

/// Gauges every dataset build must set.
const REQUIRED_GAUGES: &[&str] = &["exec.workspace_qubits"];

/// Counters every `qdb-serve` run must tick (`--serve`). Shed, expired,
/// and cache-hit counters are legitimately zero on a healthy smoke run
/// and are deliberately not required; the accounting identity below
/// covers them instead.
const SERVE_REQUIRED_COUNTERS: &[&str] = &[
    "serve.submitted",
    "serve.admitted",
    "serve.completed",
    "serve.dedup_hits",
    "serve.http_requests",
];

/// Histograms every `qdb-serve` run must record: the submit and job
/// spans plus the queue-wait and execution latency distributions.
const SERVE_REQUIRED_HISTOGRAMS: &[&str] = &[
    "serve.submit",
    "serve.job",
    "serve.queue_wait_ms",
    "serve.job_ms",
];

/// Gauges every `qdb-serve` run must set.
const SERVE_REQUIRED_GAUGES: &[&str] = &["serve.queue_depth", "serve.inflight"];

/// Counters every `backend_report --chaos` run must tick (`--backends`):
/// both rungs execute, the dispatcher routes at least one ladder, and the
/// injected QUBO fault forces at least one recorded fallback.
const BACKENDS_REQUIRED_COUNTERS: &[&str] = &[
    "dock.backend.dispatches",
    "dock.backend.vina.runs",
    "dock.backend.qubo.runs",
    "dock.backend.qubo.candidates",
    "dock.backend.fallbacks",
    "dock.runs",
];

/// Histograms every `backend_report` run must record.
const BACKENDS_REQUIRED_HISTOGRAMS: &[&str] = &["dock.backend.qubo.anneal", "dock.chain"];

/// Counters every *sharded* dataset build must tick (`--shards`), on top
/// of the full dataset-build set: the lease protocol ran (claims granted,
/// heartbeats renewed, shards released) and the shard supervisor drove
/// fragments to per-shard completion and a finalize merge.
/// `store.lease.steals` / `.fenced` / `.held_rejections` are legitimately
/// zero on an uncontended single-worker build and are deliberately not
/// required; the accounting identities below cover them instead.
const SHARDS_REQUIRED_COUNTERS: &[&str] = &[
    "store.lease.acquires",
    "store.lease.renews",
    "store.lease.releases",
    "supervisor.shard.claims",
    "supervisor.shard.fragments",
    "supervisor.shard.done",
    "supervisor.shard.finalized",
];

/// Sharded-build checks (`--shards`): the lease/shard metric set is
/// *added* to the dataset-build set — a sharded build runs the whole
/// pipeline and must emit everything a plain build does.
fn validate_shards(snap: &Snapshot) -> Vec<String> {
    let mut problems = Vec::new();
    for name in SHARDS_REQUIRED_COUNTERS {
        match snap.counters.get(*name) {
            None => problems.push(format!("shard counter {name} missing")),
            Some(0) => problems.push(format!(
                "shard counter {name} present but never incremented"
            )),
            Some(_) => {}
        }
    }
    let count = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    // Every shard completion came from a granted claim, and every claim
    // came from a successful lease acquisition.
    if count("supervisor.shard.done") > count("supervisor.shard.claims") {
        problems.push(format!(
            "shard accounting broken: {} shards done but only {} claims",
            count("supervisor.shard.done"),
            count("supervisor.shard.claims")
        ));
    }
    if count("supervisor.shard.claims") > count("store.lease.acquires") {
        problems.push(format!(
            "shard accounting broken: {} claims but only {} lease acquisitions",
            count("supervisor.shard.claims"),
            count("store.lease.acquires")
        ));
    }
    // A worker only releases what it acquired.
    if count("store.lease.releases") > count("store.lease.acquires") {
        problems.push(format!(
            "lease accounting broken: {} releases but only {} acquisitions",
            count("store.lease.releases"),
            count("store.lease.acquires")
        ));
    }
    problems
}

/// Backend-agreement checks (`--backends`): the cross-backend metric set
/// replaces the dataset-build set, the same way `--serve` does.
fn validate_backends(snap: &Snapshot) -> Vec<String> {
    let mut problems = Vec::new();
    for name in BACKENDS_REQUIRED_COUNTERS {
        match snap.counters.get(*name) {
            None => problems.push(format!("backend counter {name} missing")),
            Some(0) => problems.push(format!(
                "backend counter {name} present but never incremented"
            )),
            Some(_) => {}
        }
    }
    for name in BACKENDS_REQUIRED_HISTOGRAMS {
        match snap.histograms.get(*name) {
            None => problems.push(format!("backend histogram {name} missing")),
            Some(h) if h.count == 0 => {
                problems.push(format!("backend histogram {name} present but empty"))
            }
            Some(_) => {}
        }
    }
    // Every fallback is a failed rung, so the ladder must have recorded at
    // least as many backend errors as fallbacks.
    let count = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let errors: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("dock.backend.") && k.ends_with(".errors"))
        .map(|(_, v)| v)
        .sum();
    if errors < count("dock.backend.fallbacks") {
        problems.push(format!(
            "backend accounting broken: {} fallbacks but only {errors} backend errors",
            count("dock.backend.fallbacks")
        ));
    }
    problems
}

/// Service-mode checks: the required serve metrics plus the admission
/// accounting identity
/// `admitted + shed + cache_hits + dedup_hits == submitted`.
fn validate_serve(snap: &Snapshot) -> Vec<String> {
    let mut problems = Vec::new();
    for name in SERVE_REQUIRED_COUNTERS {
        match snap.counters.get(*name) {
            None => problems.push(format!("serve counter {name} missing")),
            Some(0) => problems.push(format!(
                "serve counter {name} present but never incremented"
            )),
            Some(_) => {}
        }
    }
    for name in SERVE_REQUIRED_GAUGES {
        if !snap.gauges.contains_key(*name) {
            problems.push(format!("serve gauge {name} missing"));
        }
    }
    for name in SERVE_REQUIRED_HISTOGRAMS {
        match snap.histograms.get(*name) {
            None => problems.push(format!("serve histogram {name} missing")),
            Some(h) if h.count == 0 => {
                problems.push(format!("serve histogram {name} present but empty"))
            }
            Some(_) => {}
        }
    }
    let count = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let accounted = count("serve.admitted")
        + count("serve.shed")
        + count("serve.cache_hits")
        + count("serve.dedup_hits");
    if accounted != count("serve.submitted") {
        problems.push(format!(
            "serve accounting broken: admitted {} + shed {} + cache_hits {} + dedup_hits {} \
             != submitted {}",
            count("serve.admitted"),
            count("serve.shed"),
            count("serve.cache_hits"),
            count("serve.dedup_hits"),
            count("serve.submitted")
        ));
    }
    problems
}

fn validate(snap: &Snapshot) -> Vec<String> {
    let mut problems = Vec::new();
    for name in REQUIRED_COUNTERS {
        match snap.counters.get(*name) {
            None => problems.push(format!("counter {name} missing")),
            Some(0) => problems.push(format!("counter {name} present but never incremented")),
            Some(_) => {}
        }
    }
    for name in REQUIRED_GAUGES {
        if !snap.gauges.contains_key(*name) {
            problems.push(format!("gauge {name} missing"));
        }
    }
    for name in REQUIRED_HISTOGRAMS {
        let Some(h) = snap.histograms.get(*name) else {
            problems.push(format!("histogram {name} missing"));
            continue;
        };
        if h.count == 0 {
            problems.push(format!("histogram {name} present but empty"));
            continue;
        }
        if !(h.min <= h.p50 && h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max) {
            problems.push(format!(
                "histogram {name} quantiles out of order: min={} p50={} p90={} p99={} max={}",
                h.min, h.p50, h.p90, h.p99, h.max
            ));
        }
        let bucket_total: u64 = h.buckets.iter().map(|(_, n)| n).sum();
        if bucket_total != h.count {
            problems.push(format!(
                "histogram {name} buckets sum to {bucket_total}, count says {}",
                h.count
            ));
        }
    }
    // Cross-metric consistency: the fragment span brackets the stage spans,
    // so no stage can have run more often than fragments did.
    if let (Some(frag), Some(vqe)) = (
        snap.histograms.get("pipeline.fragment"),
        snap.histograms.get("pipeline.vqe"),
    ) {
        if vqe.count < frag.count {
            problems.push(format!(
                "pipeline.vqe ran {} times for {} fragments",
                vqe.count, frag.count
            ));
        }
    }
    // Sampled spans: a `<name>.skipped` counter only exists because a
    // `span_sampled!` site fired, so the histogram it samples must exist.
    for name in snap.counters.keys() {
        if let Some(base) = name.strip_suffix(".skipped") {
            if !snap.histograms.contains_key(base) {
                problems.push(format!(
                    "counter {name} has no matching histogram {base} — \
                     sampled span site records nothing"
                ));
            }
        }
    }
    problems
}

/// Journal-shape checks over the raw worker deltas: schema versions and
/// strictly monotone per-worker sequence numbers (a duplicate or a gap
/// means a flush was double-counted or lost).
fn validate_delta_sequences(deltas: &[WorkerDelta]) -> Vec<String> {
    let mut problems = Vec::new();
    let mut last_seq: BTreeMap<&str, u64> = BTreeMap::new();
    for delta in deltas {
        if delta.version != WorkerDelta::VERSION {
            problems.push(format!(
                "worker {} delta seq {} has schema v{}, expected v{}",
                delta.worker_id,
                delta.seq,
                delta.version,
                WorkerDelta::VERSION
            ));
        }
        if let Some(prev) = last_seq.get(delta.worker_id.as_str()) {
            if delta.seq <= *prev {
                problems.push(format!(
                    "worker {} sequence not monotone: seq {} after seq {prev}",
                    delta.worker_id, delta.seq
                ));
            }
        }
        last_seq.insert(&delta.worker_id, delta.seq);
    }
    problems
}

/// Fleet-mode checks (`--fleet`): replay the durable per-worker journals
/// under `root/telemetry/`, merge them, and hold the merge identities.
fn validate_fleet(root: &Path) -> Vec<String> {
    let deltas = match qdb_store::read_worker_deltas(&StdVfs, root) {
        Ok(d) => d,
        Err(e) => return vec![format!("worker journals unreadable: {e}")],
    };
    if deltas.is_empty() {
        return vec![format!(
            "no worker telemetry journals under {}/telemetry",
            root.display()
        )];
    }
    let mut problems = validate_delta_sequences(&deltas);
    let fleet = FleetSnapshot::from_deltas(&deltas);
    problems.extend(
        fleet
            .identity_problems()
            .into_iter()
            .map(|p| format!("merge identity: {p}")),
    );
    let stored_path = qdb_store::fleet_telemetry_path(root);
    if stored_path.exists() {
        match qdb_store::read_fleet_snapshot(&StdVfs, root) {
            Ok(stored) => {
                if stored != fleet {
                    problems.push(
                        "fleet_telemetry.json does not equal the merge of the worker journals"
                            .to_string(),
                    );
                }
            }
            Err(e) => problems.push(format!("fleet_telemetry.json unreadable: {e}")),
        }
    }
    problems
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut snapshot_path: Option<PathBuf> = None;
    let mut trace_arg: Option<PathBuf> = None;
    let mut serve_mode = false;
    let mut backends_mode = false;
    let mut shards_mode = false;
    let mut fleet_mode = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--serve" => serve_mode = true,
            "--backends" => backends_mode = true,
            "--shards" => shards_mode = true,
            "--fleet" => fleet_mode = true,
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(p) => trace_arg = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--trace needs a path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other if snapshot_path.is_none() => snapshot_path = Some(PathBuf::from(other)),
            other => {
                eprintln!("unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(path) = snapshot_path else {
        eprintln!(
            "usage: validate_telemetry <snapshot.json> [--serve | --backends] [--shards] \
             [--trace <trace.json>]\n       validate_telemetry <build-root> --fleet"
        );
        return ExitCode::FAILURE;
    };
    // `--fleet` takes a build root, not a snapshot file: validate the
    // durable worker journals and their merge, then exit.
    if fleet_mode {
        let problems = validate_fleet(&path);
        return if problems.is_empty() {
            let deltas = qdb_store::read_worker_deltas(&StdVfs, &path).unwrap_or_default();
            let fleet = FleetSnapshot::from_deltas(&deltas);
            println!(
                "OK: {} — {} flush(es) from {} worker(s) replay cleanly, merge identities hold",
                path.display(),
                fleet.total_flushes(),
                fleet.workers.len()
            );
            ExitCode::SUCCESS
        } else {
            eprintln!("FAIL: {} problem(s) in {}:", problems.len(), path.display());
            for p in &problems {
                eprintln!("  - {p}");
            }
            ExitCode::FAILURE
        };
    }
    let snap = match read_snapshot(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("FAIL: snapshot unreadable: {e}");
            return ExitCode::FAILURE;
        }
    };
    // `--serve` validates a service run (which may use a stub pipeline)
    // and `--backends` a cross-backend agreement run, so those metric
    // sets replace the dataset-build set.
    let mut problems = if serve_mode {
        validate_serve(&snap)
    } else if backends_mode {
        validate_backends(&snap)
    } else {
        validate(&snap)
    };
    // `--shards` is additive: a sharded build is a dataset build plus the
    // lease/shard coordination layer.
    if shards_mode {
        problems.extend(validate_shards(&snap));
    }
    if let Some(trace_path) = &trace_arg {
        match read_chrome_trace(trace_path) {
            Ok(file) => {
                let trace_problems = if serve_mode {
                    qdb_bench::trace::validate_serve_trace(&file)
                } else {
                    validate_trace(&file)
                };
                problems.extend(trace_problems.into_iter().map(|p| format!("trace: {p}")));
            }
            Err(e) => problems.push(format!("trace unreadable: {e}")),
        }
    }
    if problems.is_empty() {
        println!(
            "OK: {} — schema v{}, {} counters, {} gauges, {} histograms, all declared pipeline metrics present",
            path.display(),
            snap.version,
            snap.counters.len(),
            snap.gauges.len(),
            snap.histograms.len()
        );
        if let Some(trace_path) = &trace_arg {
            println!(
                "OK: {} — trace structurally valid (balanced spans, monotone lanes, drops accounted)",
                trace_path.display()
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: {} problem(s) in {}:", problems.len(), path.display());
        for p in &problems {
            eprintln!("  - {p}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_telemetry::Registry;

    fn full_registry() -> Registry {
        let r = Registry::new();
        for name in REQUIRED_COUNTERS {
            r.counter(name).inc();
        }
        for name in REQUIRED_GAUGES {
            r.gauge(name).set(22);
        }
        for name in REQUIRED_HISTOGRAMS {
            r.histogram(name).record(1_000);
        }
        r
    }

    #[test]
    fn complete_snapshot_passes() {
        assert!(validate(&full_registry().snapshot()).is_empty());
    }

    #[test]
    fn missing_stage_span_is_flagged() {
        let r = Registry::new();
        for name in REQUIRED_COUNTERS {
            r.counter(name).inc();
        }
        for name in REQUIRED_GAUGES {
            r.gauge(name).set(22);
        }
        for name in REQUIRED_HISTOGRAMS
            .iter()
            .filter(|n| **n != "pipeline.dock")
        {
            r.histogram(name).record(1_000);
        }
        let problems = validate(&r.snapshot());
        assert!(
            problems.iter().any(|p| p.contains("pipeline.dock missing")),
            "{problems:?}"
        );
    }

    fn backends_registry() -> Registry {
        let r = Registry::new();
        for name in BACKENDS_REQUIRED_COUNTERS {
            r.counter(name).inc();
        }
        for name in BACKENDS_REQUIRED_HISTOGRAMS {
            r.histogram(name).record(1_000);
        }
        r.counter("dock.backend.qubo.errors").inc();
        r
    }

    #[test]
    fn backends_snapshot_passes() {
        assert!(validate_backends(&backends_registry().snapshot()).is_empty());
    }

    #[test]
    fn backends_mode_requires_both_rungs_and_a_recorded_fallback() {
        let snap = {
            let mut s = backends_registry().snapshot();
            s.counters.remove("dock.backend.qubo.runs");
            s.counters.insert("dock.backend.fallbacks".into(), 0);
            s
        };
        let problems = validate_backends(&snap);
        assert!(
            problems
                .iter()
                .any(|p| p.contains("dock.backend.qubo.runs missing")),
            "{problems:?}"
        );
        assert!(
            problems
                .iter()
                .any(|p| p.contains("dock.backend.fallbacks")),
            "{problems:?}"
        );
    }

    #[test]
    fn backends_mode_checks_fallback_error_accounting() {
        let snap = {
            let mut s = backends_registry().snapshot();
            s.counters.insert("dock.backend.qubo.errors".into(), 0);
            s.counters.insert("dock.backend.fallbacks".into(), 3);
            s
        };
        let problems = validate_backends(&snap);
        assert!(
            problems.iter().any(|p| p.contains("accounting broken")),
            "{problems:?}"
        );
    }

    fn shards_registry() -> Registry {
        let r = Registry::new();
        for name in SHARDS_REQUIRED_COUNTERS {
            r.counter(name).inc();
        }
        r
    }

    #[test]
    fn shards_snapshot_passes() {
        assert!(validate_shards(&shards_registry().snapshot()).is_empty());
    }

    #[test]
    fn shards_mode_requires_the_lease_protocol_to_have_run() {
        let snap = {
            let mut s = shards_registry().snapshot();
            s.counters.remove("store.lease.renews");
            s.counters.insert("supervisor.shard.finalized".into(), 0);
            s
        };
        let problems = validate_shards(&snap);
        assert!(
            problems
                .iter()
                .any(|p| p.contains("store.lease.renews missing")),
            "{problems:?}"
        );
        assert!(
            problems
                .iter()
                .any(|p| p.contains("supervisor.shard.finalized")),
            "{problems:?}"
        );
    }

    #[test]
    fn shards_mode_checks_claim_accounting() {
        let snap = {
            let mut s = shards_registry().snapshot();
            s.counters.insert("supervisor.shard.done".into(), 5);
            s.counters.insert("supervisor.shard.claims".into(), 2);
            s
        };
        let problems = validate_shards(&snap);
        assert!(
            problems
                .iter()
                .any(|p| p.contains("5 shards done but only 2 claims")),
            "{problems:?}"
        );
    }

    fn delta(worker: &str, seq: u64) -> WorkerDelta {
        WorkerDelta {
            version: WorkerDelta::VERSION,
            worker_id: worker.to_string(),
            seq,
            flushed_at_ms: seq,
            kind: "periodic".to_string(),
            delta: Registry::new().snapshot(),
        }
    }

    #[test]
    fn fleet_sequences_must_be_strictly_monotone_per_worker() {
        assert!(
            validate_delta_sequences(&[delta("a", 0), delta("a", 1), delta("b", 0)]).is_empty()
        );
        let problems =
            validate_delta_sequences(&[delta("a", 0), delta("b", 0), delta("a", 1), delta("a", 1)]);
        assert!(
            problems.iter().any(|p| p.contains("not monotone")),
            "{problems:?}"
        );
    }

    #[test]
    fn fleet_schema_version_is_checked() {
        let mut bad = delta("a", 0);
        bad.version = 99;
        let problems = validate_delta_sequences(&[bad]);
        assert!(
            problems.iter().any(|p| p.contains("schema v99")),
            "{problems:?}"
        );
    }

    #[test]
    fn zero_counter_is_flagged() {
        let r = full_registry();
        let snap = {
            let mut s = r.snapshot();
            s.counters.insert("vqe.runs".into(), 0);
            s
        };
        let problems = validate(&snap);
        assert!(
            problems.iter().any(|p| p.contains("vqe.runs")),
            "{problems:?}"
        );
    }
}
