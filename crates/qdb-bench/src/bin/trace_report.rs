//! Critical-path and occupancy analysis of a flight-recorder trace:
//! reads the Chrome trace-event JSON written by `--trace`, validates its
//! structure (balanced begin/end, monotone per-lane timestamps, drop
//! accounting), and prints per-stage self times, per-worker occupancy,
//! and the serial critical path across the per-fragment lanes with its
//! encode→hamiltonian→vqe→reconstruct→dock→rmsd breakdown.
//!
//! Exits 1 on structural problems or impossible timings (critical path
//! longer than the wall, or shorter than its own slowest fragment), so
//! CI can run it as a gate on a real traced build.
//!
//! ```text
//! cargo run --release --example build_dataset -- S out --fragments 2 --trace trace.json
//! cargo run --release -p qdb-bench --bin trace_report -- trace.json
//! ```

use qdb_bench::trace::{analyze, check_invariants, render_report, validate_trace};
use qdb_telemetry::export::chrome::read_chrome_trace;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = match args.as_slice() {
        [p] => PathBuf::from(p),
        _ => {
            eprintln!("usage: trace_report <trace.json>");
            std::process::exit(1);
        }
    };

    let file = match read_chrome_trace(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("trace_report: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "trace_report: {} (schema v{}, {} events)",
        path.display(),
        file.qdb.version,
        file.traceEvents.len()
    );

    let problems = validate_trace(&file);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("  structural problem: {p}");
        }
        eprintln!("trace_report: {} structural problem(s)", problems.len());
        std::process::exit(1);
    }

    let report = match analyze(&file) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace_report: analysis failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", render_report(&report));

    let violations = check_invariants(&report);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("  invariant violated: {v}");
        }
        std::process::exit(1);
    }
    println!("invariants hold: critical path <= wall, >= slowest fragment");
}
