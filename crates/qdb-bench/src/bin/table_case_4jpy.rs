//! Regenerates Table 4: average docking metrics for QDockBank vs
//! AlphaFold3 on 4jpy (paper: affinity −4.3 vs −3.9 kcal/mol, RMSD l.b.
//! 1.4 vs 2.0 Å, u.b. 1.9 vs 3.2 Å).
//!
//! ```text
//! cargo run --release -p qdb-bench --bin table_case_4jpy
//! ```

use qdb_bench::preset_from_env;
use qdockbank::evaluation::FragmentComparison;
use qdockbank::fragments::fragment;
use qdockbank::report::render_case_table;

fn main() {
    let record = fragment("4jpy").expect("4jpy is in the manifest");
    let config = preset_from_env();
    eprintln!("docking 4jpy ({}) under QDock and AF3…", record.sequence);
    let c = FragmentComparison::run(record, &config).expect("fault-free run");
    print!("{}", render_case_table("4jpy", &c.qdock.qdock, &c.af3));
    println!(
        "\nstructure RMSD vs reference: QDock {:.2} Å, AF3 {:.2} Å",
        c.qdock.qdock.ca_rmsd, c.af3.ca_rmsd
    );
}
