//! Regenerates the Figure 2 / Figure 3 scatter data: per-fragment QDock
//! vs baseline affinity and RMSD, as CSV (group column included so the
//! All/L/M/S panels can be filtered downstream).
//!
//! ```text
//! cargo run --release -p qdb-bench --bin figure_scatter -- af2 all
//! cargo run --release -p qdb-bench --bin figure_scatter -- af3 M
//! ```

use qdb_baselines::alphafold::AfModel;
use qdb_bench::{preset_from_env, run_comparisons, select_records};
use qdockbank::report::render_scatter;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let model = match args.first().map(String::as_str) {
        Some("af3") => {
            args.remove(0);
            AfModel::Af3
        }
        Some("af2") => {
            args.remove(0);
            AfModel::Af2
        }
        _ => AfModel::Af2,
    };
    let records = select_records(&args, "all");
    let config = preset_from_env();
    let comparisons = run_comparisons(&records, &config);
    print!("{}", render_scatter(&comparisons, model));
}
