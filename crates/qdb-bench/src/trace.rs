//! Flight-recorder trace analysis: structural validation of an exported
//! Chrome trace-event file plus the critical-path / occupancy report
//! behind `trace_report`.
//!
//! Everything works off the exporter's own structure — worker lanes
//! (`PID_WORKERS` in a single-process export, one re-pid'd process per
//! worker in a fleet merge; one track per recording thread) and
//! synthetic per-fragment lanes (`PID_FRAGMENTS`, tid = correlation
//! id) — so no event `args` are ever introspected: fragment attribution
//! is the lane the exporter mirrored the event onto. Any lane whose pid
//! is not `PID_FRAGMENTS` is worker-class; tracks are matched by
//! `(pid, tid)` so merged traces with colliding tids stay distinct.

use qdb_telemetry::export::chrome::{ChromeEvent, ChromeTraceFile, PID_FRAGMENTS, PID_WORKERS};
use std::collections::BTreeMap;

/// The span name the pipeline wraps one whole fragment in.
pub const FRAGMENT_SPAN: &str = "pipeline.fragment";
/// Prefix of the per-stage pipeline spans (`pipeline.encode` … `pipeline.rmsd`).
pub const STAGE_PREFIX: &str = "pipeline.";
/// The spans the job service (`qdb-serve`) opens around every submission
/// and every worker execution. A service trace that never opened these
/// lost its instrumentation.
pub const SERVE_SPANS: &[&str] = &["serve.submit", "serve.job"];

/// Groups the non-metadata events of `file` by `(pid, tid)`, preserving
/// file order (which is ring order, i.e. timestamp order per track).
pub fn lanes(file: &ChromeTraceFile) -> BTreeMap<(u32, u64), Vec<&ChromeEvent>> {
    let mut out: BTreeMap<(u32, u64), Vec<&ChromeEvent>> = BTreeMap::new();
    for ev in &file.traceEvents {
        if ev.ph != "M" {
            out.entry((ev.pid, ev.tid)).or_default().push(ev);
        }
    }
    out
}

/// Structural validation of an exported trace. Returns human-readable
/// problem strings; empty = valid. Checks, per ISSUE 5: balanced
/// begin/end per lane, monotone per-lane timestamps, and drop
/// accounting (file total == sum of per-track drops, per-track event
/// counts match the metadata block). Lanes whose ring dropped events are
/// exempt from the balance check — wraparound legitimately truncates
/// span openings — as are fragment lanes when any source ring dropped.
pub fn validate_trace(file: &ChromeTraceFile) -> Vec<String> {
    let mut problems = Vec::new();

    let track_drop_sum: u64 = file.qdb.tracks.iter().map(|t| t.dropped).sum();
    if file.qdb.dropped != track_drop_sum {
        problems.push(format!(
            "drop accounting: file total {} != per-track sum {}",
            file.qdb.dropped, track_drop_sum
        ));
    }

    let lanes = lanes(file);
    for track in &file.qdb.tracks {
        let actual = lanes
            .get(&(track.pid, track.tid))
            .map_or(0, |evs| evs.len() as u64);
        if actual != track.events {
            problems.push(format!(
                "track {} ({}): metadata says {} events, file has {}",
                track.tid, track.thread, track.events, actual
            ));
        }
    }

    for ((pid, tid), events) in &lanes {
        let lane = lane_label(*pid, *tid, file);
        if *pid != PID_FRAGMENTS
            && !file
                .qdb
                .tracks
                .iter()
                .any(|t| t.pid == *pid && t.tid == *tid)
        {
            problems.push(format!("{lane}: not in the qdb metadata block"));
        }

        let mut last_ts = f64::NEG_INFINITY;
        let mut regression_reported = false;
        let mut stack: Vec<&str> = Vec::new();
        let mut balanced = true;
        for ev in events {
            if ev.ts < last_ts && !regression_reported {
                problems.push(format!(
                    "{lane}: timestamp regression at {:?} ({} µs after {} µs)",
                    ev.name, ev.ts, last_ts
                ));
                regression_reported = true; // one report per lane
            }
            last_ts = last_ts.max(ev.ts);
            match ev.ph.as_str() {
                "B" => stack.push(&ev.name),
                "E" => match stack.pop() {
                    Some(open) if open == ev.name => {}
                    Some(open) => {
                        balanced = false;
                        problems.push(format!(
                            "{lane}: end of {:?} closes open span {open:?}",
                            ev.name
                        ));
                    }
                    None => {
                        balanced = false;
                        problems.push(format!("{lane}: end of {:?} with no open span", ev.name));
                    }
                },
                "i" => {
                    if ev.s.as_deref() != Some("t") {
                        problems.push(format!(
                            "{lane}: instant {:?} missing thread scope",
                            ev.name
                        ));
                    }
                }
                other => problems.push(format!("{lane}: unknown phase {other:?}")),
            }
        }
        if balanced && !stack.is_empty() {
            problems.push(format!("{lane}: {} span(s) never closed", stack.len()));
        }
        // Drop-tolerant lanes: truncated openings are expected, so retract
        // balance complaints for them (timestamp/phase problems stand).
        let dropped_here = if *pid == PID_FRAGMENTS {
            file.qdb.dropped
        } else {
            file.qdb
                .tracks
                .iter()
                .find(|t| t.pid == *pid && t.tid == *tid)
                .map_or(0, |t| t.dropped)
        };
        if dropped_here > 0 {
            problems.retain(|p| {
                !(p.starts_with(&lane)
                    && (p.contains("closes open span")
                        || p.contains("no open span")
                        || p.contains("never closed")))
            });
        }
    }
    problems
}

/// Structural validation plus the service-layer span contract: every
/// name in [`SERVE_SPANS`] must appear as an opened span somewhere in
/// the trace. Use for traces recorded by the `qdb-serve` daemon.
pub fn validate_serve_trace(file: &ChromeTraceFile) -> Vec<String> {
    let mut problems = validate_trace(file);
    for expected in SERVE_SPANS {
        let seen = file
            .traceEvents
            .iter()
            .any(|ev| ev.ph == "B" && ev.name == *expected);
        if !seen {
            problems.push(format!(
                "service span {expected:?} never opened — serve instrumentation lost"
            ));
        }
    }
    problems
}

fn lane_label(pid: u32, tid: u64, file: &ChromeTraceFile) -> String {
    if pid == PID_FRAGMENTS {
        return format!("fragment lane {tid}");
    }
    let thread = file
        .qdb
        .tracks
        .iter()
        .find(|t| t.pid == pid && t.tid == tid)
        .map_or("?", |t| t.thread.as_str());
    if pid == PID_WORKERS {
        format!("worker lane {tid} ({thread})")
    } else {
        format!("worker lane {pid}:{tid} ({thread})")
    }
}

/// Aggregate statistics for one span name.
#[derive(Clone, Debug, Default)]
pub struct StageStat {
    /// Completed spans with this name.
    pub count: u64,
    /// Sum of span durations, µs.
    pub total_us: f64,
    /// Sum of durations minus time spent in child spans, µs.
    pub self_us: f64,
}

/// One worker lane's utilization.
#[derive(Clone, Debug)]
pub struct WorkerStat {
    /// Track id.
    pub tid: u64,
    /// Thread name from the metadata block.
    pub thread: String,
    /// Time covered by top-level spans, µs.
    pub busy_us: f64,
    /// `busy_us` over the trace wall time (0 when the wall is empty).
    pub occupancy: f64,
}

/// One fragment lane's contribution to the critical path.
#[derive(Clone, Debug)]
pub struct FragmentPath {
    /// Fragment correlation id (1-based build index).
    pub fragment: u64,
    /// Sum of this fragment's [`FRAGMENT_SPAN`] durations (retries add up), µs.
    pub total_us: f64,
    /// Per-stage durations inside this lane (`pipeline.encode` …), µs.
    pub stages: BTreeMap<String, f64>,
}

/// The full analysis of one trace.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Span of timestamps across all lanes, µs.
    pub wall_us: f64,
    /// Per-span-name aggregates over the worker lanes.
    pub stages: BTreeMap<String, StageStat>,
    /// Instant counts per name over the worker lanes.
    pub instants: BTreeMap<String, u64>,
    /// Per-worker occupancy.
    pub workers: Vec<WorkerStat>,
    /// Per-fragment lanes, ordered by fragment id.
    pub fragments: Vec<FragmentPath>,
    /// Serial critical path: the sum of all fragments' pipeline spans, µs.
    /// (The supervisor builds fragments sequentially, so the end-to-end
    /// path of a build is every fragment's encode→…→rmsd chain laid
    /// end to end.)
    pub critical_path_us: f64,
    /// The single longest fragment, µs.
    pub slowest_fragment_us: f64,
    /// Events dropped by ring wraparound (analysis is partial if nonzero).
    pub dropped: u64,
}

struct Frame<'a> {
    name: &'a str,
    ts: f64,
    child_us: f64,
}

/// Replays one lane's events, accumulating per-name span statistics.
/// Returns `(stats, instants, busy_us)`; errors on unbalanced lanes.
#[allow(clippy::type_complexity)]
fn replay(
    events: &[&ChromeEvent],
) -> Result<(BTreeMap<String, StageStat>, BTreeMap<String, u64>, f64), String> {
    let mut stats: BTreeMap<String, StageStat> = BTreeMap::new();
    let mut instants: BTreeMap<String, u64> = BTreeMap::new();
    let mut stack: Vec<Frame> = Vec::new();
    let mut busy_us = 0.0;
    for ev in events {
        match ev.ph.as_str() {
            "B" => stack.push(Frame {
                name: &ev.name,
                ts: ev.ts,
                child_us: 0.0,
            }),
            "E" => {
                let frame = stack
                    .pop()
                    .filter(|f| f.name == ev.name)
                    .ok_or_else(|| format!("unbalanced end of {:?}", ev.name))?;
                let dur = ev.ts - frame.ts;
                let stat = stats.entry(ev.name.clone()).or_default();
                stat.count += 1;
                stat.total_us += dur;
                stat.self_us += dur - frame.child_us;
                match stack.last_mut() {
                    Some(parent) => parent.child_us += dur,
                    None => busy_us += dur,
                }
            }
            "i" => *instants.entry(ev.name.clone()).or_default() += 1,
            _ => {}
        }
    }
    if let Some(open) = stack.last() {
        return Err(format!("span {:?} never closed", open.name));
    }
    Ok((stats, instants, busy_us))
}

/// Analyzes a validated trace. Lanes that dropped events are replayed
/// best-effort (their unbalanced spans are skipped rather than fatal).
pub fn analyze(file: &ChromeTraceFile) -> Result<TraceReport, String> {
    let lanes = lanes(file);
    let mut min_ts = f64::INFINITY;
    let mut max_ts = f64::NEG_INFINITY;
    for events in lanes.values() {
        for ev in events {
            min_ts = min_ts.min(ev.ts);
            max_ts = max_ts.max(ev.ts);
        }
    }
    let wall_us = if max_ts > min_ts {
        max_ts - min_ts
    } else {
        0.0
    };

    let mut stages: BTreeMap<String, StageStat> = BTreeMap::new();
    let mut instants: BTreeMap<String, u64> = BTreeMap::new();
    let mut workers = Vec::new();
    let mut fragments = Vec::new();

    for ((pid, tid), events) in &lanes {
        let dropped_here = if *pid == PID_FRAGMENTS {
            file.qdb.dropped
        } else {
            file.qdb
                .tracks
                .iter()
                .find(|t| t.pid == *pid && t.tid == *tid)
                .map_or(0, |t| t.dropped)
        };
        let replayed = match replay(events) {
            Ok(r) => r,
            Err(e) if dropped_here > 0 => {
                // Wraparound truncated this lane; salvage instants only.
                let _ = e;
                let mut inst = BTreeMap::new();
                for ev in events.iter().filter(|e| e.ph == "i") {
                    *inst.entry(ev.name.clone()).or_default() += 1;
                }
                (BTreeMap::new(), inst, 0.0)
            }
            Err(e) => return Err(format!("{}: {e}", lane_label(*pid, *tid, file))),
        };
        let (lane_stats, lane_instants, busy_us) = replayed;
        if *pid == PID_FRAGMENTS {
            let total_us = lane_stats.get(FRAGMENT_SPAN).map_or(0.0, |s| s.total_us);
            let stage_breakdown = lane_stats
                .iter()
                .filter(|(name, _)| {
                    name.starts_with(STAGE_PREFIX) && name.as_str() != FRAGMENT_SPAN
                })
                .map(|(name, stat)| (name.clone(), stat.total_us))
                .collect();
            fragments.push(FragmentPath {
                fragment: *tid,
                total_us,
                stages: stage_breakdown,
            });
        } else {
            for (name, stat) in lane_stats {
                let agg = stages.entry(name).or_default();
                agg.count += stat.count;
                agg.total_us += stat.total_us;
                agg.self_us += stat.self_us;
            }
            for (name, n) in lane_instants {
                *instants.entry(name).or_default() += n;
            }
            workers.push(WorkerStat {
                tid: *tid,
                thread: file
                    .qdb
                    .tracks
                    .iter()
                    .find(|t| t.pid == *pid && t.tid == *tid)
                    .map_or_else(|| format!("thread-{tid}"), |t| t.thread.clone()),
                busy_us,
                occupancy: if wall_us > 0.0 {
                    busy_us / wall_us
                } else {
                    0.0
                },
            });
        }
    }

    let critical_path_us = fragments.iter().map(|f| f.total_us).sum();
    let slowest_fragment_us = fragments.iter().map(|f| f.total_us).fold(0.0, f64::max);
    Ok(TraceReport {
        wall_us,
        stages,
        instants,
        workers,
        fragments,
        critical_path_us,
        slowest_fragment_us,
        dropped: file.qdb.dropped,
    })
}

fn ms(us: f64) -> f64 {
    us / 1_000.0
}

fn pct(part: f64, whole: f64) -> f64 {
    if whole > 0.0 {
        100.0 * part / whole
    } else {
        0.0
    }
}

/// Renders the report as the text `trace_report` prints.
pub fn render_report(report: &TraceReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "wall {:.2} ms over {} worker lane(s) and {} fragment lane(s); {} event(s) dropped\n",
        ms(report.wall_us),
        report.workers.len(),
        report.fragments.len(),
        report.dropped
    ));

    out.push_str("\nper-stage (worker lanes; self = total minus child spans):\n");
    let mut rows: Vec<(&String, &StageStat)> = report.stages.iter().collect();
    rows.sort_by(|a, b| b.1.self_us.total_cmp(&a.1.self_us));
    out.push_str(&format!(
        "  {:<24} {:>7} {:>12} {:>12} {:>7}\n",
        "span", "count", "total(ms)", "self(ms)", "self%"
    ));
    for (name, stat) in rows {
        out.push_str(&format!(
            "  {:<24} {:>7} {:>12.2} {:>12.2} {:>6.1}%\n",
            name,
            stat.count,
            ms(stat.total_us),
            ms(stat.self_us),
            pct(stat.self_us, report.wall_us)
        ));
    }

    if !report.instants.is_empty() {
        out.push_str("\ninstants:\n");
        for (name, n) in &report.instants {
            out.push_str(&format!("  {name:<24} {n:>7}\n"));
        }
    }

    out.push_str("\nworker occupancy:\n");
    for w in &report.workers {
        out.push_str(&format!(
            "  lane {:<3} {:<18} busy {:>10.2} ms ({:>5.1}%)\n",
            w.tid,
            w.thread,
            ms(w.busy_us),
            100.0 * w.occupancy
        ));
    }

    out.push_str(&format!(
        "\ncritical path ({} fragment pipelines end to end): {:.2} ms ({:.1}% of wall)\n",
        report.fragments.len(),
        ms(report.critical_path_us),
        pct(report.critical_path_us, report.wall_us)
    ));
    for f in &report.fragments {
        let breakdown: Vec<String> = f
            .stages
            .iter()
            .map(|(name, us)| {
                format!(
                    "{} {:.1}",
                    name.strip_prefix(STAGE_PREFIX).unwrap_or(name),
                    ms(*us)
                )
            })
            .collect();
        out.push_str(&format!(
            "  fragment {:<3} {:>10.2} ms  [{}]\n",
            f.fragment,
            ms(f.total_us),
            breakdown.join(", ")
        ));
    }
    out.push_str(&format!(
        "  slowest fragment: {:.2} ms\n",
        ms(report.slowest_fragment_us)
    ));
    out
}

/// Invariant check for a complete (drop-free) trace: the serial critical
/// path can't exceed the wall and can't be shorter than its own longest
/// fragment. Returns problems; empty = holds.
pub fn check_invariants(report: &TraceReport) -> Vec<String> {
    let mut problems = Vec::new();
    // Float slack: span edges are µs-rounded independently.
    let slack = 1.0 + report.wall_us * 1e-9;
    if report.critical_path_us > report.wall_us + slack {
        problems.push(format!(
            "critical path {:.1} µs exceeds wall {:.1} µs",
            report.critical_path_us, report.wall_us
        ));
    }
    if report.slowest_fragment_us > report.critical_path_us + slack {
        problems.push(format!(
            "slowest fragment {:.1} µs exceeds critical path {:.1} µs",
            report.slowest_fragment_us, report.critical_path_us
        ));
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_telemetry::export::chrome::chrome_trace;
    use qdb_telemetry::trace::{correlate, TraceConfig, TraceRecorder};
    use qdb_telemetry::EventKind;

    /// Two sequential fragments with nested stage spans plus an
    /// uncorrelated maintenance instant, all on one thread.
    fn sample_file() -> ChromeTraceFile {
        let rec = TraceRecorder::new(TraceConfig {
            events_per_thread: 256,
        });
        for (frag, base) in [(1u64, 0u64), (2, 10_000)] {
            let _c = correlate(frag);
            rec.event(EventKind::Begin, FRAGMENT_SPAN, base + 1_000);
            rec.event(EventKind::Begin, "pipeline.encode", base + 1_000);
            rec.event(EventKind::End, "pipeline.encode", base + 2_000);
            rec.event(EventKind::Begin, "pipeline.vqe", base + 2_000);
            rec.event(EventKind::Instant, "supervisor.retry", base + 3_000);
            rec.event(EventKind::End, "pipeline.vqe", base + 5_000);
            rec.event(EventKind::End, FRAGMENT_SPAN, base + 6_000);
        }
        rec.event(EventKind::Instant, "store.fsync", 20_000);
        chrome_trace(&rec.dump())
    }

    #[test]
    fn sample_trace_validates_clean() {
        assert_eq!(validate_trace(&sample_file()), Vec::<String>::new());
    }

    #[test]
    fn validation_flags_imbalance_and_time_travel() {
        let mut file = sample_file();
        // Clone a begin event to the tail of its lane: now unbalanced AND
        // (because its ts precedes the lane's last event) non-monotone.
        let extra = file
            .traceEvents
            .iter()
            .find(|e| e.ph == "B" && e.pid == PID_WORKERS)
            .unwrap()
            .clone();
        file.traceEvents.push(extra);
        // Keep the metadata's event counts honest.
        file.qdb.tracks[0].events += 1;
        let problems = validate_trace(&file);
        assert!(
            problems.iter().any(|p| p.contains("never closed")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("timestamp regression")),
            "{problems:?}"
        );
    }

    #[test]
    fn validation_flags_drop_miscount() {
        let mut file = sample_file();
        file.qdb.dropped = 7; // no per-track drops to back it
        let problems = validate_trace(&file);
        assert!(
            problems.iter().any(|p| p.contains("drop accounting")),
            "{problems:?}"
        );
    }

    #[test]
    fn analysis_computes_self_time_occupancy_and_critical_path() {
        let report = analyze(&sample_file()).unwrap();
        // Wall: 1_000 ns → 20_000 ns = 19 µs.
        assert!((report.wall_us - 19.0).abs() < 1e-9, "{}", report.wall_us);
        // Each fragment span is 5 µs; encode 1 µs + vqe 3 µs nested, so
        // fragment self time is 5 − 4 = 1 µs per fragment.
        let frag = &report.stages[FRAGMENT_SPAN];
        assert_eq!(frag.count, 2);
        assert!((frag.total_us - 10.0).abs() < 1e-9);
        assert!((frag.self_us - 2.0).abs() < 1e-9);
        // Two fragment lanes of 5 µs each → 10 µs serial critical path,
        // under the wall, at least the slowest (5 µs) fragment.
        assert_eq!(report.fragments.len(), 2);
        assert!((report.critical_path_us - 10.0).abs() < 1e-9);
        assert!((report.slowest_fragment_us - 5.0).abs() < 1e-9);
        assert_eq!(check_invariants(&report), Vec::<String>::new());
        // Stage breakdown inside a fragment lane.
        let stages = &report.fragments[0].stages;
        assert!((stages["pipeline.encode"] - 1.0).abs() < 1e-9);
        assert!((stages["pipeline.vqe"] - 3.0).abs() < 1e-9);
        // The lone worker is busy 10 of 19 µs.
        assert_eq!(report.workers.len(), 1);
        assert!((report.workers[0].busy_us - 10.0).abs() < 1e-9);
        // Instants counted; correlated one appears on the worker lane once.
        assert_eq!(report.instants["supervisor.retry"], 2);
        assert_eq!(report.instants["store.fsync"], 1);
        // Render shape sanity.
        let text = render_report(&report);
        assert!(text.contains("critical path"));
        assert!(text.contains("pipeline.vqe"));
    }

    #[test]
    fn invariant_check_catches_impossible_paths() {
        let mut report = analyze(&sample_file()).unwrap();
        report.critical_path_us = report.wall_us * 2.0;
        assert!(!check_invariants(&report).is_empty());
        report.critical_path_us = 0.5;
        report.slowest_fragment_us = 100.0;
        assert!(!check_invariants(&report).is_empty());
    }
}
