//! # qdb-bench
//!
//! The experiment harness: one binary per paper table/figure (see
//! DESIGN.md §4) plus Criterion performance benches. This library holds
//! the shared driver code.

pub mod fleet;
pub mod perf;
pub mod trace;

use qdockbank::evaluation::FragmentComparison;
use qdockbank::fragments::{all_fragments, fragment, fragments_in, FragmentRecord, Group};
use qdockbank::pipeline::{PipelineConfig, Preset};
use qdockbank::report::GroupTableRow;

/// Reads the preset from `QDB_PRESET` (`paper` or `fast`, default fast).
pub fn preset_from_env() -> PipelineConfig {
    match std::env::var("QDB_PRESET").as_deref() {
        Ok("paper") => PipelineConfig::paper(),
        _ => PipelineConfig::fast(),
    }
}

/// Human-readable preset tag.
pub fn preset_name(config: &PipelineConfig) -> &'static str {
    match config.preset {
        Preset::Paper => "paper",
        Preset::Fast => "fast",
    }
}

/// Resolves CLI selectors into manifest records: each argument is a group
/// (`S`/`M`/`L`/`all`) or a PDB id; no arguments = `default`.
pub fn select_records(args: &[String], default: &str) -> Vec<&'static FragmentRecord> {
    let tokens: Vec<String> = if args.is_empty() {
        vec![default.to_string()]
    } else {
        args.to_vec()
    };
    let mut out: Vec<&'static FragmentRecord> = Vec::new();
    for token in tokens {
        match token.as_str() {
            "all" => out.extend(all_fragments()),
            "S" => out.extend(fragments_in(Group::S)),
            "M" => out.extend(fragments_in(Group::M)),
            "L" => out.extend(fragments_in(Group::L)),
            id => match fragment(id) {
                Some(r) => out.push(r),
                None => {
                    eprintln!("unknown selector {id:?} (use S, M, L, all, or a PDB id)");
                    std::process::exit(1);
                }
            },
        }
    }
    out.dedup_by_key(|r| r.pdb_id);
    out
}

/// Runs comparisons with progress logging on stderr.
pub fn run_comparisons(
    records: &[&'static FragmentRecord],
    config: &PipelineConfig,
) -> Vec<FragmentComparison> {
    let mut out = Vec::with_capacity(records.len());
    for (i, record) in records.iter().enumerate() {
        // 1-based correlation id, mirrored by the flight recorder onto a
        // per-fragment track when one is installed.
        let _corr = qdb_telemetry::trace::correlate(i as u64 + 1);
        eprintln!(
            "[{}/{}] {} ({}, {} aa)…",
            i + 1,
            records.len(),
            record.pdb_id,
            record.group().name(),
            record.len()
        );
        out.push(FragmentComparison::run(record, config).expect("fault-free run"));
    }
    out
}

/// Converts comparisons into Tables 1–3 rows.
pub fn group_rows(comparisons: &[FragmentComparison], group: Group) -> Vec<GroupTableRow> {
    comparisons
        .iter()
        .filter(|c| c.record.group() == group)
        .map(|c| GroupTableRow {
            record: c.record,
            quantum: c.qdock.quantum.clone(),
        })
        .collect()
}
