//! Shared engine-benchmark driver: one full VQE energy evaluation
//! (EfficientSU2 reps 2, linear entanglement, diagonal expectation)
//! through the direct gate-by-gate simulator and through the compiled
//! plan + workspace, at 10/16/22 qubits. Samples go through a
//! [`qdb_telemetry::Histogram`], so the reported p50/p99/max carry the
//! same ≤1/32 bucket error as every other duration in a telemetry
//! snapshot.
//!
//! Two consumers: `perf_statevector` (runs it and commits the report as
//! `BENCH_statevector.json`) and `bench_gate` (runs it fresh and fails
//! CI when the fresh medians regress past tolerance against that
//! committed baseline).

use qdb_quantum::ansatz::{efficient_su2, Entanglement};
use qdb_quantum::compile::CompiledCircuit;
use qdb_quantum::exec::SimWorkspace;
use qdb_quantum::statevector::Statevector;
use qdb_telemetry::HistogramSnapshot;
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

/// Qubit widths the engine benchmark sweeps.
pub const BENCH_QUBITS: [usize; 3] = [10, 16, 22];

/// Distribution of per-evaluation times (ns) over `reps` timed runs of
/// `f` after `warmup` untimed runs, accumulated in a telemetry histogram.
pub fn timing_hist(warmup: usize, reps: usize, mut f: impl FnMut() -> f64) -> HistogramSnapshot {
    for _ in 0..warmup {
        black_box(f());
    }
    let hist = qdb_telemetry::Histogram::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        hist.record(t0.elapsed().as_nanos() as u64);
    }
    hist.snapshot()
}

/// One qubit-width's engine comparison.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineRow {
    /// Register width.
    pub qubits: usize,
    /// Direct gate-by-gate evaluation, median ns.
    pub direct_median_ns: u64,
    /// Direct evaluation, p99 ns.
    pub direct_p99_ns: u64,
    /// Direct evaluation, max ns.
    pub direct_max_ns: u64,
    /// Compiled-plan evaluation, median ns.
    pub compiled_median_ns: u64,
    /// Compiled evaluation, p99 ns.
    pub compiled_p99_ns: u64,
    /// Compiled evaluation, max ns.
    pub compiled_max_ns: u64,
    /// direct/compiled median ratio.
    pub speedup: f64,
    /// Instruction count of the direct circuit.
    pub passes_direct: usize,
    /// Pass count of the compiled plan.
    pub passes_compiled: usize,
}

/// The whole benchmark report (the `BENCH_statevector.json` schema).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchReport {
    /// Benchmark identifier.
    pub benchmark: String,
    /// Circuit family measured.
    pub ansatz: String,
    /// Rayon worker count at measurement time.
    pub threads: usize,
    /// Quantile estimation caveat.
    pub quantiles: String,
    /// Per-width rows.
    pub rows: Vec<EngineRow>,
}

/// Measures one row of the engine comparison at `qubits` wide.
pub fn measure_row(qubits: usize) -> EngineRow {
    let circuit = efficient_su2(qubits, 2, Entanglement::Linear);
    let params: Vec<f64> = (0..circuit.num_params())
        .map(|i| 0.1 + 0.01 * i as f64)
        .collect();
    let diag: Vec<f64> = (0..1u64 << qubits).map(|i| (i % 997) as f64).collect();
    // Fewer reps at the widest register — one 22-qubit evaluation moves
    // 4M amplitudes through every pass.
    let (warmup, reps) = if qubits >= 20 { (2, 9) } else { (5, 31) };

    let direct = timing_hist(warmup, reps, || {
        let mut sv = Statevector::zero(qubits);
        sv.apply_parametric(&circuit, &params);
        sv.expectation_diagonal(&diag)
    });

    let compiled = CompiledCircuit::compile(&circuit);
    let mut ws = SimWorkspace::new(qubits);
    let fused = timing_hist(warmup, reps, || ws.energy(&compiled, &params, &diag));

    EngineRow {
        qubits,
        direct_median_ns: direct.p50,
        direct_p99_ns: direct.p99,
        direct_max_ns: direct.max,
        compiled_median_ns: fused.p50,
        compiled_p99_ns: fused.p99,
        compiled_max_ns: fused.max,
        speedup: direct.p50 as f64 / fused.p50 as f64,
        passes_direct: circuit.instructions().len(),
        passes_compiled: compiled.num_passes(),
    }
}

/// Runs the full sweep and assembles a report.
pub fn run_engine_bench() -> BenchReport {
    BenchReport {
        benchmark: "energy_evaluation_engine".to_string(),
        ansatz: "efficient_su2(reps=2, linear)".to_string(),
        threads: rayon::current_num_threads(),
        quantiles: "qdb-telemetry log-linear histogram, <=1/32 relative error".to_string(),
        rows: BENCH_QUBITS.iter().map(|&q| measure_row(q)).collect(),
    }
}

/// Writes `report` as pretty JSON to `path`.
pub fn write_report(path: &Path, report: &BenchReport) -> std::io::Result<()> {
    std::fs::write(
        path,
        serde_json::to_string_pretty(report).expect("bench report serializes"),
    )
}

/// Reads a committed report back.
pub fn read_report(path: &Path) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// One gate comparison: a fresh median vs the committed baseline median.
#[derive(Clone, Debug)]
pub struct GateCheck {
    /// Register width.
    pub qubits: usize,
    /// Which engine's median this row gates.
    pub engine: &'static str,
    /// Committed baseline median, ns.
    pub baseline_ns: u64,
    /// Freshly measured median, ns.
    pub fresh_ns: u64,
    /// fresh/baseline.
    pub ratio: f64,
}

impl GateCheck {
    /// Whether this row regressed past `tolerance` (e.g. `0.25` = +25%).
    pub fn regressed(&self, tolerance: f64) -> bool {
        self.ratio > 1.0 + tolerance
    }
}

/// Pairs fresh rows against baseline rows by qubit count, yielding one
/// check per (width, engine). A width present in the baseline but not in
/// the fresh run (or vice versa) is an error — the sweep definitions
/// drifted apart.
pub fn gate_checks(baseline: &BenchReport, fresh: &BenchReport) -> Result<Vec<GateCheck>, String> {
    let mut checks = Vec::new();
    for fresh_row in &fresh.rows {
        let base_row = baseline
            .rows
            .iter()
            .find(|r| r.qubits == fresh_row.qubits)
            .ok_or_else(|| format!("baseline has no {}-qubit row", fresh_row.qubits))?;
        for (engine, base_ns, fresh_ns) in [
            (
                "compiled",
                base_row.compiled_median_ns,
                fresh_row.compiled_median_ns,
            ),
            (
                "direct",
                base_row.direct_median_ns,
                fresh_row.direct_median_ns,
            ),
        ] {
            checks.push(GateCheck {
                qubits: fresh_row.qubits,
                engine,
                baseline_ns: base_ns,
                fresh_ns,
                ratio: fresh_ns as f64 / base_ns.max(1) as f64,
            });
        }
    }
    for base_row in &baseline.rows {
        if !fresh.rows.iter().any(|r| r.qubits == base_row.qubits) {
            return Err(format!("fresh run has no {}-qubit row", base_row.qubits));
        }
    }
    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(medians: &[(usize, u64, u64)]) -> BenchReport {
        BenchReport {
            benchmark: "energy_evaluation_engine".to_string(),
            ansatz: "test".to_string(),
            threads: 1,
            quantiles: "test".to_string(),
            rows: medians
                .iter()
                .map(|&(qubits, direct, compiled)| EngineRow {
                    qubits,
                    direct_median_ns: direct,
                    direct_p99_ns: direct,
                    direct_max_ns: direct,
                    compiled_median_ns: compiled,
                    compiled_p99_ns: compiled,
                    compiled_max_ns: compiled,
                    speedup: direct as f64 / compiled as f64,
                    passes_direct: 10,
                    passes_compiled: 3,
                })
                .collect(),
        }
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_past_it() {
        let baseline = report_with(&[(10, 1_000, 400)]);
        let ok = report_with(&[(10, 1_200, 480)]); // +20%
        let bad = report_with(&[(10, 1_000, 520)]); // compiled +30%
        let checks = gate_checks(&baseline, &ok).unwrap();
        assert!(checks.iter().all(|c| !c.regressed(0.25)));
        let checks = gate_checks(&baseline, &bad).unwrap();
        assert!(checks
            .iter()
            .any(|c| c.engine == "compiled" && c.regressed(0.25)));
        // A faster fresh run never trips the gate.
        let fast = report_with(&[(10, 500, 200)]);
        assert!(gate_checks(&baseline, &fast)
            .unwrap()
            .iter()
            .all(|c| !c.regressed(0.25)));
    }

    #[test]
    fn mismatched_sweeps_are_an_error() {
        let baseline = report_with(&[(10, 1_000, 400), (16, 2_000, 800)]);
        let fresh = report_with(&[(10, 1_000, 400)]);
        assert!(gate_checks(&baseline, &fresh).is_err());
        assert!(gate_checks(&fresh, &baseline).is_err());
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = report_with(&[(10, 1_000, 400)]);
        let text = serde_json::to_string_pretty(&report).unwrap();
        let back: BenchReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.rows.len(), 1);
        assert_eq!(back.rows[0].compiled_median_ns, 400);
    }
}
