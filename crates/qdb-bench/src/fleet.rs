//! Fleet-level trace analysis: merge every worker's flight-recorder
//! dump under a build root into one Perfetto-loadable file, then read
//! fleet structure out of it — per-worker occupancy, per-shard load
//! with straggler ranking, and the cross-worker critical path.
//!
//! Attribution never parses event `args`: worker lanes carry their
//! owner in the merged track's `<worker>/<thread>` name, and fragment
//! lanes carry `(worker index + 1, correlation arg)` in the tid, whose
//! fragment field still encodes the shard band
//! (`(shard+1)·10⁶ + build index`, see `qdockbank::shard`).

use crate::trace::{analyze, TraceReport};
use qdb_telemetry::export::chrome::{read_chrome_trace, split_fleet_fragment_tid, ChromeTraceFile};
use qdb_telemetry::trace::lane_fragment;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Filename prefix of per-worker trace dumps under `telemetry/`.
pub const TRACE_PREFIX: &str = "trace-";

/// Default filename the merged fleet trace is written to under a root.
pub const FLEET_TRACE_FILE: &str = "fleet_trace.json";

/// Reads every per-worker trace dump under `root/telemetry/` as
/// `(worker id, trace)` pairs, sorted by worker id. A missing
/// directory is an empty fleet, not an error.
pub fn collect_worker_traces(root: &Path) -> Result<Vec<(String, ChromeTraceFile)>, String> {
    let dir = root.join(qdb_store::TELEMETRY_DIR);
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(_) => return Ok(Vec::new()),
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    let mut out = Vec::new();
    for path in paths {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(worker) = name
            .strip_prefix(TRACE_PREFIX)
            .and_then(|s| s.strip_suffix(".json"))
        else {
            continue;
        };
        let file = read_chrome_trace(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((worker.to_string(), file));
    }
    Ok(out)
}

/// One worker's share of a merged fleet trace.
#[derive(Clone, Debug)]
pub struct FleetWorkerStat {
    /// Worker id (from the merged process/track names).
    pub worker: String,
    /// Thread lanes this worker contributed.
    pub lanes: usize,
    /// Time covered by its top-level spans, µs, summed over its lanes.
    pub busy_us: f64,
    /// `busy_us` over the fleet wall (0 when the wall is empty).
    pub occupancy: f64,
    /// Fragment lanes attributed to this worker.
    pub fragments: usize,
    /// Sum of its fragments' pipeline spans, µs — the worker's serial
    /// chain (each worker builds its fragments sequentially).
    pub fragment_us: f64,
}

/// One shard's fragment-time total across the fleet.
#[derive(Clone, Debug)]
pub struct ShardLoad {
    /// Shard index (decoded from the fragment lane band).
    pub shard: u64,
    /// Worker(s) whose lanes carried the shard's fragments (more than
    /// one after a mid-shard steal), `+`-joined.
    pub workers: String,
    /// Fragments journaled on this shard's lanes.
    pub fragments: usize,
    /// Sum of the shard's fragment pipeline spans, µs.
    pub total_us: f64,
}

/// The fleet-level analysis of a merged trace.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Span of timestamps across all merged lanes, µs.
    pub wall_us: f64,
    /// Per-worker stats, sorted by worker id.
    pub workers: Vec<FleetWorkerStat>,
    /// Per-shard load, slowest first — `shards[0]` is the straggler.
    pub shards: Vec<ShardLoad>,
    /// Straggler skew: slowest shard's total over the mean shard total
    /// (1.0 = perfectly balanced; 0.0 when no shard bands were seen).
    pub skew: f64,
    /// Cross-worker critical path, µs: workers run concurrently, so the
    /// fleet's end-to-end lower bound is the slowest worker's serial
    /// fragment chain.
    pub critical_path_us: f64,
    /// Events dropped by ring wraparound across all inputs.
    pub dropped: u64,
}

/// Analyzes a merged fleet trace. `worker_ids` is the merge input order
/// (worker `i` of the merge owns fragment lanes packed with index
/// `i + 1`); lane owners are cross-checked against the track names.
pub fn analyze_fleet(file: &ChromeTraceFile, worker_ids: &[String]) -> Result<FleetReport, String> {
    let report: TraceReport = analyze(file)?;
    let mut workers: BTreeMap<String, FleetWorkerStat> = BTreeMap::new();
    let stat_for = |map: &mut BTreeMap<String, FleetWorkerStat>, id: &str| {
        map.entry(id.to_string())
            .or_insert_with(|| FleetWorkerStat {
                worker: id.to_string(),
                lanes: 0,
                busy_us: 0.0,
                occupancy: 0.0,
                fragments: 0,
                fragment_us: 0.0,
            });
    };
    for id in worker_ids {
        stat_for(&mut workers, id);
    }
    // Worker lanes: a merged track is named "<worker>/<thread>" (worker
    // ids are sanitized filenames, so the first '/' is the separator).
    for lane in &report.workers {
        let owner = lane.thread.split('/').next().unwrap_or("").to_string();
        stat_for(&mut workers, &owner);
        let stat = workers.get_mut(&owner).expect("inserted above");
        stat.lanes += 1;
        stat.busy_us += lane.busy_us;
    }
    // Fragment lanes: worker index from the tid packing, shard from the
    // correlation arg's fragment band.
    let mut shard_loads: BTreeMap<u64, (BTreeSet<String>, usize, f64)> = BTreeMap::new();
    for frag in &report.fragments {
        let (index_plus_one, arg) = split_fleet_fragment_tid(frag.fragment);
        let owner = if index_plus_one >= 1 {
            worker_ids
                .get(index_plus_one as usize - 1)
                .cloned()
                .unwrap_or_else(|| format!("worker-{index_plus_one}"))
        } else {
            // Unmerged single-process file: everything is one worker.
            worker_ids
                .first()
                .cloned()
                .unwrap_or_else(|| "worker".to_string())
        };
        stat_for(&mut workers, &owner);
        let stat = workers.get_mut(&owner).expect("inserted above");
        stat.fragments += 1;
        stat.fragment_us += frag.total_us;
        let field = lane_fragment(arg);
        if field > 1_000_000 {
            let shard = field / 1_000_000 - 1;
            let load = shard_loads
                .entry(shard)
                .or_insert_with(|| (BTreeSet::new(), 0, 0.0));
            load.0.insert(owner);
            load.1 += 1;
            load.2 += frag.total_us;
        }
    }

    let wall_us = report.wall_us;
    let mut worker_stats: Vec<FleetWorkerStat> = workers.into_values().collect();
    for w in &mut worker_stats {
        w.occupancy = if wall_us > 0.0 {
            w.busy_us / wall_us
        } else {
            0.0
        };
    }
    let critical_path_us = worker_stats
        .iter()
        .map(|w| w.fragment_us)
        .fold(0.0, f64::max);

    let mut shards: Vec<ShardLoad> = shard_loads
        .into_iter()
        .map(|(shard, (owners, fragments, total_us))| ShardLoad {
            shard,
            workers: owners.into_iter().collect::<Vec<_>>().join("+"),
            fragments,
            total_us,
        })
        .collect();
    shards.sort_by(|a, b| {
        b.total_us
            .total_cmp(&a.total_us)
            .then(a.shard.cmp(&b.shard))
    });
    let skew = if shards.is_empty() {
        0.0
    } else {
        let mean = shards.iter().map(|s| s.total_us).sum::<f64>() / shards.len() as f64;
        if mean > 0.0 {
            shards[0].total_us / mean
        } else {
            0.0
        }
    };

    Ok(FleetReport {
        wall_us,
        workers: worker_stats,
        shards,
        skew,
        critical_path_us,
        dropped: file.qdb.dropped,
    })
}

fn ms(us: f64) -> f64 {
    us / 1_000.0
}

/// Renders the fleet report as the text `fleet_report` prints.
pub fn render_fleet_report(report: &FleetReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fleet wall {:.2} ms over {} worker(s), {} shard band(s); {} event(s) dropped\n",
        ms(report.wall_us),
        report.workers.len(),
        report.shards.len(),
        report.dropped
    ));

    out.push_str("\nworker occupancy:\n");
    for w in &report.workers {
        out.push_str(&format!(
            "  {:<16} {} lane(s)  busy {:>10.2} ms ({:>5.1}%)  {} fragment(s) / {:>10.2} ms serial\n",
            w.worker,
            w.lanes,
            ms(w.busy_us),
            100.0 * w.occupancy,
            w.fragments,
            ms(w.fragment_us)
        ));
    }

    if !report.shards.is_empty() {
        out.push_str("\nshard load (slowest first):\n");
        for s in &report.shards {
            out.push_str(&format!(
                "  shard {:<3} {:<16} {} fragment(s) {:>10.2} ms\n",
                s.shard,
                s.workers,
                s.fragments,
                ms(s.total_us)
            ));
        }
        let straggler = &report.shards[0];
        out.push_str(&format!(
            "  straggler: shard {} ({}, {:.2} ms, {:.2}x the mean shard)\n",
            straggler.shard,
            straggler.workers,
            ms(straggler.total_us),
            report.skew
        ));
    }

    out.push_str(&format!(
        "\ncross-worker critical path (slowest worker's serial chain): {:.2} ms\n",
        ms(report.critical_path_us)
    ));
    out
}

/// Fleet invariants over a drop-free merged trace: no worker's serial
/// chain exceeds the wall, and the straggler shard fits inside some
/// worker's chain. Returns problems; empty = holds.
pub fn check_fleet_invariants(report: &FleetReport) -> Vec<String> {
    let mut problems = Vec::new();
    let slack = 1.0 + report.wall_us * 1e-9;
    if report.critical_path_us > report.wall_us + slack {
        problems.push(format!(
            "critical path {:.1} µs exceeds fleet wall {:.1} µs",
            report.critical_path_us, report.wall_us
        ));
    }
    if let Some(straggler) = report.shards.first() {
        let total_chain: f64 = report.workers.iter().map(|w| w.fragment_us).sum();
        if straggler.total_us > total_chain + slack {
            problems.push(format!(
                "straggler shard {} ({:.1} µs) exceeds every worker chain combined ({:.1} µs)",
                straggler.shard, straggler.total_us, total_chain
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{validate_trace, FRAGMENT_SPAN};
    use qdb_telemetry::export::chrome::{chrome_trace, merge_chrome_traces};
    use qdb_telemetry::trace::{correlate, pack_lane, worker_ordinal, TraceConfig, TraceRecorder};
    use qdb_telemetry::EventKind;

    /// One worker's recording: `shards` fragment builds, `span_us` µs of
    /// pipeline span each, on that worker's packed lanes.
    fn worker_trace(worker_id: &str, shards: &[(u64, u64)]) -> ChromeTraceFile {
        let rec = TraceRecorder::new(TraceConfig {
            events_per_thread: 256,
        });
        let ordinal = worker_ordinal(worker_id);
        let mut ts = 0u64;
        for &(shard, span_us) in shards {
            let lane = pack_lane(ordinal, (shard + 1) * 1_000_000 + 1);
            let _c = correlate(lane);
            rec.event(EventKind::Begin, FRAGMENT_SPAN, ts * 1_000);
            rec.event(EventKind::End, FRAGMENT_SPAN, (ts + span_us) * 1_000);
            ts += span_us + 1;
        }
        chrome_trace(&rec.dump())
    }

    #[test]
    fn fleet_analysis_ranks_the_straggler_and_attributes_workers() {
        let parts = vec![
            ("w0".to_string(), worker_trace("w0", &[(0, 5), (2, 4)])),
            ("w1".to_string(), worker_trace("w1", &[(1, 30)])),
        ];
        let merged = merge_chrome_traces(&parts).unwrap();
        assert_eq!(validate_trace(&merged), Vec::<String>::new());
        let ids: Vec<String> = parts.iter().map(|(id, _)| id.clone()).collect();
        let report = analyze_fleet(&merged, &ids).unwrap();

        assert_eq!(report.workers.len(), 2);
        let w0 = report.workers.iter().find(|w| w.worker == "w0").unwrap();
        let w1 = report.workers.iter().find(|w| w.worker == "w1").unwrap();
        assert_eq!(w0.fragments, 2);
        assert_eq!(w1.fragments, 1);
        assert!((w0.fragment_us - 9.0).abs() < 1e-9, "{}", w0.fragment_us);
        assert!((w1.fragment_us - 30.0).abs() < 1e-9, "{}", w1.fragment_us);

        // Shard 1 (w1's 30 µs) is the straggler, ahead of shards 0 and 2.
        assert_eq!(report.shards.len(), 3);
        assert_eq!(report.shards[0].shard, 1);
        assert_eq!(report.shards[0].workers, "w1");
        assert!(report.skew > 1.5, "{}", report.skew);

        // The fleet's critical path is w1's serial chain.
        assert!((report.critical_path_us - 30.0).abs() < 1e-9);
        assert_eq!(check_fleet_invariants(&report), Vec::<String>::new());

        let text = render_fleet_report(&report);
        assert!(text.contains("straggler: shard 1"), "{text}");
        assert!(text.contains("w1"), "{text}");
    }
}
