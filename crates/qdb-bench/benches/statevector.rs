//! Statevector simulator performance: gate application and diagonal
//! expectation scaling with register width (the VQE hot path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdb_quantum::ansatz::{efficient_su2, Entanglement};
use qdb_quantum::compile::CompiledCircuit;
use qdb_quantum::exec::SimWorkspace;
use qdb_quantum::statevector::Statevector;
use std::hint::black_box;

fn bench_ansatz_evolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("ansatz_evolution");
    group.sample_size(10);
    for qubits in [10usize, 14, 18, 22] {
        let circuit = efficient_su2(qubits, 2, Entanglement::Linear);
        let params: Vec<f64> = (0..circuit.num_params())
            .map(|i| 0.1 + 0.01 * i as f64)
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(qubits), &qubits, |b, _| {
            b.iter(|| {
                let mut sv = Statevector::zero(qubits);
                sv.apply_parametric(black_box(&circuit), black_box(&params));
                black_box(sv.norm_sqr())
            })
        });
    }
    group.finish();
}

fn bench_diagonal_expectation(c: &mut Criterion) {
    let mut group = c.benchmark_group("diagonal_expectation");
    group.sample_size(10);
    for qubits in [14usize, 18, 22] {
        let circuit = efficient_su2(qubits, 1, Entanglement::Linear);
        let params: Vec<f64> = (0..circuit.num_params()).map(|i| 0.05 * i as f64).collect();
        let mut sv = Statevector::zero(qubits);
        sv.apply_parametric(&circuit, &params);
        let diag: Vec<f64> = (0..1u64 << qubits).map(|i| (i % 997) as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(qubits), &qubits, |b, _| {
            b.iter(|| black_box(sv.expectation_diagonal(black_box(&diag))))
        });
    }
    group.finish();
}

fn bench_energy_engines(c: &mut Criterion) {
    // Direct gate-by-gate evolution vs the compiled plan + workspace: the
    // full VQE objective (ansatz evolution + diagonal expectation).
    let mut group = c.benchmark_group("energy_evaluation_engine");
    group.sample_size(10);
    for qubits in [10usize, 16, 22] {
        let circuit = efficient_su2(qubits, 2, Entanglement::Linear);
        let params: Vec<f64> = (0..circuit.num_params())
            .map(|i| 0.1 + 0.01 * i as f64)
            .collect();
        let diag: Vec<f64> = (0..1u64 << qubits).map(|i| (i % 997) as f64).collect();
        group.bench_with_input(BenchmarkId::new("direct", qubits), &qubits, |b, _| {
            b.iter(|| {
                let mut sv = Statevector::zero(qubits);
                sv.apply_parametric(black_box(&circuit), black_box(&params));
                black_box(sv.expectation_diagonal(&diag))
            })
        });
        let compiled = CompiledCircuit::compile(&circuit);
        let mut ws = SimWorkspace::new(qubits);
        group.bench_with_input(BenchmarkId::new("compiled", qubits), &qubits, |b, _| {
            b.iter(|| black_box(ws.energy(black_box(&compiled), black_box(&params), &diag)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ansatz_evolution,
    bench_diagonal_expectation,
    bench_energy_engines
);
criterion_main!(benches);
