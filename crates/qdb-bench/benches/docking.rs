//! Docking throughput: one full Vina-style run (grids + MC + clustering)
//! and the raw scoring kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use qdb_baselines::reference::generate_reference;
use qdb_dock::engine::{dock, DockParams};
use qdb_dock::scoring::intermolecular;
use qdb_dock::types::{type_ligand, type_receptor};
use qdb_lattice::sequence::ProteinSequence;
use qdb_mol::ligand::generate_ligand;
use std::hint::black_box;

fn setup() -> (qdb_mol::structure::Structure, qdb_mol::ligand::Ligand) {
    let seq = ProteinSequence::parse("LLDTGADDTV").unwrap();
    let receptor = generate_reference("1zsf", &seq, 23).structure;
    let mut ligand = generate_ligand(1234, 18);
    let c = ligand.centroid();
    ligand.translate(-c);
    (receptor, ligand)
}

fn bench_scoring_kernel(c: &mut Criterion) {
    let (receptor, ligand) = setup();
    let rec = type_receptor(&receptor);
    let lig = type_ligand(&ligand);
    c.bench_function("scoring_intermolecular", |b| {
        b.iter(|| black_box(intermolecular(black_box(&lig), black_box(&rec))))
    });
}

fn bench_single_dock_run(c: &mut Criterion) {
    let (receptor, ligand) = setup();
    let mut group = c.benchmark_group("dock_run");
    group.sample_size(10);
    let params = DockParams::fast();
    group.bench_function("fast_preset", |b| {
        b.iter(|| black_box(dock(&receptor, &ligand, &params, 7).best_affinity()))
    });
    group.finish();
}

criterion_group!(benches, bench_scoring_kernel, bench_single_dock_run);
criterion_main!(benches);
