//! Optimizer comparison on a fixed VQE landscape with a fixed budget:
//! wall-clock per full minimization for COBYLA / Nelder–Mead / SPSA.

use criterion::{criterion_group, criterion_main, Criterion};
use qdb_lattice::hamiltonian::FoldingHamiltonian;
use qdb_lattice::sequence::ProteinSequence;
use qdb_optimize::{Cobyla, NelderMead, Optimizer, Spsa};
use qdb_quantum::statevector::Statevector;
use qdb_vqe::runner::build_ansatz;
use std::hint::black_box;

fn bench_optimizers(c: &mut Criterion) {
    let ham = FoldingHamiltonian::with_unit_scale(ProteinSequence::parse("IQFHFH").unwrap());
    let ansatz = build_ansatz(&ham, 2);
    let diag = ham.dense_diagonal();
    let n = ham.num_qubits();
    let x0 = vec![0.2; ansatz.num_params()];
    let budget = 80usize;

    let mut group = c.benchmark_group("optimizer_80_evals");
    group.sample_size(10);
    let run = |opt: &dyn Optimizer| {
        let mut objective = |x: &[f64]| {
            let mut sv = Statevector::zero(n);
            sv.apply_parametric(&ansatz, x);
            sv.expectation_diagonal(&diag)
        };
        opt.minimize(&mut objective, &x0).fx
    };
    let cobyla = Cobyla::with_budget(budget);
    group.bench_function("cobyla", |b| b.iter(|| black_box(run(&cobyla))));
    let nm = NelderMead::with_budget(budget);
    group.bench_function("nelder_mead", |b| b.iter(|| black_box(run(&nm))));
    let spsa = Spsa::with_budget(budget, 3);
    group.bench_function("spsa", |b| b.iter(|| black_box(run(&spsa))));
    group.finish();
}

criterion_group!(benches, bench_optimizers);
criterion_main!(benches);
