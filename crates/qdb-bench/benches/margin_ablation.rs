//! Transpilation cost and the §5.3 margin effect as a Criterion bench:
//! routing a fragment-sized ansatz at margins 0 / 5 / 10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdb_quantum::ansatz::{efficient_su2, Entanglement};
use qdb_transpile::coupling::CouplingMap;
use qdb_transpile::margin::transpile_with_margin;
use std::hint::black_box;

fn bench_margin(c: &mut Criterion) {
    let eagle = CouplingMap::eagle127();
    let circuit = efficient_su2(16, 2, Entanglement::Circular);
    let mut group = c.benchmark_group("transpile_with_margin");
    group.sample_size(10);
    for margin in [0usize, 5, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(margin), &margin, |b, &m| {
            b.iter(|| {
                let t = transpile_with_margin(black_box(&circuit), &eagle, 60, m);
                black_box(t.report.swap_count)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_margin);
criterion_main!(benches);
