//! Receptor grid construction scaling (spacing sweep) — the
//! rayon-parallel precompute that backs every docking run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdb_baselines::reference::generate_reference;
use qdb_dock::grid::GridMaps;
use qdb_dock::types::{type_ligand, type_receptor, AtomClass};
use qdb_lattice::sequence::ProteinSequence;
use qdb_mol::geometry::Vec3;
use qdb_mol::ligand::generate_ligand;
use std::hint::black_box;

fn bench_grid_build(c: &mut Criterion) {
    let seq = ProteinSequence::parse("MIITEYMENGA").unwrap();
    let receptor = generate_reference("5nkd", &seq, 689).structure;
    let rec_atoms = type_receptor(&receptor);
    let ligand = generate_ligand(9, 18);
    let classes: Vec<AtomClass> = type_ligand(&ligand).iter().map(|a| a.class()).collect();

    let mut group = c.benchmark_group("grid_build");
    group.sample_size(10);
    for spacing in [0.75f64, 0.5, 0.375] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{spacing}A")),
            &spacing,
            |b, &s| {
                b.iter(|| {
                    let g = GridMaps::build(
                        black_box(&rec_atoms),
                        &classes,
                        Vec3::ZERO,
                        Vec3::new(22.0, 22.0, 22.0),
                        s,
                    );
                    black_box(g.dims())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_grid_build);
criterion_main!(benches);
