//! VQE cost per group: one full energy evaluation (circuit evolution +
//! diagonal expectation) at S/M/L register widths, plus Hamiltonian
//! diagonal construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdb_lattice::hamiltonian::FoldingHamiltonian;
use qdb_lattice::sequence::ProteinSequence;
use qdb_quantum::compile::CompiledCircuit;
use qdb_quantum::exec::SimWorkspace;
use qdb_quantum::statevector::Statevector;
use qdb_vqe::runner::build_ansatz;
use std::hint::black_box;

/// One representative fragment per group (S: 3ckz, M: 1zsf, L: 4jpy).
const REPRESENTATIVES: [(&str, &str); 3] = [
    ("3ckz-S", "VKDRS"),
    ("1zsf-M", "LLDTGADDTV"),
    ("4jpy-L", "DYLEAYGKGGVKAK"),
];

fn bench_energy_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("vqe_energy_evaluation");
    group.sample_size(10);
    for (label, seq) in REPRESENTATIVES {
        let ham = FoldingHamiltonian::with_unit_scale(ProteinSequence::parse(seq).unwrap());
        let ansatz = build_ansatz(&ham, 2);
        let diag = ham.dense_diagonal();
        let params: Vec<f64> = (0..ansatz.num_params()).map(|i| 0.03 * i as f64).collect();
        let n = ham.num_qubits();
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                let mut sv = Statevector::zero(n);
                sv.apply_parametric(black_box(&ansatz), black_box(&params));
                black_box(sv.expectation_diagonal(&diag))
            })
        });
    }
    group.finish();
}

fn bench_energy_evaluation_compiled(c: &mut Criterion) {
    // Same objective through the compiled execution engine: the plan is
    // built once per fragment and every iteration reuses the workspace,
    // matching what `run_vqe` actually does per optimizer step.
    let mut group = c.benchmark_group("vqe_energy_evaluation_compiled");
    group.sample_size(10);
    for (label, seq) in REPRESENTATIVES {
        let ham = FoldingHamiltonian::with_unit_scale(ProteinSequence::parse(seq).unwrap());
        let ansatz = build_ansatz(&ham, 2);
        let compiled = CompiledCircuit::compile(&ansatz);
        let diag = ham.dense_diagonal();
        let params: Vec<f64> = (0..ansatz.num_params()).map(|i| 0.03 * i as f64).collect();
        let mut ws = SimWorkspace::new(ham.num_qubits());
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| black_box(ws.energy(black_box(&compiled), black_box(&params), &diag)))
        });
    }
    group.finish();
}

fn bench_diagonal_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("hamiltonian_diagonal");
    group.sample_size(10);
    for (label, seq) in REPRESENTATIVES {
        let ham = FoldingHamiltonian::with_unit_scale(ProteinSequence::parse(seq).unwrap());
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| black_box(ham.dense_diagonal().len()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_energy_evaluation,
    bench_energy_evaluation_compiled,
    bench_diagonal_construction
);
criterion_main!(benches);
