//! # qdockbank
//!
//! The paper's primary contribution as a reusable library: the QDockBank
//! dataset pipeline (sequence → lattice encoding → two-stage VQE → atomic
//! reconstruction → docking + RMSD evaluation), the 55-fragment manifest
//! of Tables 1–3, the §4.2 dataset writer (S/M/L folders with PDB + JSON),
//! the §6 evaluation framework (win rates, distribution summaries,
//! interaction coverage), and text renderers that regenerate every table
//! and figure.
//!
//! ## Quickstart
//!
//! ```no_run
//! use qdockbank::fragments::fragment;
//! use qdockbank::pipeline::{run_fragment, PipelineConfig};
//!
//! let record = fragment("3ckz").unwrap(); // VKDRS, 5 residues
//! let result = run_fragment(record, &PipelineConfig::fast()).expect("fault-free run");
//! println!("Cα RMSD vs reference: {:.2} Å", result.qdock.ca_rmsd);
//! println!("mean best affinity:   {:.2} kcal/mol", result.qdock.affinity());
//! ```
//!
//! Dataset builds go through the fault-tolerant [`supervisor`]: every
//! fragment job is panic-isolated, retried with exponential backoff,
//! degraded when retries keep failing, checkpointed on disk, and
//! journaled in the `manifest.journal` write-ahead log — so a killed or
//! faulted build resumes instead of restarting. Multi-process builds
//! partition the fragment list into shards ([`shard`]) coordinated by
//! crash-safe, fencing-token-guarded leases: a dead worker's shard is
//! stolen and resumed, a zombie's stale writes are rejected, and a
//! finalize step merges the shards and writes a `dataset_card.json`
//! summary artifact. Persistence itself goes
//! through the crash-consistent `qdb-store` layer: atomic checksummed
//! writes, a per-entry `CHECKSUMS` commit record, quarantine for
//! anything that fails validation, and an offline [`fsck`] scan.

pub mod dataset;
pub mod error;
pub mod evaluation;
pub mod fragments;
pub mod fsck;
pub mod pipeline;
pub mod report;
pub mod shard;
pub mod supervisor;

pub use error::PipelineError;
pub use evaluation::{compare_fragments, interaction_coverage, win_rates, FragmentComparison};
pub use fragments::{all_fragments, fragment, fragments_in, FragmentRecord, Group};
pub use fsck::{fsck_dataset, FsckEntry, FsckReport, FsckStatus};
pub use pipeline::{run_fragment, FragmentResult, PipelineConfig, Preset};
pub use qdb_dock::dispatch::BackendChoice;
pub use shard::{
    build_dataset_sharded, build_dataset_sharded_with, dataset_card_path, finalize_sharded,
    finalize_sharded_with, load_sharded_manifest_vfs, shard_journal_path, shard_ownership_vfs,
    DatasetCard, FleetBuildStats, ShardConfig, ShardPlan, ShardProvenance, ShardStamp,
    ShardWorkerSummary, StatSummary,
};
pub use supervisor::{
    build_dataset, build_dataset_with, compact_manifest, compact_manifest_vfs, has_manifest,
    journal_path, load_manifest, run_job, AttemptRecord, BuildSummary, CancelToken,
    CompactionReport, FragmentReport, JobUnit, Manifest, RunRecord, SupervisorConfig,
};
