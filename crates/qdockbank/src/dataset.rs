//! Dataset serialization (paper §4.2): the `S/`, `M/`, `L/` folder layout
//! with, per fragment, the predicted structure in PDB format, the quantum
//! prediction metadata as JSON, and the docking results as JSON —
//! exactly the three dataset components the paper describes, plus the
//! reference structure and ligand so every evaluation is replayable.
//!
//! Every byte goes through `qdb-store`: each file is written atomically
//! (tmp → fsync → rename → fsync dir) and a `CHECKSUMS` sidecar —
//! written last, as the entry's commit record — carries the CRC32C of
//! every artifact. [`validate_entry`] verifies those checksums before any
//! semantic check, so a flipped bit anywhere in an entry is caught at
//! resume/fsck time, not shipped to a docking user.

use crate::error::PipelineError;
use crate::fragments::FragmentRecord;
use crate::pipeline::FragmentResult;
#[cfg(test)]
use qdb_mol::element::Element;
use qdb_mol::pdb::write_pdb;
use qdb_mol::structure::{Atom, Residue, Structure};
use qdb_store::{verify_dir, EntryWriter, StdVfs, Vfs};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// The artifact files every complete dataset entry must carry, with a
/// valid checksum for each.
pub const ENTRY_FILES: [&str; 5] = [
    "structure.pdb",
    "metadata.json",
    "docking.json",
    "reference.pdb",
    "ligand.pdb",
];

/// The quantum metadata JSON schema (one per fragment).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct MetadataJson {
    /// PDB id.
    pub pdb_id: String,
    /// Fragment sequence (one-letter).
    pub sequence: String,
    /// Residue range in the source protein.
    pub residue_start: i32,
    /// Residue range end.
    pub residue_end: i32,
    /// Length group (S/M/L).
    pub group: String,
    /// Conformation-register qubits simulated.
    pub logical_qubits: usize,
    /// Physical qubits of the hardware allocation.
    pub physical_qubits: usize,
    /// Paper-law transpiled depth.
    pub paper_depth: usize,
    /// Depth measured by this repository's transpiler.
    pub measured_depth: usize,
    /// SWAPs inserted by routing.
    pub measured_swaps: usize,
    /// Lowest optimization energy.
    pub lowest_energy: f64,
    /// Highest optimization energy.
    pub highest_energy: f64,
    /// Energy range.
    pub energy_range: f64,
    /// Modelled execution time (s).
    pub exec_time_s: f64,
    /// VQE iterations.
    pub iterations: usize,
    /// Stage-2 shots.
    pub shots: u64,
    /// Cα RMSD vs the reference (Å).
    pub ca_rmsd: f64,
}

/// One docking pose in the JSON output.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct PoseJson {
    /// Pose rank within its run (0 = best).
    pub rank: usize,
    /// Affinity (kcal/mol).
    pub affinity: f64,
    /// RMSD lower bound vs the run's best pose.
    pub rmsd_lb: f64,
    /// RMSD upper bound vs the run's best pose.
    pub rmsd_ub: f64,
}

/// One docking run (one seed) in the JSON output.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct RunJson {
    /// The recorded random seed (paper: "we record the random seed
    /// utilized in each docking simulation").
    pub seed: u64,
    /// Ranked poses.
    pub poses: Vec<PoseJson>,
}

/// The docking-results JSON schema (one per fragment).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct DockingJson {
    /// PDB id.
    pub pdb_id: String,
    /// Number of independent runs.
    pub num_runs: usize,
    /// Mean best affinity over runs.
    pub mean_best_affinity: f64,
    /// Best affinity over all runs.
    pub best_affinity: f64,
    /// Mean pose-RMSD lower bound.
    pub mean_rmsd_lb: f64,
    /// Mean pose-RMSD upper bound.
    pub mean_rmsd_ub: f64,
    /// Docking backend that produced the runs ("vina", "qubo", or
    /// "mixed" when the auto ladder switched rungs between seeds).
    /// `None` on entries written before backends existed, meaning the
    /// then-only Vina engine — read through [`DockingJson::backend`].
    pub backend: Option<String>,
    /// Ladder rungs burned across all runs (0 = first choice always
    /// succeeded). `None` on pre-backend entries, meaning zero.
    pub fallbacks: Option<u64>,
    /// Per-run details.
    pub runs: Vec<RunJson>,
}

impl DockingJson {
    /// Backend label, normalizing pre-backend entries to "vina".
    pub fn backend(&self) -> &str {
        self.backend.as_deref().unwrap_or("vina")
    }

    /// Fallback count, normalizing pre-backend entries to zero.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.unwrap_or(0)
    }
}

/// Builds the metadata JSON for a fragment result.
pub fn metadata_json(record: &FragmentRecord, result: &FragmentResult) -> MetadataJson {
    MetadataJson {
        pdb_id: record.pdb_id.to_string(),
        sequence: record.sequence.to_string(),
        residue_start: record.residue_start,
        residue_end: record.residue_end,
        group: record.group().name().to_string(),
        logical_qubits: result.quantum.logical_qubits,
        physical_qubits: result.quantum.physical_qubits,
        paper_depth: result.quantum.paper_depth,
        measured_depth: result.quantum.measured_depth,
        measured_swaps: result.quantum.measured_swaps,
        lowest_energy: result.quantum.lowest_energy,
        highest_energy: result.quantum.highest_energy,
        energy_range: result.quantum.highest_energy - result.quantum.lowest_energy,
        exec_time_s: result.quantum.exec_time_s,
        iterations: result.quantum.iterations,
        shots: result.quantum.shots,
        ca_rmsd: result.qdock.ca_rmsd,
    }
}

/// Builds the docking JSON for a fragment result.
pub fn docking_json(record: &FragmentRecord, result: &FragmentResult) -> DockingJson {
    let outcome = &result.qdock.docking;
    DockingJson {
        pdb_id: record.pdb_id.to_string(),
        num_runs: outcome.runs.len(),
        mean_best_affinity: outcome.mean_best_affinity(),
        best_affinity: outcome.best_affinity(),
        mean_rmsd_lb: outcome.mean_rmsd_lb(),
        mean_rmsd_ub: outcome.mean_rmsd_ub(),
        backend: Some(result.qdock.dock_backend.clone()),
        fallbacks: Some(result.qdock.dock_fallbacks),
        runs: outcome
            .runs
            .iter()
            .map(|run| RunJson {
                seed: run.seed,
                poses: run
                    .poses
                    .iter()
                    .enumerate()
                    .map(|(rank, p)| PoseJson {
                        rank,
                        affinity: p.affinity,
                        rmsd_lb: p.rmsd_lb,
                        rmsd_ub: p.rmsd_ub,
                    })
                    .collect(),
            })
            .collect(),
    }
}

/// Renders a ligand as a single-residue HETATM structure for PDB export.
pub fn ligand_to_structure(ligand: &qdb_mol::ligand::Ligand) -> Structure {
    let mut residue = Residue::new("LIG", 1);
    let mut counters = std::collections::HashMap::new();
    for atom in &ligand.atoms {
        let n = counters.entry(atom.element).or_insert(0usize);
        *n += 1;
        let name = format!("{}{}", atom.element.symbol(), n);
        residue.atoms.push(Atom::new(&name, atom.element, atom.pos));
    }
    let mut s = Structure::new();
    s.chain_id = 'L';
    s.residues.push(residue);
    s
}

/// Files written for one fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragmentFiles {
    /// Directory `out/<group>/<pdb_id>/`.
    pub dir: PathBuf,
    /// Predicted structure PDB.
    pub structure_pdb: PathBuf,
    /// Quantum metadata JSON.
    pub metadata_json: PathBuf,
    /// Docking results JSON.
    pub docking_json: PathBuf,
    /// Reference ("X-ray" substitute) PDB.
    pub reference_pdb: PathBuf,
    /// Ligand PDB.
    pub ligand_pdb: PathBuf,
}

/// Writes one fragment's dataset entry under `root` (production vfs).
pub fn write_fragment_entry(
    root: &Path,
    record: &FragmentRecord,
    result: &FragmentResult,
) -> Result<FragmentFiles, PipelineError> {
    write_fragment_entry_vfs(&StdVfs, root, record, result)
}

/// Writes one fragment's dataset entry through an explicit [`Vfs`].
///
/// Every file lands via the atomic protocol and the `CHECKSUMS` sidecar
/// commits the entry last — a crash at any filesystem operation leaves
/// either no trusted entry or a complete one, never a torn file that
/// [`validate_entry`] would accept.
pub fn write_fragment_entry_vfs(
    vfs: &dyn Vfs,
    root: &Path,
    record: &FragmentRecord,
    result: &FragmentResult,
) -> Result<FragmentFiles, PipelineError> {
    let dir = root.join(record.group().name()).join(record.pdb_id);
    let mut entry = EntryWriter::begin(vfs, &dir)?;

    let structure_pdb = entry.put(
        "structure.pdb",
        write_pdb(&result.qdock.structure).as_bytes(),
    )?;
    let metadata = metadata_json(record, result);
    let metadata_path = entry.put(
        "metadata.json",
        serde_json::to_string_pretty(&metadata)?.as_bytes(),
    )?;
    let docking = docking_json(record, result);
    let docking_path = entry.put(
        "docking.json",
        serde_json::to_string_pretty(&docking)?.as_bytes(),
    )?;
    let reference_pdb = entry.put(
        "reference.pdb",
        write_pdb(&result.reference.structure).as_bytes(),
    )?;
    let ligand_pdb = entry.put(
        "ligand.pdb",
        write_pdb(&ligand_to_structure(&result.ligand)).as_bytes(),
    )?;
    entry.commit()?;

    Ok(FragmentFiles {
        dir,
        structure_pdb,
        metadata_json: metadata_path,
        docking_json: docking_path,
        reference_pdb,
        ligand_pdb,
    })
}

/// A dataset entry loaded back from disk.
#[derive(Clone, Debug)]
pub struct LoadedEntry {
    /// Quantum metadata.
    pub metadata: MetadataJson,
    /// Docking results.
    pub docking: DockingJson,
    /// Predicted structure.
    pub structure: Structure,
    /// Reference structure.
    pub reference: Structure,
    /// Ligand (as a parsed HETATM structure).
    pub ligand: Structure,
}

/// Loads one fragment entry from a dataset directory.
pub fn load_fragment_entry(
    root: &Path,
    group: &str,
    pdb_id: &str,
) -> Result<LoadedEntry, PipelineError> {
    load_fragment_entry_vfs(&StdVfs, root, group, pdb_id)
}

/// [`load_fragment_entry`] through an explicit [`Vfs`].
pub fn load_fragment_entry_vfs(
    vfs: &dyn Vfs,
    root: &Path,
    group: &str,
    pdb_id: &str,
) -> Result<LoadedEntry, PipelineError> {
    let dir = root.join(group).join(pdb_id);
    let read_text = |name: &str| -> Result<String, PipelineError> {
        let bytes = vfs.read(&dir.join(name))?;
        String::from_utf8(bytes)
            .map_err(|_| PipelineError::Decode(format!("{}: not UTF-8", dir.join(name).display())))
    };
    let read_pdb = |name: &str| -> Result<Structure, PipelineError> {
        qdb_mol::pdb::parse_pdb(&read_text(name)?)
            .map_err(|e| PipelineError::Decode(format!("{}: {e}", dir.join(name).display())))
    };
    let metadata: MetadataJson = serde_json::from_str(&read_text("metadata.json")?)?;
    let docking: DockingJson = serde_json::from_str(&read_text("docking.json")?)?;
    Ok(LoadedEntry {
        metadata,
        docking,
        structure: read_pdb("structure.pdb")?,
        reference: read_pdb("reference.pdb")?,
        ligand: read_pdb("ligand.pdb")?,
    })
}

/// Scans a dataset directory and returns `(group, pdb_id)` pairs found.
pub fn list_entries(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for group in ["S", "M", "L"] {
        let gdir = root.join(group);
        if !gdir.is_dir() {
            continue;
        }
        let mut ids: Vec<String> = std::fs::read_dir(&gdir)?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        ids.sort();
        out.extend(ids.into_iter().map(|id| (group.to_string(), id)));
    }
    Ok(out)
}

/// Validates one on-disk entry against its fragment record: every file's
/// bytes match the `CHECKSUMS` sidecar, every file decodes, and the
/// metadata agrees with the manifest. This is the checkpoint-acceptance
/// test — a resumed build only skips a fragment whose entry passes, so a
/// torn write (partial entry from a killed build) or a flipped bit is
/// recomputed instead of silently shipped.
pub fn validate_entry(root: &Path, record: &FragmentRecord) -> Result<(), PipelineError> {
    validate_entry_vfs(&StdVfs, root, record)
}

/// [`validate_entry`] through an explicit [`Vfs`].
pub fn validate_entry_vfs(
    vfs: &dyn Vfs,
    root: &Path,
    record: &FragmentRecord,
) -> Result<(), PipelineError> {
    let group = record.group().name();
    let dir = root.join(group).join(record.pdb_id);
    // Integrity first: checksums catch torn writes and bit rot before the
    // decoders ever see the bytes.
    verify_dir(vfs, &dir, &ENTRY_FILES)?;
    let entry = load_fragment_entry_vfs(vfs, root, group, record.pdb_id)?;
    let mismatch = |what: &str| {
        Err(PipelineError::Decode(format!(
            "checkpoint {group}/{}: {what}",
            record.pdb_id
        )))
    };
    if entry.metadata.pdb_id != record.pdb_id {
        return mismatch("metadata names a different fragment");
    }
    if entry.metadata.sequence != record.sequence {
        return mismatch("metadata sequence differs from the manifest");
    }
    if entry.structure.len() != record.len() {
        return mismatch("predicted structure has the wrong residue count");
    }
    if entry.docking.runs.len() != entry.docking.num_runs || entry.docking.runs.is_empty() {
        return mismatch("docking results are empty or inconsistent");
    }
    if !entry.metadata.ca_rmsd.is_finite() || !entry.docking.mean_best_affinity.is_finite() {
        return mismatch("non-finite evaluation metrics");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragments::fragment;
    use crate::pipeline::{run_fragment, PipelineConfig};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qdockbank-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_paper_layout() {
        let record = fragment("3ckz").unwrap();
        let result = run_fragment(record, &PipelineConfig::fast()).expect("fault-free run");
        let root = tmpdir("layout");
        let files = write_fragment_entry(&root, record, &result).unwrap();
        assert!(files.dir.ends_with("S/3ckz"));
        for path in [
            &files.structure_pdb,
            &files.metadata_json,
            &files.docking_json,
            &files.reference_pdb,
            &files.ligand_pdb,
        ] {
            assert!(path.exists(), "{path:?} missing");
            assert!(std::fs::metadata(path).unwrap().len() > 50);
        }
        // The sidecar commits the entry and covers every artifact.
        let sums = qdb_store::read_sidecar(&StdVfs, &files.dir).unwrap();
        assert_eq!(sums.len(), ENTRY_FILES.len());
        for name in ENTRY_FILES {
            assert!(sums.iter().any(|(n, _)| n == name), "{name} unchecksummed");
        }
        validate_entry(&root, record).unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn validate_rejects_a_flipped_byte_even_when_json_still_parses() {
        let record = fragment("3ckz").unwrap();
        let result = run_fragment(record, &PipelineConfig::fast()).expect("fault-free run");
        let root = tmpdir("flip");
        let files = write_fragment_entry(&root, record, &result).unwrap();
        // Corrupt one digit of a number: the JSON stays parseable and all
        // semantic checks would still pass — only the checksum knows.
        let text = std::fs::read_to_string(&files.metadata_json).unwrap();
        let pos = text.find("\"exec_time_s\"").unwrap();
        let digit = text[pos..]
            .char_indices()
            .find(|(_, c)| c.is_ascii_digit())
            .map(|(i, _)| pos + i)
            .unwrap();
        let mut bytes = text.into_bytes();
        bytes[digit] = if bytes[digit] == b'9' { b'8' } else { b'9' };
        std::fs::write(&files.metadata_json, &bytes).unwrap();

        let err = validate_entry(&root, record).unwrap_err();
        assert_eq!(err.kind(), "store/checksum-mismatch");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn validate_rejects_an_uncommitted_entry() {
        let record = fragment("3ckz").unwrap();
        let result = run_fragment(record, &PipelineConfig::fast()).expect("fault-free run");
        let root = tmpdir("uncommitted");
        let files = write_fragment_entry(&root, record, &result).unwrap();
        // Simulate a crash between the artifact renames and the sidecar
        // commit: all five files are whole, the commit record is absent.
        std::fs::remove_file(files.dir.join(qdb_store::SIDECAR)).unwrap();
        let err = validate_entry(&root, record).unwrap_err();
        assert_eq!(err.kind(), "store/missing-checksum");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn write_then_load_round_trip() {
        let record = fragment("3eax").unwrap();
        let result = run_fragment(record, &PipelineConfig::fast()).expect("fault-free run");
        let root = tmpdir("load");
        write_fragment_entry(&root, record, &result).unwrap();

        let listed = list_entries(&root).unwrap();
        assert_eq!(listed, vec![("S".to_string(), "3eax".to_string())]);

        let loaded = load_fragment_entry(&root, "S", "3eax").unwrap();
        assert_eq!(loaded.metadata.pdb_id, "3eax");
        assert_eq!(loaded.structure.len(), record.len());
        assert_eq!(loaded.reference.len(), record.len());
        assert_eq!(loaded.ligand.num_atoms(), result.ligand.num_atoms());
        assert_eq!(loaded.docking.runs.len(), result.qdock.docking.runs.len());
        // Coordinates survive to PDB precision.
        for (orig, back) in result.qdock.structure.atoms().zip(loaded.structure.atoms()) {
            assert!((orig.pos - back.pos).norm() < 2e-3);
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn metadata_round_trips_through_json() {
        let record = fragment("3eax").unwrap();
        let result = run_fragment(record, &PipelineConfig::fast()).expect("fault-free run");
        let metadata = metadata_json(record, &result);
        let text = serde_json::to_string(&metadata).unwrap();
        let back: MetadataJson = serde_json::from_str(&text).unwrap();
        assert_eq!(metadata, back);
        assert_eq!(back.pdb_id, "3eax");
        assert_eq!(back.sequence, "RYRDV");
        assert_eq!(back.physical_qubits, 12);
        assert!(back.energy_range > 0.0);
    }

    #[test]
    fn docking_json_consistent_with_outcome() {
        let record = fragment("4mo4").unwrap();
        let result = run_fragment(record, &PipelineConfig::fast()).expect("fault-free run");
        let dock = docking_json(record, &result);
        let expected_runs = PipelineConfig::fast().docking_runs;
        assert_eq!(dock.num_runs, expected_runs);
        assert_eq!(dock.runs.len(), expected_runs);
        for run in &dock.runs {
            assert!(!run.poses.is_empty());
            // Ranked by affinity.
            for w in run.poses.windows(2) {
                assert!(w[0].affinity <= w[1].affinity);
            }
        }
        assert!(dock.best_affinity <= dock.mean_best_affinity);
        assert_eq!(dock.backend(), "vina");
        assert_eq!(dock.fallbacks(), 0);
    }

    #[test]
    fn docking_json_backend_fields_default_for_legacy_entries() {
        // Entries written before the backend seam existed lack both
        // fields; decoding must supply the historical truth ("vina", 0).
        let text = r#"{
            "pdb_id": "3ckz", "num_runs": 1,
            "mean_best_affinity": -5.0, "best_affinity": -5.0,
            "mean_rmsd_lb": 0.1, "mean_rmsd_ub": 0.2,
            "runs": [{"seed": 7, "poses": [
                {"rank": 0, "affinity": -5.0, "rmsd_lb": 0.0, "rmsd_ub": 0.0}
            ]}]
        }"#;
        let back: DockingJson = serde_json::from_str(text).unwrap();
        assert_eq!(back.backend, None);
        assert_eq!(back.fallbacks, None);
        assert_eq!(back.backend(), "vina");
        assert_eq!(back.fallbacks(), 0);
    }

    #[test]
    fn structure_pdb_parses_back() {
        let record = fragment("3ckz").unwrap();
        let result = run_fragment(record, &PipelineConfig::fast()).expect("fault-free run");
        let text = write_pdb(&result.qdock.structure);
        let parsed = qdb_mol::pdb::parse_pdb(&text).unwrap();
        assert_eq!(parsed.len(), 5);
        assert_eq!(parsed.residues[0].seq_num, record.residue_start);
    }

    #[test]
    fn ligand_structure_has_all_atoms() {
        let record = fragment("3eax").unwrap();
        let result = run_fragment(record, &PipelineConfig::fast()).expect("fault-free run");
        let s = ligand_to_structure(&result.ligand);
        assert_eq!(s.num_atoms(), result.ligand.num_atoms());
        assert_eq!(s.residues[0].name, "LIG");
        // Unique atom names.
        let names: std::collections::HashSet<&str> = s.residues[0]
            .atoms
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(names.len(), s.num_atoms());
    }

    #[test]
    fn elements_survive_name_roundtrip() {
        // The generated names (C1, O2, …) must parse back to elements.
        let record = fragment("4mo4").unwrap();
        let result = run_fragment(record, &PipelineConfig::fast()).expect("fault-free run");
        let s = ligand_to_structure(&result.ligand);
        let text = write_pdb(&s);
        let parsed = qdb_mol::pdb::parse_pdb(&text).unwrap();
        let orig: Vec<Element> = result.ligand.atoms.iter().map(|a| a.element).collect();
        let back: Vec<Element> = parsed.residues[0].atoms.iter().map(|a| a.element).collect();
        assert_eq!(orig, back);
    }
}
