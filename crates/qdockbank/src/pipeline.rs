//! The end-to-end QDockBank pipeline (paper Figure 1): sequence → lattice
//! encoding → Hamiltonian → two-stage VQE → atomic reconstruction →
//! docking + RMSD evaluation, plus the AF2/AF3 baseline path.

use crate::error::PipelineError;
use crate::fragments::{FragmentRecord, Group};
use qdb_baselines::alphafold::{predict, AfModel};
use qdb_baselines::reference::{generate_reference, pdb_id_seed, specs_for, ReferenceStructure};
use qdb_dock::backend::{DockBackend, VinaBackend};
use qdb_dock::dispatch::{BackendChoice, DispatchPolicy, Dispatcher};
use qdb_dock::engine::{DockOutcome, DockParams};
use qdb_lattice::coords::CaTrace;
use qdb_lattice::hamiltonian::{EnergyScale, FoldingHamiltonian};
use qdb_lattice::Lambdas;
use qdb_mol::builder::build_peptide;
use qdb_mol::geometry::Vec3;
use qdb_mol::kabsch::superpose;
use qdb_mol::ligand::{generate_ligand, Ligand};
use qdb_mol::structure::Structure;
use qdb_quantum::exec::SimWorkspace;
use qdb_quantum::noise::NoiseModel;
use qdb_qubo::QuboDockBackend;
use qdb_telemetry::MonotonicClock;
use qdb_transpile::basis::lower_to_native;
use qdb_transpile::coupling::CouplingMap;
use qdb_transpile::margin::transpile_with_margin;
use qdb_transpile::metrics::EagleProfile;
use qdb_vqe::fault::{FaultInjector, NoFaults};
use qdb_vqe::runner::{build_ansatz, run_vqe_injected, VqeConfig};
use qdb_vqe::timing::ExecutionTimeModel;

/// Pipeline effort level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// The paper's budgets: 220 VQE iterations, 100k shots, Eagle noise,
    /// 20 docking runs × 10 poses.
    Paper,
    /// Reduced budgets for tests/CI and quick sweeps.
    Fast,
}

/// Pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Effort preset.
    pub preset: Preset,
    /// Independent docking runs per structure (paper: 20).
    pub docking_runs: usize,
    /// Whether VQE runs under the Eagle noise model.
    pub noisy: bool,
    /// Which docking backend (or the `auto` fallback ladder) evaluates
    /// structures. The ligand's native fit always uses the Vina engine
    /// directly, so every backend docks the identical ligand.
    pub dock_backend: BackendChoice,
    /// Per-backend wall-clock budget inside the ladder (ms); 0 = none.
    pub dock_deadline_ms: u64,
}

impl PipelineConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self {
            preset: Preset::Paper,
            docking_runs: 20,
            noisy: true,
            dock_backend: BackendChoice::Vina,
            dock_deadline_ms: 0,
        }
    }

    /// Test/CI configuration.
    pub fn fast() -> Self {
        Self {
            preset: Preset::Fast,
            docking_runs: 5,
            noisy: false,
            dock_backend: BackendChoice::Vina,
            dock_deadline_ms: 0,
        }
    }

    /// VQE configuration for a fragment (budgets scale down for the
    /// widest registers under `Fast`).
    pub fn vqe_config(&self, record: &FragmentRecord) -> VqeConfig {
        let seed = pdb_id_seed(record.pdb_id);
        let mut cfg = match self.preset {
            Preset::Paper => VqeConfig::paper(seed),
            Preset::Fast => VqeConfig::fast(seed),
        };
        if self.preset == Preset::Fast {
            match record.len() {
                // Mid-size registers (12–18 qubits) need the extra budget
                // to escape optimizer local minima reliably.
                9..=12 => {
                    cfg.max_iters = 110;
                    cfg.shots = 40_000;
                }
                // The widest registers get a larger budget but remain
                // under-sampled relative to their 4M-state space: exactly
                // the regime where the paper's own win rates drop.
                13.. => {
                    cfg.max_iters = 70;
                    cfg.shots = 40_000;
                    cfg.sample_trajectories = 20;
                }
                _ => {}
            }
        }
        if !self.noisy {
            // Stage-1 optimization noise off; the stage-2 sampling noise is
            // integral to the method and stays on.
            cfg.noise = NoiseModel::IDEAL;
        }
        cfg
    }

    /// Docking parameters.
    pub fn dock_params(&self) -> DockParams {
        let mut p = match self.preset {
            Preset::Paper => DockParams::default(),
            Preset::Fast => DockParams::fast(),
        };
        p.center = Vec3::ZERO;
        p.box_size = Vec3::new(24.0, 24.0, 24.0);
        p
    }
}

/// Quantum resource + run metadata for one fragment (the dataset's
/// per-entry JSON and the Tables 1–3 columns).
#[derive(Clone, Debug)]
pub struct QuantumMetadata {
    /// Conformation-register qubits actually simulated.
    pub logical_qubits: usize,
    /// Physical qubits of the paper's allocation (Eagle profile).
    pub physical_qubits: usize,
    /// Paper-law transpiled depth (4·q + 5).
    pub paper_depth: usize,
    /// Depth measured from our own transpile pipeline (native basis,
    /// routed on Eagle-127 with the §5.3 margin).
    pub measured_depth: usize,
    /// SWAPs inserted by routing.
    pub measured_swaps: usize,
    /// Lowest energy seen during optimization.
    pub lowest_energy: f64,
    /// Highest energy seen during optimization.
    pub highest_energy: f64,
    /// Modelled wall-clock execution time (s).
    pub exec_time_s: f64,
    /// Optimizer iterations used.
    pub iterations: usize,
    /// Stage-2 shots.
    pub shots: u64,
}

/// One predictor's evaluated output for a fragment.
#[derive(Clone, Debug)]
pub struct PredictionEval {
    /// Predicted Cα trace (centered).
    pub trace: Vec<Vec3>,
    /// Reconstructed full-backbone structure (centered).
    pub structure: Structure,
    /// Cα RMSD vs the reference structure (Å).
    pub ca_rmsd: f64,
    /// Replicated docking outcome.
    pub docking: DockOutcome,
    /// Backend that produced the docking runs (`"mixed"` if the ladder
    /// switched rungs between seeds).
    pub dock_backend: String,
    /// Ladder rungs burned across all docking runs (0 = first choice
    /// always succeeded).
    pub dock_fallbacks: u64,
}

impl PredictionEval {
    /// The per-structure affinity score the figures plot.
    pub fn affinity(&self) -> f64 {
        self.docking.mean_best_affinity()
    }
}

/// Everything produced for one fragment.
#[derive(Clone, Debug)]
pub struct FragmentResult {
    /// PDB id.
    pub pdb_id: String,
    /// Length group.
    pub group: Group,
    /// The quantum prediction + evaluation.
    pub qdock: PredictionEval,
    /// Quantum metadata.
    pub quantum: QuantumMetadata,
    /// The synthetic crystal reference.
    pub reference: ReferenceStructure,
    /// The synthetic native ligand.
    pub ligand: Ligand,
}

/// Deterministic per-target ligand: seeded by the PDB id, sized with the
/// pocket (10 + length heavy atoms, clamped by the generator), then
/// *native-fitted*: docked once against the reference structure and kept
/// in its best-bound conformation. This mirrors PDBbind, whose ligands
/// are crystallographic binders of the reference — the complementarity
/// between ligand and native pocket is what makes docking affinity a
/// structure-quality signal in the paper's evaluation.
pub fn ligand_for(record: &FragmentRecord, reference: &ReferenceStructure) -> Ligand {
    // Memoized: the native fit is the most expensive deterministic step
    // and tests/pipelines ask for the same ligand repeatedly. The cache
    // uses a parking_lot mutex: it cannot be poisoned, so a fragment job
    // that panics mid-fit (and is caught by the supervisor) never bricks
    // the cache for every subsequent fragment.
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use std::sync::OnceLock;
    static CACHE: OnceLock<Mutex<HashMap<String, Ligand>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().get(record.pdb_id) {
        return hit.clone();
    }
    let fresh = ligand_for_uncached(record, reference);
    cache
        .lock()
        .insert(record.pdb_id.to_string(), fresh.clone());
    fresh
}

fn ligand_for_uncached(record: &FragmentRecord, reference: &ReferenceStructure) -> Ligand {
    let seed = pdb_id_seed(record.pdb_id) ^ 0x11AA_77DD_55CC_33EEu64;
    let mut ligand = generate_ligand(seed, 10 + record.len());
    let c = ligand.centroid();
    ligand.translate(-c);
    // Native fitting: a single well-budgeted docking against the
    // reference; the best pose becomes the ligand's native conformation.
    let fit_params = DockParams {
        center: Vec3::ZERO,
        box_size: Vec3::new(24.0, 24.0, 24.0),
        exhaustiveness: 16,
        mc_steps: 90,
        refine_evals: 300,
        poses_per_run: 1,
        ..DockParams::default()
    };
    let run = qdb_dock::engine::dock(&reference.structure, &ligand, &fit_params, seed ^ 0xF17);
    if let Some(best) = run.poses.first() {
        for (atom, &pos) in ligand.atoms.iter_mut().zip(&best.coords) {
            atom.pos = pos;
        }
    }
    ligand
}

/// Runs the quantum prediction for a fragment: VQE on the calibrated
/// folding Hamiltonian, decode the best sampled bitstring, reconstruct the
/// backbone, and collect the quantum metadata.
pub fn run_qdock(
    record: &FragmentRecord,
    config: &PipelineConfig,
) -> Result<(Vec<Vec3>, Structure, QuantumMetadata), PipelineError> {
    run_qdock_with(record, config, &config.vqe_config(record), &mut NoFaults)
}

/// [`run_qdock`] with an explicit VQE configuration and fault injector —
/// the supervisor's entry point, where retries swap in degraded configs
/// and rehearsed faults.
pub fn run_qdock_with<F: FaultInjector>(
    record: &FragmentRecord,
    config: &PipelineConfig,
    vqe_cfg: &VqeConfig,
    injector: &mut F,
) -> Result<(Vec<Vec3>, Structure, QuantumMetadata), PipelineError> {
    let _ = config;
    // Stage spans (DESIGN.md §9): each records wall time into the
    // histogram of the same name; nesting under `pipeline.fragment` is
    // handled by the thread-local span stack.
    let seq = {
        let _s = qdb_telemetry::span!("pipeline.encode");
        record.sequence()
    };
    let physical = EagleProfile::physical_qubits(record.len());
    let hamiltonian = {
        let _s = qdb_telemetry::span!("pipeline.hamiltonian");
        FoldingHamiltonian::new(
            seq.clone(),
            Lambdas::default(),
            EnergyScale::calibrated(physical),
        )
    };
    let mut ws = SimWorkspace::new(0);
    let outcome = {
        let _s = qdb_telemetry::span!("pipeline.vqe");
        run_vqe_injected(&hamiltonian, vqe_cfg, &mut ws, injector)?
    };

    // Decode the best sampled conformation into a centered Cα trace.
    let reconstruct_span = qdb_telemetry::span!("pipeline.reconstruct");
    let conformation = hamiltonian.conformation_of(outcome.best_bitstring);
    let trace_obj = CaTrace::from_conformation(&conformation).centered();
    let trace: Vec<Vec3> = trace_obj
        .coords()
        .iter()
        .map(|&c| Vec3::from_array(c))
        .collect();
    let mut structure = build_peptide(&trace, &specs_for(&seq, record.residue_start));
    structure.center();
    drop(reconstruct_span);

    // Hardware resource accounting: route the logical ansatz on Eagle-127
    // with the §5.3 ancilla margin, lower to the native basis, measure.
    let ansatz = build_ansatz(&hamiltonian, vqe_cfg.reps);
    let eagle = CouplingMap::eagle127();
    let transpiled = transpile_with_margin(&ansatz, &eagle, 0, 7);
    let native = lower_to_native(&transpiled.routed.circuit);
    let exec = ExecutionTimeModel::default().estimate(
        &native,
        outcome.evals,
        vqe_cfg.shots,
        pdb_id_seed(record.pdb_id) ^ 0x7133,
    );

    let quantum = QuantumMetadata {
        logical_qubits: hamiltonian.num_qubits(),
        physical_qubits: physical,
        paper_depth: EagleProfile::paper_depth(physical),
        measured_depth: transpiled.report.hardware_depth,
        measured_swaps: transpiled.report.swap_count,
        lowest_energy: outcome.lowest_energy,
        highest_energy: outcome.highest_energy,
        exec_time_s: exec.total_s(),
        iterations: outcome.evals,
        shots: vqe_cfg.shots,
    };
    Ok((trace, structure, quantum))
}

/// Docks a predicted structure against the fragment's native ligand and
/// computes its Cα RMSD vs the reference.
///
/// Protocol (mirroring the paper's §4.3.3/§6.1.2): the predicted
/// structure is superposed onto the reference frame, then rigid-receptor
/// docking runs in a box centered on the *native binding site* (the
/// fitted ligand's location). Site-focused docking is what makes the
/// affinity score a structure-quality signal: an accurate prediction
/// recreates the native pocket where the ligand expects it.
pub fn evaluate_structure(
    trace: Vec<Vec3>,
    structure: Structure,
    reference: &ReferenceStructure,
    ligand: &Ligand,
    config: &PipelineConfig,
    seed: u64,
) -> Result<PredictionEval, PipelineError> {
    let rmsd_span = qdb_telemetry::span!("pipeline.rmsd");
    let sup = superpose(&trace, &reference.trace);
    let rmsd = sup.rmsd;
    // Map the prediction into the reference frame.
    let trace: Vec<Vec3> = trace.iter().map(|&p| sup.apply(p)).collect();
    let mut structure = structure;
    for residue in &mut structure.residues {
        for atom in &mut residue.atoms {
            atom.pos = sup.apply(atom.pos);
        }
    }
    drop(rmsd_span);
    let mut params = config.dock_params();
    params.center = ligand.centroid();
    params.box_size = Vec3::new(16.0, 16.0, 16.0);
    params.local_only = true;
    // The backend ladder: the requested engine, with Vina as the
    // reliable last rung under `auto` (the bioql fallback shape).
    let vina = VinaBackend;
    let qubo = QuboDockBackend::default();
    let ladder: Vec<&dyn DockBackend> = match config.dock_backend {
        BackendChoice::Vina => vec![&vina],
        BackendChoice::Qubo => vec![&qubo],
        BackendChoice::Auto => vec![&qubo, &vina],
    };
    let clock = MonotonicClock::new();
    let policy = DispatchPolicy {
        per_backend_deadline_ms: (config.dock_deadline_ms > 0).then_some(config.dock_deadline_ms),
    };
    let dispatcher = Dispatcher::new(ladder, &clock, policy);
    let dispatched = {
        let _s = qdb_telemetry::span!("pipeline.dock");
        dispatcher.replicates(&structure, ligand, &params, seed, config.docking_runs)?
    };
    Ok(PredictionEval {
        trace,
        structure,
        ca_rmsd: rmsd,
        docking: dispatched.outcome,
        dock_backend: dispatched.backend,
        dock_fallbacks: dispatched.fallbacks,
    })
}

/// Runs a baseline predictor for a fragment.
pub fn run_baseline(
    record: &FragmentRecord,
    model: AfModel,
    reference: &ReferenceStructure,
    ligand: &Ligand,
    config: &PipelineConfig,
) -> Result<PredictionEval, PipelineError> {
    let seq = record.sequence();
    let prediction = predict(model, record.pdb_id, &seq, record.residue_start, reference);
    let seed = pdb_id_seed(record.pdb_id)
        ^ match model {
            AfModel::Af2 => 0xA2,
            AfModel::Af3 => 0xA3,
        };
    evaluate_structure(
        prediction.trace,
        prediction.structure,
        reference,
        ligand,
        config,
        seed,
    )
}

/// Runs the full QDock pipeline for one fragment.
pub fn run_fragment(
    record: &FragmentRecord,
    config: &PipelineConfig,
) -> Result<FragmentResult, PipelineError> {
    run_fragment_with(record, config, &config.vqe_config(record), &mut NoFaults)
}

/// [`run_fragment`] with an explicit VQE configuration and fault injector.
pub fn run_fragment_with<F: FaultInjector>(
    record: &FragmentRecord,
    config: &PipelineConfig,
    vqe_cfg: &VqeConfig,
    injector: &mut F,
) -> Result<FragmentResult, PipelineError> {
    let _fragment_span = qdb_telemetry::span!("pipeline.fragment");
    let seq = record.sequence();
    let reference = generate_reference(record.pdb_id, &seq, record.residue_start);
    let ligand = ligand_for(record, &reference);
    let (trace, structure, quantum) = run_qdock_with(record, config, vqe_cfg, injector)?;
    let qdock = evaluate_structure(
        trace,
        structure,
        &reference,
        &ligand,
        config,
        pdb_id_seed(record.pdb_id) ^ 0x0D0C,
    )?;
    Ok(FragmentResult {
        pdb_id: record.pdb_id.to_string(),
        group: record.group(),
        qdock,
        quantum,
        reference,
        ligand,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragments::fragment;

    #[test]
    fn full_pipeline_on_smallest_fragment() {
        let record = fragment("3ckz").unwrap(); // VKDRS, 5 residues
        let config = PipelineConfig::fast();
        let result = run_fragment(record, &config).expect("fault-free run");
        assert_eq!(result.pdb_id, "3ckz");
        assert_eq!(result.group, Group::S);
        // Structure sanity.
        assert_eq!(result.qdock.structure.len(), 5);
        assert!(result.qdock.ca_rmsd > 0.0 && result.qdock.ca_rmsd < 15.0);
        // Docking produced runs with poses.
        assert_eq!(result.qdock.docking.runs.len(), config.docking_runs);
        assert!(
            result.qdock.affinity() < 0.0,
            "binding should be favourable"
        );
        // Quantum metadata coherent.
        assert_eq!(result.quantum.logical_qubits, 4);
        assert_eq!(result.quantum.physical_qubits, 12);
        assert_eq!(result.quantum.paper_depth, 53);
        assert!(result.quantum.measured_depth > 0);
        assert!(result.quantum.lowest_energy < result.quantum.highest_energy);
        assert!(result.quantum.exec_time_s > 100.0);
    }

    #[test]
    fn pipeline_is_deterministic() {
        let record = fragment("3eax").unwrap(); // RYRDV
        let config = PipelineConfig::fast();
        let a = run_fragment(record, &config).expect("fault-free run");
        let b = run_fragment(record, &config).expect("fault-free run");
        assert_eq!(a.qdock.trace, b.qdock.trace);
        assert_eq!(a.qdock.ca_rmsd, b.qdock.ca_rmsd);
        assert_eq!(a.qdock.affinity(), b.qdock.affinity());
    }

    #[test]
    fn baselines_run_on_same_reference_and_ligand() {
        let record = fragment("3eax").unwrap();
        let config = PipelineConfig::fast();
        let seq = record.sequence();
        let reference = generate_reference(record.pdb_id, &seq, record.residue_start);
        let ligand = ligand_for(record, &reference);
        let af2 = run_baseline(record, AfModel::Af2, &reference, &ligand, &config)
            .expect("af2 docking succeeds");
        let af3 = run_baseline(record, AfModel::Af3, &reference, &ligand, &config)
            .expect("af3 docking succeeds");
        assert!(af2.ca_rmsd > 0.0);
        assert!(af3.ca_rmsd > 0.0);
        assert_ne!(af2.ca_rmsd, af3.ca_rmsd);
        assert!(af2.affinity() < 0.0);
    }

    #[test]
    fn injected_fault_surfaces_as_pipeline_error() {
        use qdb_vqe::fault::{FaultKind, FaultPlan};
        let record = fragment("3ckz").unwrap();
        let config = PipelineConfig::fast();
        let plan = FaultPlan::none().with_target("3ckz", FaultKind::Reject, usize::MAX);
        let mut injector = plan.injector("3ckz", 0);
        let err = run_fragment_with(record, &config, &config.vqe_config(record), &mut injector)
            .unwrap_err();
        assert_eq!(err.kind(), "vqe/job-rejected");
        assert!(err.is_transient());
    }

    #[test]
    fn qubo_and_auto_backends_flow_through_the_pipeline() {
        let record = fragment("3ckz").unwrap();
        let mut config = PipelineConfig::fast();
        config.docking_runs = 2;
        config.dock_backend = BackendChoice::Qubo;
        let seq = record.sequence();
        let reference = generate_reference(record.pdb_id, &seq, record.residue_start);
        let ligand = ligand_for(record, &reference);
        let qubo = evaluate_structure(
            reference.trace.clone(),
            reference.structure.clone(),
            &reference,
            &ligand,
            &config,
            7,
        )
        .expect("qubo backend succeeds");
        assert_eq!(qubo.dock_backend, "qubo");
        assert_eq!(qubo.dock_fallbacks, 0);
        assert_eq!(qubo.docking.runs.len(), 2);
        assert!(qubo.affinity().is_finite());

        // Auto resolves to the QUBO rung when it is healthy.
        config.dock_backend = BackendChoice::Auto;
        let auto = evaluate_structure(
            reference.trace.clone(),
            reference.structure.clone(),
            &reference,
            &ligand,
            &config,
            7,
        )
        .expect("auto ladder succeeds");
        assert_eq!(auto.dock_backend, "qubo");
        assert_eq!(auto.dock_fallbacks, 0);
        assert_eq!(auto.affinity(), qubo.affinity());
    }

    #[test]
    fn ligands_deterministic_and_native_fitted() {
        let record = fragment("4mo4").unwrap();
        let seq = record.sequence();
        let reference = generate_reference(record.pdb_id, &seq, record.residue_start);
        let a = ligand_for(record, &reference);
        let b = ligand_for(record, &reference);
        assert_eq!(a, b);
        assert!(a.num_atoms() >= 8);
        // Native fitting binds the ligand against the reference surface.
        let rec_atoms = qdb_dock::types::type_receptor(&reference.structure);
        let lig_atoms = qdb_dock::types::type_ligand(&a);
        let e = qdb_dock::scoring::intermolecular(&lig_atoms, &rec_atoms);
        assert!(e < -1.0, "fitted ligand should contact the pocket, e = {e}");
    }
}
