//! The QDockBank fragment manifest: all 55 entries of the paper's
//! Tables 1–3, including the reported per-fragment quantum metrics
//! (qubits, transpiled depth, energy band, execution time) used as the
//! paper-side reference when regenerating each table.

use qdb_lattice::sequence::ProteinSequence;

/// Fragment length group (paper §4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Group {
    /// 5–8 residues.
    S,
    /// 9–12 residues.
    M,
    /// 13–14 residues.
    L,
}

impl Group {
    /// Group of a fragment length.
    ///
    /// # Panics
    /// Panics outside 5–14.
    pub fn of_len(len: usize) -> Group {
        match len {
            5..=8 => Group::S,
            9..=12 => Group::M,
            13..=14 => Group::L,
            _ => panic!("length {len} outside QDockBank range"),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Group::S => "S",
            Group::M => "M",
            Group::L => "L",
        }
    }
}

/// Functional protein class (paper §6.2 "Protein types").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProteinClass {
    /// Viral enzymes.
    ViralEnzyme,
    /// Kinases.
    Kinase,
    /// Digestive and metabolic enzymes.
    MetabolicEnzyme,
    /// Receptors and ligand-binding proteins.
    Receptor,
    /// Chaperones and regulatory proteins.
    Chaperone,
    /// Proteases.
    Protease,
    /// Miscellaneous.
    Miscellaneous,
}

impl ProteinClass {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ProteinClass::ViralEnzyme => "viral enzyme",
            ProteinClass::Kinase => "kinase",
            ProteinClass::MetabolicEnzyme => "metabolic enzyme",
            ProteinClass::Receptor => "receptor",
            ProteinClass::Chaperone => "chaperone",
            ProteinClass::Protease => "protease",
            ProteinClass::Miscellaneous => "miscellaneous",
        }
    }
}

/// The paper-reported quantum metrics of one fragment (Tables 1–3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperMetrics {
    /// Physical qubits.
    pub qubits: usize,
    /// Transpiled circuit depth.
    pub depth: usize,
    /// Lowest energy during optimization.
    pub lowest_energy: f64,
    /// Highest energy during optimization.
    pub highest_energy: f64,
    /// Execution time (s).
    pub exec_time_s: f64,
}

impl PaperMetrics {
    /// Highest − lowest.
    pub fn energy_range(&self) -> f64 {
        self.highest_energy - self.lowest_energy
    }
}

/// One manifest entry.
#[derive(Clone, Debug)]
pub struct FragmentRecord {
    /// PDB id of the source protein.
    pub pdb_id: &'static str,
    /// One-letter fragment sequence.
    pub sequence: &'static str,
    /// First residue number within the full protein.
    pub residue_start: i32,
    /// Last residue number.
    pub residue_end: i32,
    /// Paper-reported quantum metrics.
    pub paper: PaperMetrics,
}

impl FragmentRecord {
    /// Parsed sequence.
    pub fn sequence(&self) -> ProteinSequence {
        ProteinSequence::parse(self.sequence).expect("manifest sequences are valid")
    }

    /// Fragment length in residues.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }

    /// Length group.
    pub fn group(&self) -> Group {
        Group::of_len(self.len())
    }

    /// Functional class (paper §6.2 lists representatives; unlisted
    /// entries are enzymes of mixed character → miscellaneous).
    pub fn protein_class(&self) -> ProteinClass {
        match self.pdb_id {
            "1e2k" | "1e2l" | "1zsf" | "2avo" | "3vf7" | "4mc1" | "4y79" => {
                ProteinClass::ViralEnzyme
            }
            "3d7z" | "4aoi" | "4tmk" | "5cqu" | "5nkb" | "5nkc" | "5nkd" | "4clj" => {
                ProteinClass::Kinase
            }
            "1hdq" | "1m7y" | "3ibi" | "5cxa" | "1ppi" => ProteinClass::MetabolicEnzyme,
            "1gx8" | "3s0b" | "4xaq" | "4f5y" => ProteinClass::Receptor,
            "1yc4" | "6udv" | "3b26" => ProteinClass::Chaperone,
            "5kqx" | "5kr2" | "2bok" | "2vwo" => ProteinClass::Protease,
            _ => ProteinClass::Miscellaneous,
        }
    }
}

macro_rules! rec {
    ($id:literal, $seq:literal, $rs:literal, $re:literal, $q:literal, $d:literal,
     $lo:literal, $hi:literal, $t:literal) => {
        FragmentRecord {
            pdb_id: $id,
            sequence: $seq,
            residue_start: $rs,
            residue_end: $re,
            paper: PaperMetrics {
                qubits: $q,
                depth: $d,
                lowest_energy: $lo,
                highest_energy: $hi,
                exec_time_s: $t,
            },
        }
    };
}

/// Table 1: the L group (13–14 residues).
pub const L_GROUP: [FragmentRecord; 12] = [
    rec!(
        "1yc4",
        "ELISNSSDALDKI",
        47,
        59,
        92,
        373,
        16129.383,
        20745.807,
        15777.29
    ),
    rec!(
        "3d7z",
        "YLVTHLMGADLNNI",
        103,
        116,
        102,
        413,
        22979.863,
        29707.296,
        156289.48
    ),
    rec!(
        "4aoi",
        "VVLPYMKHGDLRNF",
        1155,
        1168,
        102,
        413,
        23245.373,
        32378.950,
        13328.65
    ),
    rec!(
        "4cig",
        "VRDQAEHLKTAVQM",
        165,
        178,
        102,
        413,
        21375.594,
        29846.536,
        17293.54
    ),
    rec!(
        "4clj",
        "ILMELMAGGDLKSF",
        1194,
        1207,
        102,
        413,
        23968.789,
        30839.148,
        56855.98
    ),
    rec!(
        "4fp1",
        "PVHTAVGTVGTAPL",
        21,
        34,
        102,
        413,
        22564.107,
        30593.710,
        9301.82
    ),
    rec!(
        "4jpx",
        "DYLEAYGKGGVKA",
        154,
        166,
        92,
        373,
        16962.095,
        22231.950,
        90422.62
    ),
    rec!(
        "4jpy",
        "DYLEAYGKGGVKAK",
        154,
        167,
        102,
        413,
        23332.068,
        30779.295,
        12918.78
    ),
    rec!(
        "4tmk",
        "IEGLEGAGKTTARN",
        8,
        21,
        102,
        413,
        22590.207,
        29135.420,
        199292.66
    ),
    rec!(
        "5cqu",
        "RKLGRGKYSEVFE",
        43,
        55,
        92,
        373,
        17865.392,
        22801.515,
        7620.94
    ),
    rec!(
        "5nkb",
        "MIITEYMENGALDK",
        689,
        702,
        102,
        413,
        22570.674,
        31770.986,
        9311.28
    ),
    rec!(
        "6udv",
        "SLSRVMIHVFSDGV",
        245,
        258,
        102,
        413,
        24186.062,
        33350.850,
        188397.35
    ),
];

/// Table 2: the M group (9–12 residues).
pub const M_GROUP: [FragmentRecord; 23] = [
    rec!(
        "1e2l",
        "AQITMGMPY",
        124,
        132,
        54,
        221,
        1509.665,
        2837.818,
        12951.69
    ),
    rec!(
        "1gx8",
        "SAPLRVYVE",
        36,
        44,
        54,
        221,
        1626.015,
        3053.529,
        14080.77
    ),
    rec!(
        "1m7y",
        "TAGATSANE",
        117,
        125,
        54,
        221,
        1420.378,
        2714.983,
        12918.04
    ),
    rec!(
        "1zsf",
        "LLDTGADDTV",
        23,
        32,
        63,
        257,
        4283.258,
        6023.888,
        5674.54
    ),
    rec!(
        "2avo",
        "LIDTGADDTV",
        23,
        32,
        63,
        257,
        4711.417,
        6788.627,
        5709.81
    ),
    rec!(
        "2bfq",
        "AFPAVSAGIYGC",
        136,
        147,
        82,
        333,
        11784.906,
        16384.379,
        10361.37
    ),
    rec!(
        "2bok",
        "EDACQGDSGG",
        188,
        197,
        63,
        257,
        4365.802,
        6164.745,
        6145.18
    ),
    rec!(
        "2qbs",
        "HCSAGIGRSGT",
        214,
        224,
        72,
        293,
        6691.571,
        9356.871,
        13899.11
    ),
    rec!(
        "2vwo",
        "EDACQGDSGG",
        188,
        197,
        63,
        257,
        4175.516,
        6533.564,
        5812.72
    ),
    rec!(
        "2xxx",
        "GAVEDGATMTFF",
        683,
        694,
        82,
        333,
        14199.993,
        18862.515,
        14962.26
    ),
    rec!(
        "3b26",
        "ELISNSSDAL",
        47,
        56,
        63,
        257,
        3768.807,
        6015.566,
        5546.94
    ),
    rec!(
        "3d83",
        "YLVTHLMGAD",
        103,
        112,
        63,
        257,
        4235.343,
        6119.164,
        19833.57
    ),
    rec!(
        "3vf7",
        "LLDTGADDTV",
        23,
        32,
        63,
        257,
        3975.024,
        6162.421,
        5348.25
    ),
    rec!(
        "4f5y",
        "GLAWSYYIGYL",
        158,
        168,
        72,
        293,
        6408.497,
        8858.596,
        6157.46
    ),
    rec!(
        "4mc1",
        "LLDTGADDTV",
        23,
        32,
        63,
        257,
        4092.236,
        6199.231,
        5609.02
    ),
    rec!(
        "4y79",
        "DACQGDSGG",
        189,
        197,
        54,
        221,
        1549.162,
        2874.211,
        207445.70
    ),
    rec!(
        "5cxa",
        "FDGKGGILAHA",
        174,
        184,
        72,
        293,
        6946.425,
        9298.822,
        5638.71
    ),
    rec!(
        "5kqx",
        "LLNTGADDTV",
        23,
        32,
        63,
        257,
        4336.777,
        6158.301,
        21706.78
    ),
    rec!(
        "5kr2",
        "LLNTGADDTV",
        23,
        32,
        63,
        257,
        4113.621,
        6383.194,
        5687.63
    ),
    rec!(
        "5nkc",
        "MIITEYMENGAL",
        689,
        700,
        82,
        333,
        12919.795,
        16929.422,
        6363.43
    ),
    rec!(
        "5nkd",
        "MIITEYMENGA",
        689,
        699,
        72,
        293,
        7192.774,
        10425.425,
        5997.07
    ),
    rec!(
        "6ezq",
        "AKQRLKCASL",
        194,
        203,
        63,
        257,
        4178.824,
        6002.270,
        23591.38
    ),
    rec!(
        "6g98",
        "RNNGHSVQLTL",
        60,
        70,
        72,
        293,
        7254.135,
        9951.906,
        7080.74
    ),
];

/// Table 3: the S group (5–8 residues).
pub const S_GROUP: [FragmentRecord; 20] = [
    rec!("1e2k", "DGPHGM", 55, 60, 23, 97, 97.347, 392.073, 4425.19),
    rec!("1hdq", "SIHSYS", 194, 199, 23, 97, 135.525, 400.060, 4352.49),
    rec!("1ppi", "PWWERYQP", 57, 64, 46, 189, 1843.649, 2795.853, 13305.89),
    rec!("1qin", "QQTMLRV", 32, 38, 38, 157, 258.484, 775.731, 19567.41),
    rec!("2v25", "ATFTIT", 81, 86, 23, 97, 100.416, 340.832, 22356.46),
    rec!("3ckz", "VKDRS", 149, 153, 12, 53, 10.433, 14.651, 5763.36),
    rec!("3dx3", "HNDPGWI", 90, 96, 38, 157, 339.992, 962.620, 4661.24),
    rec!("3eax", "RYRDV", 45, 49, 12, 53, 10.357, 16.021, 4028.72),
    rec!("3ibi", "IQFHFH", 91, 96, 23, 97, 120.664, 455.422, 4486.62),
    rec!("3nxq", "VCHASAWD", 329, 336, 46, 189, 1815.928, 2836.486, 14496.99),
    rec!("3s0b", "GIKAVM", 67, 72, 23, 97, 162.239, 431.986, 51428.83),
    rec!("3tcg", "IEGVPESN", 57, 64, 46, 189, 1660.359, 2492.704, 4331.88),
    rec!("4mo4", "NIGGF", 162, 166, 12, 53, 10.636, 16.117, 25834.89),
    rec!("4q87", "SLTTPPLL", 197, 204, 46, 189, 1659.516, 2928.576, 4565.00),
    rec!("4xaq", "GSYSDVSI", 142, 149, 46, 189, 1486.347, 2716.796, 4497.95),
    rec!("4zb8", "GGPNGWKV", 14, 21, 46, 189, 1791.084, 2876.999, 16029.02),
    rec!("5c28", "CDLCSVT", 663, 669, 38, 157, 386.810, 792.776, 114029.96),
    rec!("5tya", "SLTTPPLL", 197, 204, 46, 189, 1719.112, 2594.339, 9870.15),
    rec!("6czf", "LRKANG", 44, 49, 23, 97, 114.701, 376.059, 4309.82),
    rec!("6p86", "VYSSGIPL", 300, 307, 46, 189, 1486.200, 3008.481, 4290.98),
];

/// All 55 fragments, L then M then S (paper table order).
pub fn all_fragments() -> Vec<&'static FragmentRecord> {
    L_GROUP
        .iter()
        .chain(M_GROUP.iter())
        .chain(S_GROUP.iter())
        .collect()
}

/// Fragments of one group.
pub fn fragments_in(group: Group) -> Vec<&'static FragmentRecord> {
    all_fragments()
        .into_iter()
        .filter(|r| r.group() == group)
        .collect()
}

/// Looks up a fragment by PDB id.
pub fn fragment(pdb_id: &str) -> Option<&'static FragmentRecord> {
    all_fragments().into_iter().find(|r| r.pdb_id == pdb_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_transpile::metrics::EagleProfile;

    #[test]
    fn manifest_has_55_entries() {
        let all = all_fragments();
        assert_eq!(all.len(), 55);
        assert_eq!(fragments_in(Group::L).len(), 12);
        assert_eq!(fragments_in(Group::M).len(), 23);
        assert_eq!(fragments_in(Group::S).len(), 20);
    }

    #[test]
    fn pdb_ids_unique_and_lowercase() {
        let all = all_fragments();
        let ids: std::collections::HashSet<&str> = all.iter().map(|r| r.pdb_id).collect();
        assert_eq!(ids.len(), 55);
        for r in all {
            assert_eq!(r.pdb_id, r.pdb_id.to_lowercase());
            assert_eq!(r.pdb_id.len(), 4);
        }
    }

    #[test]
    fn sequences_parse_and_match_residue_ranges() {
        for r in all_fragments() {
            let seq = r.sequence();
            assert_eq!(
                seq.len() as i32,
                r.residue_end - r.residue_start + 1,
                "{}: sequence length vs residue range",
                r.pdb_id
            );
            assert_eq!(seq.len(), r.len());
        }
    }

    #[test]
    fn groups_match_lengths() {
        for r in all_fragments() {
            let expect = match r.len() {
                5..=8 => Group::S,
                9..=12 => Group::M,
                _ => Group::L,
            };
            assert_eq!(r.group(), expect, "{}", r.pdb_id);
        }
    }

    #[test]
    fn paper_qubits_and_depth_follow_eagle_profile() {
        // Every row obeys qubits = profile(len) and depth = 4·qubits + 5.
        for r in all_fragments() {
            assert_eq!(
                r.paper.qubits,
                EagleProfile::physical_qubits(r.len()),
                "{}: qubits",
                r.pdb_id
            );
            assert_eq!(
                r.paper.depth,
                EagleProfile::paper_depth(r.paper.qubits),
                "{}: depth",
                r.pdb_id
            );
        }
    }

    #[test]
    fn energy_bands_sane() {
        for r in all_fragments() {
            assert!(r.paper.lowest_energy > 0.0, "{}", r.pdb_id);
            assert!(
                r.paper.highest_energy > r.paper.lowest_energy,
                "{}",
                r.pdb_id
            );
            assert!(r.paper.energy_range() > 0.0);
            assert!(r.paper.exec_time_s > 1000.0, "{}", r.pdb_id);
        }
    }

    #[test]
    fn lookup_by_id() {
        let r = fragment("4jpy").unwrap();
        assert_eq!(r.sequence, "DYLEAYGKGGVKAK");
        assert_eq!(r.residue_start, 154);
        assert!(fragment("zzzz").is_none());
    }

    #[test]
    fn repeated_sequences_span_contexts() {
        // §4.1: certain sequences appear across multiple protein contexts.
        let lldt: Vec<_> = all_fragments()
            .into_iter()
            .filter(|r| r.sequence == "LLDTGADDTV")
            .collect();
        assert!(lldt.len() >= 3, "LLDTGADDTV appears in 1zsf, 3vf7, 4mc1");
        let edac: Vec<_> = all_fragments()
            .into_iter()
            .filter(|r| r.sequence == "EDACQGDSGG")
            .collect();
        assert_eq!(edac.len(), 2, "EDACQGDSGG appears in 2bok, 2vwo");
    }

    #[test]
    fn protein_classes_cover_all_seven_kinds() {
        let classes: std::collections::HashSet<_> = all_fragments()
            .into_iter()
            .map(|r| r.protein_class())
            .collect();
        assert_eq!(classes.len(), 7, "all functional classes represented");
    }
}
