//! Multi-process sharded dataset builds with crash-safe lease
//! coordination.
//!
//! [`supervisor`](crate::supervisor) makes one process fault-tolerant;
//! this module spreads a build over N independent worker *processes*
//! without giving up any of its guarantees. The pieces:
//!
//! * **shard planner** ([`ShardPlan`]) — a deterministic round-robin
//!   partition of the fragment list into N shards, the same in every
//!   process, so shard k means the same fragments everywhere;
//! * **lease claim loop** ([`build_dataset_sharded_with`]) — each worker
//!   walks the shards, claims whichever is free (or expired — a dead
//!   worker's shard is stolen after its heartbeat deadline passes) via
//!   [`LeaseManager`], and builds it; a takeover resumes from the
//!   checkpoint on disk, quarantining torn entries through the existing
//!   validation path, so no fragment is ever computed twice;
//! * **fenced journal writer** ([`ShardJournalWriter`]) — every append
//!   to a shard's journal re-validates the worker's fencing token
//!   against the on-disk lease first; a zombie writer whose shard was
//!   stolen gets [`PipelineError::Lease`], never a successful write, so
//!   a stalled process resurfacing cannot corrupt the journal;
//! * **finalize** ([`finalize_sharded_with`]) — once every shard journal
//!   carries its `shard-done` marker, the per-shard state merges into
//!   the root `manifest.journal`, the workers' telemetry journals merge
//!   into `fleet_telemetry.json`, and a [`DatasetCard`] summary
//!   artifact (fleet stats included) is written atomically.
//!
//! Shard journals are owner-stamped: every record carries the writing
//! shard, worker id, and fencing token, so the provenance of every
//! fragment survives into the merged manifest and the dataset card.
//!
//! Telemetry: `supervisor.shard.claims`, `.fragments`, `.done`, `.lost`,
//! `.wait_rounds`, `.finalized` counters; each fragment's spans land on
//! a per-worker, per-shard flight-recorder lane
//! ([`pack_lane`](qdb_telemetry::trace::pack_lane) — the worker's FNV
//! ordinal in the high bits, `(shard+1)·10⁶ + build index` in the
//! fragment field). Every worker additionally journals
//! monotone-sequenced registry snapshot deltas to its own file under
//! `telemetry/` (a `start` flush at entry, a `shard` flush after every
//! shard outcome, an `exit`/`error` flush on the way out — all through
//! the store's checksummed append path, all non-fatal on error) and, if
//! a flight recorder is installed, dumps its event ring to
//! `telemetry/trace-<worker>.json`. Finalize merges every worker's
//! deltas into `fleet_telemetry.json` and rolls the fleet stats into
//! the dataset card.
//!
//! Clocks: production workers run on
//! [`WallClock`](qdb_telemetry::WallClock) — lease deadlines written by
//! one process must be comparable in another, which per-process
//! monotonic epochs are not. Tests share one
//! [`ManualClock`](qdb_telemetry::ManualClock) between simulated
//! workers.

use crate::dataset::load_fragment_entry_vfs;
use crate::error::PipelineError;
use crate::fragments::FragmentRecord;
use crate::pipeline::PipelineConfig;
use crate::supervisor::{
    append_event, journal_path, manifest_from_events, supervise_fragment, BuildSummary,
    FragmentReport, Manifest, ManifestEvent, SupervisorConfig,
};
use qdb_store::{
    merge_worker_deltas, worker_trace_path, write_atomic, write_fleet_snapshot, Journal, Lease,
    LeaseError, LeaseManager, StdVfs, Vfs, WorkerFlusher,
};
use qdb_telemetry::{Clock, FleetSnapshot, WallClock};
use qdb_vqe::fault::FaultPlan;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// How a worker participates in a sharded build.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Total shards the fragment list is partitioned into.
    pub num_shards: usize,
    /// This worker's id, stamped into leases and journal records.
    pub worker_id: String,
    /// Lease heartbeat TTL (ms): a worker silent for longer forfeits its
    /// shard to any live peer.
    pub lease_ttl_ms: u64,
    /// Claim-loop rounds to wait on shards held by live peers before
    /// giving up on them (they are someone else's work; the finalize
    /// step is the completeness gate, not the worker).
    pub max_wait_rounds: usize,
}

impl ShardConfig {
    /// A worker configuration with production defaults: 30 s TTL,
    /// bounded waiting.
    pub fn new(num_shards: usize, worker_id: impl Into<String>) -> Self {
        Self {
            num_shards: num_shards.max(1),
            worker_id: worker_id.into(),
            lease_ttl_ms: 30_000,
            max_wait_rounds: 16,
        }
    }
}

/// Deterministic partition of a fragment list into shards.
///
/// Round-robin by list index: shard k owns records `k, k+N, k+2N, …`.
/// Every process computes the identical plan from the identical record
/// list — the plan needs no coordination, only the leases do.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    num_shards: usize,
    len: usize,
}

impl ShardPlan {
    /// Plans `len` records over `num_shards` shards.
    pub fn new(num_shards: usize, len: usize) -> Self {
        Self {
            num_shards: num_shards.max(1),
            len,
        }
    }

    /// Total shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Which shard owns the record at `index`.
    pub fn shard_of(&self, index: usize) -> usize {
        index % self.num_shards
    }

    /// The `(global_index)` list of records shard `k` owns.
    pub fn indices_of(&self, shard: usize) -> Vec<usize> {
        (shard..self.len).step_by(self.num_shards).collect()
    }
}

/// Path of one shard's build journal under a dataset root.
pub fn shard_journal_path(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard}.journal"))
}

/// Path of the dataset-card summary artifact under a dataset root.
pub fn dataset_card_path(root: &Path) -> PathBuf {
    root.join("dataset_card.json")
}

/// A fenced writer for one shard's journal: every append first
/// re-validates the holder's fencing token against the on-disk lease,
/// so a write from a stale token is rejected *before* any bytes land.
pub struct ShardJournalWriter<'a> {
    journal: Journal<'a>,
    manager: &'a LeaseManager<'a>,
    lease: Lease,
}

impl<'a> ShardJournalWriter<'a> {
    /// A writer for `lease.shard`'s journal under `root`, fenced by
    /// `lease`.
    pub fn new(vfs: &'a dyn Vfs, root: &Path, manager: &'a LeaseManager<'a>, lease: Lease) -> Self {
        Self {
            journal: Journal::open(vfs, shard_journal_path(root, lease.shard)),
            manager,
            lease,
        }
    }

    /// The lease this writer is fenced by.
    pub fn lease(&self) -> &Lease {
        &self.lease
    }

    /// The fencing check alone (no write): cheap enough to run before
    /// starting expensive work the writer would only journal afterwards.
    pub fn check(&self) -> Result<(), PipelineError> {
        self.manager.check(&self.lease)?;
        Ok(())
    }

    /// Extends the lease's heartbeat deadline (token unchanged).
    pub fn renew(&mut self) -> Result<(), PipelineError> {
        self.manager.renew(&mut self.lease)?;
        Ok(())
    }

    fn append(&self, ev: ManifestEvent) -> Result<(), PipelineError> {
        self.manager.check(&self.lease)?;
        append_event(
            &self.journal,
            &ev.stamped(self.lease.shard, &self.lease.owner, self.lease.token),
        )
    }

    /// Appends a run marker (`resumed` = this journal already had
    /// records, i.e. a takeover or restart).
    pub fn append_run(&self, resumed: bool) -> Result<(), PipelineError> {
        self.append(ManifestEvent::run(resumed))
    }

    /// Appends one owner-stamped fragment report.
    pub fn append_fragment(&self, report: &FragmentReport) -> Result<(), PipelineError> {
        self.append(ManifestEvent::fragment(report))
    }

    /// Appends an owner-stamped note (fenced like everything else — this
    /// is the zombie-writer test's probe surface).
    pub fn append_note(&self, text: &str) -> Result<(), PipelineError> {
        self.append(ManifestEvent::note(text.to_string()))
    }

    /// Appends the shard's completion marker; finalize requires one per
    /// shard.
    pub fn append_done(&self) -> Result<(), PipelineError> {
        self.append(ManifestEvent::shard_done())
    }
}

/// One worker's outcome from a sharded build.
#[derive(Clone, Debug, Default)]
pub struct ShardWorkerSummary {
    /// Shards this worker completed (claimed, built, marked done).
    pub shards_built: Vec<usize>,
    /// Shards lost mid-build to a fencing rejection (stolen after the
    /// worker stalled past its deadline).
    pub shards_lost: usize,
    /// Aggregate fragment counts over the shards this worker built.
    pub build: BuildSummary,
}

impl ShardWorkerSummary {
    /// Fragments with a usable entry on disk after this worker's shards.
    pub fn usable(&self) -> usize {
        self.build.usable()
    }
}

/// Replays one shard journal's events (empty if the journal is absent).
fn shard_events(
    vfs: &dyn Vfs,
    root: &Path,
    shard: usize,
) -> Result<Vec<ManifestEvent>, PipelineError> {
    let journal = Journal::open(vfs, shard_journal_path(root, shard));
    if !vfs.exists(journal.path()) {
        return Ok(Vec::new());
    }
    let replay = journal.replay(false)?;
    Ok(replay
        .records
        .iter()
        .filter_map(|p| serde_json::from_str::<ManifestEvent>(p).ok())
        .collect())
}

/// Whether shard `k`'s journal carries a completion marker.
fn shard_is_done(vfs: &dyn Vfs, root: &Path, shard: usize) -> Result<bool, PipelineError> {
    Ok(shard_events(vfs, root, shard)?
        .iter()
        .any(|ev| ev.kind == "shard-done"))
}

/// Runs one worker of a sharded build on [`WallClock`] + the real
/// filesystem — the production entry point behind
/// `build_dataset --shards N --worker-id W`.
pub fn build_dataset_sharded(
    root: &Path,
    records: &[&FragmentRecord],
    pipeline_cfg: &PipelineConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
    shard_cfg: &ShardConfig,
) -> Result<ShardWorkerSummary, PipelineError> {
    build_dataset_sharded_with(
        root,
        records,
        pipeline_cfg,
        sup,
        plan,
        shard_cfg,
        &WallClock,
        &StdVfs,
    )
}

/// One worker's claim loop over every shard of the plan, on explicit
/// [`Clock`] and [`Vfs`] seams (the chaos sweep kills workers by
/// substituting a `CrashVfs` and steals their shards on a shared
/// `ManualClock`).
///
/// The loop visits each shard: already-done shards are skipped, shards
/// held by a live peer are left alone, and anything claimable — free,
/// released, expired (dead worker), or corrupt — is acquired and built.
/// Building a shard resumes from the on-disk checkpoint exactly like a
/// single-process resume, so a takeover recomputes nothing the dead
/// worker finished. A worker that loses its lease mid-shard (fenced)
/// abandons that shard and moves on; whoever stole it finishes it. The
/// worker returns when every shard is done or only live-held shards
/// remain after `max_wait_rounds` rounds of waiting.
#[allow(clippy::too_many_arguments)]
pub fn build_dataset_sharded_with(
    root: &Path,
    records: &[&FragmentRecord],
    pipeline_cfg: &PipelineConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
    shard_cfg: &ShardConfig,
    clock: &dyn Clock,
    vfs: &dyn Vfs,
) -> Result<ShardWorkerSummary, PipelineError> {
    vfs.create_dir_all(root)?;
    // Durable per-worker telemetry: a snapshot-delta journal under
    // `telemetry/`. Failing to open it is never fatal — observability
    // must not take down a build (and after a simulated crash the vfs
    // rejects every operation, open included).
    let mut flusher = WorkerFlusher::open(vfs, root, &shard_cfg.worker_id).ok();
    flush_telemetry(&mut flusher, clock, "start");
    let result = claim_shards(
        root,
        records,
        pipeline_cfg,
        sup,
        plan,
        shard_cfg,
        clock,
        vfs,
        &mut flusher,
    );
    // Final flush on every exit path, the supervisor-failure one
    // included — the kill-and-rescue drill's guarantee that a victim's
    // last completed work stays visible to the fleet merge.
    flush_telemetry(
        &mut flusher,
        clock,
        if result.is_ok() { "exit" } else { "error" },
    );
    dump_worker_trace(root, &shard_cfg.worker_id);
    result
}

/// Appends the global registry's delta-since-last-flush to this
/// worker's telemetry journal. Never fails the build: errors are
/// counted (`telemetry.flush_errors`) and otherwise swallowed, so the
/// error/crash paths can flush too.
fn flush_telemetry(flusher: &mut Option<WorkerFlusher<'_>>, clock: &dyn Clock, kind: &str) {
    if let Some(f) = flusher.as_mut() {
        if f.flush(qdb_telemetry::global(), clock, kind).is_err() {
            qdb_telemetry::global()
                .counter("telemetry.flush_errors")
                .inc();
        }
    }
}

/// Dumps the installed flight recorder's rings (if any) to this
/// worker's `telemetry/trace-<worker>.json`, best-effort. Straight to
/// the real filesystem: recorders are only installed in real runs, and
/// a trace is diagnostic, not an integrity artifact.
fn dump_worker_trace(root: &Path, worker_id: &str) {
    let Some(recorder) = qdb_telemetry::global().recorder() else {
        return;
    };
    let path = worker_trace_path(root, worker_id);
    let _ = qdb_telemetry::export::chrome::write_chrome_trace(&path, &recorder.dump());
}

/// The claim loop proper, split out so the caller can bracket it with
/// telemetry flushes on every exit path.
#[allow(clippy::too_many_arguments)]
fn claim_shards(
    root: &Path,
    records: &[&FragmentRecord],
    pipeline_cfg: &PipelineConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
    shard_cfg: &ShardConfig,
    clock: &dyn Clock,
    vfs: &dyn Vfs,
    flusher: &mut Option<WorkerFlusher<'_>>,
) -> Result<ShardWorkerSummary, PipelineError> {
    let telemetry = qdb_telemetry::global();
    let shard_plan = ShardPlan::new(shard_cfg.num_shards, records.len());
    let manager = LeaseManager::new(vfs, clock, root, shard_cfg.lease_ttl_ms);
    let mut out = ShardWorkerSummary {
        build: BuildSummary {
            manifest_path: journal_path(root),
            ..BuildSummary::default()
        },
        ..ShardWorkerSummary::default()
    };
    let mut idle_rounds = 0usize;
    loop {
        let mut progressed = false;
        let mut all_done = true;
        for shard in 0..shard_plan.num_shards() {
            if out.shards_built.contains(&shard) || shard_is_done(vfs, root, shard)? {
                continue;
            }
            all_done = false;
            let lease = match manager.acquire(shard, &shard_cfg.worker_id) {
                Ok(lease) => lease,
                Err(LeaseError::Held { .. }) => continue, // a live peer's work
                Err(e) => return Err(e.into()),
            };
            telemetry.counter("supervisor.shard.claims").inc();
            telemetry.instant("supervisor.shard.claim");
            let mut writer = ShardJournalWriter::new(vfs, root, &manager, lease);
            match build_shard(
                root,
                records,
                &shard_plan,
                shard,
                pipeline_cfg,
                sup,
                plan,
                clock,
                vfs,
                &mut writer,
                &mut out.build,
            ) {
                Ok(()) => {
                    progressed = true;
                    out.shards_built.push(shard);
                    telemetry.counter("supervisor.shard.done").inc();
                    flush_telemetry(flusher, clock, "shard");
                    // Release is a courtesy to waiting peers; losing the
                    // lease after the done marker costs nothing.
                    match manager.release(writer.lease()) {
                        Err(LeaseError::Store(e)) => return Err(e.into()),
                        _ => {}
                    }
                }
                Err(PipelineError::Lease { shard, detail }) => {
                    // Stolen mid-shard: the thief owns it now. Not fatal
                    // for this worker — move on to other shards.
                    telemetry.counter("supervisor.shard.lost").inc();
                    telemetry.instant("supervisor.shard.lost");
                    out.shards_lost += 1;
                    let _ = (shard, detail);
                    flush_telemetry(flusher, clock, "shard");
                }
                Err(e) => return Err(e),
            }
        }
        if all_done {
            break;
        }
        if progressed {
            idle_rounds = 0;
            continue;
        }
        // Nothing claimable this round: every remaining shard is held by
        // a live peer. Wait a fraction of the TTL (so an expiry is
        // noticed promptly) for a bounded number of rounds.
        idle_rounds += 1;
        telemetry.counter("supervisor.shard.wait_rounds").inc();
        if idle_rounds >= shard_cfg.max_wait_rounds {
            break;
        }
        clock.sleep_ms((shard_cfg.lease_ttl_ms / 4).max(1));
    }
    Ok(out)
}

/// Builds every fragment of one claimed shard: fenced check before each
/// fragment's work, fenced append after, heartbeat renewal between
/// fragments, completion marker at the end.
#[allow(clippy::too_many_arguments)]
fn build_shard(
    root: &Path,
    records: &[&FragmentRecord],
    shard_plan: &ShardPlan,
    shard: usize,
    pipeline_cfg: &PipelineConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
    clock: &dyn Clock,
    vfs: &dyn Vfs,
    writer: &mut ShardJournalWriter<'_>,
    summary: &mut BuildSummary,
) -> Result<(), PipelineError> {
    let telemetry = qdb_telemetry::global();
    // Repair any torn tail a previous owner's crash left behind (we hold
    // the lease, so the truncation is fenced by construction), then mark
    // this ownership stint.
    let journal = Journal::open(vfs, shard_journal_path(root, shard));
    let resumed = vfs.exists(journal.path()) && !journal.replay(true)?.records.is_empty();
    writer.append_run(resumed)?;
    let worker = qdb_telemetry::trace::worker_ordinal(&writer.lease().owner);
    for global_index in shard_plan.indices_of(shard) {
        let record = records[global_index];
        // One flight-recorder lane per (worker, shard, fragment): the
        // worker's FNV ordinal in the high lane bits, shard k's events
        // in the (k+1)·10⁶ band of the fragment field, offset by build
        // index — a merged fleet trace keeps every worker's fragments
        // apart without renumbering anything.
        let _corr = qdb_telemetry::trace::correlate(qdb_telemetry::trace::pack_lane(
            worker,
            (shard as u64 + 1) * 1_000_000 + global_index as u64 + 1,
        ));
        // Fence before the expensive part: a stolen shard stops burning
        // compute at the next fragment boundary, not the next append.
        writer.check()?;
        let report = supervise_fragment(root, record, pipeline_cfg, sup, plan, summary, clock, vfs);
        writer.append_fragment(&report)?;
        telemetry.counter("supervisor.shard.fragments").inc();
        writer.renew()?;
    }
    writer.append_done()
}

/// Per-shard provenance recorded in the dataset card.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct ShardProvenance {
    /// Shard index.
    pub shard: usize,
    /// Worker that wrote the shard's completion marker.
    pub owner: String,
    /// Fencing token the completion was written under.
    pub token: u64,
    /// Fragment reports in the shard's journal.
    pub fragments: usize,
}

/// Min/mean/max over one per-entry statistic.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq)]
pub struct StatSummary {
    /// Values observed (0 = the fields below are meaningless zeros).
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
}

impl StatSummary {
    fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        Self {
            count: values.len(),
            min,
            mean: sum / values.len() as f64,
            max,
        }
    }
}

/// Fleet-level telemetry rolled into the dataset card by finalize:
/// which workers flushed durable snapshots during the build, and the
/// headline counters summed across all of them.
///
/// In-process counter values come from the global registry, so within
/// one test process the sums can exceed what a single build did; across
/// real worker processes (one registry each) they are exact, and the
/// full merged snapshot with per-worker receipts lives next door in
/// `fleet_telemetry.json`.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct FleetBuildStats {
    /// Worker ids that contributed at least one telemetry flush.
    pub workers: Vec<String>,
    /// Snapshot flushes summed over all workers.
    pub flushes: u64,
    /// `supervisor.shard.fragments` summed over all workers.
    pub fragments: u64,
    /// `supervisor.shard.done` summed over all workers.
    pub shards_done: u64,
    /// `supervisor.shard.lost` summed over all workers.
    pub shards_lost: u64,
}

impl FleetBuildStats {
    /// Summarizes a merged [`FleetSnapshot`].
    pub fn of(fleet: &FleetSnapshot) -> Self {
        let get = |key: &str| fleet.counters.get(key).copied().unwrap_or(0);
        Self {
            workers: fleet.workers.keys().cloned().collect(),
            flushes: fleet.total_flushes(),
            fragments: get("supervisor.shard.fragments"),
            shards_done: get("supervisor.shard.done"),
            shards_lost: get("supervisor.shard.lost"),
        }
    }
}

/// The `dataset_card.json` summary artifact written by finalize: what is
/// in the dataset, where its numbers sit, and which worker built what.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct DatasetCard {
    /// Card schema version (1).
    pub schema_version: u32,
    /// Valid entries on disk.
    pub entries: usize,
    /// Entries the build plan called for.
    pub expected: usize,
    /// Entry count per length group (S/M/L).
    pub groups: BTreeMap<String, usize>,
    /// Entry count per docking backend.
    pub backends: BTreeMap<String, usize>,
    /// Mean-best-affinity distribution over entries (kcal/mol).
    pub affinity: StatSummary,
    /// Cα-RMSD distribution over entries (Å).
    pub ca_rmsd: StatSummary,
    /// Planned fragments with no valid entry ("group/pdb_id").
    pub missing: Vec<String>,
    /// Which shard/worker/token produced each slice of the build (empty
    /// for a single-process build).
    pub shards: Vec<ShardProvenance>,
    /// Fleet telemetry rolled up from the workers' durable snapshot
    /// journals (`None` when no worker flushed any).
    pub fleet: Option<FleetBuildStats>,
}

/// Summarizes the on-disk dataset under `root` for `records` into a
/// [`DatasetCard`] (without writing it).
pub fn build_dataset_card_vfs(
    vfs: &dyn Vfs,
    root: &Path,
    records: &[&FragmentRecord],
    shards: Vec<ShardProvenance>,
    fleet: Option<FleetBuildStats>,
) -> DatasetCard {
    let mut card = DatasetCard {
        schema_version: 1,
        entries: 0,
        expected: records.len(),
        groups: BTreeMap::new(),
        backends: BTreeMap::new(),
        affinity: StatSummary::default(),
        ca_rmsd: StatSummary::default(),
        missing: Vec::new(),
        shards,
        fleet,
    };
    let mut affinities = Vec::new();
    let mut rmsds = Vec::new();
    for record in records {
        let group = record.group().name();
        match load_fragment_entry_vfs(vfs, root, group, record.pdb_id) {
            Ok(entry) => {
                card.entries += 1;
                *card.groups.entry(group.to_string()).or_insert(0) += 1;
                *card
                    .backends
                    .entry(entry.docking.backend().to_string())
                    .or_insert(0) += 1;
                affinities.push(entry.docking.mean_best_affinity);
                rmsds.push(entry.metadata.ca_rmsd);
            }
            Err(_) => card.missing.push(format!("{group}/{}", record.pdb_id)),
        }
    }
    card.affinity = StatSummary::of(&affinities);
    card.ca_rmsd = StatSummary::of(&rmsds);
    card
}

/// [`finalize_sharded_with`] on the real filesystem.
pub fn finalize_sharded(
    root: &Path,
    records: &[&FragmentRecord],
    num_shards: usize,
) -> Result<DatasetCard, PipelineError> {
    finalize_sharded_with(&StdVfs, root, records, num_shards)
}

/// Merges a completed sharded build into one dataset view.
///
/// Requires every shard journal to carry its `shard-done` marker —
/// finalize is the completeness gate, and it refuses a build any shard
/// of which is still (or forever) unfinished. On success the root
/// `manifest.journal` gains the merged run (every shard's latest
/// fragment reports, stamps intact), every worker's telemetry deltas
/// merge into `fleet_telemetry.json`, and
/// `dataset_card.json` — fleet stats included — is written atomically.
/// Idempotent: re-running appends another merged run and rewrites the
/// same card.
pub fn finalize_sharded_with(
    vfs: &dyn Vfs,
    root: &Path,
    records: &[&FragmentRecord],
    num_shards: usize,
) -> Result<DatasetCard, PipelineError> {
    let telemetry = qdb_telemetry::global();
    let num_shards = num_shards.max(1);
    let mut provenance = Vec::new();
    let mut merged: Vec<ManifestEvent> = Vec::new();
    for shard in 0..num_shards {
        let events = shard_events(vfs, root, shard)?;
        let Some(done) = events.iter().find(|ev| ev.kind == "shard-done") else {
            return Err(PipelineError::Decode(format!(
                "finalize: shard {shard} has no shard-done marker \
                 ({} journal event(s) present)",
                events.len()
            )));
        };
        let (done_owner, done_token) = (done.owner.clone().unwrap_or_default(), done.token);
        // Latest report per fragment, in first-seen order: a takeover
        // may have journaled the same fragment twice (failed, then
        // checkpointed/completed by the next owner).
        let mut order: Vec<String> = Vec::new();
        let mut latest: BTreeMap<String, ManifestEvent> = BTreeMap::new();
        let mut count = 0usize;
        for ev in events {
            if ev.kind == "fragment" {
                if let Some(report) = &ev.fragment {
                    count += 1;
                    if !latest.contains_key(&report.pdb_id) {
                        order.push(report.pdb_id.clone());
                    }
                    latest.insert(report.pdb_id.clone(), ev);
                }
            }
        }
        provenance.push(ShardProvenance {
            shard,
            owner: done_owner,
            token: done_token.unwrap_or(0),
            fragments: count,
        });
        for pdb_id in &order {
            merged.push(latest.remove(pdb_id).expect("keyed by order"));
        }
    }

    let main = Journal::open(vfs, journal_path(root));
    append_event(&main, &ManifestEvent::run(vfs.exists(main.path())))?;
    let merged_count = merged.len();
    for ev in merged {
        append_event(&main, &ev)?;
    }
    append_event(
        &main,
        &ManifestEvent::note(format!(
            "shards-merged: {num_shards} shard(s), {merged_count} fragment report(s)"
        )),
    )?;

    // Fold every worker's flushed telemetry deltas into one fleet
    // snapshot artifact, and roll its headline numbers into the card.
    let fleet_snapshot = merge_worker_deltas(vfs, root)?;
    let fleet = if fleet_snapshot.workers.is_empty() {
        None
    } else {
        write_fleet_snapshot(vfs, root, &fleet_snapshot)?;
        Some(FleetBuildStats::of(&fleet_snapshot))
    };

    let card = build_dataset_card_vfs(vfs, root, records, provenance, fleet);
    let rendered = serde_json::to_string_pretty(&card)?;
    write_atomic(vfs, &dataset_card_path(root), rendered.as_bytes())?;
    telemetry.counter("supervisor.shard.finalized").inc();
    telemetry.instant("supervisor.shard.finalize");
    Ok(card)
}

/// Loads the merged view of a sharded build's journals: every shard's
/// events folded into one [`Manifest`], shard order then journal order.
/// Works on an unfinished build (missing `shard-done` markers are fine);
/// useful for progress reporting and fsck, not a completeness gate.
pub fn load_sharded_manifest_vfs(
    vfs: &dyn Vfs,
    root: &Path,
    num_shards: usize,
) -> Result<Manifest, PipelineError> {
    let mut payloads = Vec::new();
    for shard in 0..num_shards.max(1) {
        let journal = Journal::open(vfs, shard_journal_path(root, shard));
        if !vfs.exists(journal.path()) {
            continue;
        }
        payloads.extend(journal.replay(false)?.records);
    }
    Ok(manifest_from_events(&payloads))
}

/// Which shard/worker last journaled each fragment, from every build
/// journal under `root` (per-shard journals and the merged manifest).
/// Single-process journals carry no stamps and contribute nothing.
pub fn shard_ownership_vfs(
    vfs: &dyn Vfs,
    root: &Path,
) -> Result<BTreeMap<String, ShardStamp>, PipelineError> {
    let mut journals = vec![journal_path(root)];
    if vfs.is_dir(root) {
        let mut shard_journals: Vec<PathBuf> = vfs
            .read_dir(root)?
            .into_iter()
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".journal"))
            })
            .collect();
        shard_journals.sort();
        journals.extend(shard_journals);
    }
    let mut out = BTreeMap::new();
    for path in journals {
        if !vfs.exists(&path) {
            continue;
        }
        for payload in Journal::open(vfs, path).replay(false)?.records {
            let Ok(ev) = serde_json::from_str::<ManifestEvent>(&payload) else {
                continue;
            };
            if ev.kind != "fragment" {
                continue;
            }
            let (Some(report), Some(shard), Some(owner)) = (&ev.fragment, ev.shard, &ev.owner)
            else {
                continue;
            };
            out.insert(
                report.pdb_id.clone(),
                ShardStamp {
                    shard,
                    owner: owner.clone(),
                    token: ev.token.unwrap_or(0),
                },
            );
        }
    }
    Ok(out)
}

/// The provenance stamp a journal record carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardStamp {
    /// Shard the record belongs to.
    pub shard: usize,
    /// Worker that wrote it.
    pub owner: String,
    /// Fencing token the write was made under.
    pub token: u64,
}

/// Verifies no fragment was *computed* twice across a sharded build:
/// counts, per pdb id, how many journaled reports did real work
/// ("completed" / "completed-degraded" — a "checkpointed" report is a
/// validated skip). Returns the offenders (empty = the invariant held).
pub fn double_build_offenders_vfs(
    vfs: &dyn Vfs,
    root: &Path,
    num_shards: usize,
) -> Result<Vec<String>, PipelineError> {
    let mut computed: BTreeMap<String, usize> = BTreeMap::new();
    for shard in 0..num_shards.max(1) {
        for ev in shard_events(vfs, root, shard)? {
            if ev.kind != "fragment" {
                continue;
            }
            let Some(report) = &ev.fragment else { continue };
            if report.status.starts_with("completed") {
                *computed.entry(report.pdb_id.clone()).or_insert(0) += 1;
            }
        }
    }
    Ok(computed
        .into_iter()
        .filter(|(_, n)| *n > 1)
        .map(|(id, _)| id)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragments::fragment;
    use qdb_telemetry::ManualClock;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qdb-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn shard_plan_is_a_deterministic_partition() {
        let plan = ShardPlan::new(3, 8);
        assert_eq!(plan.indices_of(0), vec![0, 3, 6]);
        assert_eq!(plan.indices_of(1), vec![1, 4, 7]);
        assert_eq!(plan.indices_of(2), vec![2, 5]);
        // Every index lands in exactly one shard.
        let mut seen = vec![false; 8];
        for k in 0..3 {
            for i in plan.indices_of(k) {
                assert_eq!(plan.shard_of(i), k);
                assert!(!seen[i], "index {i} planned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Zero shards degrades to one, never divides by zero.
        assert_eq!(ShardPlan::new(0, 4).num_shards(), 1);
    }

    #[test]
    fn single_worker_builds_all_shards_and_finalize_writes_the_card() {
        let root = tmpdir("solo");
        let records = [fragment("3ckz").unwrap(), fragment("3eax").unwrap()];
        let clock = ManualClock::new();
        let cfg = ShardConfig {
            lease_ttl_ms: 60_000,
            ..ShardConfig::new(2, "w0")
        };
        let out = build_dataset_sharded_with(
            &root,
            &records,
            &PipelineConfig::fast(),
            &SupervisorConfig::fast(),
            &FaultPlan::none(),
            &cfg,
            &clock,
            &StdVfs,
        )
        .unwrap();
        assert_eq!(out.shards_built, vec![0, 1]);
        assert_eq!(out.build.completed, 2);
        assert_eq!(out.shards_lost, 0);
        for shard in 0..2 {
            assert!(shard_is_done(&StdVfs, &root, shard).unwrap());
        }

        let card = finalize_sharded(&root, &records, 2).unwrap();
        assert_eq!(card.entries, 2);
        assert_eq!(card.expected, 2);
        assert_eq!(card.groups.get("S"), Some(&2));
        assert!(card.missing.is_empty());
        assert_eq!(card.shards.len(), 2);
        assert!(card
            .shards
            .iter()
            .all(|p| p.owner == "w0" && p.fragments == 1));
        assert_eq!(card.affinity.count, 2);
        assert!(card.affinity.min <= card.affinity.mean);
        assert!(card.affinity.mean <= card.affinity.max);
        assert!(dataset_card_path(&root).exists());
        // The card round-trips through its JSON artifact.
        let back: DatasetCard =
            serde_json::from_str(&std::fs::read_to_string(dataset_card_path(&root)).unwrap())
                .unwrap();
        assert_eq!(back, card);

        // The worker journaled durable telemetry, finalize merged it,
        // and the card carries the roll-up. Counter totals come off the
        // process-global registry (shared by every test in this
        // binary), so assert presence and lower bounds, not equality.
        let fleet_snap = qdb_store::read_fleet_snapshot(&StdVfs, &root).unwrap();
        assert!(fleet_snap.workers.contains_key("w0"));
        assert!(fleet_snap.identity_problems().is_empty());
        let fleet = card.fleet.as_ref().expect("card carries fleet stats");
        assert_eq!(fleet.workers, vec!["w0".to_string()]);
        assert!(fleet.flushes >= 3, "start + 2 shard flushes at least");
        assert!(fleet.fragments >= 2);
        assert!(fleet.shards_done >= 2);

        // The merged manifest carries the stamped reports.
        let ownership = shard_ownership_vfs(&StdVfs, &root).unwrap();
        assert_eq!(ownership.len(), 2);
        assert_eq!(ownership["3ckz"].owner, "w0");
        assert!(double_build_offenders_vfs(&StdVfs, &root, 2)
            .unwrap()
            .is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn finalize_refuses_an_incomplete_shard() {
        let root = tmpdir("incomplete");
        let records = [fragment("3ckz").unwrap()];
        // Shard 0 journal exists without a done marker; shard 1 absent.
        let clock = ManualClock::new();
        let manager = LeaseManager::new(&StdVfs, &clock, &root, 1_000);
        let lease = manager.acquire(0, "w0").unwrap();
        let writer = ShardJournalWriter::new(&StdVfs, &root, &manager, lease);
        writer.append_run(false).unwrap();
        let err = finalize_sharded(&root, &records, 2).unwrap_err();
        assert!(err.to_string().contains("shard-done"), "{err}");
        assert!(
            !dataset_card_path(&root).exists(),
            "no card for an incomplete build"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fenced_writer_cannot_touch_the_journal() {
        let root = tmpdir("fenced");
        let clock = ManualClock::new();
        let manager = LeaseManager::new(&StdVfs, &clock, &root, 1_000);
        let zombie_lease = manager.acquire(0, "w0").unwrap();
        let zombie = ShardJournalWriter::new(&StdVfs, &root, &manager, zombie_lease);
        zombie.append_run(false).unwrap();
        let bytes_before = std::fs::read(shard_journal_path(&root, 0)).unwrap();

        // w0 stalls past its deadline; w1 steals the shard.
        clock.advance_ms(1_001);
        let thief_lease = manager.acquire(0, "w1").unwrap();

        // Every move of the zombie is rejected, and the journal is
        // byte-for-byte untouched by the attempts.
        assert!(matches!(
            zombie.append_note("zombie write"),
            Err(PipelineError::Lease { shard: 0, .. })
        ));
        assert!(zombie.check().is_err());
        assert_eq!(
            std::fs::read(shard_journal_path(&root, 0)).unwrap(),
            bytes_before
        );

        // The thief's writer works.
        let thief = ShardJournalWriter::new(&StdVfs, &root, &manager, thief_lease);
        thief.append_note("takeover").unwrap();
        assert!(std::fs::read(shard_journal_path(&root, 0)).unwrap().len() > bytes_before.len());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn worker_waits_out_live_peers_within_bounded_rounds() {
        let root = tmpdir("bounded");
        let records = [fragment("3ckz").unwrap()];
        let clock = ManualClock::new();
        // A "peer" holds the only shard with a generous TTL.
        let manager = LeaseManager::new(&StdVfs, &clock, &root, 1_000_000);
        manager.acquire(0, "peer").unwrap();
        let cfg = ShardConfig {
            lease_ttl_ms: 1_000_000,
            max_wait_rounds: 3,
            ..ShardConfig::new(1, "w1")
        };
        let out = build_dataset_sharded_with(
            &root,
            &records,
            &PipelineConfig::fast(),
            &SupervisorConfig::fast(),
            &FaultPlan::none(),
            &cfg,
            &clock,
            &StdVfs,
        )
        .unwrap();
        // The worker gave up without building or erroring: the shard is
        // the live peer's problem, finalize is the completeness gate.
        assert!(out.shards_built.is_empty());
        assert_eq!(out.build.completed, 0);
        let _ = std::fs::remove_dir_all(&root);
    }
}
