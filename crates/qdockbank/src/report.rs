//! Text renderers that regenerate the paper's tables and figures
//! (as aligned plain text / CSV series, consumed by the bench binaries).

use crate::evaluation::{metric_series, summarize, CoverageReport, FragmentComparison, WinRates};
use crate::fragments::{FragmentRecord, Group};
use crate::pipeline::{PredictionEval, QuantumMetadata};
use qdb_baselines::alphafold::AfModel;
use std::fmt::Write as _;

/// One row of a Tables 1–3 regeneration.
#[derive(Clone, Debug)]
pub struct GroupTableRow {
    /// Manifest entry.
    pub record: &'static FragmentRecord,
    /// Measured quantum metadata from our pipeline.
    pub quantum: QuantumMetadata,
}

/// Renders the Table 1/2/3 regeneration for a group: paper columns and
/// our measured equivalents side by side.
pub fn render_group_table(group: Group, rows: &[GroupTableRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table ({} group): paper-reported vs measured per-fragment quantum metrics",
        group.name()
    );
    let _ = writeln!(
        out,
        "{:<6} {:<15} {:>3} | {:>6} {:>5} {:>12} {:>12} {:>11} | {:>6} {:>6} {:>5} {:>12} {:>12} {:>11}",
        "PDB", "Sequence", "Len",
        "qub", "dep", "lowE", "highE", "time(s)",
        "log-q", "phys-q", "dep", "lowE", "highE", "time(s)"
    );
    let _ = writeln!(out, "{}", "-".repeat(150));
    for row in rows {
        let r = row.record;
        let q = &row.quantum;
        let _ = writeln!(
            out,
            "{:<6} {:<15} {:>3} | {:>6} {:>5} {:>12.3} {:>12.3} {:>11.2} | {:>6} {:>6} {:>5} {:>12.3} {:>12.3} {:>11.2}",
            r.pdb_id,
            r.sequence,
            r.len(),
            r.paper.qubits,
            r.paper.depth,
            r.paper.lowest_energy,
            r.paper.highest_energy,
            r.paper.exec_time_s,
            q.logical_qubits,
            q.physical_qubits,
            q.measured_depth,
            q.lowest_energy,
            q.highest_energy,
            q.exec_time_s,
        );
    }
    out
}

/// Renders the §6.2 headline win-rate block for one baseline.
pub fn render_win_rates(rates: &WinRates) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "QDock vs {}: affinity wins {}/{} ({:.1}%), RMSD wins {}/{} ({:.1}%)",
        rates.baseline.name(),
        rates.overall.affinity_wins,
        rates.overall.total,
        rates.overall.affinity_rate(),
        rates.overall.rmsd_wins,
        rates.overall.total,
        rates.overall.rmsd_rate(),
    );
    for (group, wins) in &rates.per_group {
        let _ = writeln!(
            out,
            "  group {}: affinity {}/{} ({:.1}%), RMSD {}/{} ({:.1}%)",
            group.name(),
            wins.affinity_wins,
            wins.total,
            wins.affinity_rate(),
            wins.rmsd_wins,
            wins.total,
            wins.rmsd_rate(),
        );
    }
    out
}

/// Renders the Figure 2/3 scatter series as CSV: one row per fragment
/// with both predictors' affinity and RMSD (the paper plots QDock on one
/// axis and the baseline on the other, per group).
pub fn render_scatter(comparisons: &[FragmentComparison], model: AfModel) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "pdb_id,group,qdock_affinity,{m}_affinity,qdock_rmsd,{m}_rmsd",
        m = model.name().to_lowercase()
    );
    for c in comparisons {
        let base = c.baseline(model);
        let _ = writeln!(
            out,
            "{},{},{:.3},{:.3},{:.3},{:.3}",
            c.record.pdb_id,
            c.record.group().name(),
            c.qdock.qdock.affinity(),
            base.affinity(),
            c.qdock.qdock.ca_rmsd,
            base.ca_rmsd,
        );
    }
    out
}

/// Renders the Figure 4 box statistics: affinity and RMSD distributions
/// for QDock, AF2, AF3 over all fragments (and per group).
pub fn render_box_stats(comparisons: &[FragmentComparison]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<9} {:<6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "metric", "predictor", "group", "min", "q1", "median", "q3", "max", "mean"
    );
    let _ = writeln!(out, "{}", "-".repeat(80));
    let mut emit = |metric: &str, predictor: &str, group: Option<Group>, values: Vec<f64>| {
        // An empty or all-non-finite series renders nothing rather than
        // aborting the whole report.
        let Some(s) = summarize(&values) else {
            return;
        };
        let gname = group.map(|g| g.name()).unwrap_or("All");
        let _ = writeln!(
            out,
            "{:<10} {:<9} {:<6} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            metric, predictor, gname, s.min, s.q1, s.median, s.q3, s.max, s.mean
        );
    };
    type Extract = fn(&FragmentComparison) -> f64;
    let extractors: [(&str, &str, Extract); 6] = [
        ("affinity", "QDock", |c| c.qdock.qdock.affinity()),
        ("affinity", "AF2", |c| c.af2.affinity()),
        ("affinity", "AF3", |c| c.af3.affinity()),
        ("rmsd", "QDock", |c| c.qdock.qdock.ca_rmsd),
        ("rmsd", "AF2", |c| c.af2.ca_rmsd),
        ("rmsd", "AF3", |c| c.af3.ca_rmsd),
    ];
    for group in [None, Some(Group::L), Some(Group::M), Some(Group::S)] {
        for (metric, predictor, extract) in extractors {
            emit(
                metric,
                predictor,
                group,
                metric_series(comparisons, group, extract),
            );
        }
    }
    out
}

/// Renders the Figure 5 coverage report.
pub fn render_coverage(report: &CoverageReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Amino-acid interaction coverage: {}/400 ordered pair types (paper: 395/400)",
        report.covered_types()
    );
    let _ = writeln!(
        out,
        "total pair observations: {}",
        report.total_interactions()
    );
    let _ = writeln!(out, "most frequent pairs:");
    for (a, b, count) in report.top_pairs(12) {
        let _ = writeln!(out, "  {a}-{b}: {count}");
    }
    out
}

/// Renders the Table 4 case study (average docking metrics, QDock vs AF3
/// on one fragment).
pub fn render_case_table(pdb_id: &str, qdock: &PredictionEval, af3: &PredictionEval) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Average docking metrics for QDockBank vs AlphaFold3 on {pdb_id}"
    );
    let _ = writeln!(
        out,
        "{:<38} {:>10} {:>12}",
        "Metric", "QDockBank", "AlphaFold3"
    );
    let _ = writeln!(
        out,
        "{:<38} {:>10.2} {:>12.2}",
        "Affinity (kcal/mol)(Low is better)",
        qdock.docking.mean_best_affinity(),
        af3.docking.mean_best_affinity()
    );
    let _ = writeln!(
        out,
        "{:<38} {:>10.2} {:>12.2}",
        "RMSD l.b. (A)(Low is better)",
        qdock.docking.mean_rmsd_lb(),
        af3.docking.mean_rmsd_lb()
    );
    let _ = writeln!(
        out,
        "{:<38} {:>10.2} {:>12.2}",
        "RMSD u.b. (A)(Low is better)",
        qdock.docking.mean_rmsd_ub(),
        af3.docking.mean_rmsd_ub()
    );
    out
}

/// Renders the §6.2 "Protein types" inventory: fragments per functional
/// class with their PDB ids.
pub fn render_protein_classes() -> String {
    use crate::fragments::{all_fragments, ProteinClass};
    let classes = [
        ProteinClass::ViralEnzyme,
        ProteinClass::Kinase,
        ProteinClass::MetabolicEnzyme,
        ProteinClass::Receptor,
        ProteinClass::Chaperone,
        ProteinClass::Protease,
        ProteinClass::Miscellaneous,
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Functional protein classes across the 55 fragments (§6.2):"
    );
    for class in classes {
        let members: Vec<&str> = all_fragments()
            .into_iter()
            .filter(|r| r.protein_class() == class)
            .map(|r| r.pdb_id)
            .collect();
        let _ = writeln!(
            out,
            "  {:<18} {:>2}  [{}]",
            class.name(),
            members.len(),
            members.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::{compare_fragments, interaction_coverage, win_rates};
    use crate::fragments::{all_fragments, fragment};
    use crate::pipeline::PipelineConfig;

    #[test]
    fn coverage_report_renders() {
        let report = interaction_coverage(&all_fragments());
        let text = render_coverage(&report);
        assert!(text.contains("/400 ordered pair types"));
        assert!(text.contains("most frequent pairs"));
    }

    #[test]
    fn protein_class_inventory_renders() {
        let text = render_protein_classes();
        assert!(text.contains("viral enzyme"));
        assert!(text.contains("kinase"));
        assert!(text.contains("1zsf"));
        // All 55 fragments appear exactly once.
        let ids: usize = text
            .lines()
            .skip(1)
            .map(|l| l.matches(", ").count() + usize::from(l.contains('[')))
            .sum();
        assert_eq!(ids, 55);
    }

    #[test]
    fn scatter_and_stats_render() {
        let config = PipelineConfig::fast();
        let comparisons = compare_fragments(&[fragment("3ckz").unwrap()], &config).unwrap();
        let scatter = render_scatter(&comparisons, AfModel::Af2);
        assert!(scatter.lines().count() == 2, "header + one row");
        assert!(scatter.contains("3ckz,S,"));

        let stats = render_box_stats(&comparisons);
        assert!(stats.contains("QDock"));
        assert!(stats.contains("AF3"));

        let rates = win_rates(&comparisons, AfModel::Af3);
        let text = render_win_rates(&rates);
        assert!(text.contains("QDock vs AF3"));
        assert!(text.contains("group S"));

        let case = render_case_table("3ckz", &comparisons[0].qdock.qdock, &comparisons[0].af3);
        assert!(case.contains("Affinity"));
        assert!(case.contains("RMSD l.b."));
    }
}
