//! Offline dataset integrity check (`build_dataset --fsck`).
//!
//! Walks the expected fragment set against a dataset root and classifies
//! every entry as **ok** (checksums and semantics pass), **missing**
//! (no entry directory), or **corrupt** (validation failed). Corrupt
//! entries are moved to `quarantine/` with a reason file so the evidence
//! survives and the slot is clean for the next build; stray `*.tmp`
//! files left by a killed build are swept. Sharded roots get a lease
//! pass on top: orphaned, expired, released, and corrupt lease files
//! are cleaned out (live ones reported and kept), and every entry is
//! annotated with the shard/worker that journaled it. The report is
//! pure data — the CLI renders it and turns "anything not ok" into a
//! non-zero exit.

use crate::dataset::validate_entry_vfs;
use crate::error::PipelineError;
use crate::fragments::FragmentRecord;
use crate::shard::{shard_ownership_vfs, ShardStamp};
use qdb_store::{quarantine_entry, sweep_tmp_files, LeaseManager, LeaseSweepEntry, StdVfs, Vfs};
use qdb_telemetry::WallClock;
use std::path::{Path, PathBuf};

/// Outcome of checking one fragment's dataset entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsckStatus {
    /// Entry present, every checksum matches, semantics validate.
    Ok,
    /// No entry directory on disk (never built, or already failed).
    Missing,
    /// Entry present but rejected by validation.
    Corrupt {
        /// Why validation rejected it (checksum mismatch, torn commit, …).
        reason: String,
        /// Where the rejected entry was moved, if quarantine succeeded.
        quarantined: Option<PathBuf>,
    },
}

impl FsckStatus {
    /// Short label for report rendering: "ok", "missing", or "corrupt".
    pub fn label(&self) -> &'static str {
        match self {
            FsckStatus::Ok => "ok",
            FsckStatus::Missing => "missing",
            FsckStatus::Corrupt { .. } => "corrupt",
        }
    }
}

/// One fragment's line in the fsck report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FsckEntry {
    /// PDB id.
    pub pdb_id: String,
    /// Length group (S/M/L).
    pub group: String,
    /// What fsck found.
    pub status: FsckStatus,
    /// Which shard/worker last journaled this fragment (`None` for
    /// single-process builds, whose journals carry no stamps).
    pub built_by: Option<ShardStamp>,
}

/// The whole fsck run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// One entry per expected fragment, in the order given.
    pub entries: Vec<FsckEntry>,
    /// Stray `*.tmp` files removed from the dataset tree.
    pub swept_tmp: usize,
    /// Every lease file found under the root, with its state at scan
    /// time and whether the sweep removed it.
    pub leases: Vec<LeaseSweepEntry>,
    /// Lease files removed (orphaned, expired, released, or corrupt;
    /// live leases are kept).
    pub leases_removed: usize,
}

impl FsckReport {
    /// Entries that passed.
    pub fn ok(&self) -> usize {
        self.count(|s| matches!(s, FsckStatus::Ok))
    }

    /// Entries with no directory on disk.
    pub fn missing(&self) -> usize {
        self.count(|s| matches!(s, FsckStatus::Missing))
    }

    /// Entries rejected by validation.
    pub fn corrupt(&self) -> usize {
        self.count(|s| matches!(s, FsckStatus::Corrupt { .. }))
    }

    /// Whether every expected entry is present and valid.
    pub fn clean(&self) -> bool {
        self.ok() == self.entries.len()
    }

    fn count(&self, pred: impl Fn(&FsckStatus) -> bool) -> usize {
        self.entries.iter().filter(|e| pred(&e.status)).count()
    }
}

/// Checks `records` against the dataset under `root` (production vfs).
pub fn fsck_dataset(root: &Path, records: &[&FragmentRecord]) -> Result<FsckReport, PipelineError> {
    fsck_dataset_vfs(&StdVfs, root, records)
}

/// [`fsck_dataset`] through an explicit [`Vfs`].
///
/// Corrupt entries are quarantined (never deleted); a quarantine that
/// itself fails is folded into the entry's reason rather than aborting
/// the scan — fsck always produces a full report.
pub fn fsck_dataset_vfs(
    vfs: &dyn Vfs,
    root: &Path,
    records: &[&FragmentRecord],
) -> Result<FsckReport, PipelineError> {
    let telemetry = qdb_telemetry::global();
    let mut report = FsckReport::default();
    let ownership = shard_ownership_vfs(vfs, root)?;
    for record in records {
        let group = record.group().name();
        let entry_dir = root.join(group).join(record.pdb_id);
        let status = if !vfs.is_dir(&entry_dir) {
            FsckStatus::Missing
        } else {
            match validate_entry_vfs(vfs, root, record) {
                Ok(()) => {
                    report.swept_tmp += sweep_tmp_files(vfs, &entry_dir)?;
                    FsckStatus::Ok
                }
                Err(e) => {
                    telemetry.counter("fsck.corrupt_entries").inc();
                    let mut reason = e.to_string();
                    let quarantined = match quarantine_entry(vfs, root, &entry_dir, &reason) {
                        Ok(slot) => Some(slot),
                        Err(qe) => {
                            reason = format!("{reason}; quarantine failed: {qe}");
                            None
                        }
                    };
                    FsckStatus::Corrupt {
                        reason,
                        quarantined,
                    }
                }
            }
        };
        report.entries.push(FsckEntry {
            pdb_id: record.pdb_id.to_string(),
            group: group.to_string(),
            status,
            built_by: ownership.get(record.pdb_id).cloned(),
        });
    }
    // Stray tmp files can also sit beside entries (group dirs, root).
    for dir in
        std::iter::once(root.to_path_buf()).chain(["S", "M", "L"].iter().map(|g| root.join(g)))
    {
        if vfs.is_dir(&dir) {
            report.swept_tmp += sweep_tmp_files(vfs, &dir)?;
        }
    }
    // Lease pass: a crashed sharded build leaves lease files behind;
    // expired/released/corrupt/orphaned ones are debris (sweep them),
    // live ones mean a worker may still be running (report, keep). The
    // TTL here only shapes the expired/live split of the report — fsck
    // runs on wall-clock time like the workers that wrote the leases.
    let clock = WallClock;
    let manager = LeaseManager::new(vfs, &clock, root, 30_000);
    let sweep = manager.sweep(None)?;
    report.leases = sweep.entries;
    report.leases_removed = sweep.removed;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::write_fragment_entry;
    use crate::fragments::fragment;
    use crate::pipeline::{run_fragment, PipelineConfig};
    use qdb_store::QUARANTINE_DIR;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qdb-fsck-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn classifies_ok_missing_and_corrupt() {
        let root = tmpdir("classify");
        let good = fragment("3ckz").unwrap();
        let bad = fragment("3eax").unwrap();
        let absent = fragment("4mo4").unwrap();
        let cfg = PipelineConfig::fast();
        write_fragment_entry(&root, good, &run_fragment(good, &cfg).unwrap()).unwrap();
        let files = write_fragment_entry(&root, bad, &run_fragment(bad, &cfg).unwrap()).unwrap();
        // Flip a byte in the corrupt one.
        let mut bytes = std::fs::read(&files.structure_pdb).unwrap();
        bytes[40] ^= 0x01;
        std::fs::write(&files.structure_pdb, &bytes).unwrap();
        // And leave a stray tmp from a "killed build".
        std::fs::write(root.join("S").join("stray.pdb.tmp"), b"torn").unwrap();

        let report = fsck_dataset(&root, &[good, bad, absent]).unwrap();
        assert_eq!(report.ok(), 1);
        assert_eq!(report.corrupt(), 1);
        assert_eq!(report.missing(), 1);
        assert!(!report.clean());
        assert_eq!(report.swept_tmp, 1);

        let corrupt = &report.entries[1];
        assert_eq!(corrupt.pdb_id, "3eax");
        let FsckStatus::Corrupt {
            reason,
            quarantined,
        } = &corrupt.status
        else {
            panic!("expected corrupt, got {:?}", corrupt.status);
        };
        assert!(reason.contains("checksum"), "reason: {reason}");
        let slot = quarantined.as_ref().expect("quarantine succeeded");
        assert!(slot.starts_with(root.join(QUARANTINE_DIR)));
        assert!(slot.join("REASON.txt").exists());
        // The corrupt slot is clean for the next build.
        assert!(!root.join("S/3eax").exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn lease_debris_is_swept_and_shard_ownership_is_reported() {
        use crate::shard::{build_dataset_sharded_with, ShardConfig};
        use crate::supervisor::SupervisorConfig;
        use qdb_telemetry::ManualClock;
        use qdb_vqe::fault::FaultPlan;

        let root = tmpdir("leases");
        let record = fragment("3ckz").unwrap();
        let clock = ManualClock::new();
        build_dataset_sharded_with(
            &root,
            &[record],
            &PipelineConfig::fast(),
            &SupervisorConfig::fast(),
            &FaultPlan::none(),
            &ShardConfig::new(1, "w0"),
            &clock,
            &StdVfs,
        )
        .unwrap();
        // The worker released its lease, but the file is kept on disk for
        // token history — that is exactly the debris fsck cleans.
        assert!(root.join("leases/shard-0.lease").exists());

        let report = fsck_dataset(&root, &[record]).unwrap();
        assert!(report.clean());
        let stamp = report.entries[0].built_by.as_ref().expect("stamped entry");
        assert_eq!(stamp.shard, 0);
        assert_eq!(stamp.owner, "w0");
        assert!(stamp.token >= 1);
        assert_eq!(report.leases.len(), 1);
        assert_eq!(report.leases[0].status, "released");
        assert_eq!(report.leases_removed, 1);
        assert!(!root.join("leases/shard-0.lease").exists());

        // A second fsck finds nothing left to sweep.
        let again = fsck_dataset(&root, &[record]).unwrap();
        assert!(again.leases.is_empty());
        assert_eq!(again.leases_removed, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn clean_dataset_reports_clean() {
        let root = tmpdir("clean");
        let record = fragment("3ckz").unwrap();
        let cfg = PipelineConfig::fast();
        write_fragment_entry(&root, record, &run_fragment(record, &cfg).unwrap()).unwrap();
        let report = fsck_dataset(&root, &[record]).unwrap();
        assert!(report.clean());
        assert_eq!(report.entries[0].status.label(), "ok");
        assert_eq!(report.swept_tmp, 0);
        let _ = std::fs::remove_dir_all(&root);
    }
}
