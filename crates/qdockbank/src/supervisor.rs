//! Fault-tolerant dataset-build supervisor.
//!
//! The paper's 55-fragment campaign ran for weeks on shared utility-level
//! hardware, where jobs are rejected, drift out of calibration, and die
//! mid-run; a build that restarts from scratch on every hiccup never
//! finishes. This module wraps each fragment job in a supervised runtime:
//!
//! * **panic isolation** — a crashing job is caught (`catch_unwind`) and
//!   becomes a typed [`PipelineError::Panicked`], never a dead build;
//! * **bounded retry with exponential backoff** — transient failures
//!   (queue rejection, drift, shot shortfall, I/O) are retried with the
//!   *same* seed, so a recovered fragment is byte-identical to a
//!   fault-free build;
//! * **escalation for deterministic failures** — a failure that repeats
//!   under plain retry is first seed-shifted, then walked down a
//!   degradation ladder (Compiled → Direct engine, then a reduced shot
//!   budget), trading fidelity for completion;
//! * **per-fragment deadlines** — a runaway fragment is cut off at the
//!   attempt boundary and recorded as failed, not hung;
//! * **checkpoint/resume** — the dataset entry layout *is* the
//!   checkpoint: a resumed build lists what is on disk, validates each
//!   entry against the manifest, and recomputes nothing that passes;
//! * **journaling** — every attempt (cause, backoff, degradation
//!   decision, final status) is appended to `manifest.json` under the
//!   dataset root, so a post-mortem never depends on scrollback.

use crate::dataset::{validate_entry, write_fragment_entry, FragmentFiles};
use crate::error::PipelineError;
use crate::fragments::FragmentRecord;
use crate::pipeline::{run_fragment_with, PipelineConfig};
use qdb_telemetry::{Clock, MonotonicClock};
use qdb_vqe::error::panic_message;
use qdb_vqe::fault::FaultPlan;
use qdb_vqe::runner::{EnergyEngine, VqeConfig};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Retry/degradation policy for a supervised build.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// Attempt budget per fragment (including degraded attempts).
    pub max_attempts: usize,
    /// First retry delay; doubles per subsequent retry.
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
    /// Wall-clock budget per fragment, checked at attempt boundaries
    /// (`None` = unbounded).
    pub fragment_deadline_ms: Option<u64>,
    /// Whether repeated deterministic failures may degrade the run
    /// configuration (engine downgrade, reduced shots) instead of failing.
    pub degrade: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_backoff_ms: 10,
            max_backoff_ms: 2_000,
            fragment_deadline_ms: None,
            degrade: true,
        }
    }
}

impl SupervisorConfig {
    /// Policy for tests: same shape, but no real sleeping.
    pub fn fast() -> Self {
        Self {
            base_backoff_ms: 0,
            ..Self::default()
        }
    }
}

/// One attempt at one fragment, as journaled in `manifest.json`.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct AttemptRecord {
    /// 0-based attempt index.
    pub attempt: usize,
    /// Execution engine used ("compiled" or "direct").
    pub engine: String,
    /// Stage-2 shot budget used.
    pub shots: u64,
    /// Whether the VQE seed was shifted off the canonical per-fragment
    /// seed for this attempt.
    pub seed_shifted: bool,
    /// Degradation rung applied, if any ("seed-shift", "engine-direct",
    /// "reduced-shots").
    pub degradation: Option<String>,
    /// Failure cause (`PipelineError::kind`), or `None` if the attempt
    /// succeeded.
    pub cause: Option<String>,
    /// Whether that failure was classified transient.
    pub transient: bool,
    /// Backoff slept after this attempt (ms).
    pub backoff_ms: u64,
}

/// Final per-fragment journal entry for one run.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct FragmentReport {
    /// PDB id.
    pub pdb_id: String,
    /// Length group (S/M/L).
    pub group: String,
    /// "completed", "completed-degraded", "failed", or "checkpointed"
    /// (valid entry already on disk; recomputed nothing).
    pub status: String,
    /// Every attempt this run spent on the fragment (empty when
    /// checkpointed).
    pub attempts: Vec<AttemptRecord>,
    /// Wall-clock spent on the fragment this run (ms).
    pub elapsed_ms: u64,
    /// Free-form diagnostic (e.g. why a checkpoint was rejected).
    pub note: Option<String>,
}

/// One `build_dataset` invocation.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct RunRecord {
    /// Whether this run found and reused prior on-disk state.
    pub resumed: bool,
    /// Per-fragment journal, in build order.
    pub fragments: Vec<FragmentReport>,
}

/// The `manifest.json` journal: one record per build run, append-only
/// across resumes.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq)]
pub struct Manifest {
    /// All runs against this dataset root, oldest first.
    pub runs: Vec<RunRecord>,
}

/// Aggregate counts for one `build_dataset` call.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BuildSummary {
    /// Fragments built cleanly at the canonical configuration.
    pub completed: usize,
    /// Fragments that needed a seed shift or degradation rung.
    pub degraded: usize,
    /// Fragments that exhausted their budget (entry absent).
    pub failed: usize,
    /// Fragments skipped because a valid entry was already on disk.
    pub checkpointed: usize,
    /// Path of the journal.
    pub manifest_path: PathBuf,
}

impl BuildSummary {
    /// Fragments with a usable entry on disk after this run.
    pub fn usable(&self) -> usize {
        self.completed + self.degraded + self.checkpointed
    }
}

fn manifest_path(root: &Path) -> PathBuf {
    root.join("manifest.json")
}

/// Loads the build journal under `root` (empty if none exists yet).
pub fn load_manifest(root: &Path) -> Result<Manifest, PipelineError> {
    let path = manifest_path(root);
    if !path.exists() {
        return Ok(Manifest::default());
    }
    Ok(serde_json::from_str(&std::fs::read_to_string(path)?)?)
}

fn save_manifest(root: &Path, manifest: &Manifest) -> Result<(), PipelineError> {
    std::fs::create_dir_all(root)?;
    std::fs::write(manifest_path(root), serde_json::to_string_pretty(manifest)?)?;
    Ok(())
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What one attempt runs with. Escalation `0..=1` keeps the canonical
/// configuration (a deterministic *injected* fault is keyed to the
/// attempt index, so a plain retry clears it without forfeiting
/// byte-identity); escalation 2 shifts the seed; 3+ walks the
/// degradation ladder.
fn attempt_config(
    canonical: &VqeConfig,
    escalation: usize,
    attempt: usize,
    degrade: bool,
) -> (VqeConfig, bool, Option<String>) {
    let mut cfg = canonical.clone();
    match escalation {
        0 | 1 => (cfg, false, None),
        2 => {
            cfg.seed ^= splitmix(attempt as u64 + 1);
            (cfg, true, Some("seed-shift".to_string()))
        }
        3 if degrade => {
            cfg.engine = EnergyEngine::Direct;
            (cfg, false, Some("engine-direct".to_string()))
        }
        _ => {
            if degrade {
                cfg.engine = EnergyEngine::Direct;
                cfg.shots = (canonical.shots / 4).max(1_000);
                cfg.sample_trajectories = canonical.sample_trajectories.min(10).max(1);
                (cfg, false, Some("reduced-shots".to_string()))
            } else {
                // Degradation disabled: keep seed-shifting with fresh salt.
                cfg.seed ^= splitmix(attempt as u64 + 1);
                (cfg, true, Some("seed-shift".to_string()))
            }
        }
    }
}

/// Runs one fragment under the retry/escalation policy, journaling every
/// attempt. On success the dataset entry is already written under `root`.
fn run_supervised(
    root: &Path,
    record: &FragmentRecord,
    pipeline_cfg: &PipelineConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
    clock: &dyn Clock,
) -> (Result<FragmentFiles, PipelineError>, Vec<AttemptRecord>) {
    let telemetry = qdb_telemetry::global();
    let canonical = pipeline_cfg.vqe_config(record);
    let started_ns = clock.now_ns();
    let mut attempts: Vec<AttemptRecord> = Vec::new();
    // Consecutive deterministic (non-transient) failures; transient
    // failures retry in place without escalating.
    let mut escalation = 0usize;
    let mut last_err: Option<PipelineError> = None;

    for attempt in 0..sup.max_attempts {
        if attempt > 0 {
            telemetry.counter("supervisor.retries").inc();
            if let Some(deadline) = sup.fragment_deadline_ms {
                let elapsed_ms = clock.elapsed_ms(started_ns);
                if elapsed_ms > deadline {
                    telemetry.counter("supervisor.deadline_hits").inc();
                    return (
                        Err(PipelineError::DeadlineExceeded { elapsed_ms }),
                        attempts,
                    );
                }
            }
        }
        telemetry.counter("supervisor.attempts").inc();
        let (vqe_cfg, seed_shifted, degradation) =
            attempt_config(&canonical, escalation, attempt, sup.degrade);
        if degradation.is_some() {
            telemetry.counter("supervisor.degradations").inc();
        }
        let mut injector = plan.injector(record.pdb_id, attempt);
        // The whole attempt — VQE, docking, entry write — is one
        // isolated unit: a panic anywhere inside becomes a typed error
        // and a torn entry is overwritten by the next attempt.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let result = run_fragment_with(record, pipeline_cfg, &vqe_cfg, &mut injector)?;
            write_fragment_entry(root, record, &result)
        }))
        .unwrap_or_else(|payload| Err(PipelineError::Panicked(panic_message(payload.as_ref()))));

        let mut rec = AttemptRecord {
            attempt,
            engine: match vqe_cfg.engine {
                EnergyEngine::Compiled => "compiled".to_string(),
                EnergyEngine::Direct => "direct".to_string(),
            },
            shots: vqe_cfg.shots,
            seed_shifted,
            degradation,
            cause: None,
            transient: false,
            backoff_ms: 0,
        };
        match outcome {
            Ok(files) => {
                attempts.push(rec);
                return (Ok(files), attempts);
            }
            Err(e) => {
                rec.cause = Some(e.kind());
                rec.transient = e.is_transient();
                if !e.is_transient() {
                    escalation += 1;
                }
                // Exponential backoff, capped; journaled even when the
                // budget is exhausted so the manifest shows the full story.
                let backoff = sup
                    .base_backoff_ms
                    .saturating_mul(1u64 << attempt.min(16))
                    .min(sup.max_backoff_ms);
                rec.backoff_ms = backoff;
                attempts.push(rec);
                last_err = Some(e);
                if backoff > 0 && attempt + 1 < sup.max_attempts {
                    telemetry.counter("supervisor.backoff_waits").inc();
                    telemetry.histogram("supervisor.backoff_ms").record(backoff);
                    clock.sleep_ms(backoff);
                }
            }
        }
    }
    let last = last_err.unwrap_or(PipelineError::Decode(
        "supervisor configured with max_attempts = 0".to_string(),
    ));
    (
        Err(PipelineError::RetriesExhausted {
            attempts: attempts.len(),
            last: Box::new(last),
        }),
        attempts,
    )
}

/// Builds (or resumes) a dataset under `root` for `records`.
///
/// Completed entries found on disk are validated and skipped; everything
/// else runs under the supervised retry policy. The journal is rewritten
/// after every fragment, so a kill at any point leaves both the dataset
/// and the manifest consistent for the next resume. One fragment
/// exhausting its budget does not stop the build — it is journaled as
/// failed and the remaining fragments proceed.
pub fn build_dataset(
    root: &Path,
    records: &[&FragmentRecord],
    pipeline_cfg: &PipelineConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
) -> Result<BuildSummary, PipelineError> {
    build_dataset_with_clock(
        root,
        records,
        pipeline_cfg,
        sup,
        plan,
        &MonotonicClock::new(),
    )
}

/// [`build_dataset`] on an explicit [`Clock`]: every deadline check,
/// backoff sleep, and elapsed-time figure goes through it, so tests drive
/// the whole retry policy on a
/// [`ManualClock`](qdb_telemetry::ManualClock) — virtual backoffs, real
/// coverage, zero wall-clock waiting.
pub fn build_dataset_with_clock(
    root: &Path,
    records: &[&FragmentRecord],
    pipeline_cfg: &PipelineConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
    clock: &dyn Clock,
) -> Result<BuildSummary, PipelineError> {
    let telemetry = qdb_telemetry::global();
    let mut manifest = load_manifest(root)?;
    let resumed = !manifest.runs.is_empty();
    manifest.runs.push(RunRecord {
        resumed,
        fragments: Vec::new(),
    });
    let mut summary = BuildSummary {
        manifest_path: manifest_path(root),
        ..BuildSummary::default()
    };

    for record in records {
        let started_ns = clock.now_ns();
        let entry_dir = root.join(record.group().name()).join(record.pdb_id);
        let mut note = None;
        let report = if entry_dir.is_dir() {
            match validate_entry(root, record) {
                Ok(()) => {
                    summary.checkpointed += 1;
                    telemetry.counter("supervisor.fragments_checkpointed").inc();
                    FragmentReport {
                        pdb_id: record.pdb_id.to_string(),
                        group: record.group().name().to_string(),
                        status: "checkpointed".to_string(),
                        attempts: Vec::new(),
                        elapsed_ms: clock.elapsed_ms(started_ns),
                        note: None,
                    }
                }
                Err(e) => {
                    // Torn or corrupt checkpoint: rebuild it, and say why.
                    note = Some(format!("checkpoint rejected: {e}"));
                    build_one(
                        root,
                        record,
                        pipeline_cfg,
                        sup,
                        plan,
                        &mut summary,
                        started_ns,
                        note,
                        clock,
                    )
                }
            }
        } else {
            build_one(
                root,
                record,
                pipeline_cfg,
                sup,
                plan,
                &mut summary,
                started_ns,
                note,
                clock,
            )
        };
        let run = manifest.runs.last_mut().expect("run pushed above");
        run.fragments.push(report);
        save_manifest(root, &manifest)?;
    }
    Ok(summary)
}

#[allow(clippy::too_many_arguments)]
fn build_one(
    root: &Path,
    record: &FragmentRecord,
    pipeline_cfg: &PipelineConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
    summary: &mut BuildSummary,
    started_ns: u64,
    note: Option<String>,
    clock: &dyn Clock,
) -> FragmentReport {
    let telemetry = qdb_telemetry::global();
    let (outcome, attempts) = run_supervised(root, record, pipeline_cfg, sup, plan, clock);
    let status = match &outcome {
        Ok(_) => {
            let winning = attempts.last().expect("success recorded an attempt");
            if winning.seed_shifted || winning.degradation.is_some() {
                summary.degraded += 1;
                telemetry.counter("supervisor.fragments_degraded").inc();
                "completed-degraded"
            } else {
                summary.completed += 1;
                telemetry.counter("supervisor.fragments_completed").inc();
                "completed"
            }
        }
        Err(_) => {
            summary.failed += 1;
            telemetry.counter("supervisor.fragments_failed").inc();
            "failed"
        }
    };
    let note = match (&outcome, note) {
        (Err(e), Some(n)) => Some(format!("{n}; {e}")),
        (Err(e), None) => Some(e.to_string()),
        (Ok(_), n) => n,
    };
    FragmentReport {
        pdb_id: record.pdb_id.to_string(),
        group: record.group().name().to_string(),
        status: status.to_string(),
        attempts,
        elapsed_ms: clock.elapsed_ms(started_ns),
        note,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragments::fragment;
    use qdb_vqe::fault::FaultKind;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qdb-supervisor-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let root = tmpdir("manifest");
        let manifest = Manifest {
            runs: vec![RunRecord {
                resumed: false,
                fragments: vec![FragmentReport {
                    pdb_id: "3ckz".into(),
                    group: "S".into(),
                    status: "completed".into(),
                    attempts: vec![AttemptRecord {
                        attempt: 0,
                        engine: "compiled".into(),
                        shots: 40_000,
                        seed_shifted: false,
                        degradation: None,
                        cause: None,
                        transient: false,
                        backoff_ms: 0,
                    }],
                    elapsed_ms: 12,
                    note: None,
                }],
            }],
        };
        save_manifest(&root, &manifest).unwrap();
        let back = load_manifest(&root).unwrap();
        assert_eq!(back, manifest);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_manifest_loads_empty() {
        let root = tmpdir("empty");
        assert_eq!(load_manifest(&root).unwrap(), Manifest::default());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn escalation_ladder_shapes_the_attempt_config() {
        let canonical = VqeConfig::fast(42);
        let (c0, s0, d0) = attempt_config(&canonical, 0, 0, true);
        assert_eq!(c0.seed, canonical.seed);
        assert!(!s0 && d0.is_none());
        let (c1, s1, d1) = attempt_config(&canonical, 1, 1, true);
        assert_eq!(c1.seed, canonical.seed);
        assert!(
            !s1 && d1.is_none(),
            "first deterministic failure retries plainly"
        );
        let (c2, s2, d2) = attempt_config(&canonical, 2, 2, true);
        assert_ne!(c2.seed, canonical.seed);
        assert!(s2);
        assert_eq!(d2.as_deref(), Some("seed-shift"));
        let (c3, _, d3) = attempt_config(&canonical, 3, 3, true);
        assert_eq!(c3.engine, EnergyEngine::Direct);
        assert_eq!(c3.shots, canonical.shots);
        assert_eq!(d3.as_deref(), Some("engine-direct"));
        let (c4, _, d4) = attempt_config(&canonical, 4, 4, true);
        assert_eq!(c4.engine, EnergyEngine::Direct);
        assert!(c4.shots < canonical.shots);
        assert_eq!(d4.as_deref(), Some("reduced-shots"));
        // With degradation off, escalation keeps seed-shifting instead.
        let (c4n, s4n, d4n) = attempt_config(&canonical, 4, 4, false);
        assert_eq!(c4n.engine, canonical.engine);
        assert!(s4n);
        assert_eq!(d4n.as_deref(), Some("seed-shift"));
    }

    #[test]
    fn transient_fault_recovers_without_escalation() {
        let root = tmpdir("transient");
        let record = fragment("3ckz").unwrap();
        let plan = FaultPlan::none().with_target("3ckz", FaultKind::Reject, 2);
        let summary = build_dataset(
            &root,
            &[record],
            &PipelineConfig::fast(),
            &SupervisorConfig::fast(),
            &plan,
        )
        .unwrap();
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.failed, 0);
        let manifest = load_manifest(&root).unwrap();
        let frag = &manifest.runs[0].fragments[0];
        assert_eq!(frag.status, "completed");
        assert_eq!(frag.attempts.len(), 3, "two rejections, then success");
        assert_eq!(frag.attempts[0].cause.as_deref(), Some("vqe/job-rejected"));
        assert!(frag.attempts[0].transient);
        assert!(!frag.attempts[2].seed_shifted, "seed stays canonical");
        assert!(frag.attempts[2].degradation.is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn exhausted_fragment_fails_without_stopping_the_build() {
        let root = tmpdir("exhausted");
        let records = [fragment("3ckz").unwrap(), fragment("3eax").unwrap()];
        // 3eax is rejected on every attempt it can get.
        let plan = FaultPlan::none().with_target("3eax", FaultKind::Reject, usize::MAX);
        let sup = SupervisorConfig {
            max_attempts: 3,
            ..SupervisorConfig::fast()
        };
        let summary = build_dataset(&root, &records, &PipelineConfig::fast(), &sup, &plan).unwrap();
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.failed, 1);
        let manifest = load_manifest(&root).unwrap();
        let bad = &manifest.runs[0].fragments[1];
        assert_eq!(bad.pdb_id, "3eax");
        assert_eq!(bad.status, "failed");
        assert_eq!(bad.attempts.len(), 3);
        assert!(bad.note.as_deref().unwrap().contains("attempts failed"));
        // The failed fragment left no dataset entry behind.
        assert!(!root.join("S/3eax").is_dir());
        let _ = std::fs::remove_dir_all(&root);
    }
}
