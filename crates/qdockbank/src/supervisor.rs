//! Fault-tolerant dataset-build supervisor.
//!
//! The paper's 55-fragment campaign ran for weeks on shared utility-level
//! hardware, where jobs are rejected, drift out of calibration, and die
//! mid-run; a build that restarts from scratch on every hiccup never
//! finishes. This module wraps each fragment job in a supervised runtime:
//!
//! * **panic isolation** — a crashing job is caught (`catch_unwind`) and
//!   becomes a typed [`PipelineError::Panicked`], never a dead build;
//! * **bounded retry with exponential backoff** — transient failures
//!   (queue rejection, drift, shot shortfall, I/O) are retried with the
//!   *same* seed, so a recovered fragment is byte-identical to a
//!   fault-free build;
//! * **escalation for deterministic failures** — a failure that repeats
//!   under plain retry is first seed-shifted, then walked down a
//!   degradation ladder (Compiled → Direct engine, then a reduced shot
//!   budget), trading fidelity for completion;
//! * **per-fragment deadlines** — a runaway fragment is cut off at the
//!   attempt boundary and recorded as failed, not hung;
//! * **checkpoint/resume** — the dataset entry layout *is* the
//!   checkpoint: a resumed build lists what is on disk, validates each
//!   entry (checksums first) against the manifest, and recomputes
//!   nothing that passes;
//! * **quarantine** — an entry that fails validation is moved to
//!   `quarantine/` with a reason file (evidence, not garbage) and its
//!   slot is rebuilt;
//! * **journaling** — every attempt (cause, backoff, degradation
//!   decision, final status) is appended to the `manifest.journal`
//!   write-ahead log under the dataset root: one self-checksummed JSON
//!   record per line, recovered to the longest valid prefix after a
//!   crash instead of rewriting (and risking tearing) one big
//!   `manifest.json`. Legacy `manifest.json` roots are migrated — and
//!   torn ones recovered to their longest valid run prefix — on the
//!   first journaled build.

use crate::dataset::{validate_entry_vfs, write_fragment_entry_vfs, FragmentFiles};
use crate::error::PipelineError;
use crate::fragments::FragmentRecord;
use crate::pipeline::{run_fragment_with, PipelineConfig};
use qdb_dock::dispatch::BackendChoice;
use qdb_store::{quarantine_entry, Journal, StdVfs, Vfs};
use qdb_telemetry::{Clock, MonotonicClock};
use qdb_vqe::error::panic_message;
use qdb_vqe::fault::FaultPlan;
use qdb_vqe::runner::{EnergyEngine, VqeConfig};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Retry/degradation policy for a supervised build.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// Attempt budget per fragment (including degraded attempts).
    pub max_attempts: usize,
    /// Minimum retry delay; the exponential ladder and jitter both grow
    /// from here.
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
    /// Wall-clock budget per fragment, checked at attempt boundaries
    /// (`None` = unbounded).
    pub fragment_deadline_ms: Option<u64>,
    /// Whether repeated deterministic failures may degrade the run
    /// configuration (engine downgrade, reduced shots) instead of failing.
    pub degrade: bool,
    /// Seed for decorrelated backoff jitter. Retries sleep a pseudo-random
    /// span in `[base, min(cap, 3 × previous)]` drawn deterministically
    /// from `(jitter_seed, job id, attempt)` — concurrent jobs retrying
    /// after a shared outage desynchronize instead of stampeding the
    /// backend in lockstep, while any fixed seed replays the exact same
    /// schedule (tests stay deterministic).
    pub jitter_seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_backoff_ms: 10,
            max_backoff_ms: 2_000,
            fragment_deadline_ms: None,
            degrade: true,
            jitter_seed: 0,
        }
    }
}

impl SupervisorConfig {
    /// Policy for tests: same shape, but no real sleeping.
    pub fn fast() -> Self {
        Self {
            base_backoff_ms: 0,
            ..Self::default()
        }
    }
}

/// One attempt at one fragment, as journaled in `manifest.json`.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct AttemptRecord {
    /// 0-based attempt index.
    pub attempt: usize,
    /// Execution engine used ("compiled" or "direct").
    pub engine: String,
    /// Stage-2 shot budget used.
    pub shots: u64,
    /// Whether the VQE seed was shifted off the canonical per-fragment
    /// seed for this attempt.
    pub seed_shifted: bool,
    /// Degradation rung applied, if any ("seed-shift", "engine-direct",
    /// "reduced-shots").
    pub degradation: Option<String>,
    /// Docking backend choice this attempt ran with ("vina", "qubo",
    /// "auto"). `None` in journals written before backends existed.
    pub dock_backend: Option<String>,
    /// Failure cause (`PipelineError::kind`), or `None` if the attempt
    /// succeeded.
    pub cause: Option<String>,
    /// Whether that failure was classified transient.
    pub transient: bool,
    /// Backoff slept after this attempt (ms).
    pub backoff_ms: u64,
}

/// Final per-fragment journal entry for one run.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct FragmentReport {
    /// PDB id.
    pub pdb_id: String,
    /// Length group (S/M/L).
    pub group: String,
    /// "completed", "completed-degraded", "failed", or "checkpointed"
    /// (valid entry already on disk; recomputed nothing).
    pub status: String,
    /// Every attempt this run spent on the fragment (empty when
    /// checkpointed).
    pub attempts: Vec<AttemptRecord>,
    /// Wall-clock spent on the fragment this run (ms).
    pub elapsed_ms: u64,
    /// Free-form diagnostic (e.g. why a checkpoint was rejected).
    pub note: Option<String>,
}

/// One `build_dataset` invocation.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct RunRecord {
    /// Whether this run found and reused prior on-disk state.
    pub resumed: bool,
    /// Per-fragment journal, in build order.
    pub fragments: Vec<FragmentReport>,
}

/// The build journal's replayed state: one record per build run,
/// append-only across resumes, plus any recovery notes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Manifest {
    /// All runs against this dataset root, oldest first.
    pub runs: Vec<RunRecord>,
    /// Recovery/migration notes journaled against this root (e.g.
    /// `manifest-recovered: …` after a torn journal was truncated).
    pub notes: Vec<String>,
}

/// Legacy whole-file `manifest.json` schema (pre-journal datasets).
#[derive(Deserialize, Serialize)]
struct LegacyManifest {
    runs: Vec<RunRecord>,
}

/// One line of a build journal write-ahead log. A flat struct rather
/// than an enum so each line is a self-describing JSON object; exactly
/// one of the payload fields is set, selected by `kind` (`"run"`,
/// `"fragment"`, `"note"`, or `"shard-done"`). Sharded builds stamp
/// every record with the writing shard, its worker id, and the fencing
/// token the append was made under; single-process journals leave the
/// stamps `None` (and parse older journals the same way).
#[derive(Serialize, Deserialize)]
pub(crate) struct ManifestEvent {
    pub(crate) kind: String,
    pub(crate) resumed: Option<bool>,
    pub(crate) fragment: Option<FragmentReport>,
    pub(crate) note: Option<String>,
    pub(crate) shard: Option<usize>,
    pub(crate) owner: Option<String>,
    pub(crate) token: Option<u64>,
}

impl ManifestEvent {
    pub(crate) fn run(resumed: bool) -> Self {
        Self {
            kind: "run".to_string(),
            resumed: Some(resumed),
            fragment: None,
            note: None,
            shard: None,
            owner: None,
            token: None,
        }
    }

    pub(crate) fn fragment(report: &FragmentReport) -> Self {
        Self {
            kind: "fragment".to_string(),
            resumed: None,
            fragment: Some(report.clone()),
            note: None,
            shard: None,
            owner: None,
            token: None,
        }
    }

    pub(crate) fn note(text: String) -> Self {
        Self {
            kind: "note".to_string(),
            resumed: None,
            fragment: None,
            note: Some(text),
            shard: None,
            owner: None,
            token: None,
        }
    }

    /// A `"shard-done"` completion marker: the finalize step requires one
    /// per shard before it will merge.
    pub(crate) fn shard_done() -> Self {
        Self {
            kind: "shard-done".to_string(),
            resumed: None,
            fragment: None,
            note: None,
            shard: None,
            owner: None,
            token: None,
        }
    }

    /// Stamps this event with the writing shard's provenance.
    pub(crate) fn stamped(mut self, shard: usize, owner: &str, token: u64) -> Self {
        self.shard = Some(shard);
        self.owner = Some(owner.to_string());
        self.token = Some(token);
        self
    }
}

/// Aggregate counts for one `build_dataset` call.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BuildSummary {
    /// Fragments built cleanly at the canonical configuration.
    pub completed: usize,
    /// Fragments that needed a seed shift or degradation rung.
    pub degraded: usize,
    /// Fragments that exhausted their budget (entry absent).
    pub failed: usize,
    /// Fragments skipped because a valid entry was already on disk.
    pub checkpointed: usize,
    /// Path of the journal.
    pub manifest_path: PathBuf,
}

impl BuildSummary {
    /// Fragments with a usable entry on disk after this run.
    pub fn usable(&self) -> usize {
        self.completed + self.degraded + self.checkpointed
    }
}

/// Path of the write-ahead build journal under a dataset root.
pub fn journal_path(root: &Path) -> PathBuf {
    root.join("manifest.journal")
}

/// Path of the legacy whole-file journal (read-only fallback).
pub fn legacy_manifest_path(root: &Path) -> PathBuf {
    root.join("manifest.json")
}

/// Whether `root` already carries build state in either journal format.
pub fn has_manifest(root: &Path) -> bool {
    journal_path(root).exists() || legacy_manifest_path(root).exists()
}

pub(crate) fn append_event(journal: &Journal<'_>, ev: &ManifestEvent) -> Result<(), PipelineError> {
    journal.append(&serde_json::to_string(ev)?)?;
    Ok(())
}

/// Replays journal event payloads into a [`Manifest`]. A crc-valid line
/// whose JSON does not decode (a schema from a future version, say) is
/// skipped rather than fatal: the journal's job is to never brick a
/// resume.
pub(crate) fn manifest_from_events(payloads: &[String]) -> Manifest {
    let mut manifest = Manifest::default();
    for payload in payloads {
        let Ok(ev) = serde_json::from_str::<ManifestEvent>(payload) else {
            continue;
        };
        match ev.kind.as_str() {
            "run" => manifest.runs.push(RunRecord {
                resumed: ev.resumed.unwrap_or(false),
                fragments: Vec::new(),
            }),
            "fragment" => {
                if let Some(report) = ev.fragment {
                    if manifest.runs.is_empty() {
                        manifest.runs.push(RunRecord {
                            resumed: false,
                            fragments: Vec::new(),
                        });
                    }
                    let run = manifest.runs.last_mut().expect("pushed above");
                    run.fragments.push(report);
                }
            }
            "note" => {
                if let Some(text) = ev.note {
                    manifest.notes.push(text);
                }
            }
            _ => {}
        }
    }
    manifest
}

/// Byte offsets just past each complete run object of a legacy
/// `{"runs": [ {...}, {...} ]}` document, string- and escape-aware.
fn legacy_run_boundaries(text: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, b) in text.bytes().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' | b'[' => depth += 1,
            b'}' | b']' => {
                depth = depth.saturating_sub(1);
                // Top object is depth 1, the runs array is depth 2: a
                // closer landing back on 2 ends one run element.
                if b == b'}' && depth == 2 {
                    out.push(i + 1);
                }
            }
            _ => {}
        }
    }
    out
}

/// Parses a legacy `manifest.json`, recovering a torn/corrupt file to
/// its longest valid prefix of complete runs. Returns the runs and a
/// `manifest-recovered` note when recovery had to drop anything.
fn recover_legacy_manifest(text: &str) -> (Vec<RunRecord>, Option<String>) {
    if let Ok(m) = serde_json::from_str::<LegacyManifest>(text) {
        return (m.runs, None);
    }
    for cut in legacy_run_boundaries(text).iter().rev() {
        let candidate = format!("{}]}}", &text[..*cut]);
        if let Ok(m) = serde_json::from_str::<LegacyManifest>(&candidate) {
            let note = format!(
                "manifest-recovered: legacy manifest.json torn at byte {} of {}; \
                 kept the first {} run(s)",
                cut,
                text.len(),
                m.runs.len()
            );
            return (m.runs, Some(note));
        }
    }
    (
        Vec::new(),
        Some(
            "manifest-recovered: legacy manifest.json unreadable; starting an empty journal"
                .to_string(),
        ),
    )
}

/// Loads the build journal under `root` (empty if none exists yet).
///
/// Read-only: a torn journal tail or corrupt legacy file is recovered to
/// the longest valid prefix in memory (with a note in
/// [`Manifest::notes`]) without modifying the disk.
pub fn load_manifest(root: &Path) -> Result<Manifest, PipelineError> {
    load_manifest_vfs(&StdVfs, root)
}

/// [`load_manifest`] through an explicit [`Vfs`].
pub fn load_manifest_vfs(vfs: &dyn Vfs, root: &Path) -> Result<Manifest, PipelineError> {
    let journal = Journal::open(vfs, journal_path(root));
    if vfs.exists(journal.path()) {
        let replay = journal.replay(false)?;
        let mut manifest = manifest_from_events(&replay.records);
        if replay.recovered() {
            manifest.notes.push(format!(
                "manifest-recovered: ignored {} torn byte(s) at the journal tail",
                replay.torn_bytes
            ));
        }
        return Ok(manifest);
    }
    let legacy = legacy_manifest_path(root);
    if vfs.exists(&legacy) {
        let text = String::from_utf8_lossy(&vfs.read(&legacy)?).into_owned();
        let (runs, note) = recover_legacy_manifest(&text);
        return Ok(Manifest {
            runs,
            notes: note.into_iter().collect(),
        });
    }
    Ok(Manifest::default())
}

/// Opens the journal for a build: repairs a torn tail in place, migrates
/// a legacy `manifest.json` root onto the journal, and journals every
/// recovery as a `manifest-recovered` note.
pub(crate) fn open_build_journal<'a>(
    vfs: &'a dyn Vfs,
    root: &Path,
) -> Result<(Manifest, Journal<'a>), PipelineError> {
    vfs.create_dir_all(root)?;
    let journal = Journal::open(vfs, journal_path(root));
    if vfs.exists(journal.path()) {
        let replay = journal.replay(true)?;
        let mut manifest = manifest_from_events(&replay.records);
        if replay.recovered() {
            let note = format!(
                "manifest-recovered: truncated {} torn byte(s) from the journal tail",
                replay.torn_bytes
            );
            append_event(&journal, &ManifestEvent::note(note.clone()))?;
            manifest.notes.push(note);
        }
        return Ok((manifest, journal));
    }
    let legacy = legacy_manifest_path(root);
    if vfs.exists(&legacy) {
        let text = String::from_utf8_lossy(&vfs.read(&legacy)?).into_owned();
        let (runs, recovery_note) = recover_legacy_manifest(&text);
        // Materialize the journal from the legacy state so the WAL is the
        // complete record from here on; the legacy file stays behind as a
        // read-only artifact of the pre-journal era.
        for run in &runs {
            append_event(&journal, &ManifestEvent::run(run.resumed))?;
            for fragment in &run.fragments {
                append_event(&journal, &ManifestEvent::fragment(fragment))?;
            }
        }
        let mut notes = Vec::new();
        if let Some(note) = recovery_note {
            append_event(&journal, &ManifestEvent::note(note.clone()))?;
            notes.push(note);
        }
        let migrated = format!(
            "manifest-migrated: {} run(s) from legacy manifest.json",
            runs.len()
        );
        append_event(&journal, &ManifestEvent::note(migrated.clone()))?;
        notes.push(migrated);
        return Ok((Manifest { runs, notes }, journal));
    }
    Ok((Manifest::default(), journal))
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Decorrelated-jitter backoff (the "decorrelated jitter" scheme):
/// uniform in `[base, min(cap, 3 × previous)]`, drawn from a stream keyed
/// on `(jitter_seed, job, attempt)` so the schedule is a pure function of
/// its inputs. A zero base means "no sleeping" (test policy) and always
/// yields zero.
fn jittered_backoff(sup: &SupervisorConfig, job: &str, attempt: usize, prev_ms: u64) -> u64 {
    if sup.base_backoff_ms == 0 {
        return 0;
    }
    let lo = sup.base_backoff_ms.min(sup.max_backoff_ms);
    let hi = prev_ms
        .max(lo)
        .saturating_mul(3)
        .min(sup.max_backoff_ms)
        .max(lo);
    let draw = splitmix(
        sup.jitter_seed
            ^ fnv1a(job)
            ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ 0x0B_AC0F_F0u64,
    );
    lo + draw % (hi - lo + 1)
}

/// Cooperative cancellation for a supervised job, checked at attempt
/// boundaries (a cancelled job never starts another attempt; the attempt
/// already running completes or fails on its own). Clones share one flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A token that has not been cancelled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; all clones observe it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// One supervised job: everything [`run_job`] needs to build a single
/// fragment entry under a root. This is the unit the batch builder loops
/// over and the unit `qdb-serve` schedules over a worker pool — extracted
/// so both drive the identical retry/backoff/degradation ladder.
pub struct JobUnit<'a> {
    /// Dataset root the entry is written under (`root/<group>/<pdb_id>/`).
    pub root: &'a Path,
    /// The fragment to build.
    pub record: &'a FragmentRecord,
    /// Pipeline budgets.
    pub pipeline: &'a PipelineConfig,
    /// Retry/degradation policy.
    pub supervisor: &'a SupervisorConfig,
    /// Rehearsed-fault schedule ([`FaultPlan::none`] in production).
    pub faults: &'a FaultPlan,
    /// Overrides the canonical per-fragment VQE seed (service jobs carry
    /// their seed in the request; `None` keeps `pdb_id_seed`).
    pub seed_override: Option<u64>,
}

/// What one attempt runs with. Escalation `0..=1` keeps the canonical
/// configuration (a deterministic *injected* fault is keyed to the
/// attempt index, so a plain retry clears it without forfeiting
/// byte-identity); escalation 2 shifts the seed; 3+ walks the
/// degradation ladder. The final `bool` forces the docking backend down
/// to plain Vina on the deep rungs: a deterministic failure that
/// survives a seed shift may live in the QUBO stage, and the reliable
/// backend is the one that has built every pre-backend dataset.
fn attempt_config(
    canonical: &VqeConfig,
    escalation: usize,
    attempt: usize,
    degrade: bool,
) -> (VqeConfig, bool, Option<String>, bool) {
    let mut cfg = canonical.clone();
    match escalation {
        0 | 1 => (cfg, false, None, false),
        2 => {
            cfg.seed ^= splitmix(attempt as u64 + 1);
            (cfg, true, Some("seed-shift".to_string()), false)
        }
        3 if degrade => {
            cfg.engine = EnergyEngine::Direct;
            (cfg, false, Some("engine-direct".to_string()), true)
        }
        _ => {
            if degrade {
                cfg.engine = EnergyEngine::Direct;
                cfg.shots = (canonical.shots / 4).max(1_000);
                cfg.sample_trajectories = canonical.sample_trajectories.min(10).max(1);
                (cfg, false, Some("reduced-shots".to_string()), true)
            } else {
                // Degradation disabled: keep seed-shifting with fresh salt.
                cfg.seed ^= splitmix(attempt as u64 + 1);
                (cfg, true, Some("seed-shift".to_string()), false)
            }
        }
    }
}

/// Runs one supervised job end to end: the retry/escalation ladder, the
/// decorrelated-jitter backoff schedule, deadline checks, and cooperative
/// cancellation — all at attempt boundaries. On success the dataset entry
/// is already written (atomically, checksummed) under `unit.root`.
///
/// This is the unit of work the batch builder and the `qdb-serve` worker
/// pool share: both get the identical policy because both call this.
pub fn run_job(
    unit: &JobUnit<'_>,
    clock: &dyn Clock,
    vfs: &dyn Vfs,
    cancel: &CancelToken,
) -> (Result<FragmentFiles, PipelineError>, Vec<AttemptRecord>) {
    let telemetry = qdb_telemetry::global();
    let record = unit.record;
    let sup = unit.supervisor;
    let mut canonical = unit.pipeline.vqe_config(record);
    if let Some(seed) = unit.seed_override {
        canonical.seed = seed;
    }
    let started_ns = clock.now_ns();
    let mut attempts: Vec<AttemptRecord> = Vec::new();
    // Consecutive deterministic (non-transient) failures; transient
    // failures retry in place without escalating.
    let mut escalation = 0usize;
    let mut last_err: Option<PipelineError> = None;
    let mut prev_backoff_ms = 0u64;

    for attempt in 0..sup.max_attempts {
        if cancel.is_cancelled() {
            telemetry.counter("supervisor.cancelled").inc();
            telemetry.instant("supervisor.cancel");
            return (Err(PipelineError::Cancelled), attempts);
        }
        if attempt > 0 {
            telemetry.counter("supervisor.retries").inc();
            telemetry.instant("supervisor.retry");
            if let Some(deadline) = sup.fragment_deadline_ms {
                let elapsed_ms = clock.elapsed_ms(started_ns);
                if elapsed_ms > deadline {
                    telemetry.counter("supervisor.deadline_hits").inc();
                    telemetry.instant("supervisor.deadline");
                    return (
                        Err(PipelineError::DeadlineExceeded { elapsed_ms }),
                        attempts,
                    );
                }
            }
        }
        telemetry.counter("supervisor.attempts").inc();
        let (vqe_cfg, seed_shifted, degradation, force_vina) =
            attempt_config(&canonical, escalation, attempt, sup.degrade);
        if degradation.is_some() {
            telemetry.counter("supervisor.degradations").inc();
            telemetry.instant("supervisor.degradation");
        }
        let mut pipeline_cfg = *unit.pipeline;
        if force_vina && pipeline_cfg.dock_backend != BackendChoice::Vina {
            pipeline_cfg.dock_backend = BackendChoice::Vina;
            telemetry.counter("supervisor.dock_degradations").inc();
            telemetry.instant("supervisor.dock_degradation");
        }
        let mut injector = unit.faults.injector(record.pdb_id, attempt);
        // The whole attempt — VQE, docking, entry write — is one
        // isolated unit: a panic anywhere inside becomes a typed error
        // and a torn entry is overwritten by the next attempt.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let result = run_fragment_with(record, &pipeline_cfg, &vqe_cfg, &mut injector)?;
            write_fragment_entry_vfs(vfs, unit.root, record, &result)
        }))
        .unwrap_or_else(|payload| Err(PipelineError::Panicked(panic_message(payload.as_ref()))));

        let mut rec = AttemptRecord {
            attempt,
            engine: match vqe_cfg.engine {
                EnergyEngine::Compiled => "compiled".to_string(),
                EnergyEngine::Direct => "direct".to_string(),
            },
            shots: vqe_cfg.shots,
            seed_shifted,
            degradation,
            dock_backend: Some(pipeline_cfg.dock_backend.name().to_string()),
            cause: None,
            transient: false,
            backoff_ms: 0,
        };
        match outcome {
            Ok(files) => {
                attempts.push(rec);
                return (Ok(files), attempts);
            }
            Err(e) => {
                rec.cause = Some(e.kind());
                rec.transient = e.is_transient();
                if !e.is_transient() {
                    escalation += 1;
                }
                // Decorrelated-jitter backoff, capped; journaled even when
                // the budget is exhausted so the manifest shows the full
                // story.
                let backoff = jittered_backoff(sup, record.pdb_id, attempt, prev_backoff_ms);
                prev_backoff_ms = backoff;
                rec.backoff_ms = backoff;
                attempts.push(rec);
                last_err = Some(e);
                if backoff > 0 && attempt + 1 < sup.max_attempts {
                    telemetry.counter("supervisor.backoff_waits").inc();
                    telemetry.histogram("supervisor.backoff_ms").record(backoff);
                    clock.sleep_ms(backoff);
                }
            }
        }
    }
    let last = last_err.unwrap_or(PipelineError::Decode(
        "supervisor configured with max_attempts = 0".to_string(),
    ));
    (
        Err(PipelineError::RetriesExhausted {
            attempts: attempts.len(),
            last: Box::new(last),
        }),
        attempts,
    )
}

/// Builds (or resumes) a dataset under `root` for `records`.
///
/// Completed entries found on disk are validated and skipped; everything
/// else runs under the supervised retry policy. The journal is rewritten
/// after every fragment, so a kill at any point leaves both the dataset
/// and the manifest consistent for the next resume. One fragment
/// exhausting its budget does not stop the build — it is journaled as
/// failed and the remaining fragments proceed.
pub fn build_dataset(
    root: &Path,
    records: &[&FragmentRecord],
    pipeline_cfg: &PipelineConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
) -> Result<BuildSummary, PipelineError> {
    build_dataset_with_clock(
        root,
        records,
        pipeline_cfg,
        sup,
        plan,
        &MonotonicClock::new(),
    )
}

/// [`build_dataset`] on an explicit [`Clock`]: every deadline check,
/// backoff sleep, and elapsed-time figure goes through it, so tests drive
/// the whole retry policy on a
/// [`ManualClock`](qdb_telemetry::ManualClock) — virtual backoffs, real
/// coverage, zero wall-clock waiting.
pub fn build_dataset_with_clock(
    root: &Path,
    records: &[&FragmentRecord],
    pipeline_cfg: &PipelineConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
    clock: &dyn Clock,
) -> Result<BuildSummary, PipelineError> {
    build_dataset_with(root, records, pipeline_cfg, sup, plan, clock, &StdVfs)
}

/// [`build_dataset`] on an explicit [`Clock`] *and* [`Vfs`]: every
/// filesystem operation of the build — entry writes, fsyncs, renames,
/// journal appends, checkpoint validation reads — goes through the vfs,
/// so the crash-point sweep harness can substitute a
/// [`CrashVfs`](qdb_store::CrashVfs) and kill the build at the N-th
/// operation, for every N.
#[allow(clippy::too_many_arguments)]
pub fn build_dataset_with(
    root: &Path,
    records: &[&FragmentRecord],
    pipeline_cfg: &PipelineConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
    clock: &dyn Clock,
    vfs: &dyn Vfs,
) -> Result<BuildSummary, PipelineError> {
    let (mut manifest, journal) = open_build_journal(vfs, root)?;
    let resumed = !manifest.runs.is_empty();
    append_event(&journal, &ManifestEvent::run(resumed))?;
    manifest.runs.push(RunRecord {
        resumed,
        fragments: Vec::new(),
    });
    let mut summary = BuildSummary {
        manifest_path: journal.path().to_path_buf(),
        ..BuildSummary::default()
    };

    for (index, record) in records.iter().enumerate() {
        // Tag every event this fragment records — spans, retries, store
        // fsyncs — with its 1-based build index, so the flight recorder's
        // Chrome export cuts one track per fragment.
        let _corr = qdb_telemetry::trace::correlate(index as u64 + 1);
        let report = supervise_fragment(
            root,
            record,
            pipeline_cfg,
            sup,
            plan,
            &mut summary,
            clock,
            vfs,
        );
        append_event(&journal, &ManifestEvent::fragment(&report))?;
        let run = manifest.runs.last_mut().expect("run pushed above");
        run.fragments.push(report);
    }
    Ok(summary)
}

/// Builds one fragment's entry under the checkpoint/quarantine policy:
/// a valid entry already on disk is kept (status "checkpointed"), a torn
/// or corrupt one is quarantined and its slot rebuilt, anything else runs
/// the full supervised retry ladder. This is the per-fragment unit shared
/// by the single-process batch loop and the sharded worker loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn supervise_fragment(
    root: &Path,
    record: &FragmentRecord,
    pipeline_cfg: &PipelineConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
    summary: &mut BuildSummary,
    clock: &dyn Clock,
    vfs: &dyn Vfs,
) -> FragmentReport {
    let telemetry = qdb_telemetry::global();
    let started_ns = clock.now_ns();
    let entry_dir = root.join(record.group().name()).join(record.pdb_id);
    if vfs.is_dir(&entry_dir) {
        match validate_entry_vfs(vfs, root, record) {
            Ok(()) => {
                summary.checkpointed += 1;
                telemetry.counter("supervisor.fragments_checkpointed").inc();
                return FragmentReport {
                    pdb_id: record.pdb_id.to_string(),
                    group: record.group().name().to_string(),
                    status: "checkpointed".to_string(),
                    attempts: Vec::new(),
                    elapsed_ms: clock.elapsed_ms(started_ns),
                    note: None,
                };
            }
            Err(e) => {
                // Torn or corrupt checkpoint: preserve the evidence in
                // quarantine, rebuild the slot, and say why.
                let reason = format!("checkpoint rejected: {e}");
                let note = match quarantine_entry(vfs, root, &entry_dir, &reason) {
                    Ok(slot) => {
                        telemetry
                            .counter("supervisor.checkpoints_quarantined")
                            .inc();
                        telemetry.instant("supervisor.quarantine");
                        format!("{reason}; quarantined to {}", slot.display())
                    }
                    Err(qe) => format!("{reason}; quarantine failed: {qe}"),
                };
                return build_one(
                    root,
                    record,
                    pipeline_cfg,
                    sup,
                    plan,
                    summary,
                    started_ns,
                    Some(note),
                    clock,
                    vfs,
                );
            }
        }
    }
    build_one(
        root,
        record,
        pipeline_cfg,
        sup,
        plan,
        summary,
        started_ns,
        None,
        clock,
        vfs,
    )
}

#[allow(clippy::too_many_arguments)]
fn build_one(
    root: &Path,
    record: &FragmentRecord,
    pipeline_cfg: &PipelineConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
    summary: &mut BuildSummary,
    started_ns: u64,
    note: Option<String>,
    clock: &dyn Clock,
    vfs: &dyn Vfs,
) -> FragmentReport {
    let telemetry = qdb_telemetry::global();
    let unit = JobUnit {
        root,
        record,
        pipeline: pipeline_cfg,
        supervisor: sup,
        faults: plan,
        seed_override: None,
    };
    let (outcome, attempts) = run_job(&unit, clock, vfs, &CancelToken::new());
    let status = match &outcome {
        Ok(_) => {
            let winning = attempts.last().expect("success recorded an attempt");
            if winning.seed_shifted || winning.degradation.is_some() {
                summary.degraded += 1;
                telemetry.counter("supervisor.fragments_degraded").inc();
                "completed-degraded"
            } else {
                summary.completed += 1;
                telemetry.counter("supervisor.fragments_completed").inc();
                "completed"
            }
        }
        Err(_) => {
            summary.failed += 1;
            telemetry.counter("supervisor.fragments_failed").inc();
            "failed"
        }
    };
    let note = match (&outcome, note) {
        (Err(e), Some(n)) => Some(format!("{n}; {e}")),
        (Err(e), None) => Some(e.to_string()),
        (Ok(_), n) => n,
    };
    FragmentReport {
        pdb_id: record.pdb_id.to_string(),
        group: record.group().name().to_string(),
        status: status.to_string(),
        attempts,
        elapsed_ms: clock.elapsed_ms(started_ns),
        note,
    }
}

/// Outcome of compacting one build journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactionReport {
    /// The journal compacted.
    pub path: PathBuf,
    /// Valid events replayed before compaction.
    pub events_before: usize,
    /// Events in the compacted journal (including the compaction note).
    pub events_after: usize,
    /// Journal size before (bytes, after tail repair).
    pub bytes_before: usize,
    /// Journal size after (bytes).
    pub bytes_after: usize,
}

/// [`compact_manifest_vfs`] on the real filesystem.
pub fn compact_manifest(root: &Path) -> Result<Vec<CompactionReport>, PipelineError> {
    compact_manifest_vfs(&StdVfs, root)
}

/// Compacts every build journal under `root` — `manifest.journal` plus
/// any per-shard `shard-<k>.journal` — down to its live residue.
///
/// Journals are append-only across resume cycles, so a root that has been
/// built, crashed, and resumed many times carries the full attempt
/// history of every cycle. Compaction replays the journal, keeps only
/// what a future resume or finalize actually reads — the *latest*
/// fragment report per pdb id (provenance stamps intact), one run marker,
/// and any `shard-done` marker — and rewrites the file atomically
/// (a crash mid-compaction leaves the old journal whole). History is
/// summarized in a `journal-compacted` note rather than silently dropped.
pub fn compact_manifest_vfs(
    vfs: &dyn Vfs,
    root: &Path,
) -> Result<Vec<CompactionReport>, PipelineError> {
    let mut targets = vec![journal_path(root)];
    if vfs.is_dir(root) {
        let mut shard_journals: Vec<PathBuf> = vfs
            .read_dir(root)?
            .into_iter()
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".journal"))
            })
            .collect();
        shard_journals.sort();
        targets.extend(shard_journals);
    }
    let mut reports = Vec::new();
    for path in targets {
        if !vfs.exists(&path) {
            continue;
        }
        reports.push(compact_journal(vfs, &path)?);
    }
    Ok(reports)
}

fn compact_journal(vfs: &dyn Vfs, path: &Path) -> Result<CompactionReport, PipelineError> {
    let journal = Journal::open(vfs, path.to_path_buf());
    let replay = journal.replay(true)?;
    let bytes_before = vfs.read(path)?.len();

    // Reduce the history to its live residue: the latest report per
    // fragment (order of first appearance), whether any run marker and
    // completion marker existed, and how many events are summarized away.
    let mut order: Vec<String> = Vec::new();
    let mut latest: std::collections::BTreeMap<String, ManifestEvent> =
        std::collections::BTreeMap::new();
    let mut run_event: Option<ManifestEvent> = None;
    let mut done_event: Option<ManifestEvent> = None;
    for payload in &replay.records {
        let Ok(ev) = serde_json::from_str::<ManifestEvent>(payload) else {
            continue;
        };
        match ev.kind.as_str() {
            "run" => run_event = Some(ev),
            "fragment" => {
                if let Some(report) = &ev.fragment {
                    if !latest.contains_key(&report.pdb_id) {
                        order.push(report.pdb_id.clone());
                    }
                    latest.insert(report.pdb_id.clone(), ev);
                }
            }
            "shard-done" => done_event = Some(ev),
            _ => {}
        }
    }

    let mut compacted: Vec<ManifestEvent> = Vec::new();
    if let Some(ev) = run_event {
        compacted.push(ev);
    }
    for pdb_id in &order {
        compacted.push(latest.remove(pdb_id).expect("keyed by order"));
    }
    if let Some(ev) = done_event {
        compacted.push(ev);
    }
    compacted.push(ManifestEvent::note(format!(
        "journal-compacted: {} event(s) reduced to {}",
        replay.records.len(),
        compacted.len()
    )));

    let mut payloads = Vec::with_capacity(compacted.len());
    for ev in &compacted {
        payloads.push(serde_json::to_string(ev)?);
    }
    let bytes_after = journal.rewrite(&payloads)?;
    let telemetry = qdb_telemetry::global();
    telemetry.counter("supervisor.compactions").inc();
    telemetry
        .counter("supervisor.compaction_bytes_reclaimed")
        .add(bytes_before.saturating_sub(bytes_after) as u64);
    Ok(CompactionReport {
        path: path.to_path_buf(),
        events_before: replay.records.len(),
        events_after: compacted.len(),
        bytes_before,
        bytes_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragments::fragment;
    use qdb_vqe::fault::FaultKind;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qdb-supervisor-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_round_trips_through_the_journal() {
        let root = tmpdir("manifest");
        let manifest = Manifest {
            runs: vec![RunRecord {
                resumed: false,
                fragments: vec![FragmentReport {
                    pdb_id: "3ckz".into(),
                    group: "S".into(),
                    status: "completed".into(),
                    attempts: vec![AttemptRecord {
                        attempt: 0,
                        engine: "compiled".into(),
                        shots: 40_000,
                        seed_shifted: false,
                        degradation: None,
                        dock_backend: Some("vina".into()),
                        cause: None,
                        transient: false,
                        backoff_ms: 0,
                    }],
                    elapsed_ms: 12,
                    note: None,
                }],
            }],
            notes: vec!["manifest-migrated: 0 run(s) from legacy manifest.json".into()],
        };
        let journal = Journal::open(&StdVfs, journal_path(&root));
        for run in &manifest.runs {
            append_event(&journal, &ManifestEvent::run(run.resumed)).unwrap();
            for fragment in &run.fragments {
                append_event(&journal, &ManifestEvent::fragment(fragment)).unwrap();
            }
        }
        for note in &manifest.notes {
            append_event(&journal, &ManifestEvent::note(note.clone())).unwrap();
        }
        let back = load_manifest(&root).unwrap();
        assert_eq!(back, manifest);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_journal_tail_recovers_to_the_valid_prefix() {
        let root = tmpdir("torn-tail");
        let journal = Journal::open(&StdVfs, journal_path(&root));
        append_event(&journal, &ManifestEvent::run(false)).unwrap();
        append_event(&journal, &ManifestEvent::note("first note".to_string())).unwrap();
        // Tear the tail: chop the last line mid-record.
        let bytes = std::fs::read(journal.path()).unwrap();
        std::fs::write(journal.path(), &bytes[..bytes.len() - 7]).unwrap();

        let manifest = load_manifest(&root).unwrap();
        assert_eq!(manifest.runs.len(), 1);
        assert!(
            manifest
                .notes
                .iter()
                .any(|n| n.starts_with("manifest-recovered:")),
            "recovery must be visible in the notes: {:?}",
            manifest.notes
        );
        // Read-only load left the torn bytes on disk.
        assert_eq!(
            std::fs::read(journal.path()).unwrap().len(),
            bytes.len() - 7
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn legacy_manifest_recovery_keeps_the_longest_valid_run_prefix() {
        let full = concat!(
            "{\"runs\": [",
            "{\"resumed\": false, \"fragments\": []}, ",
            "{\"resumed\": true, \"fragments\": []}",
            "]}"
        );
        let (runs, note) = recover_legacy_manifest(full);
        assert_eq!(runs.len(), 2);
        assert!(note.is_none(), "intact manifest needs no recovery note");

        // Torn mid-way through the second run: keep the first.
        let torn = &full[..full.len() - 10];
        let (runs, note) = recover_legacy_manifest(torn);
        assert_eq!(runs.len(), 1);
        assert!(!runs[0].resumed);
        assert!(note.unwrap().starts_with("manifest-recovered:"));

        // Garbage: empty manifest, explicit note.
        let (runs, note) = recover_legacy_manifest("not json at all");
        assert!(runs.is_empty());
        assert!(note.unwrap().contains("unreadable"));
    }

    #[test]
    fn legacy_manifest_migrates_onto_the_journal_on_first_build_open() {
        let root = tmpdir("migrate");
        std::fs::write(
            legacy_manifest_path(&root),
            "{\"runs\": [{\"resumed\": false, \"fragments\": []}]}",
        )
        .unwrap();
        let (manifest, journal) = open_build_journal(&StdVfs, &root).unwrap();
        assert_eq!(manifest.runs.len(), 1);
        assert!(manifest
            .notes
            .iter()
            .any(|n| n.starts_with("manifest-migrated:")));
        assert!(journal.path().exists(), "journal materialized");
        drop(journal);
        // Subsequent loads read the journal, not the legacy file.
        let back = load_manifest(&root).unwrap();
        assert_eq!(back.runs, manifest.runs);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_manifest_loads_empty() {
        let root = tmpdir("empty");
        assert_eq!(load_manifest(&root).unwrap(), Manifest::default());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn escalation_ladder_shapes_the_attempt_config() {
        let canonical = VqeConfig::fast(42);
        let (c0, s0, d0, f0) = attempt_config(&canonical, 0, 0, true);
        assert_eq!(c0.seed, canonical.seed);
        assert!(!s0 && d0.is_none() && !f0);
        let (c1, s1, d1, f1) = attempt_config(&canonical, 1, 1, true);
        assert_eq!(c1.seed, canonical.seed);
        assert!(
            !s1 && d1.is_none() && !f1,
            "first deterministic failure retries plainly"
        );
        let (c2, s2, d2, f2) = attempt_config(&canonical, 2, 2, true);
        assert_ne!(c2.seed, canonical.seed);
        assert!(s2);
        assert_eq!(d2.as_deref(), Some("seed-shift"));
        assert!(!f2, "a seed shift keeps the requested docking backend");
        let (c3, _, d3, f3) = attempt_config(&canonical, 3, 3, true);
        assert_eq!(c3.engine, EnergyEngine::Direct);
        assert_eq!(c3.shots, canonical.shots);
        assert_eq!(d3.as_deref(), Some("engine-direct"));
        assert!(f3, "deep rungs force the Vina docking backend");
        let (c4, _, d4, f4) = attempt_config(&canonical, 4, 4, true);
        assert_eq!(c4.engine, EnergyEngine::Direct);
        assert!(c4.shots < canonical.shots);
        assert_eq!(d4.as_deref(), Some("reduced-shots"));
        assert!(f4);
        // With degradation off, escalation keeps seed-shifting instead.
        let (c4n, s4n, d4n, f4n) = attempt_config(&canonical, 4, 4, false);
        assert_eq!(c4n.engine, canonical.engine);
        assert!(s4n);
        assert_eq!(d4n.as_deref(), Some("seed-shift"));
        assert!(!f4n, "degradation off never swaps the backend");
    }

    #[test]
    fn transient_fault_recovers_without_escalation() {
        let root = tmpdir("transient");
        let record = fragment("3ckz").unwrap();
        let plan = FaultPlan::none().with_target("3ckz", FaultKind::Reject, 2);
        let summary = build_dataset(
            &root,
            &[record],
            &PipelineConfig::fast(),
            &SupervisorConfig::fast(),
            &plan,
        )
        .unwrap();
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.failed, 0);
        let manifest = load_manifest(&root).unwrap();
        let frag = &manifest.runs[0].fragments[0];
        assert_eq!(frag.status, "completed");
        assert_eq!(frag.attempts.len(), 3, "two rejections, then success");
        assert_eq!(frag.attempts[0].cause.as_deref(), Some("vqe/job-rejected"));
        assert!(frag.attempts[0].transient);
        assert!(!frag.attempts[2].seed_shifted, "seed stays canonical");
        assert!(frag.attempts[2].degradation.is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn exhausted_fragment_fails_without_stopping_the_build() {
        let root = tmpdir("exhausted");
        let records = [fragment("3ckz").unwrap(), fragment("3eax").unwrap()];
        // 3eax is rejected on every attempt it can get.
        let plan = FaultPlan::none().with_target("3eax", FaultKind::Reject, usize::MAX);
        let sup = SupervisorConfig {
            max_attempts: 3,
            ..SupervisorConfig::fast()
        };
        let summary = build_dataset(&root, &records, &PipelineConfig::fast(), &sup, &plan).unwrap();
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.failed, 1);
        let manifest = load_manifest(&root).unwrap();
        let bad = &manifest.runs[0].fragments[1];
        assert_eq!(bad.pdb_id, "3eax");
        assert_eq!(bad.status, "failed");
        assert_eq!(bad.attempts.len(), 3);
        assert!(bad.note.as_deref().unwrap().contains("attempts failed"));
        // The failed fragment left no dataset entry behind.
        assert!(!root.join("S/3eax").is_dir());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn compaction_round_trips_the_live_state() {
        let root = tmpdir("compact");
        let record = fragment("3ckz").unwrap();
        // Three build cycles: the first computes, the resumes checkpoint —
        // and each appends a run marker plus a fragment report.
        for _ in 0..3 {
            build_dataset(
                &root,
                &[record],
                &PipelineConfig::fast(),
                &SupervisorConfig::fast(),
                &FaultPlan::none(),
            )
            .unwrap();
        }
        let before = load_manifest(&root).unwrap();
        assert_eq!(before.runs.len(), 3);
        let bytes_before = std::fs::read(journal_path(&root)).unwrap().len();

        let reports = compact_manifest(&root).unwrap();
        assert_eq!(reports.len(), 1, "one journal under this root");
        assert_eq!(reports[0].events_before, 6);
        assert!(
            reports[0].bytes_after < bytes_before,
            "compaction must shrink"
        );
        assert_eq!(
            std::fs::read(journal_path(&root)).unwrap().len(),
            reports[0].bytes_after
        );

        // The live residue survives: one run, the *latest* report, a note
        // saying what was summarized away.
        let after = load_manifest(&root).unwrap();
        assert_eq!(after.runs.len(), 1);
        assert_eq!(after.runs[0].fragments.len(), 1);
        let last_report = before.runs.last().unwrap().fragments.last().unwrap();
        assert_eq!(&after.runs[0].fragments[0], last_report);
        assert!(after
            .notes
            .iter()
            .any(|n| n.starts_with("journal-compacted: 6 event(s)")));

        // And the compacted journal is still a working WAL: a resume
        // appends to it and checkpoints off the preserved state.
        let summary = build_dataset(
            &root,
            &[record],
            &PipelineConfig::fast(),
            &SupervisorConfig::fast(),
            &FaultPlan::none(),
        )
        .unwrap();
        assert_eq!(summary.checkpointed, 1);
        assert_eq!(load_manifest(&root).unwrap().runs.len(), 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn jittered_backoff_is_bounded_and_deterministic() {
        let sup = SupervisorConfig {
            base_backoff_ms: 10,
            max_backoff_ms: 2_000,
            jitter_seed: 7,
            ..SupervisorConfig::default()
        };
        let mut prev = 0u64;
        for attempt in 0..12 {
            let b = jittered_backoff(&sup, "3ckz", attempt, prev);
            assert!(
                b >= sup.base_backoff_ms,
                "attempt {attempt}: {b} below base"
            );
            assert!(b <= sup.max_backoff_ms, "attempt {attempt}: {b} above cap");
            let hi = prev.max(10).saturating_mul(3).min(sup.max_backoff_ms);
            assert!(b <= hi.max(10), "attempt {attempt}: {b} above 3× previous");
            // Same inputs, same draw: the schedule is replayable.
            assert_eq!(b, jittered_backoff(&sup, "3ckz", attempt, prev));
            prev = b;
        }
        // Different jobs (and different seeds) decorrelate.
        let a = jittered_backoff(&sup, "3ckz", 1, 10);
        let b = jittered_backoff(&sup, "3eax", 1, 10);
        let other_seed = SupervisorConfig {
            jitter_seed: 8,
            ..sup
        };
        let c = jittered_backoff(&other_seed, "3ckz", 1, 10);
        assert!(
            a != b || a != c,
            "jitter must not be a constant across jobs and seeds"
        );
    }

    #[test]
    fn zero_base_backoff_never_sleeps() {
        let sup = SupervisorConfig::fast();
        for attempt in 0..8 {
            assert_eq!(jittered_backoff(&sup, "3ckz", attempt, 500), 0);
        }
    }

    #[test]
    fn cancelled_token_stops_the_job_at_the_attempt_boundary() {
        let root = tmpdir("cancel");
        let record = fragment("3ckz").unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        let unit = JobUnit {
            root: &root,
            record,
            pipeline: &PipelineConfig::fast(),
            supervisor: &SupervisorConfig::fast(),
            faults: &FaultPlan::none(),
            seed_override: None,
        };
        let (outcome, attempts) = run_job(&unit, &MonotonicClock::new(), &StdVfs, &cancel);
        assert!(matches!(outcome, Err(PipelineError::Cancelled)));
        assert!(attempts.is_empty(), "no attempt may start after cancel");
        assert!(!root.join("S/3ckz").is_dir(), "nothing written");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn seed_override_changes_the_artifacts_deterministically() {
        let record = fragment("3ckz").unwrap();
        let pipeline = PipelineConfig::fast();
        let sup = SupervisorConfig::fast();
        let plan = FaultPlan::none();
        let build = |tag: &str, seed: Option<u64>| {
            let root = tmpdir(tag);
            let unit = JobUnit {
                root: &root,
                record,
                pipeline: &pipeline,
                supervisor: &sup,
                faults: &plan,
                seed_override: seed,
            };
            let (outcome, _) = run_job(&unit, &MonotonicClock::new(), &StdVfs, &CancelToken::new());
            outcome.unwrap();
            // metadata.json carries the optimization-energy envelope, which
            // tracks the VQE seed directly (docking re-seeds off the pdb id).
            let bytes = std::fs::read(root.join("S/3ckz/metadata.json")).unwrap();
            let _ = std::fs::remove_dir_all(&root);
            bytes
        };
        let canonical = build("seed-a", None);
        let replay = build("seed-b", None);
        assert_eq!(canonical, replay, "same seed, byte-identical artifacts");
        let shifted = build("seed-c", Some(0xDEAD_BEEF));
        assert_ne!(canonical, shifted, "override must actually steer the VQE");
    }
}
