//! The pipeline-level error taxonomy.
//!
//! Every fallible step of the dataset build — VQE execution, dataset
//! I/O, JSON/PDB decoding, checkpoint validation — maps into one
//! [`PipelineError`] so the supervisor can make a per-class decision:
//! transient failures are retried in place, deterministic ones are
//! retried once and then seed-shifted or degraded, and exhausted jobs
//! become diagnosable `manifest.json` entries instead of panics.

use qdb_store::{LeaseError, StoreError};
use qdb_vqe::error::VqeError;
use std::fmt;
use std::io;

/// Everything that can go wrong while building one dataset entry.
#[derive(Debug)]
pub enum PipelineError {
    /// The quantum stage failed (see [`VqeError`] for the sub-taxonomy).
    Vqe(VqeError),
    /// Filesystem I/O failed while writing or reading a dataset entry.
    Io(io::Error),
    /// The artifact store refused an entry: torn write, checksum
    /// mismatch, missing or corrupt `CHECKSUMS` sidecar.
    Store(StoreError),
    /// An on-disk artifact exists but does not decode (corrupt JSON/PDB)
    /// or does not validate against the fragment manifest.
    Decode(String),
    /// Every rung of the docking backend ladder failed for some seed.
    Dock {
        /// The final rung's stable error kind (backend taxonomy leaf).
        kind: String,
        /// Human-readable summary of the ladder's attempt history.
        message: String,
        /// Whether the final rung's failure was transient.
        transient: bool,
    },
    /// The fragment job panicked (isolated via `catch_unwind`).
    Panicked(String),
    /// The fragment exceeded its wall-clock deadline.
    DeadlineExceeded {
        /// Elapsed time when the deadline check fired (ms).
        elapsed_ms: u64,
    },
    /// The job was cancelled at an attempt boundary (service drain or
    /// client abort). Not a defect: the job is resumable as-is.
    Cancelled,
    /// Shard-lease coordination refused the operation: the lease is held
    /// by another live worker, or this worker's fencing token went stale
    /// (its shard was stolen). The worker must stop writing the shard;
    /// the shard itself remains buildable by whoever holds the lease.
    Lease {
        /// Shard the lease governs.
        shard: usize,
        /// The underlying lease-protocol failure, rendered.
        detail: String,
    },
    /// Every attempt — including the degradation ladder — failed; the
    /// boxed error is the final attempt's cause.
    RetriesExhausted {
        /// Total attempts spent.
        attempts: usize,
        /// The last attempt's failure.
        last: Box<PipelineError>,
    },
}

impl PipelineError {
    /// Short stable identifier used as the manifest `cause` field.
    pub fn kind(&self) -> String {
        match self {
            PipelineError::Vqe(e) => format!("vqe/{}", e.kind()),
            PipelineError::Io(_) => "io".to_string(),
            PipelineError::Store(e) => format!("store/{}", e.kind()),
            PipelineError::Decode(_) => "decode".to_string(),
            PipelineError::Dock { kind, .. } => format!("dock/{kind}"),
            PipelineError::Panicked(_) => "panic".to_string(),
            PipelineError::DeadlineExceeded { .. } => "deadline-exceeded".to_string(),
            PipelineError::Cancelled => "cancelled".to_string(),
            PipelineError::Lease { .. } => "shard/lease".to_string(),
            PipelineError::RetriesExhausted { .. } => "retries-exhausted".to_string(),
        }
    }

    /// Whether a plain retry (same seed, same budget) can plausibly
    /// succeed: injected/queue-level backend faults and I/O hiccups are
    /// transient; panics, decode failures, and divergence are
    /// deterministic for a fixed seed.
    pub fn is_transient(&self) -> bool {
        match self {
            PipelineError::Vqe(e) => e.is_transient(),
            PipelineError::Io(_) => true,
            PipelineError::Store(e) => e.is_transient(),
            PipelineError::Decode(_) => false,
            PipelineError::Dock { transient, .. } => *transient,
            PipelineError::Panicked(_) => false,
            PipelineError::DeadlineExceeded { .. } => false,
            PipelineError::Cancelled => false,
            // A held or stolen lease never clears by retrying the same
            // write; the claim loop, not the retry ladder, handles it.
            PipelineError::Lease { .. } => false,
            PipelineError::RetriesExhausted { .. } => false,
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Vqe(e) => write!(f, "quantum stage failed: {e}"),
            PipelineError::Io(e) => write!(f, "dataset I/O failed: {e}"),
            PipelineError::Store(e) => write!(f, "artifact store rejected the entry: {e}"),
            PipelineError::Decode(msg) => write!(f, "artifact failed to decode: {msg}"),
            PipelineError::Dock { message, .. } => {
                write!(f, "docking backend ladder failed: {message}")
            }
            PipelineError::Panicked(msg) => write!(f, "fragment job panicked: {msg}"),
            PipelineError::DeadlineExceeded { elapsed_ms } => {
                write!(f, "fragment deadline exceeded after {elapsed_ms} ms")
            }
            PipelineError::Cancelled => {
                write!(f, "job cancelled at an attempt boundary")
            }
            PipelineError::Lease { shard, detail } => {
                write!(f, "shard {shard} lease coordination failed: {detail}")
            }
            PipelineError::RetriesExhausted { attempts, last } => {
                write!(f, "all {attempts} attempts failed; last: {last}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Vqe(e) => Some(e),
            PipelineError::Io(e) => Some(e),
            PipelineError::Store(e) => Some(e),
            PipelineError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<VqeError> for PipelineError {
    fn from(e: VqeError) -> Self {
        PipelineError::Vqe(e)
    }
}

impl From<io::Error> for PipelineError {
    fn from(e: io::Error) -> Self {
        PipelineError::Io(e)
    }
}

impl From<StoreError> for PipelineError {
    fn from(e: StoreError) -> Self {
        PipelineError::Store(e)
    }
}

impl From<LeaseError> for PipelineError {
    fn from(e: LeaseError) -> Self {
        let detail = e.to_string();
        match e {
            // A store failure underneath the lease file is an ordinary
            // store error; keep its transience classification.
            LeaseError::Store(inner) => PipelineError::Store(inner),
            LeaseError::Held { shard, .. } | LeaseError::Fenced { shard, .. } => {
                PipelineError::Lease { shard, detail }
            }
        }
    }
}

impl From<serde_json::Error> for PipelineError {
    fn from(e: serde_json::Error) -> Self {
        PipelineError::Decode(e.to_string())
    }
}

impl From<qdb_dock::dispatch::DispatchError> for PipelineError {
    fn from(e: qdb_dock::dispatch::DispatchError) -> Self {
        PipelineError::Dock {
            kind: e.last.kind().to_string(),
            message: e.to_string(),
            transient: e.last.is_transient(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_follows_the_vqe_classification() {
        assert!(PipelineError::from(VqeError::JobRejected).is_transient());
        assert!(!PipelineError::from(VqeError::NonFiniteEnergy { eval: 2 }).is_transient());
        assert!(PipelineError::Io(io::Error::new(io::ErrorKind::Other, "disk")).is_transient());
        assert!(!PipelineError::Decode("bad json".into()).is_transient());
        assert!(!PipelineError::Panicked("boom".into()).is_transient());
    }

    #[test]
    fn store_errors_split_transience_like_the_store() {
        let io_backed = PipelineError::from(StoreError::from(io::Error::new(
            io::ErrorKind::Other,
            "disk",
        )));
        assert!(io_backed.is_transient());
        assert_eq!(io_backed.kind(), "store/io");
        let integrity = PipelineError::from(StoreError::ChecksumMismatch {
            path: "S/3ckz/metadata.json".into(),
            expected: 1,
            actual: 2,
        });
        assert!(!integrity.is_transient());
        assert_eq!(integrity.kind(), "store/checksum-mismatch");
    }

    #[test]
    fn kinds_are_hierarchical_for_vqe_causes() {
        assert_eq!(
            PipelineError::from(VqeError::JobRejected).kind(),
            "vqe/job-rejected"
        );
        assert_eq!(
            PipelineError::RetriesExhausted {
                attempts: 5,
                last: Box::new(PipelineError::Decode("x".into())),
            }
            .kind(),
            "retries-exhausted"
        );
    }

    #[test]
    fn display_chains_the_final_cause() {
        let e = PipelineError::RetriesExhausted {
            attempts: 3,
            last: Box::new(PipelineError::from(VqeError::JobRejected)),
        };
        let text = e.to_string();
        assert!(text.contains("3 attempts"));
        assert!(text.contains("rejected"));
    }
}
