//! The paper's evaluation framework (§6): per-fragment QDock-vs-baseline
//! comparisons, win-rate accounting, distribution summaries (Figure 4),
//! and amino-acid interaction coverage (Figure 5).

use crate::error::PipelineError;
use crate::fragments::{FragmentRecord, Group};
use crate::pipeline::{run_baseline, run_fragment, FragmentResult, PipelineConfig, PredictionEval};
use qdb_baselines::alphafold::AfModel;
use qdb_lattice::amino::ALL_AMINO_ACIDS;
use std::collections::BTreeMap;

/// One fragment evaluated under QDock and both baselines.
#[derive(Clone, Debug)]
pub struct FragmentComparison {
    /// The manifest entry.
    pub record: &'static FragmentRecord,
    /// Full QDock result (prediction + metadata + reference + ligand).
    pub qdock: FragmentResult,
    /// AF2 surrogate evaluation.
    pub af2: PredictionEval,
    /// AF3 surrogate evaluation.
    pub af3: PredictionEval,
}

impl FragmentComparison {
    /// Runs the whole comparison for one fragment.
    pub fn run(
        record: &'static FragmentRecord,
        config: &PipelineConfig,
    ) -> Result<Self, PipelineError> {
        let qdock = run_fragment(record, config)?;
        let af2 = run_baseline(
            record,
            AfModel::Af2,
            &qdock.reference,
            &qdock.ligand,
            config,
        )?;
        let af3 = run_baseline(
            record,
            AfModel::Af3,
            &qdock.reference,
            &qdock.ligand,
            config,
        )?;
        Ok(Self {
            record,
            qdock,
            af2,
            af3,
        })
    }

    /// The baseline evaluation for a model.
    pub fn baseline(&self, model: AfModel) -> &PredictionEval {
        match model {
            AfModel::Af2 => &self.af2,
            AfModel::Af3 => &self.af3,
        }
    }
}

/// Runs the comparison over a set of fragments (sequential; each
/// fragment's VQE and docking already use data parallelism internally).
pub fn compare_fragments(
    records: &[&'static FragmentRecord],
    config: &PipelineConfig,
) -> Result<Vec<FragmentComparison>, PipelineError> {
    records
        .iter()
        .map(|r| FragmentComparison::run(r, config))
        .collect()
}

/// Win counts for one group (lower metric wins).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupWins {
    /// Fragments compared.
    pub total: usize,
    /// QDock better affinity.
    pub affinity_wins: usize,
    /// QDock better RMSD.
    pub rmsd_wins: usize,
}

impl GroupWins {
    /// Affinity win rate in percent.
    pub fn affinity_rate(&self) -> f64 {
        100.0 * self.affinity_wins as f64 / self.total.max(1) as f64
    }

    /// RMSD win rate in percent.
    pub fn rmsd_rate(&self) -> f64 {
        100.0 * self.rmsd_wins as f64 / self.total.max(1) as f64
    }
}

/// The §6.2 headline statistics: overall and per-group win rates of QDock
/// against one baseline.
#[derive(Clone, Debug)]
pub struct WinRates {
    /// Which baseline.
    pub baseline: AfModel,
    /// Overall counts.
    pub overall: GroupWins,
    /// Per-group counts.
    pub per_group: BTreeMap<Group, GroupWins>,
}

/// Computes win rates of QDock vs `model` over comparisons.
pub fn win_rates(comparisons: &[FragmentComparison], model: AfModel) -> WinRates {
    let mut overall = GroupWins::default();
    let mut per_group: BTreeMap<Group, GroupWins> = BTreeMap::new();
    for c in comparisons {
        let base = c.baseline(model);
        let entry = per_group.entry(c.record.group()).or_default();
        entry.total += 1;
        overall.total += 1;
        if c.qdock.qdock.affinity() < base.affinity() {
            entry.affinity_wins += 1;
            overall.affinity_wins += 1;
        }
        if c.qdock.qdock.ca_rmsd < base.ca_rmsd {
            entry.rmsd_wins += 1;
            overall.rmsd_wins += 1;
        }
    }
    WinRates {
        baseline: model,
        overall,
        per_group,
    }
}

/// Five-number summary plus mean (the Figure 4 box statistics).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistributionSummary {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
}

/// Computes the summary of a sample, ignoring non-finite values (a failed
/// fragment can legitimately leave a NaN in a metric series). Returns
/// `None` when no finite values remain, so callers decide how to render a
/// missing distribution instead of inheriting a panic.
pub fn summarize(values: &[f64]) -> Option<DistributionSummary> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    let quantile = |q: f64| -> f64 {
        let pos = q * (v.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let t = pos - lo as f64;
        v[lo] * (1.0 - t) + v[hi] * t
    };
    Some(DistributionSummary {
        min: v[0],
        q1: quantile(0.25),
        median: quantile(0.5),
        q3: quantile(0.75),
        max: v[v.len() - 1],
        mean: v.iter().sum::<f64>() / v.len() as f64,
    })
}

/// A named metric series extracted from comparisons.
pub fn metric_series(
    comparisons: &[FragmentComparison],
    group: Option<Group>,
    extract: impl Fn(&FragmentComparison) -> f64,
) -> Vec<f64> {
    comparisons
        .iter()
        .filter(|c| group.is_none_or(|g| c.record.group() == g))
        .map(extract)
        .collect()
}

/// Amino-acid interaction coverage over the dataset (Figure 5): counts of
/// ordered residue-type pairs co-occurring within a fragment.
#[derive(Clone, Debug)]
pub struct CoverageReport {
    /// 20×20 ordered-pair frequency matrix (enum-index order).
    pub counts: [[u64; 20]; 20],
}

impl CoverageReport {
    /// Number of pair types with nonzero frequency (paper: 395/400).
    pub fn covered_types(&self) -> usize {
        self.counts.iter().flatten().filter(|&&c| c > 0).count()
    }

    /// Total interactions counted.
    pub fn total_interactions(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// The most frequent pairs, `(a, b, count)` sorted descending.
    pub fn top_pairs(&self, k: usize) -> Vec<(char, char, u64)> {
        let mut pairs = Vec::new();
        for (i, row) in self.counts.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                if c > 0 {
                    pairs.push((
                        ALL_AMINO_ACIDS[i].one_letter(),
                        ALL_AMINO_ACIDS[j].one_letter(),
                        c,
                    ));
                }
            }
        }
        pairs.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        pairs.truncate(k);
        pairs
    }
}

/// Group-level resource statistics (the §4.2 dataset analysis: qubit
/// counts, circuit depths, energy ranges, execution times per group).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroupResourceStats {
    /// Number of fragments in the group.
    pub count: usize,
    /// Minimum physical qubits.
    pub qubits_min: usize,
    /// Maximum physical qubits.
    pub qubits_max: usize,
    /// Mean physical qubits.
    pub qubits_mean: f64,
    /// Mean transpiled depth.
    pub depth_mean: f64,
    /// Mean energy range (highest − lowest during optimization).
    pub energy_range_mean: f64,
    /// Maximum energy range in the group.
    pub energy_range_max: f64,
    /// Median execution time (s) — the paper discusses typical times
    /// because of heavy queue-delay outliers.
    pub exec_time_median_s: f64,
    /// Maximum execution time (s).
    pub exec_time_max_s: f64,
}

/// Computes the §4.2 statistics for one group from the paper-reported
/// manifest columns.
pub fn group_resource_stats(group: Group) -> GroupResourceStats {
    let records = crate::fragments::fragments_in(group);
    let count = records.len();
    assert!(count > 0);
    let qubits: Vec<usize> = records.iter().map(|r| r.paper.qubits).collect();
    let depths: Vec<f64> = records.iter().map(|r| r.paper.depth as f64).collect();
    let ranges: Vec<f64> = records.iter().map(|r| r.paper.energy_range()).collect();
    let mut times: Vec<f64> = records.iter().map(|r| r.paper.exec_time_s).collect();
    times.sort_by(|a, b| a.total_cmp(b));
    GroupResourceStats {
        count,
        qubits_min: *qubits.iter().min().expect("non-empty"),
        qubits_max: *qubits.iter().max().expect("non-empty"),
        qubits_mean: qubits.iter().sum::<usize>() as f64 / count as f64,
        depth_mean: depths.iter().sum::<f64>() / count as f64,
        energy_range_mean: ranges.iter().sum::<f64>() / count as f64,
        energy_range_max: ranges.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        exec_time_median_s: times[count / 2],
        exec_time_max_s: *times.last().expect("non-empty"),
    }
}

/// Per-residue Cα deviation after optimal superposition — the quantity
/// behind the paper's Figure 7 green/red coloring.
pub fn per_residue_deviation(
    predicted: &[qdb_mol::geometry::Vec3],
    reference: &[qdb_mol::geometry::Vec3],
) -> Vec<f64> {
    let sup = qdb_mol::kabsch::superpose(predicted, reference);
    predicted
        .iter()
        .zip(reference)
        .map(|(p, r)| (sup.apply(*p) - *r).norm())
        .collect()
}

/// Counts ordered residue-pair co-occurrences across fragment sequences.
pub fn interaction_coverage(records: &[&FragmentRecord]) -> CoverageReport {
    let mut counts = [[0u64; 20]; 20];
    for record in records {
        let seq = record.sequence();
        let rs = seq.residues();
        for (i, &a) in rs.iter().enumerate() {
            for (j, &b) in rs.iter().enumerate() {
                if i != j {
                    counts[a.index()][b.index()] += 1;
                }
            }
        }
    }
    CoverageReport { counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragments::all_fragments;

    #[test]
    fn summarize_basic() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
    }

    #[test]
    fn summarize_single_value() {
        let s = summarize(&[2.5]).unwrap();
        assert_eq!(s.min, 2.5);
        assert_eq!(s.max, 2.5);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn summarize_is_nan_safe_and_empty_safe() {
        assert_eq!(summarize(&[]), None);
        assert_eq!(summarize(&[f64::NAN, f64::INFINITY]), None);
        // Non-finite values are excluded, not propagated: a single failed
        // fragment must not poison a whole Figure-4 panel.
        let s = summarize(&[3.0, f64::NAN, 1.0, f64::NEG_INFINITY, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn coverage_matches_paper_scale() {
        // Figure 5: "QDockBank covers 395 out of the 400 possible amino
        // acid interaction types". Our synthetic world uses the same 55
        // sequences, so coverage must land in the same high-300s band.
        let report = interaction_coverage(&all_fragments());
        let covered = report.covered_types();
        assert!(
            (350..=400).contains(&covered),
            "coverage {covered} far from the paper's 395/400"
        );
        assert!(report.total_interactions() > 3000);
        // Diagonal pairs from repeated residues exist (e.g. G–G in GDSGG).
        let gly = qdb_lattice::amino::AminoAcid::Gly.index();
        assert!(report.counts[gly][gly] > 0);
        // Common pairs appear with high frequency.
        let top = report.top_pairs(5);
        assert!(top[0].2 >= 20, "top pair should be frequent: {top:?}");
    }

    #[test]
    fn coverage_is_symmetric_by_construction() {
        let report = interaction_coverage(&all_fragments());
        for i in 0..20 {
            for j in 0..20 {
                assert_eq!(report.counts[i][j], report.counts[j][i]);
            }
        }
    }

    #[test]
    fn group_stats_match_paper_section_4_2() {
        // §4.2: "In terms of qubit count, the L group ranged from 92 to
        // 102 (avg. 98.2), the M group from 54 to 102 (avg. 79.4), and
        // the S group from 12 to 46 (typical value: 23). Circuit depth
        // followed a similar trend: S averaged 127, M 262, and L 396."
        // Note: the paper's prose is slightly inconsistent with its own
        // tables — Table 1 averages to 99.5 qubits (prose: 98.2) and
        // Table 2's maximum is 82 (prose: 102). We verify against the
        // tables, with tolerances wide enough to note the prose values.
        let l = group_resource_stats(Group::L);
        assert_eq!((l.qubits_min, l.qubits_max), (92, 102));
        assert!(
            (l.qubits_mean - 98.2).abs() < 1.5,
            "L mean {}",
            l.qubits_mean
        );
        assert!(
            (l.depth_mean - 396.0).abs() < 8.0,
            "L depth {}",
            l.depth_mean
        );

        let m = group_resource_stats(Group::M);
        assert_eq!(m.qubits_min, 54);
        assert!(
            (m.qubits_mean - 79.4).abs() < 14.0,
            "M mean {}",
            m.qubits_mean
        );
        assert!(
            (m.depth_mean - 262.0).abs() < 8.0,
            "M depth {}",
            m.depth_mean
        );

        let s = group_resource_stats(Group::S);
        assert_eq!((s.qubits_min, s.qubits_max), (12, 46));
        assert!(
            (s.depth_mean - 127.0).abs() < 25.0,
            "S depth {}",
            s.depth_mean
        );
        // §4.2: L energy range avg 6883.6, max 9200.3 (5nkb).
        assert!(
            (l.energy_range_mean - 6883.6).abs() < 600.0,
            "{}",
            l.energy_range_mean
        );
        assert!(
            (l.energy_range_max - 9200.3).abs() < 40.0,
            "{}",
            l.energy_range_max
        );
        // §4.2: most S-group fragments fell between 4,000 and 20,000 s.
        assert!(s.exec_time_median_s > 4_000.0 && s.exec_time_median_s < 20_000.0);
        // The M-group outlier 4y79 at 207,445 s.
        assert!((m.exec_time_max_s - 207_445.7).abs() < 1.0);
    }

    #[test]
    fn per_residue_deviation_localizes_errors() {
        use qdb_mol::geometry::Vec3;
        let reference: Vec<Vec3> = (0..6)
            .map(|i| Vec3::new(i as f64 * 3.8, 0.0, 0.0))
            .collect();
        let mut predicted = reference.clone();
        predicted[3] += Vec3::new(0.0, 2.5, 0.0); // one displaced residue
        let dev = per_residue_deviation(&predicted, &reference);
        assert_eq!(dev.len(), 6);
        let worst = dev
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(
            worst, 3,
            "deviation should localize at the displaced residue"
        );
    }

    #[test]
    fn win_rate_accounting() {
        use crate::fragments::fragment;
        let config = PipelineConfig::fast();
        let comparisons = compare_fragments(&[fragment("3eax").unwrap()], &config).unwrap();
        let rates = win_rates(&comparisons, AfModel::Af2);
        assert_eq!(rates.overall.total, 1);
        assert!(rates.overall.rmsd_wins <= 1);
        assert!(rates.per_group.contains_key(&Group::S));
        let g = rates.per_group[&Group::S];
        assert_eq!(g.total, 1);
        assert!(g.rmsd_rate() == 0.0 || g.rmsd_rate() == 100.0);
    }

    #[test]
    fn metric_series_filters_by_group() {
        use crate::fragments::fragment;
        let config = PipelineConfig::fast();
        let comparisons = compare_fragments(&[fragment("4mo4").unwrap()], &config).unwrap();
        let all = metric_series(&comparisons, None, |c| c.qdock.qdock.ca_rmsd);
        assert_eq!(all.len(), 1);
        let s_only = metric_series(&comparisons, Some(Group::S), |c| c.qdock.qdock.ca_rmsd);
        assert_eq!(s_only.len(), 1);
        let l_only = metric_series(&comparisons, Some(Group::L), |c| c.qdock.qdock.ca_rmsd);
        assert!(l_only.is_empty());
    }
}
