//! Content-addressed result cache.
//!
//! The service layer keys work by a hash of the fully-resolved request —
//! identical submissions map to identical keys — and parks each result
//! in its own slot directory under a cache root. This module owns the
//! on-disk layout and the integrity-checked lookup; what goes *into* a
//! slot (dataset entries, result summaries) is the caller's business, as
//! long as the slot is committed through the [`EntryWriter`] protocol so
//! a `CHECKSUMS` sidecar marks it complete.
//!
//! Layout: `<root>/<key[0..2]>/<key>/` — a two-hex-character fan-out so
//! a large cache does not pile every slot into one directory.

use crate::atomic::{verify_dir, EntryWriter};
use crate::error::StoreError;
use crate::vfs::Vfs;
use std::path::{Path, PathBuf};

/// A content key: 32 lowercase hex characters (128 bits).
pub const KEY_LEN: usize = 32;

/// Whether `key` is a well-formed content key. Keys are embedded in
/// paths, so anything else is rejected before it touches the filesystem.
pub fn is_content_key(key: &str) -> bool {
    key.len() == KEY_LEN
        && key
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// A content-addressed cache rooted at one directory.
#[derive(Clone, Debug)]
pub struct ContentCache {
    root: PathBuf,
}

impl ContentCache {
    /// A cache under `root` (created lazily on first insert).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The slot directory for `key`.
    ///
    /// # Panics
    /// If `key` is not a well-formed content key (see [`is_content_key`]).
    pub fn slot(&self, key: &str) -> PathBuf {
        assert!(is_content_key(key), "malformed content key: {key:?}");
        self.root.join(&key[..2]).join(key)
    }

    /// Integrity-checked lookup: returns the slot directory iff the slot
    /// exists, carries a committed `CHECKSUMS` sidecar, every checksummed
    /// file matches, and all of `required` are present. A torn or corrupt
    /// slot reads as a miss — the caller recomputes and overwrites it.
    pub fn lookup(&self, vfs: &dyn Vfs, key: &str, required: &[&str]) -> Option<PathBuf> {
        let slot = self.slot(key);
        if !vfs.is_dir(&slot) {
            return None;
        }
        let telemetry = qdb_telemetry::global();
        match verify_dir(vfs, &slot, required) {
            Ok(()) => {
                telemetry.counter("store.cache_lookup_hits").inc();
                Some(slot)
            }
            Err(_) => {
                telemetry.counter("store.cache_lookup_rejects").inc();
                None
            }
        }
    }

    /// Opens a transactional writer for `key`'s slot. The slot becomes
    /// visible to [`lookup`](ContentCache::lookup) only at `commit()`,
    /// when the sidecar lands.
    pub fn begin<'a>(&self, vfs: &'a dyn Vfs, key: &str) -> Result<EntryWriter<'a>, StoreError> {
        EntryWriter::begin(vfs, &self.slot(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::StdVfs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qdb-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const KEY: &str = "0123456789abcdef0123456789abcdef";

    #[test]
    fn key_validation_rejects_path_hazards() {
        assert!(is_content_key(KEY));
        assert!(!is_content_key("short"));
        assert!(!is_content_key("0123456789ABCDEF0123456789ABCDEF"));
        assert!(!is_content_key("../3456789abcdef0123456789abcdef0"));
        assert!(!is_content_key(""));
    }

    #[test]
    fn lookup_misses_until_commit_then_hits() {
        let root = tmpdir("commit");
        let cache = ContentCache::new(&root);
        assert!(cache.lookup(&StdVfs, KEY, &["result.json"]).is_none());

        let mut w = cache.begin(&StdVfs, KEY).unwrap();
        w.put("result.json", b"{\"ok\":true}").unwrap();
        // Uncommitted: files exist but no sidecar, still a miss.
        assert!(cache.lookup(&StdVfs, KEY, &["result.json"]).is_none());
        w.commit().unwrap();

        let slot = cache.lookup(&StdVfs, KEY, &["result.json"]).unwrap();
        assert_eq!(slot, cache.slot(KEY));
        assert!(slot.starts_with(root.join(&KEY[..2])));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_slot_reads_as_miss() {
        let root = tmpdir("corrupt");
        let cache = ContentCache::new(&root);
        let mut w = cache.begin(&StdVfs, KEY).unwrap();
        w.put("result.json", b"{\"ok\":true}").unwrap();
        w.commit().unwrap();
        std::fs::write(cache.slot(KEY).join("result.json"), b"tampered").unwrap();
        assert!(cache.lookup(&StdVfs, KEY, &["result.json"]).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_required_file_reads_as_miss() {
        let root = tmpdir("required");
        let cache = ContentCache::new(&root);
        let mut w = cache.begin(&StdVfs, KEY).unwrap();
        w.put("other.json", b"{}").unwrap();
        w.commit().unwrap();
        assert!(cache.lookup(&StdVfs, KEY, &["result.json"]).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }
}
