//! Append-only, self-checksummed line journal.
//!
//! One record per line: `crc32c(payload) payload \n`, with the checksum
//! as 8 lower-case hex digits. Appends are flushed with an fsync, so a
//! journal is a write-ahead log: a record either made it to the platter
//! whole or its line is torn — and a torn/corrupt line plus everything
//! after it is exactly what [`Journal::replay`] drops. Recovery is
//! truncation to the longest valid prefix, never a parse failure that
//! bricks a resume.
//!
//! Payloads are opaque single-line byte strings (in practice one JSON
//! object per line); serialization stays with the caller so this crate
//! keeps zero dependencies.

use crate::atomic::write_atomic;
use crate::checksum::{crc32c, format_crc, parse_crc};
use crate::error::StoreError;
use crate::vfs::Vfs;
use std::path::{Path, PathBuf};

/// A checksummed line journal at one path.
pub struct Journal<'a> {
    vfs: &'a dyn Vfs,
    path: PathBuf,
}

/// What a replay found on disk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Replay {
    /// Valid record payloads, oldest first.
    pub records: Vec<String>,
    /// Bytes of torn/corrupt tail dropped (0 = journal was clean).
    pub torn_bytes: usize,
    /// Whether the torn tail was truncated away on disk (repair mode).
    pub repaired: bool,
}

impl Replay {
    /// Whether recovery had anything to do.
    pub fn recovered(&self) -> bool {
        self.torn_bytes > 0
    }
}

impl<'a> Journal<'a> {
    /// Handle to the journal at `path` (the file may not exist yet).
    pub fn open(vfs: &'a dyn Vfs, path: PathBuf) -> Self {
        Self { vfs, path }
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record durably (write + fsync).
    ///
    /// The payload must be a single line; embedded newlines would let one
    /// record masquerade as two.
    pub fn append(&self, payload: &str) -> Result<(), StoreError> {
        let line = render_line(payload);
        if let Some(parent) = self.path.parent() {
            self.vfs.create_dir_all(parent)?;
        }
        self.vfs.append(&self.path, line.as_bytes())?;
        self.vfs.fsync_file(&self.path)?;
        let telemetry = qdb_telemetry::global();
        telemetry.counter("store.writes").inc();
        telemetry.counter("store.bytes").add(line.len() as u64);
        telemetry.counter("store.fsyncs").inc();
        telemetry.instant("store.fsync");
        Ok(())
    }

    /// Replays the journal to the longest valid prefix of records.
    ///
    /// With `repair` set, a torn/corrupt tail is also truncated away on
    /// disk so later appends extend a clean journal instead of burying
    /// garbage mid-file. A missing journal replays as empty.
    pub fn replay(&self, repair: bool) -> Result<Replay, StoreError> {
        if !self.vfs.exists(&self.path) {
            return Ok(Replay::default());
        }
        let bytes = self.vfs.read(&self.path)?;
        let mut records = Vec::new();
        let mut valid_len = 0usize;
        let mut cursor = 0usize;
        while cursor < bytes.len() {
            let Some(nl) = bytes[cursor..].iter().position(|&b| b == b'\n') else {
                break; // torn final line (no terminator)
            };
            let line = &bytes[cursor..cursor + nl];
            let Some(payload) = parse_line(line) else {
                break; // checksum mismatch or malformed framing
            };
            records.push(payload);
            cursor += nl + 1;
            valid_len = cursor;
        }
        let torn_bytes = bytes.len() - valid_len;
        let mut repaired = false;
        if torn_bytes > 0 {
            qdb_telemetry::global().counter("store.recoveries").inc();
            if repair {
                self.vfs.set_len(&self.path, valid_len as u64)?;
                repaired = true;
            }
        }
        Ok(Replay {
            records,
            torn_bytes,
            repaired,
        })
    }

    /// Replaces the journal's entire contents with `payloads`, atomically.
    ///
    /// This is the compaction primitive: the caller replays, reduces the
    /// history to its live residue, and rewrites. The new journal is built
    /// in full and lands via the atomic-write protocol (tmp → fsync →
    /// rename → fsync dir), so a crash mid-compaction leaves the old
    /// journal fully intact — never a half-truncated one. Returns the new
    /// on-disk size in bytes.
    pub fn rewrite(&self, payloads: &[String]) -> Result<usize, StoreError> {
        let mut contents = String::new();
        for payload in payloads {
            contents.push_str(&render_line(payload));
        }
        write_atomic(self.vfs, &self.path, contents.as_bytes())?;
        qdb_telemetry::global()
            .counter("store.journal.rewrites")
            .inc();
        Ok(contents.len())
    }
}

fn render_line(payload: &str) -> String {
    debug_assert!(
        !payload.contains('\n'),
        "journal payloads must be single-line"
    );
    let mut line = format_crc(crc32c(payload.as_bytes()));
    line.push(' ');
    line.push_str(payload);
    line.push('\n');
    line
}

fn parse_line(line: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(line).ok()?;
    let (crc_text, payload) = text.split_once(' ')?;
    let expected = parse_crc(crc_text)?;
    if crc32c(payload.as_bytes()) != expected {
        return None;
    }
    Some(payload.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::StdVfs;

    fn tmpfile(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qdb-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("j.log")
    }

    #[test]
    fn append_replay_round_trip() {
        let path = tmpfile("rt");
        let j = Journal::open(&StdVfs, path.clone());
        j.append("{\"a\":1}").unwrap();
        j.append("{\"b\":2}").unwrap();
        let replay = j.replay(false).unwrap();
        assert_eq!(replay.records, vec!["{\"a\":1}", "{\"b\":2}"]);
        assert!(!replay.recovered());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn missing_journal_replays_empty() {
        let path = tmpfile("missing");
        let j = Journal::open(&StdVfs, path.clone());
        assert_eq!(j.replay(true).unwrap(), Replay::default());
        assert!(
            !path.exists(),
            "repair of a missing journal creates nothing"
        );
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_tail_is_dropped_and_repaired() {
        let path = tmpfile("torn");
        let j = Journal::open(&StdVfs, path.clone());
        j.append("one").unwrap();
        j.append("two").unwrap();
        // A torn third append: half a line, no newline.
        StdVfs.append(&path, b"0badc0de thr").unwrap();
        let replay = j.replay(true).unwrap();
        assert_eq!(replay.records, vec!["one", "two"]);
        assert!(replay.recovered() && replay.repaired);
        // The tail is gone on disk: a fresh append extends cleanly.
        j.append("three").unwrap();
        let replay = j.replay(false).unwrap();
        assert_eq!(replay.records, vec!["one", "two", "three"]);
        assert!(!replay.recovered());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn corrupt_middle_line_truncates_from_there() {
        let path = tmpfile("middle");
        let j = Journal::open(&StdVfs, path.clone());
        j.append("keep-1").unwrap();
        j.append("corrupt-me").unwrap();
        j.append("dropped-with-the-corruption").unwrap();
        // Flip one byte inside the *second* record's payload.
        let mut bytes = StdVfs.read(&path).unwrap();
        let line1_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[line1_end + 12] ^= 0x20;
        StdVfs.write_all(&path, &bytes).unwrap();
        let replay = j.replay(false).unwrap();
        assert_eq!(replay.records, vec!["keep-1"]);
        assert!(replay.recovered() && !replay.repaired);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn rewrite_replaces_history_atomically() {
        let path = tmpfile("rewrite");
        let j = Journal::open(&StdVfs, path.clone());
        for i in 0..50 {
            j.append(&format!("event-{i}")).unwrap();
        }
        let before = StdVfs.read(&path).unwrap().len();
        let live = vec!["event-48".to_string(), "event-49".to_string()];
        let after = j.rewrite(&live).unwrap();
        assert!(after < before, "compaction must shrink the journal");
        let replay = j.replay(false).unwrap();
        assert_eq!(replay.records, live);
        assert!(!replay.recovered(), "rewritten journal is clean");
        // And it is still appendable afterwards.
        j.append("event-50").unwrap();
        assert_eq!(j.replay(false).unwrap().records.len(), 3);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
